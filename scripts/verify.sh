#!/usr/bin/env bash
# One entry point for correctness + perf verification of a PR:
#   1. tier-1: release build + full test suite (quiet)
#   2. kernel bench smoke: a fast liveness run of the DES-kernel
#      throughput microbench (slab/wheel engine vs boxed baseline).
#
# The smoke bench writes results/BENCH_kernel_smoke.json and is
# informational at that scale; the recorded full-size numbers live in
# results/BENCH_kernel.json (regenerate with `bench_kernel --scale=25`).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: cargo build --release =="
cargo build --release --offline
# The workspace build does not cover the bench crate's binaries; the smoke
# step below needs this one.
cargo build --release --offline -p lambda-bench --bin bench_kernel

echo "== tier-1: cargo test -q =="
cargo test -q --offline

echo "== kernel bench smoke =="
./target/release/bench_kernel --smoke

echo "verify.sh: all checks passed"
