#!/usr/bin/env bash
# One entry point for correctness + perf verification of a PR:
#   1. tier-1: release build + full test suite (quiet)
#   2. lint: clippy across the workspace, warnings denied
#   3. kernel bench smoke: a fast liveness run of the DES-kernel
#      throughput microbench (slab/wheel engine vs boxed baseline)
#   4. metadata bench smoke: same for the metadata-plane microbench
#      (interned paths / arena cache / zero-clone store vs baselines).
#
# The smoke benches write results/BENCH_*_smoke.json and are
# informational at that scale; the recorded full-size numbers live in
# results/BENCH_kernel.json and results/BENCH_metadata.json
# (regenerate with `bench_kernel --scale=25` / `bench_metadata`).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: cargo build --release =="
cargo build --release --offline
# The workspace build does not cover the bench crate's binaries; the smoke
# steps below need these two.
cargo build --release --offline -p lambda-bench --bin bench_kernel
cargo build --release --offline -p lambda-bench --bin bench_metadata

echo "== tier-1: cargo test -q =="
cargo test -q --offline

echo "== lint: cargo clippy (deny warnings) =="
cargo clippy --workspace --offline -- -D warnings

echo "== kernel bench smoke =="
./target/release/bench_kernel --smoke

echo "== metadata bench smoke =="
./target/release/bench_metadata --smoke

echo "verify.sh: all checks passed"
