#!/usr/bin/env bash
# One entry point for correctness + perf verification of a PR:
#   1. tier-1: release build + full test suite (quiet)
#   2. lint: clippy across the workspace, warnings denied
#   3. kernel bench smoke: a fast liveness run of the DES-kernel
#      throughput microbench (slab/wheel engine vs boxed baseline)
#   4. metadata bench smoke: same for the metadata-plane microbench
#      (interned paths / arena cache / zero-clone store vs baselines)
#   5. faas bench smoke: same for the FaaS control-plane microbench
#      (slab instance table / ready heaps / pooled invocations vs the
#      retained faas::baseline)
#   6. fig10 golden check: the seeded latency-CDF figure must be
#      byte-identical to results/golden/fig10_latency_cdfs.txt (modulo
#      the wall-clock line) — the end-to-end determinism contract the
#      hot-path overhauls must not break.
#   7. fig15 golden check: same contract for the fault-tolerance figure —
#      with no fault plan installed, the fault plane must not perturb a
#      single event (results/golden/fig15_fault_tolerance.txt).
#   8. chaos smoke: fig15b_chaos --smoke runs every fault class against a
#      small system and exits nonzero if any post-run invariant audit
#      (leaked locks/txns/invocations, namespace↔store divergence,
#      op-count conservation) fails.
#   9. parallel DES smoke: bench_parallel --smoke runs the sharded
#      cluster at N in {1,2,4,8} worker threads and asserts every thread
#      count produces a bit-identical ClusterReport fingerprint.
#  10. fig10 at --threads=4: the figure sweep re-run on four worker
#      threads must still match the golden capture byte-for-byte —
#      sweep-level parallelism must never reach the simulated results.
#  11. memory sweep smoke: fig08d_million_scale --smoke --phase-timings
#      exercises the footprint instrumentation and the per-phase
#      wall-clock breakdown end-to-end (small scales, exact bytes/inode +
#      bytes/client accounting via the counting allocator).
#  12. alloc-stats feature build: the counting-allocator feature must
#      keep compiling in release mode (it is off by default, so only
#      this step catches bit-rot).
#  13. bootstrap budget regression: the streaming tree loader must keep
#      loading fresh trees at >=500k inodes/sec and stay at least as
#      dense per inode as insert+repack (crates/bench/tests/
#      bootstrap_budget.rs, release + alloc-stats).
#  14. store engine bench smoke: bench_store --smoke runs the arena B+
#      tree vs std-BTreeMap microbench at small scales (liveness; the
#      full-scale numbers live in results/BENCH_store.json). The engine's
#      observational equivalence is pinned by the differential proptests
#      in crates/store/tests/engine_differential.rs, which run as part of
#      tier-1 `cargo test`.
#  15. per-op allocation regression: lean reads (point gets + visitor
#      scans) against a 250k-inode tree must make zero heap allocations
#      (crates/bench/tests/alloc_per_op.rs, release + alloc-stats).
#  16. LSM crash/replay differential: the lambda-lsm proptests (random
#      put/delete/flush interleavings crashed at arbitrary points; WAL
#      replay must reconstruct the exact pre-crash visible state) run
#      explicitly in release mode.
#  17. durable chaos smoke: fig15b_chaos --smoke --durable re-runs every
#      fault class on the WAL-backed durable store backend — shard
#      failovers recover by WAL replay, and the audit adds the
#      post-crash shadow↔table consistency check.
#  18. durability sweep smoke: fig15c_durability --smoke runs the
#      flush-interval x crash-rate grid (recovery time, write
#      amplification, lost-window aborts) and exits nonzero on any
#      audit failure. Full-scale numbers: results/BENCH_durability.json.
#
# The smoke benches write results/BENCH_*_smoke.json and are
# informational at that scale; the recorded full-size numbers live in
# results/BENCH_kernel.json, results/BENCH_metadata.json, and
# results/BENCH_faas.json (regenerate with `bench_kernel --scale=25` /
# `bench_metadata` / `bench_faas`).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: cargo build --release =="
cargo build --release --offline
# The workspace build does not cover the bench crate's binaries; the smoke
# steps below need these.
cargo build --release --offline -p lambda-bench --bin bench_kernel
cargo build --release --offline -p lambda-bench --bin bench_metadata
cargo build --release --offline -p lambda-bench --bin bench_faas
cargo build --release --offline -p lambda-bench --bin fig10_latency_cdfs
cargo build --release --offline -p lambda-bench --bin fig15_fault_tolerance
cargo build --release --offline -p lambda-bench --bin fig15b_chaos
cargo build --release --offline -p lambda-bench --bin bench_parallel
cargo build --release --offline -p lambda-bench --bin fig08d_million_scale --features alloc-stats
cargo build --release --offline -p lambda-bench --bin bench_store
cargo build --release --offline -p lambda-bench --bin fig15c_durability

echo "== tier-1: cargo test -q =="
cargo test -q --offline

echo "== lint: cargo clippy (deny warnings) =="
cargo clippy --workspace --offline -- -D warnings

echo "== kernel bench smoke =="
./target/release/bench_kernel --smoke

echo "== metadata bench smoke =="
./target/release/bench_metadata --smoke

echo "== faas bench smoke =="
./target/release/bench_faas --smoke

echo "== fig10 golden check (byte-identical modulo wall-clock) =="
./target/release/fig10_latency_cdfs > results/fig10_latency_cdfs.txt
diff <(grep -v wall-clock results/golden/fig10_latency_cdfs.txt) \
     <(grep -v wall-clock results/fig10_latency_cdfs.txt)
echo "fig10 output matches the golden capture"

echo "== fig15 golden check (fault plane off => byte-identical) =="
./target/release/fig15_fault_tolerance > results/fig15_fault_tolerance.txt
diff <(grep -v wall-clock results/golden/fig15_fault_tolerance.txt) \
     <(grep -v wall-clock results/fig15_fault_tolerance.txt)
echo "fig15 output matches the golden capture"

echo "== chaos smoke (fault classes + invariant audits) =="
./target/release/fig15b_chaos --smoke

echo "== parallel DES smoke (N=1..8 fingerprints must match) =="
./target/release/bench_parallel --smoke

echo "== fig10 golden check at --threads=4 =="
./target/release/fig10_latency_cdfs --threads=4 > results/fig10_latency_cdfs_t4.txt
diff <(grep -v wall-clock results/golden/fig10_latency_cdfs.txt) \
     <(grep -v wall-clock results/fig10_latency_cdfs_t4.txt)
rm -f results/fig10_latency_cdfs_t4.txt
echo "fig10 output matches the golden capture at 4 threads"

echo "== memory sweep smoke (fig08d, counting allocator, phase timings) =="
./target/release/fig08d_million_scale --smoke --phase-timings

echo "== memory budget regression (bytes/inode at scale 25) =="
cargo test -q --release --offline -p lambda-bench --features alloc-stats --test mem_budget

echo "== bootstrap budget regression (throughput floor + bulk density) =="
cargo test -q --release --offline -p lambda-bench --features alloc-stats --test bootstrap_budget

echo "== store engine bench smoke (arena B+ tree vs std BTreeMap) =="
./target/release/bench_store --smoke

echo "== per-op allocation regression (lean reads allocate zero) =="
cargo test -q --release --offline -p lambda-bench --features alloc-stats --test alloc_per_op

echo "== LSM crash/replay differential proptests =="
cargo test -q --release --offline -p lambda-lsm --test crash_replay

echo "== durable chaos smoke (WAL replay recovery + shadow check) =="
./target/release/fig15b_chaos --smoke --durable

echo "== durability sweep smoke (flush interval x crash rate) =="
./target/release/fig15c_durability --smoke

echo "verify.sh: all checks passed"
