//! The pluggable-Coordinator trade-off (paper §3.5): λFS supports both a
//! dedicated ZooKeeper ensemble and MySQL Cluster NDB's event API as its
//! Coordinator. NDB means one fewer service to operate — but coherence
//! traffic then rides the metadata store itself, paying epoch-batched
//! event latency and competing with transactions for shard capacity.
//! This example runs the same write-heavy workload under both and prints
//! what the choice costs.
//!
//! ```sh
//! cargo run --release --example coordinator_tradeoff
//! ```

use lambdafs_repro::coord::CoordinatorKind;
use lambdafs_repro::fs::{DfsService, LambdaFs, LambdaFsConfig};
use lambdafs_repro::namespace::{DfsPath, FsOp, OpClass};
use lambdafs_repro::sim::{Sim, SimDuration};
use std::cell::RefCell;
use std::rc::Rc;

const CLIENTS: u32 = 64;
const OPS_PER_CLIENT: usize = 200;

fn drive(kind: CoordinatorKind) -> (f64, f64, f64, u64) {
    let mut sim = Sim::new(11);
    let fs = Rc::new(LambdaFs::build(
        &mut sim,
        LambdaFsConfig {
            deployments: 4,
            cluster_vcpus: 64,
            clients: CLIENTS,
            client_vms: 4,
            coordinator: kind,
            ..Default::default()
        },
    ));
    fs.start(&mut sim);
    let dirs = fs.bootstrap_tree(&DfsPath::root(), 16, 4);
    fs.prewarm_with(&mut sim, &dirs);
    sim.run_for(SimDuration::from_secs(8));

    // Write-heavy closed loop (one outstanding create per client):
    // creates force an INV/ACK coherence round per operation — the
    // traffic whose transport we are comparing.
    let started = sim.now();
    let remaining = Rc::new(RefCell::new(vec![OPS_PER_CLIENT; CLIENTS as usize]));
    fn next(
        sim: &mut Sim,
        fs: &Rc<LambdaFs>,
        dirs: &Rc<Vec<DfsPath>>,
        remaining: &Rc<RefCell<Vec<usize>>>,
        client: usize,
    ) {
        let left = {
            let mut r = remaining.borrow_mut();
            if r[client] == 0 {
                return;
            }
            r[client] -= 1;
            r[client]
        };
        let i = OPS_PER_CLIENT - left - 1;
        let dir = &dirs[(client + i) % dirs.len()];
        let path = dir.join(&format!("c{client}_f{i:04}")).expect("valid");
        let (fs2, dirs2, rem2) = (Rc::clone(fs), Rc::clone(dirs), Rc::clone(remaining));
        fs.submit(
            sim,
            client,
            FsOp::CreateFile(path),
            Box::new(move |sim, _res| next(sim, &fs2, &dirs2, &rem2, client)),
        );
    }
    let dirs = Rc::new(dirs);
    for client in 0..CLIENTS as usize {
        next(&mut sim, &fs, &dirs, &remaining, client);
    }
    let deadline = sim.now() + SimDuration::from_secs(600);
    while remaining.borrow().iter().any(|r| *r > 0) && sim.now() < deadline {
        if !sim.step() {
            break;
        }
    }
    let elapsed = sim.now().saturating_since(started).as_secs_f64();
    fs.stop(&mut sim);

    let metrics = fs.run_metrics();
    let mut m = metrics.borrow_mut();
    let p50 = m
        .latency
        .get_mut(&OpClass::Create)
        .map(|r| r.percentile(0.5).as_millis_f64())
        .unwrap_or(0.0);
    let total = (CLIENTS as usize * OPS_PER_CLIENT) as f64;
    (total / elapsed.max(1e-9), p50, fs.pay_meter().total(), fs.coordinator().store_ops())
}

fn main() {
    println!("write-heavy workload ({CLIENTS} clients x {OPS_PER_CLIENT} creates)\n");
    println!(
        "{:<22} {:>12} {:>12} {:>10} {:>16}",
        "coordinator", "creates/s", "create p50", "cost", "store ops (coord)"
    );
    for (label, kind) in
        [("ZooKeeper", CoordinatorKind::ZooKeeper), ("NDB event API", CoordinatorKind::Ndb)]
    {
        let (tp, p50, cost, store_ops) = drive(kind);
        println!("{label:<22} {tp:>12.0} {p50:>10.2}ms ${cost:>8.4} {store_ops:>16}");
    }
    println!(
        "\nZooKeeper keeps coherence rounds off the metadata store; NDB trades \
         \nlatency and shard capacity for one fewer service to operate (§3.5)."
    );
}
