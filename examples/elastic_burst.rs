//! Elastic scaling under a bursty industrial workload — the scenario the
//! paper's introduction motivates: a DFS metadata service whose load
//! spikes 7× without warning.
//!
//! Runs a scaled-down Spotify-style workload against λFS and prints the
//! offered load, achieved throughput, and active-NameNode count per
//! second: watch the platform scale out at the bursts and back in after.
//!
//! ```sh
//! cargo run --release --example elastic_burst
//! ```

use lambdafs_repro::fs::{DfsService, LambdaFs, LambdaFsConfig};
use lambdafs_repro::sim::params::StoreParams;
use lambdafs_repro::sim::{every, Sim, SimDuration};
use lambdafs_repro::workload::{run_spotify, SpotifyConfig};
use std::cell::RefCell;
use std::rc::Rc;

fn main() {
    let mut sim = Sim::new(7);
    let scale = 10.0; // 1/10 of the paper's 25k ops/sec experiment
    let fs = Rc::new(LambdaFs::build(
        &mut sim,
        LambdaFsConfig {
            deployments: 10,
            cluster_vcpus: 64,
            clients: 102,
            client_vms: 8,
            store: StoreParams::default().slowed(scale),
            ..Default::default()
        },
    ));
    fs.start(&mut sim);

    let spotify = SpotifyConfig {
        base_throughput: 25_000.0 / scale,
        duration: SimDuration::from_secs(120),
        dirs: 205,
        files_per_dir: 48,
        ..Default::default()
    };
    let dirs = fs.bootstrap_tree(&"/".parse().unwrap(), spotify.dirs, spotify.files_per_dir);
    fs.prewarm_with(&mut sim, &dirs);
    sim.run_for(SimDuration::from_secs(8));
    println!("warm start: {} NameNodes active", fs.active_namenodes());

    // Sample the NameNode count each second while the workload runs.
    let nn_series = Rc::new(RefCell::new(Vec::new()));
    let sink = Rc::clone(&nn_series);
    let fs2 = Rc::clone(&fs);
    let horizon = sim.now() + SimDuration::from_secs(200);
    let start_at = sim.now();
    every(&mut sim, start_at, SimDuration::from_secs(1), move |sim| {
        sink.borrow_mut().push(fs2.active_namenodes() as f64);
        sim.now() < horizon
    });

    let run = run_spotify(&mut sim, Rc::clone(&fs), spotify);
    fs.stop(&mut sim);

    let metrics = fs.run_metrics();
    let m = metrics.borrow();
    let offered = run.offered.buckets();
    let achieved = m.throughput.buckets();
    let nns = nn_series.borrow();
    println!("\n{:>5}  {:>9}  {:>9}  {:>4}", "t(s)", "offered", "achieved", "NNs");
    for t in (0..offered.len()).step_by(5) {
        println!(
            "{:>5}  {:>9.0}  {:>9.0}  {:>4.0}",
            t,
            offered.get(t).copied().unwrap_or(0.0),
            achieved.get(t).copied().unwrap_or(0.0),
            nns.get(t).copied().unwrap_or(0.0),
        );
    }
    println!("\nburst targets drawn from Pareto(α=2): {:?}", run.targets.iter().map(|t| *t as u64).collect::<Vec<_>>());
    println!("completed {}/{} ops, mean latency {}", m.completed, run.generated, m.mean_latency());
    println!("pay-per-use cost: ${:.4} (vs ${:.4} under the provisioned model)",
        fs.pay_meter().total(), fs.simplified_meter().total());
}
