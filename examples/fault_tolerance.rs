//! Fault tolerance: kill active NameNodes while clients keep issuing
//! operations (paper §5.6). Clients resubmit transparently; crashed
//! NameNodes' Coordinator sessions expire, in-flight coherence rounds
//! stop waiting for them, and the namespace stays consistent.
//!
//! ```sh
//! cargo run --release --example fault_tolerance
//! ```

use lambdafs_repro::fs::{DfsService, LambdaFs, LambdaFsConfig};
use lambdafs_repro::namespace::FsOp;
use lambdafs_repro::sim::{Sim, SimDuration, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

fn main() {
    let mut sim = Sim::new(13);
    let fs = Rc::new(LambdaFs::build(
        &mut sim,
        LambdaFsConfig { deployments: 6, clients: 12, client_vms: 3, ..Default::default() },
    ));
    fs.start(&mut sim);
    let dirs = fs.bootstrap_tree(&"/".parse().unwrap(), 24, 8);
    fs.prewarm_with(&mut sim, &dirs);
    sim.run_for(SimDuration::from_secs(8));

    let completed = Rc::new(RefCell::new(0u32));
    let failed = Rc::new(RefCell::new(0u32));
    let mut kills = 0u32;

    for i in 0..120u32 {
        // A mixed stream: creates and reads against the pre-built tree.
        let dir = &dirs[i as usize % dirs.len()];
        let op = if i % 3 == 0 {
            FsOp::CreateFile(dir.join(&format!("crash-test-{i}")).unwrap())
        } else {
            FsOp::ReadFile(dir.join(&format!("file{:05}", i % 8)).unwrap())
        };
        let c = Rc::clone(&completed);
        let f = Rc::clone(&failed);
        fs.submit(&mut sim, (i % 12) as usize, op, Box::new(move |_s, r| {
            if r.is_ok() {
                *c.borrow_mut() += 1;
            } else {
                *f.borrow_mut() += 1;
            }
        }));
        // Every 15 ops, murder a NameNode (round-robin over deployments).
        if i % 15 == 7 {
            for k in 0..6u32 {
                if let Some(victim) = fs.kill_one_namenode(&mut sim, (i + k) % 6) {
                    kills += 1;
                    println!("t={:>7}: killed {victim}", sim.now().to_string());
                    break;
                }
            }
        }
        sim.run_for(SimDuration::from_millis(250));
    }
    // Let retries and session expirations settle.
    sim.run_until(SimTime::from_secs(120));
    fs.stop(&mut sim);

    println!("\nkilled {kills} NameNodes mid-run");
    println!("operations: {} ok, {} failed", completed.borrow(), failed.borrow());
    println!("platform: {:?}", fs.platform().stats());
    let problems = fs.check_consistency();
    println!("namespace consistent after the carnage: {}", problems.is_empty());
    for p in &problems {
        println!("  violation: {p}");
    }
    assert!(problems.is_empty());
    assert!(*completed.borrow() >= 110, "too many operations lost");
}
