//! Subtree operations: recursive `mv` and `delete` over a directory tree,
//! exercising the three-phase subtree protocol with prefix invalidation
//! and serverless batch offloading (paper Appendix D).
//!
//! ```sh
//! cargo run --release --example subtree_ops
//! ```

use lambdafs_repro::fs::{DfsService, LambdaFs, LambdaFsConfig};
use lambdafs_repro::namespace::{FsOp, OpOutcome};
use lambdafs_repro::sim::{Sim, SimDuration};
use std::cell::RefCell;
use std::rc::Rc;

fn run_op(sim: &mut Sim, fs: &LambdaFs, op: FsOp) -> OpOutcome {
    let slot = Rc::new(RefCell::new(None));
    let out = Rc::clone(&slot);
    fs.submit(sim, 0, op, Box::new(move |_sim, r| *out.borrow_mut() = Some(r)));
    while slot.borrow().is_none() {
        assert!(sim.step(), "drained early");
    }
    let r = slot.borrow_mut().take().expect("completed");
    r.expect("operation failed")
}

fn main() {
    let mut sim = Sim::new(99);
    let fs = LambdaFs::build(
        &mut sim,
        LambdaFsConfig {
            deployments: 6,
            clients: 4,
            client_vms: 2,
            // Subtree ops outlive normal request timeouts.
            client_timeout: SimDuration::from_secs(600),
            straggler_threshold: f64::INFINITY,
            ..Default::default()
        },
    );
    fs.start(&mut sim);

    // Bulk-load a project tree: /proj with 64 directories x 32 files.
    let dirs = fs.bootstrap_tree(&"/proj".parse().unwrap(), 64, 32);
    fs.prewarm_with(&mut sim, &dirs);
    sim.run_for(SimDuration::from_secs(8));
    println!("loaded {} inodes", fs.schema().inode_count(fs.db()));

    // Recursive move: /proj -> /archive (one relink + quiesce + prefix INV).
    let t0 = sim.now();
    let moved = run_op(&mut sim, &fs, FsOp::Mv("/proj".parse().unwrap(), "/archive".parse().unwrap()));
    println!(
        "mv /proj /archive: {moved:?} in {}",
        sim.now().saturating_since(t0)
    );

    // The tree is reachable at its new path...
    let meta = run_op(&mut sim, &fs, FsOp::Stat("/archive/dir00032/file00007".parse().unwrap()));
    println!("stat under the new root: {meta:?}");

    // ... and a recursive delete removes every inode, leaf-first.
    let t0 = sim.now();
    let deleted = run_op(&mut sim, &fs, FsOp::Delete("/archive".parse().unwrap()));
    println!(
        "rm -rf /archive: {deleted:?} in {}",
        sim.now().saturating_since(t0)
    );

    println!("inodes remaining: {}", fs.schema().inode_count(fs.db()));
    assert_eq!(fs.schema().inode_count(fs.db()), 1, "only the root should remain");
    assert!(fs.check_consistency().is_empty());
    assert_eq!(fs.db().table_len(fs.schema().subtree_locks), 0, "subtree lock released");
    fs.stop(&mut sim);
    println!("namespace consistent, subtree locks released.");
}
