//! Quickstart: build a λFS system, run the full metadata-operation
//! lifecycle through it, and print what happened.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use lambdafs_repro::fs::{LambdaFs, LambdaFsConfig};
use lambdafs_repro::namespace::{FsOp, OpOutcome};
use lambdafs_repro::sim::{Sim, SimDuration};
use std::cell::RefCell;
use std::rc::Rc;

/// Submits one operation and runs the simulation until it completes.
fn run_op(sim: &mut Sim, fs: &LambdaFs, client: usize, op: FsOp) -> OpOutcome {
    let label = format!("{op:?}");
    let slot = Rc::new(RefCell::new(None));
    let out = Rc::clone(&slot);
    let t0 = sim.now();
    fs.submit(sim, client, op, Box::new(move |_sim, r| *out.borrow_mut() = Some(r)));
    while slot.borrow().is_none() {
        assert!(sim.step(), "simulation drained before the op completed");
    }
    let result = slot.borrow_mut().take().expect("completed");
    let outcome = result.expect("operation failed");
    println!("  {label:<70} -> {:>9} [{outcome:?}]", sim.now().saturating_since(t0).to_string());
    outcome
}

fn main() {
    // A deterministic simulation: same seed, same run, every time.
    let mut sim = Sim::new(2023);

    // λFS with 6 NameNode deployments on a 64-vCPU FaaS cluster.
    let fs = LambdaFs::build(
        &mut sim,
        LambdaFsConfig { deployments: 6, clients: 8, client_vms: 2, ..Default::default() },
    );
    fs.start(&mut sim);
    println!("built λFS: {} deployments, {} clients", fs.config().deployments, 8);

    println!("\nmetadata operations (first ops pay HTTP + cold-start; later ops ride TCP):");
    run_op(&mut sim, &fs, 0, FsOp::Mkdir("/users".parse().unwrap()));
    run_op(&mut sim, &fs, 1, FsOp::Mkdir("/users/ada".parse().unwrap()));
    run_op(&mut sim, &fs, 2, FsOp::CreateFile("/users/ada/notes.txt".parse().unwrap()));
    run_op(&mut sim, &fs, 3, FsOp::Stat("/users/ada/notes.txt".parse().unwrap()));
    // This read is served entirely from a NameNode's cache trie: ~1-2ms.
    run_op(&mut sim, &fs, 3, FsOp::ReadFile("/users/ada/notes.txt".parse().unwrap()));
    run_op(&mut sim, &fs, 4, FsOp::Ls("/users/ada".parse().unwrap()));
    run_op(
        &mut sim,
        &fs,
        5,
        FsOp::Mv("/users/ada/notes.txt".parse().unwrap(), "/users/ada/ideas.txt".parse().unwrap()),
    );
    run_op(&mut sim, &fs, 6, FsOp::Delete("/users/ada/ideas.txt".parse().unwrap()));

    // Let background maintenance settle, then stop it so the queue drains.
    sim.run_for(SimDuration::from_secs(5));
    fs.stop(&mut sim);

    let metrics = fs.metrics();
    let m = metrics.borrow();
    println!("\nrun summary:");
    println!("  operations completed : {}", m.completed);
    println!("  TCP RPCs             : {}", m.tcp_rpcs);
    println!("  HTTP invocations     : {}", m.http_rpcs);
    println!("  active NameNodes     : {}", fs.active_namenodes());
    println!("  pay-per-use cost     : ${:.6}", fs.pay_meter().total());
    let problems = fs.check_consistency();
    println!("  namespace consistent : {}", problems.is_empty());
    assert!(problems.is_empty());
}
