//! Head-to-head: the same workload driven through λFS, HopsFS,
//! HopsFS+Cache, and the CephFS-style MDS — the four architectures the
//! paper contrasts — using the shared `DfsService` driver interface.
//!
//! ```sh
//! cargo run --release --example compare_systems
//! ```

use lambdafs_repro::baselines::{CephFs, CephFsConfig, HopsFs, HopsFsConfig};
use lambdafs_repro::fs::{DfsService, LambdaFs, LambdaFsConfig};
use lambdafs_repro::namespace::OpClass;
use lambdafs_repro::sim::params::StoreParams;
use lambdafs_repro::sim::{Sim, SimDuration};
use lambdafs_repro::workload::{run_micro, MicroConfig};
use std::rc::Rc;

/// Shrink factor: the store's capacity is scaled down with the cluster so
/// the compute-to-store ratio matches the paper's testbed.
const SCALE: f64 = 8.0;
const CLIENTS: u32 = 256;

fn drive<S: DfsService + 'static>(sim: &mut Sim, svc: Rc<S>) -> (String, f64, f64) {
    let cfg = MicroConfig {
        op: OpClass::Read,
        ops_per_client: 400,
        dirs: 32,
        files_per_dir: 16,
        ..Default::default()
    };
    let run = run_micro(sim, Rc::clone(&svc), cfg);
    let metrics = svc.run_metrics();
    let mut m = metrics.borrow_mut();
    let p50 = m
        .latency
        .get_mut(&OpClass::Read)
        .map(|r| r.percentile(0.5).as_millis_f64())
        .unwrap_or(0.0);
    (svc.service_name().to_string(), run.throughput, p50)
}

fn main() {
    let mut rows = Vec::new();

    {
        let mut sim = Sim::new(3);
        let fs = Rc::new(LambdaFs::build(
            &mut sim,
            LambdaFsConfig {
                deployments: 8,
                cluster_vcpus: 128,
                clients: CLIENTS,
                store: StoreParams::default().slowed(SCALE),
                ..Default::default()
            },
        ));
        fs.start(&mut sim);
        let dirs = fs.bootstrap_tree(&"/".parse().unwrap(), 32, 16);
        fs.prewarm_with(&mut sim, &dirs);
        sim.run_for(SimDuration::from_secs(8));
        rows.push(drive(&mut sim, Rc::clone(&fs)));
        fs.stop(&mut sim);
    }
    {
        let mut sim = Sim::new(3);
        let mut cfg = HopsFsConfig::vanilla(128, CLIENTS);
        cfg.store = StoreParams::default().slowed(SCALE);
        let fs = Rc::new(HopsFs::build(&mut sim, cfg));
        fs.start(&mut sim);
        rows.push(drive(&mut sim, Rc::clone(&fs)));
        fs.stop(&mut sim);
    }
    {
        let mut sim = Sim::new(3);
        let mut cfg = HopsFsConfig::with_cache(128, CLIENTS);
        cfg.store = StoreParams::default().slowed(SCALE);
        let fs = Rc::new(HopsFs::build(&mut sim, cfg));
        fs.start(&mut sim);
        rows.push(drive(&mut sim, Rc::clone(&fs)));
        fs.stop(&mut sim);
    }
    {
        let mut sim = Sim::new(3);
        let fs = Rc::new(CephFs::build(&mut sim, CephFsConfig::sized(128, CLIENTS)));
        fs.start(&mut sim);
        rows.push(drive(&mut sim, Rc::clone(&fs)));
        fs.stop(&mut sim);
    }

    println!("{:<20} {:>14} {:>12}", "system", "read ops/sec", "read p50");
    for (name, tp, p50) in &rows {
        println!("{name:<20} {tp:>14.0} {p50:>10.2}ms");
    }
    // The architectural ordering the paper's figures show: caching systems
    // far above stateless HopsFS for reads.
    let lambda = rows[0].1;
    let hops = rows[1].1;
    assert!(lambda > 2.0 * hops, "λFS should dominate stateless HopsFS on reads");
}
