//! Model-based property test: the Coordinator's session/group/KV state
//! machine against a flat reference model, driven by random operation
//! sequences over both transports (ZooKeeper-style and NDB event API).

use std::collections::{BTreeMap, BTreeSet};

use lambda_coord::{Coordinator, SessionId};
use lambda_sim::params::{NetParams, StoreParams};
use lambda_sim::{Sim, SimDuration, Station};
use proptest::prelude::*;

const GROUPS: [&str; 3] = ["nn-deployment-0", "nn-deployment-1", "nn-all"];
const KEYS: [&str; 3] = ["/locks/a", "/locks/b", "/config/x"];

#[derive(Debug, Clone)]
enum Op {
    Create,
    Close(usize),
    Join(usize, usize),
    Leave(usize, usize),
    SetEphemeral(usize, usize),
    SetPersistent(usize),
    Delete(usize),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            Just(Op::Create),
            (0..8usize).prop_map(Op::Close),
            (0..8usize, 0..GROUPS.len()).prop_map(|(s, g)| Op::Join(s, g)),
            (0..8usize, 0..GROUPS.len()).prop_map(|(s, g)| Op::Leave(s, g)),
            (0..8usize, 0..KEYS.len()).prop_map(|(s, k)| Op::SetEphemeral(s, k)),
            (0..KEYS.len()).prop_map(Op::SetPersistent),
            (0..KEYS.len()).prop_map(Op::Delete),
        ],
        1..60,
    )
}

/// Reference model: sessions with their groups and ephemeral keys.
#[derive(Default)]
struct Model {
    alive: BTreeSet<SessionId>,
    groups: BTreeMap<&'static str, Vec<SessionId>>,
    /// key → ephemeral owner (None = persistent).
    kv: BTreeMap<&'static str, Option<SessionId>>,
}

impl Model {
    fn close(&mut self, s: SessionId) {
        self.alive.remove(&s);
        for members in self.groups.values_mut() {
            members.retain(|m| *m != s);
        }
        self.kv.retain(|_, owner| *owner != Some(s));
    }
}

fn check_model<M: Clone + 'static>(coord: &Coordinator<M>, model: &Model) {
    for group in GROUPS {
        let members = coord.members(group);
        let expect = model.groups.get(group).cloned().unwrap_or_default();
        assert_eq!(members, expect, "membership of {group} diverged");
        // The leader is the longest-lived (minimum-id) member.
        assert_eq!(coord.leader(group), expect.iter().min().copied());
    }
    for key in KEYS {
        assert_eq!(
            coord.get_data(key).is_some(),
            model.kv.contains_key(key),
            "presence of {key} diverged"
        );
    }
}

fn drive<M: Clone + 'static>(coord: Coordinator<M>, ops: Vec<Op>) {
    let mut sim = Sim::new(99);
    let mut sessions: Vec<SessionId> = Vec::new();
    let mut model = Model::default();
    for op in ops {
        match op {
            Op::Create => {
                let s = coord.create_session(&mut sim);
                sessions.push(s);
                model.alive.insert(s);
            }
            Op::Close(i) if !sessions.is_empty() => {
                let s = sessions[i % sessions.len()];
                coord.close_session(&mut sim, s);
                model.close(s);
            }
            Op::Join(i, g) if !sessions.is_empty() => {
                let s = sessions[i % sessions.len()];
                coord.join_group(&mut sim, s, GROUPS[g]);
                if model.alive.contains(&s) {
                    let members = model.groups.entry(GROUPS[g]).or_default();
                    if !members.contains(&s) {
                        members.push(s);
                    }
                }
            }
            Op::Leave(i, g) if !sessions.is_empty() => {
                let s = sessions[i % sessions.len()];
                coord.leave_group(&mut sim, s, GROUPS[g]);
                if let Some(members) = model.groups.get_mut(GROUPS[g]) {
                    members.retain(|m| *m != s);
                }
            }
            Op::SetEphemeral(i, k) if !sessions.is_empty() => {
                let s = sessions[i % sessions.len()];
                coord.set_data(&mut sim, KEYS[k], b"v".to_vec(), Some(s));
                if model.alive.contains(&s) {
                    model.kv.insert(KEYS[k], Some(s));
                }
            }
            Op::SetPersistent(k) => {
                coord.set_data(&mut sim, KEYS[k], b"v".to_vec(), None);
                model.kv.insert(KEYS[k], None);
            }
            Op::Delete(k) => {
                coord.delete_data(&mut sim, KEYS[k]);
                model.kv.remove(KEYS[k]);
            }
            _ => {} // op on an empty session list
        }
        // Heartbeat everyone alive so timeouts never interfere, then let
        // in-flight notifications and store charges drain — bounded, so
        // the 60 s expiry timers never fire (`sim.run()` would drain all
        // the way to them).
        let live: Vec<SessionId> = model.alive.iter().copied().collect();
        for s in live {
            coord.heartbeat(&mut sim, s);
        }
        sim.run_for(SimDuration::from_secs(1));
        check_model(&coord, &model);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn zookeeper_transport_matches_the_model(ops in ops()) {
        let coord: Coordinator<String> =
            Coordinator::new(&NetParams::default(), SimDuration::from_secs(60));
        drive(coord, ops);
    }

    #[test]
    fn ndb_transport_matches_the_model(ops in ops()) {
        let shards: Vec<_> =
            (0..4).map(|i| Station::new(format!("ndb-{i}"), 10)).collect();
        let coord: Coordinator<String> = Coordinator::over_ndb(
            shards,
            &StoreParams::default(),
            SimDuration::from_millis(10),
            SimDuration::from_secs(60),
        );
        drive(coord, ops);
    }
}
