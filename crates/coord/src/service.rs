//! Coordinator implementation: sessions, groups, watches, messaging, KV.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::rc::Rc;

use lambda_sim::params::{NetParams, StoreParams};
use lambda_sim::{Dist, Sim, SimDuration, SimTime, Station, StationRef};

/// Identifies one coordinator session (≈ one connected process).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SessionId(u64);

impl SessionId {
    /// The raw session number (used as a compact holder tag in persisted
    /// lock rows).
    #[must_use]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Rebuilds a session id from its raw number.
    #[must_use]
    pub const fn from_raw(raw: u64) -> Self {
        SessionId(raw)
    }
}

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "session#{}", self.0)
    }
}

/// Which Coordinator implementation a λFS deployment runs (paper §3.5:
/// the Coordinator is pluggable, with ZooKeeper and MySQL Cluster NDB
/// supported). Selects between [`Coordinator::new`] and
/// [`Coordinator::over_ndb`] at system build time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CoordinatorKind {
    /// A dedicated ZooKeeper ensemble (the evaluation's configuration).
    #[default]
    ZooKeeper,
    /// MySQL Cluster NDB's event API: no extra service to run, but
    /// coordination traffic shares the metadata store's shards and pays
    /// epoch-batched event latency.
    Ndb,
}

/// A membership change in a watched group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupEvent {
    /// A session joined the group.
    Joined(SessionId),
    /// A session left the group (gracefully or by expiry).
    Left(SessionId),
}

/// A persistent group watch callback.
pub type GroupWatch = Rc<dyn Fn(&mut Sim, GroupEvent)>;

/// A registered message handler for one session.
pub type Inbox<M> = Box<dyn FnMut(&mut Sim, M)>;

struct SessionState {
    expires_at: SimTime,
    groups: Vec<String>,
    ephemeral_keys: Vec<String>,
}

/// How coordinator traffic reaches its recipients.
///
/// λFS's Coordinator is pluggable (paper §3.5): the default deployment
/// runs ZooKeeper, but "λFS currently supports both ZooKeeper and MySQL
/// Cluster NDB" — the latter implements watches and member-to-member
/// messages over NDB's event API, so coordination traffic *shares the
/// metadata store's capacity* and pays its epoch-batched event latency.
enum Transport {
    /// ZooKeeper-style dedicated ensemble: point-to-point hops sampled
    /// from `coord_one_way`, no interaction with the metadata store.
    InMemory { one_way: Dist },
    /// NDB event API: a message is a row write on the recipient's shard,
    /// delivered at the next event epoch, then read back by the
    /// subscriber. Every leg occupies real shard capacity.
    Ndb { shards: Vec<StationRef>, row_write: Dist, pk_read: Dist, epoch: SimDuration },
}

struct CoordInner<M> {
    next_session: u64,
    session_timeout: SimDuration,
    transport: Transport,
    sessions: HashMap<SessionId, SessionState>,
    /// Group → members in join order.
    groups: BTreeMap<String, Vec<SessionId>>,
    watches: HashMap<String, Vec<GroupWatch>>,
    inboxes: HashMap<SessionId, Inbox<M>>,
    kv: BTreeMap<String, (Vec<u8>, Option<SessionId>)>,
    messages_delivered: u64,
    messages_dropped: u64,
    /// Store operations charged by the NDB transport (0 for ZooKeeper).
    store_ops: u64,
}

/// A shared handle to the coordination service, generic over the message
/// type `M` exchanged between members (λFS uses its coherence-protocol
/// message enum).
///
/// See the crate docs for the role this plays in the reproduced system and
/// the crate tests for usage examples of every primitive.
pub struct Coordinator<M> {
    inner: Rc<RefCell<CoordInner<M>>>,
}

impl<M> Clone for Coordinator<M> {
    fn clone(&self) -> Self {
        Coordinator { inner: Rc::clone(&self.inner) }
    }
}

impl<M> fmt::Debug for Coordinator<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("Coordinator")
            .field("sessions", &inner.sessions.len())
            .field("groups", &inner.groups.len())
            .finish()
    }
}

impl<M: Clone + 'static> Coordinator<M> {
    /// Creates a coordinator whose RPC latency comes from
    /// `net.coord_one_way` and whose sessions expire after
    /// `session_timeout` without a heartbeat.
    #[must_use]
    pub fn new(net: &NetParams, session_timeout: SimDuration) -> Self {
        Self::with_transport(
            Transport::InMemory { one_way: net.coord_one_way },
            session_timeout,
        )
    }

    /// Creates a coordinator backed by MySQL Cluster NDB's event API (the
    /// paper's alternative Coordinator, §3.5): watches and messages ride
    /// the metadata store's own shards (`shards`, priced by `store`) and
    /// are batched into event epochs of `epoch`. Compared to ZooKeeper
    /// this adds epoch latency to every coherence round *and* steals
    /// capacity from metadata transactions — the trade the `ablation_knobs`
    /// bench quantifies.
    #[must_use]
    pub fn over_ndb(
        shards: Vec<StationRef>,
        store: &StoreParams,
        epoch: SimDuration,
        session_timeout: SimDuration,
    ) -> Self {
        assert!(!shards.is_empty(), "NDB transport needs at least one shard");
        Self::with_transport(
            Transport::Ndb {
                shards,
                row_write: store.row_write,
                pk_read: store.pk_read,
                epoch,
            },
            session_timeout,
        )
    }

    fn with_transport(transport: Transport, session_timeout: SimDuration) -> Self {
        Coordinator {
            inner: Rc::new(RefCell::new(CoordInner {
                next_session: 0,
                session_timeout,
                transport,
                sessions: HashMap::new(),
                groups: BTreeMap::new(),
                watches: HashMap::new(),
                inboxes: HashMap::new(),
                kv: BTreeMap::new(),
                messages_delivered: 0,
                messages_dropped: 0,
                store_ops: 0,
            })),
        }
    }

    /// Store operations the NDB transport has charged against the
    /// metadata store's shards (always 0 under ZooKeeper).
    #[must_use]
    pub fn store_ops(&self) -> u64 {
        self.inner.borrow().store_ops
    }

    /// Occupies the shard that owns `salt`'s row for one store operation
    /// of `service` length, then runs `then`.
    fn charge_shard<F: FnOnce(&mut Sim) + 'static>(
        &self,
        sim: &mut Sim,
        salt: u64,
        service: SimDuration,
        then: F,
    ) {
        let shard = {
            let mut inner = self.inner.borrow_mut();
            inner.store_ops += 1;
            let Transport::Ndb { shards, .. } = &inner.transport else {
                unreachable!("charge_shard is only called by the NDB transport")
            };
            Rc::clone(&shards[(salt % shards.len() as u64) as usize])
        };
        Station::submit(&shard, sim, service, then);
    }

    /// The delay until the next NDB event epoch flushes, jittered.
    fn epoch_delay(sim: &mut Sim, epoch: SimDuration) -> SimDuration {
        SimDuration::from_secs_f64(epoch.as_secs_f64() * sim.rng().gen_range(0.5..1.5))
    }

    /// Messages delivered and dropped so far.
    #[must_use]
    pub fn message_stats(&self) -> (u64, u64) {
        let inner = self.inner.borrow();
        (inner.messages_delivered, inner.messages_dropped)
    }

    /// Opens a session and arms its expiry timer.
    pub fn create_session(&self, sim: &mut Sim) -> SessionId {
        let (id, timeout) = {
            let mut inner = self.inner.borrow_mut();
            inner.next_session += 1;
            let id = SessionId(inner.next_session);
            let timeout = inner.session_timeout;
            inner.sessions.insert(
                id,
                SessionState {
                    expires_at: sim.now() + timeout,
                    groups: Vec::new(),
                    ephemeral_keys: Vec::new(),
                },
            );
            (id, timeout)
        };
        self.arm_expiry_check(sim, id, sim.now() + timeout);
        id
    }

    fn arm_expiry_check(&self, sim: &mut Sim, id: SessionId, at: SimTime) {
        let this = self.clone();
        sim.schedule_at(at, move |sim| {
            let expires_at = this.inner.borrow().sessions.get(&id).map(|s| s.expires_at);
            match expires_at {
                None => {} // already closed
                Some(expiry) if expiry <= sim.now() => this.expire(sim, id),
                Some(expiry) => this.arm_expiry_check(sim, id, expiry),
            }
        });
    }

    /// Extends the session's lease; a no-op for dead sessions.
    ///
    /// Under the NDB transport the lease is a row, so every heartbeat
    /// also occupies its shard for one row write.
    pub fn heartbeat(&self, sim: &mut Sim, id: SessionId) {
        let charge = {
            let mut inner = self.inner.borrow_mut();
            let timeout = inner.session_timeout;
            let Some(s) = inner.sessions.get_mut(&id) else { return };
            s.expires_at = sim.now() + timeout;
            match &inner.transport {
                Transport::InMemory { .. } => None,
                Transport::Ndb { row_write, .. } => Some(*row_write),
            }
        };
        if let Some(row_write) = charge {
            let service = sim.rng().sample_duration(&row_write);
            self.charge_shard(sim, id.0, service, |_sim| {});
        }
    }

    /// Whether the session is currently alive.
    #[must_use]
    pub fn is_alive(&self, id: SessionId) -> bool {
        self.inner.borrow().sessions.contains_key(&id)
    }

    /// Gracefully closes a session, leaving its groups and deleting its
    /// ephemeral keys. Idempotent.
    pub fn close_session(&self, sim: &mut Sim, id: SessionId) {
        self.expire(sim, id);
    }

    fn expire(&self, sim: &mut Sim, id: SessionId) {
        let left_groups = {
            let mut inner = self.inner.borrow_mut();
            let Some(state) = inner.sessions.remove(&id) else { return };
            inner.inboxes.remove(&id);
            for key in &state.ephemeral_keys {
                // The key may have been re-written as persistent or under
                // another owner since this session touched it; only nodes
                // this session still owns die with it.
                if inner.kv.get(key).is_some_and(|(_, owner)| *owner == Some(id)) {
                    inner.kv.remove(key);
                }
            }
            for group in &state.groups {
                if let Some(members) = inner.groups.get_mut(group) {
                    members.retain(|m| *m != id);
                }
            }
            state.groups
        };
        for group in left_groups {
            self.notify(sim, &group, GroupEvent::Left(id));
        }
    }

    /// Adds the session to `group` (ephemeral membership), firing
    /// `Joined` watches.
    pub fn join_group(&self, sim: &mut Sim, id: SessionId, group: &str) {
        {
            let mut inner = self.inner.borrow_mut();
            if !inner.sessions.contains_key(&id) {
                return;
            }
            let members = inner.groups.entry(group.to_string()).or_default();
            if members.contains(&id) {
                return;
            }
            members.push(id);
            inner.sessions.get_mut(&id).expect("checked").groups.push(group.to_string());
        }
        self.notify(sim, group, GroupEvent::Joined(id));
    }

    /// Removes the session from `group`, firing `Left` watches.
    pub fn leave_group(&self, sim: &mut Sim, id: SessionId, group: &str) {
        let was_member = {
            let mut inner = self.inner.borrow_mut();
            let removed = inner
                .groups
                .get_mut(group)
                .map(|members| {
                    let before = members.len();
                    members.retain(|m| *m != id);
                    members.len() != before
                })
                .unwrap_or(false);
            if let Some(s) = inner.sessions.get_mut(&id) {
                s.groups.retain(|g| g != group);
            }
            removed
        };
        if was_member {
            self.notify(sim, group, GroupEvent::Left(id));
        }
    }

    /// Current live members of `group`, in join order.
    #[must_use]
    pub fn members(&self, group: &str) -> Vec<SessionId> {
        self.inner.borrow().groups.get(group).cloned().unwrap_or_default()
    }

    /// The group's leader: its longest-lived member (ZooKeeper-style
    /// lowest-sequence election), or `None` for an empty group.
    #[must_use]
    pub fn leader(&self, group: &str) -> Option<SessionId> {
        self.members(group).into_iter().min()
    }

    /// Registers a persistent watch on `group` membership changes.
    ///
    /// Watch callbacks fire after the coordinator's one-way notification
    /// latency.
    pub fn watch_group(&self, group: &str, watch: GroupWatch) {
        self.inner.borrow_mut().watches.entry(group.to_string()).or_default().push(watch);
    }

    fn notify(&self, sim: &mut Sim, group: &str, event: GroupEvent) {
        let watches = self
            .inner
            .borrow()
            .watches
            .get(group)
            .map(|w| w.to_vec())
            .unwrap_or_default();
        if watches.is_empty() {
            return;
        }
        enum Plan {
            Direct(Dist),
            Epoch(SimDuration),
        }
        let plan = match &self.inner.borrow().transport {
            Transport::InMemory { one_way } => Plan::Direct(*one_way),
            Transport::Ndb { epoch, .. } => Plan::Epoch(*epoch),
        };
        for watch in watches {
            let delay = match &plan {
                Plan::Direct(one_way) => sim.rng().sample_duration(one_way),
                // Watch events ride the event API: visible at the next
                // epoch flush. The membership row write itself was paid
                // by the session operation that caused the event.
                Plan::Epoch(epoch) => Self::epoch_delay(sim, *epoch),
            };
            sim.schedule(delay, move |sim| watch(sim, event));
        }
    }

    /// Installs the message handler for `id`, replacing any previous one.
    pub fn register_inbox(&self, id: SessionId, inbox: Inbox<M>) {
        self.inner.borrow_mut().inboxes.insert(id, inbox);
    }

    /// Sends `msg` from `from` to `to` through the coordinator (two hops).
    ///
    /// Returns `false` — and sends nothing — if either end is already
    /// dead. A recipient dying while the message is in flight drops the
    /// message silently, exactly the failure the coherence protocol must
    /// tolerate.
    pub fn send(&self, sim: &mut Sim, from: SessionId, to: SessionId, msg: M) -> bool {
        enum Plan {
            Direct(Dist),
            Ndb { row_write: Dist, pk_read: Dist, epoch: SimDuration },
        }
        let plan = {
            let inner = self.inner.borrow();
            if !inner.sessions.contains_key(&from) || !inner.sessions.contains_key(&to) {
                return false;
            }
            match &inner.transport {
                Transport::InMemory { one_way } => Plan::Direct(*one_way),
                Transport::Ndb { row_write, pk_read, epoch, .. } => Plan::Ndb {
                    row_write: *row_write,
                    pk_read: *pk_read,
                    epoch: *epoch,
                },
            }
        };
        let this = self.clone();
        match plan {
            Plan::Direct(one_way) => {
                let delay =
                    sim.rng().sample_duration(&one_way) + sim.rng().sample_duration(&one_way);
                sim.schedule(delay, move |sim| this.deliver(sim, to, msg));
            }
            Plan::Ndb { row_write, pk_read, epoch } => {
                // Three legs, each on the recipient's shard row: the
                // sender writes the message row, the event API flushes it
                // at the next epoch, the subscriber reads the payload.
                let write = sim.rng().sample_duration(&row_write);
                let this2 = self.clone();
                self.charge_shard(sim, to.0, write, move |sim| {
                    let flush = Self::epoch_delay(sim, epoch);
                    sim.schedule(flush, move |sim| {
                        let read = sim.rng().sample_duration(&pk_read);
                        let this3 = this2.clone();
                        this2.charge_shard(sim, to.0, read, move |sim| {
                            this3.deliver(sim, to, msg);
                        });
                    });
                });
            }
        }
        true
    }

    /// Hands `msg` to `to`'s inbox, tolerating a recipient that died in
    /// flight.
    fn deliver(&self, sim: &mut Sim, to: SessionId, msg: M) {
        // Temporarily take the inbox out so the handler can re-enter
        // the coordinator (e.g. to send an ACK).
        let inbox = self.inner.borrow_mut().inboxes.remove(&to);
        match inbox {
            Some(mut inbox) => {
                self.inner.borrow_mut().messages_delivered += 1;
                inbox(sim, msg);
                // Put it back unless the session died inside the handler.
                let mut inner = self.inner.borrow_mut();
                if inner.sessions.contains_key(&to) {
                    inner.inboxes.insert(to, inbox);
                }
            }
            None => {
                self.inner.borrow_mut().messages_dropped += 1;
            }
        }
    }

    /// Writes a key-value node; `ephemeral_owner` ties the node's lifetime
    /// to a session (crash-safe locks, paper §3.6).
    pub fn set_data(
        &self,
        sim: &mut Sim,
        key: &str,
        value: Vec<u8>,
        ephemeral_owner: Option<SessionId>,
    ) {
        let charge = {
            let mut inner = self.inner.borrow_mut();
            if let Some(owner) = ephemeral_owner {
                if !inner.sessions.contains_key(&owner) {
                    return;
                }
                inner
                    .sessions
                    .get_mut(&owner)
                    .expect("checked")
                    .ephemeral_keys
                    .push(key.to_string());
            }
            inner.kv.insert(key.to_string(), (value, ephemeral_owner));
            match &inner.transport {
                Transport::InMemory { .. } => None,
                Transport::Ndb { row_write, .. } => Some(*row_write),
            }
        };
        if let Some(row_write) = charge {
            let service = sim.rng().sample_duration(&row_write);
            self.charge_shard(sim, fnv(key), service, |_sim| {});
        }
    }

    /// Reads a key-value node.
    #[must_use]
    pub fn get_data(&self, key: &str) -> Option<Vec<u8>> {
        self.inner.borrow().kv.get(key).map(|(v, _)| v.clone())
    }

    /// Deletes a key-value node, returning whether it existed.
    pub fn delete_data(&self, sim: &mut Sim, key: &str) -> bool {
        let (existed, charge) = {
            let mut inner = self.inner.borrow_mut();
            let existed = inner.kv.remove(key).is_some();
            let charge = match &inner.transport {
                Transport::InMemory { .. } => None,
                Transport::Ndb { row_write, .. } if existed => Some(*row_write),
                Transport::Ndb { .. } => None,
            };
            (existed, charge)
        };
        if let Some(row_write) = charge {
            let service = sim.rng().sample_duration(&row_write);
            self.charge_shard(sim, fnv(key), service, |_sim| {});
        }
        existed
    }
}

/// FNV-1a of a KV key, for shard placement of coordinator rows.
fn fnv(key: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}
