//! # lambda-coord
//!
//! The Coordinator service — the reproduction's stand-in for ZooKeeper
//! (λFS's default "pluggable Coordinator", paper §3.5): sessions with
//! liveness timeouts, ephemeral group membership, persistent watches,
//! leader election, a small key-value namespace, and member-to-member
//! message delivery.
//!
//! The λFS coherence protocol uses exactly these primitives: the leader
//! NameNode discovers which instances of a deployment are alive
//! ([`Coordinator::members`]), delivers INVs ([`Coordinator::send`]),
//! collects ACKs (replies via `send`), and — crucially — learns via watches
//! when a member dies mid-protocol so that "ACKs are not required from
//! NameNodes that terminate mid-protocol" (Algorithm 1, step 1).
//!
//! Sessions expire when not heartbeated within their timeout, which is how
//! crashed NameNodes are detected and their locks/memberships cleaned up
//! (paper §3.6).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod service;

pub use service::{Coordinator, CoordinatorKind, GroupEvent, SessionId};

#[cfg(test)]
mod tests {
    use super::*;
    use lambda_sim::params::NetParams;
    use lambda_sim::{Sim, SimDuration};
    use std::cell::RefCell;
    use std::rc::Rc;

    fn new_coord() -> Coordinator<String> {
        Coordinator::new(&NetParams::default(), SimDuration::from_secs(4))
    }

    #[test]
    fn membership_joins_and_graceful_leaves() {
        let mut sim = Sim::new(1);
        let coord = new_coord();
        let a = coord.create_session(&mut sim);
        let b = coord.create_session(&mut sim);
        coord.join_group(&mut sim, a, "deploy-0");
        coord.join_group(&mut sim, b, "deploy-0");
        assert_eq!(coord.members("deploy-0"), vec![a, b]);
        coord.close_session(&mut sim, a);
        assert_eq!(coord.members("deploy-0"), vec![b]);
        assert!(!coord.is_alive(a));
        assert!(coord.is_alive(b));
    }

    #[test]
    fn sessions_expire_without_heartbeats() {
        let mut sim = Sim::new(2);
        let coord = new_coord();
        let a = coord.create_session(&mut sim);
        coord.join_group(&mut sim, a, "g");
        sim.run_until(lambda_sim::SimTime::from_secs(3));
        assert!(coord.is_alive(a));
        sim.run_until(lambda_sim::SimTime::from_secs(10));
        assert!(!coord.is_alive(a));
        assert!(coord.members("g").is_empty());
    }

    #[test]
    fn heartbeats_keep_sessions_alive() {
        let mut sim = Sim::new(3);
        let coord = new_coord();
        let a = coord.create_session(&mut sim);
        let c2 = coord.clone();
        lambda_sim::every(
            &mut sim,
            lambda_sim::SimTime::ZERO,
            SimDuration::from_secs(1),
            move |sim| {
                c2.heartbeat(sim, a);
                sim.now() < lambda_sim::SimTime::from_secs(20)
            },
        );
        sim.run_until(lambda_sim::SimTime::from_secs(19));
        assert!(coord.is_alive(a));
        // Heartbeats stop at t=20; the session dies by t=20+timeout.
        sim.run_until(lambda_sim::SimTime::from_secs(30));
        assert!(!coord.is_alive(a));
    }

    #[test]
    fn watches_fire_on_join_and_expiry() {
        let mut sim = Sim::new(4);
        let coord = new_coord();
        let events = Rc::new(RefCell::new(Vec::new()));
        let sink = Rc::clone(&events);
        coord.watch_group(
            "g",
            Rc::new(move |_sim: &mut Sim, ev: GroupEvent| {
                sink.borrow_mut().push(ev);
            }),
        );
        let a = coord.create_session(&mut sim);
        coord.join_group(&mut sim, a, "g");
        sim.run_until(lambda_sim::SimTime::from_secs(1));
        assert_eq!(*events.borrow(), vec![GroupEvent::Joined(a)]);
        // Let the session starve.
        sim.run_until(lambda_sim::SimTime::from_secs(10));
        assert_eq!(*events.borrow(), vec![GroupEvent::Joined(a), GroupEvent::Left(a)]);
    }

    #[test]
    fn messages_deliver_with_latency_to_live_members_only() {
        let mut sim = Sim::new(5);
        let coord = new_coord();
        let a = coord.create_session(&mut sim);
        let b = coord.create_session(&mut sim);
        let inbox = Rc::new(RefCell::new(Vec::new()));
        let sink = Rc::clone(&inbox);
        coord.register_inbox(
            b,
            Box::new(move |sim: &mut Sim, msg: String| {
                sink.borrow_mut().push((sim.now().as_millis_f64(), msg));
            }),
        );
        assert!(coord.send(&mut sim, a, b, "INV:/x".to_string()));
        sim.run();
        {
            let inbox = inbox.borrow();
            assert_eq!(inbox.len(), 1);
            assert_eq!(inbox[0].1, "INV:/x");
            // Two coordinator hops at 0.2-0.45ms each.
            assert!(inbox[0].0 >= 0.4 && inbox[0].0 <= 0.9, "latency {}", inbox[0].0);
        }
        // Sends to dead sessions are refused.
        coord.close_session(&mut sim, b);
        assert!(!coord.send(&mut sim, a, b, "INV:/y".to_string()));
        sim.run();
        assert_eq!(inbox.borrow().len(), 1);
    }

    #[test]
    fn message_to_member_dying_in_flight_is_dropped() {
        let mut sim = Sim::new(6);
        let coord = new_coord();
        let a = coord.create_session(&mut sim);
        let b = coord.create_session(&mut sim);
        let got = Rc::new(RefCell::new(0u32));
        let sink = Rc::clone(&got);
        coord.register_inbox(
            b,
            Box::new(move |_sim: &mut Sim, _msg: String| {
                *sink.borrow_mut() += 1;
            }),
        );
        assert!(coord.send(&mut sim, a, b, "INV".into()));
        // b dies before the message lands.
        coord.close_session(&mut sim, b);
        sim.run();
        assert_eq!(*got.borrow(), 0);
    }

    #[test]
    fn leader_is_the_longest_lived_member() {
        let mut sim = Sim::new(7);
        let coord = new_coord();
        let a = coord.create_session(&mut sim);
        let b = coord.create_session(&mut sim);
        let c = coord.create_session(&mut sim);
        for s in [a, b, c] {
            coord.join_group(&mut sim, s, "nn");
        }
        assert_eq!(coord.leader("nn"), Some(a));
        coord.close_session(&mut sim, a);
        assert_eq!(coord.leader("nn"), Some(b));
        coord.close_session(&mut sim, b);
        coord.close_session(&mut sim, c);
        assert_eq!(coord.leader("nn"), None);
    }

    #[test]
    fn kv_nodes_and_ephemeral_cleanup() {
        let mut sim = Sim::new(8);
        let coord = new_coord();
        let a = coord.create_session(&mut sim);
        coord.set_data(&mut sim, "/config/batch-size", b"512".to_vec(), None);
        coord.set_data(&mut sim, "/locks/subtree/foo", b"held".to_vec(), Some(a));
        assert_eq!(coord.get_data("/config/batch-size"), Some(b"512".to_vec()));
        assert_eq!(coord.get_data("/locks/subtree/foo"), Some(b"held".to_vec()));
        // Ephemeral node vanishes with its owner (crash-safe lock cleanup,
        // paper §3.6).
        sim.run_until(lambda_sim::SimTime::from_secs(10));
        assert!(!coord.is_alive(a));
        assert_eq!(coord.get_data("/locks/subtree/foo"), None);
        assert_eq!(coord.get_data("/config/batch-size"), Some(b"512".to_vec()));
    }

    // ----------------------------------------------------------------
    // NDB event-API transport (paper §3.5: "λFS currently supports both
    // ZooKeeper and MySQL Cluster NDB")
    // ----------------------------------------------------------------

    fn ndb_coord(epoch_ms: u64) -> Coordinator<String> {
        let shards: Vec<_> =
            (0..4).map(|i| lambda_sim::Station::new(format!("ndb-{i}"), 10)).collect();
        Coordinator::over_ndb(
            shards,
            &lambda_sim::params::StoreParams::default(),
            SimDuration::from_millis(epoch_ms),
            SimDuration::from_secs(4),
        )
    }

    #[test]
    fn ndb_messages_arrive_no_earlier_than_half_an_epoch() {
        let mut sim = Sim::new(20);
        let coord = ndb_coord(10);
        let a = coord.create_session(&mut sim);
        let b = coord.create_session(&mut sim);
        let arrived = Rc::new(RefCell::new(None));
        let out = Rc::clone(&arrived);
        coord.register_inbox(
            b,
            Box::new(move |sim: &mut Sim, _msg: String| {
                *out.borrow_mut() = Some(sim.now());
            }),
        );
        let t0 = sim.now();
        assert!(coord.send(&mut sim, a, b, "inv".into()));
        sim.run();
        let at = arrived.borrow().expect("delivered");
        let elapsed = at.saturating_since(t0);
        // Write leg + ≥half-epoch flush + read leg.
        assert!(elapsed >= SimDuration::from_millis(5), "arrived after {elapsed}");
        assert_eq!(coord.message_stats(), (1, 0));
    }

    #[test]
    fn ndb_transport_charges_the_metadata_store() {
        let mut sim = Sim::new(21);
        let coord = ndb_coord(10);
        let a = coord.create_session(&mut sim);
        let b = coord.create_session(&mut sim);
        coord.register_inbox(b, Box::new(|_sim: &mut Sim, _msg: String| {}));
        assert_eq!(coord.store_ops(), 0);
        coord.heartbeat(&mut sim, a);
        coord.send(&mut sim, a, b, "inv".into());
        coord.set_data(&mut sim, "/locks/x", b"1".to_vec(), Some(a));
        coord.delete_data(&mut sim, "/locks/x");
        sim.run();
        // heartbeat(1) + send(write leg + read leg, 2) + set(1) + delete(1).
        assert_eq!(coord.store_ops(), 5);
    }

    #[test]
    fn zookeeper_transport_never_touches_the_store() {
        let mut sim = Sim::new(22);
        let coord = new_coord();
        let a = coord.create_session(&mut sim);
        coord.heartbeat(&mut sim, a);
        coord.set_data(&mut sim, "/k", b"v".to_vec(), None);
        sim.run();
        assert_eq!(coord.store_ops(), 0);
    }

    #[test]
    fn ndb_membership_watches_and_expiry_behave_like_zookeeper() {
        let mut sim = Sim::new(23);
        let coord = ndb_coord(10);
        let events = Rc::new(RefCell::new(Vec::new()));
        let out = Rc::clone(&events);
        coord.watch_group(
            "nn",
            Rc::new(move |_sim: &mut Sim, ev: GroupEvent| {
                out.borrow_mut().push(ev);
            }),
        );
        let a = coord.create_session(&mut sim);
        let b = coord.create_session(&mut sim);
        coord.join_group(&mut sim, a, "nn");
        coord.join_group(&mut sim, b, "nn");
        assert_eq!(coord.leader("nn"), Some(a));
        // Only b heartbeats: a expires and its Left event fires through
        // the event API.
        for tick in 1..20 {
            let at = lambda_sim::SimTime::from_nanos(500_000_000 * tick);
            let c2 = coord.clone();
            sim.schedule_at(at, move |sim| c2.heartbeat(sim, b));
        }
        sim.run_until(lambda_sim::SimTime::from_secs(9));
        assert!(!coord.is_alive(a));
        assert!(coord.is_alive(b));
        assert_eq!(coord.leader("nn"), Some(b));
        assert_eq!(
            *events.borrow(),
            vec![GroupEvent::Joined(a), GroupEvent::Joined(b), GroupEvent::Left(a)]
        );
    }
}
