//! Shared machinery for serverful (VM-cluster) metadata services: a fixed
//! set of NameNode servers, a simple always-TCP client, per-second VM
//! billing, and fixed-membership cache coherence.

use std::cell::RefCell;
use std::rc::Rc;

use lambda_fs::{CoherenceHook, InvalidationSet, OpDone, RunMetrics};
use lambda_namespace::{FsError, FsOp, MetadataCache, Partitioner};
use lambda_sim::params::NetParams;
use lambda_sim::{every, CostMeter, Sim, SimDuration, StationRef, VmPricing};

/// How client requests are spread over the server cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Routing {
    /// Round-robin per client — vanilla HopsFS (any stateless NameNode
    /// can serve any request).
    RoundRobin,
    /// Consistent-hash on the parent directory — HopsFS+Cache clients
    /// route to the caching NameNode that owns the partition (and hot
    /// directories can bottleneck a single server, §5.3.1).
    HashParent,
}

/// One serverful metadata node.
pub struct ServerNode {
    /// The node's CPU.
    pub cpu: StationRef,
    /// Its operation engine (cache/coherence as configured).
    pub engine: lambda_fs::OpEngine,
}

/// A fixed cluster of metadata servers with a TCP client library and VM
/// billing — the substrate for the HopsFS-family baselines.
pub struct ServerfulCluster {
    nodes: Vec<ServerNode>,
    routing: Routing,
    partitioner: Rc<Partitioner>,
    net: NetParams,
    vcpus_total: u32,
    pricing: VmPricing,
    meter: Rc<RefCell<CostMeter>>,
    metrics: Rc<RefCell<RunMetrics>>,
    clients: u32,
    max_retries: u32,
    next_rr: Rc<RefCell<usize>>,
    billing_on: Rc<std::cell::Cell<bool>>,
}

impl std::fmt::Debug for ServerfulCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerfulCluster")
            .field("nodes", &self.nodes.len())
            .field("routing", &self.routing)
            .field("vcpus", &self.vcpus_total)
            .finish()
    }
}

impl ServerfulCluster {
    /// Assembles a cluster from prebuilt nodes.
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        nodes: Vec<ServerNode>,
        routing: Routing,
        partitioner: Rc<Partitioner>,
        net: NetParams,
        vcpus_total: u32,
        clients: u32,
        max_retries: u32,
    ) -> Self {
        ServerfulCluster {
            nodes,
            routing,
            partitioner,
            net,
            vcpus_total,
            pricing: VmPricing::default(),
            meter: Rc::new(RefCell::new(CostMeter::new())),
            metrics: Rc::new(RefCell::new(RunMetrics::new())),
            clients: clients.max(1),
            max_retries,
            next_rr: Rc::new(RefCell::new(0)),
            billing_on: Rc::new(std::cell::Cell::new(false)),
        }
    }

    /// Number of servers.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Total provisioned vCPUs (billed whether busy or idle).
    #[must_use]
    pub fn vcpus_total(&self) -> u32 {
        self.vcpus_total
    }

    /// Number of clients.
    #[must_use]
    pub fn clients(&self) -> u32 {
        self.clients
    }

    /// The client-observed metrics.
    #[must_use]
    pub fn metrics(&self) -> Rc<RefCell<RunMetrics>> {
        Rc::clone(&self.metrics)
    }

    /// The VM cost meter (per-second series; the Fig. 9 HopsFS curve).
    #[must_use]
    pub fn cost_meter(&self) -> CostMeter {
        self.meter.borrow().clone()
    }

    /// Total dollars billed so far.
    #[must_use]
    pub fn cost_total(&self) -> f64 {
        self.meter.borrow().total()
    }

    /// Starts per-second VM billing: the whole provisioned cluster is
    /// billed every second, idle or not (§5.2.5). Idempotent.
    pub fn start_billing(&self, sim: &mut Sim) {
        if self.billing_on.replace(true) {
            return;
        }
        let meter = Rc::clone(&self.meter);
        let pricing = self.pricing;
        let vcpus = f64::from(self.vcpus_total);
        let on = Rc::clone(&self.billing_on);
        every(sim, sim.now() + SimDuration::from_secs(1), SimDuration::from_secs(1), move |sim| {
            if !on.get() {
                return false;
            }
            meter.borrow_mut().charge_vm(sim.now(), &pricing, vcpus, SimDuration::from_secs(1));
            true
        });
    }

    /// Stops billing at its next tick.
    pub fn stop_billing(&self) {
        self.billing_on.set(false);
    }

    fn pick_node(&self, client: usize, op: &FsOp) -> usize {
        match self.routing {
            Routing::RoundRobin => {
                let mut rr = self.next_rr.borrow_mut();
                *rr = (*rr + client) % self.nodes.len().max(1);
                *rr
            }
            Routing::HashParent => {
                self.partitioner.deployment_for_path(op.primary_path()) as usize
                    % self.nodes.len().max(1)
            }
        }
    }

    /// Submits `op` with transparent retry of transient failures.
    pub fn submit(&self, sim: &mut Sim, client: usize, op: FsOp, done: OpDone) {
        self.metrics.borrow_mut().issued += 1;
        self.attempt(sim, client, op, 0, sim.now(), done);
    }

    fn attempt(
        &self,
        sim: &mut Sim,
        client: usize,
        op: FsOp,
        tries: u32,
        started: lambda_sim::SimTime,
        done: OpDone,
    ) {
        let node = self.pick_node(client, &op);
        let engine = self.nodes[node].engine.clone();
        let hop = sim.rng().sample_duration(&self.net.tcp_one_way);
        let net = self.net.clone();
        let metrics = Rc::clone(&self.metrics);
        metrics.borrow_mut().tcp_rpcs += 1;
        let this = self.clone_handle();
        let max_retries = self.max_retries;
        sim.schedule(hop, move |sim| {
            let op2 = op.clone();
            engine.execute(
                sim,
                op,
                true,
                Box::new(move |sim, result| {
                    let back = sim.rng().sample_duration(&net.tcp_one_way);
                    sim.schedule(back, move |sim| match result {
                        Err(FsError::Retryable(_)) | Err(FsError::SubtreeLocked(_))
                            if tries < max_retries =>
                        {
                            metrics.borrow_mut().retries += 1;
                            let delay =
                                SimDuration::from_millis(20).mul_f64((1 << tries.min(6)) as f64);
                            let this2 = this.clone_handle();
                            sim.schedule(delay, move |sim| {
                                this2.attempt(sim, client, op2, tries + 1, started, done);
                            });
                        }
                        result => {
                            let latency = sim.now().saturating_since(started);
                            match &result {
                                Ok(_) => metrics.borrow_mut().record_success(
                                    sim.now(),
                                    op2.class(),
                                    latency,
                                ),
                                Err(e) => metrics
                                    .borrow_mut()
                                    .record_failure(matches!(e, FsError::Timeout)),
                            }
                            done(sim, result);
                        }
                    });
                }),
            );
        });
    }

    fn clone_handle(&self) -> ServerfulCluster {
        ServerfulCluster {
            nodes: self
                .nodes
                .iter()
                .map(|n| ServerNode { cpu: Rc::clone(&n.cpu), engine: n.engine.clone() })
                .collect(),
            routing: self.routing,
            partitioner: Rc::clone(&self.partitioner),
            net: self.net.clone(),
            vcpus_total: self.vcpus_total,
            pricing: self.pricing,
            meter: Rc::clone(&self.meter),
            metrics: Rc::clone(&self.metrics),
            clients: self.clients,
            max_retries: self.max_retries,
            next_rr: Rc::clone(&self.next_rr),
            billing_on: Rc::clone(&self.billing_on),
        }
    }
}

/// Fixed-membership cache coherence for a serverful caching cluster
/// (HopsFS+Cache): the writer sends INVs directly to every peer NameNode
/// over TCP and proceeds once all round trips complete.
pub struct PeerCoherence {
    peers: Vec<Rc<RefCell<MetadataCache>>>,
    own: usize,
    net: NetParams,
}

impl PeerCoherence {
    /// Creates the hook for node `own` with the given peer caches.
    #[must_use]
    pub fn new(peers: Vec<Rc<RefCell<MetadataCache>>>, own: usize, net: NetParams) -> Self {
        PeerCoherence { peers, own, net }
    }
}

impl CoherenceHook for PeerCoherence {
    fn invalidate(&self, sim: &mut Sim, inv: InvalidationSet, done: Box<dyn FnOnce(&mut Sim)>) {
        let targets: Vec<Rc<RefCell<MetadataCache>>> = self
            .peers
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != self.own)
            .map(|(_, c)| Rc::clone(c))
            .collect();
        if targets.is_empty() {
            sim.schedule(SimDuration::ZERO, done);
            return;
        }
        let remaining = Rc::new(std::cell::Cell::new(targets.len()));
        let done = Rc::new(RefCell::new(Some(done)));
        for cache in targets {
            // One round trip per peer: INV there, ACK back.
            let rtt = sim.rng().sample_duration(&self.net.tcp_one_way)
                + sim.rng().sample_duration(&self.net.tcp_one_way);
            let inv = inv.clone();
            let remaining = Rc::clone(&remaining);
            let done = Rc::clone(&done);
            sim.schedule(rtt, move |sim| {
                {
                    let mut cache = cache.borrow_mut();
                    for id in &inv.inodes {
                        cache.invalidate_inode(*id);
                    }
                    for dir in &inv.listings {
                        cache.invalidate_listing(*dir);
                    }
                    for (dir, name, present) in &inv.listing_updates {
                        cache.update_listing(*dir, name, *present);
                    }
                    if let Some(prefix) = &inv.prefix {
                        cache.invalidate_prefix(prefix);
                    }
                }
                remaining.set(remaining.get() - 1);
                if remaining.get() == 0 {
                    if let Some(d) = done.borrow_mut().take() {
                        d(sim);
                    }
                }
            });
        }
    }
}
