//! IndexFS and λIndexFS (paper §4 "Porting λFS to IndexFS" and §5.7).
//!
//! **IndexFS** is a layered metadata middleware: a fixed set of servers
//! co-located with the clients (its co-location principle), each packing
//! metadata into LevelDB SSTables. The reproduction gives every server a
//! real [`LsmTree`]: point lookups pay for the tables they actually probe,
//! and writes pay for the flush/compaction bytes they actually cause — so
//! write throughput degrades as compaction debt grows, exactly the
//! behavior λIndexFS's elasticity escapes.
//!
//! **λIndexFS** decouples in-memory metadata handling from LevelDB by
//! packaging it into serverless functions (one deployment per LevelDB
//! instance, directories partitioned by name hash — the simplified scheme
//! developed with the IndexFS authors), keeping LevelDB only as the
//! persistent store. Functions cache metadata, siblings are invalidated on
//! writes, and the FaaS platform scales instances with load.
//!
//! Both are driven by the `tree-test` workload (`mknod` writes followed by
//! random `getattr` reads), reproduced in `lambda-workload`.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

use lambda_faas::{
    DeploymentId, Function, FunctionConfig, InstanceCtx, InstanceId, Platform, PlatformConfig,
    Responder,
};
use lambda_fs::RunMetrics;
use lambda_lsm::{LsmConfig, LsmTree};
use lambda_namespace::{DfsPath, OpClass};
use lambda_sim::params::{FaasParams, NetParams};
use lambda_sim::{Dist, Sim, SimDuration, Station, StationRef};

/// The two tree-test operations (IndexFS's built-in benchmark).
#[derive(Debug, Clone, PartialEq)]
pub enum TreeOp {
    /// Create a file node.
    Mknod(DfsPath),
    /// Read a node's attributes.
    Getattr(DfsPath),
}

impl TreeOp {
    /// The path targeted by the operation.
    #[must_use]
    pub fn path(&self) -> &DfsPath {
        match self {
            TreeOp::Mknod(p) | TreeOp::Getattr(p) => p,
        }
    }

    /// The reporting class: `mknod` ≈ create, `getattr` ≈ stat.
    #[must_use]
    pub fn class(&self) -> OpClass {
        match self {
            TreeOp::Mknod(_) => OpClass::Create,
            TreeOp::Getattr(_) => OpClass::Stat,
        }
    }
}

/// Completion callback: whether the target existed.
pub type TreeDone = Box<dyn FnOnce(&mut Sim, bool)>;

fn dir_hash(path: &DfsPath) -> u64 {
    // Partition directories across LevelDB instances by directory name
    // (the simplified scheme of §4).
    let parent = path.parent().unwrap_or_else(DfsPath::root);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in parent.as_str().bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One LevelDB-backed metadata partition: a CPU station plus a real LSM
/// tree.
pub struct LevelDbBackend {
    cpu: StationRef,
    lsm: RefCell<LsmTree>,
    base_read: Dist,
    probe_cost: Dist,
    base_write: Dist,
    /// Bytes of compaction work one second of station time absorbs.
    compaction_bw: f64,
}

impl std::fmt::Debug for LevelDbBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LevelDbBackend").finish_non_exhaustive()
    }
}

impl LevelDbBackend {
    fn new(name: &str, width: u32, lsm: LsmConfig) -> Rc<Self> {
        Rc::new(LevelDbBackend {
            cpu: Station::new(name, width.max(1)),
            lsm: RefCell::new(LsmTree::new(lsm)),
            base_read: Dist::uniform_ms(0.08, 0.15),
            probe_cost: Dist::uniform_ms(0.04, 0.08),
            base_write: Dist::uniform_ms(0.10, 0.20),
            compaction_bw: 48.0 * 1024.0 * 1024.0,
        })
    }

    /// Executes a get: real LSM lookup costed by the tables probed.
    fn get(self: &Rc<Self>, sim: &mut Sim, key: &DfsPath, done: TreeDone) {
        let (found, probes) = {
            let mut lsm = self.lsm.borrow_mut();
            let before = lsm.stats().tables_probed;
            let found = lsm.get(key.as_str().as_bytes()).is_some();
            (found, lsm.stats().tables_probed - before)
        };
        let service = sim.rng().sample_duration(&self.base_read)
            + sim.rng().sample_duration(&self.probe_cost) * probes;
        Station::submit(&self.cpu, sim, service, move |sim| done(sim, found));
    }

    /// Executes a put: real LSM insert costed by the flush/compaction
    /// bytes it triggered.
    fn put(self: &Rc<Self>, sim: &mut Sim, key: &DfsPath, done: TreeDone) {
        let compacted = self.insert_local(key);
        let service = sim.rng().sample_duration(&self.base_write)
            + SimDuration::from_secs_f64(compacted as f64 / self.compaction_bw);
        Station::submit(&self.cpu, sim, service, move |sim| done(sim, true));
    }

    /// Applies the LSM insert only, returning the compaction bytes it
    /// triggered; the caller decides where the CPU cost lands (λIndexFS
    /// runs the memtable/WAL work on the function instance).
    fn insert_local(&self, key: &DfsPath) -> u64 {
        let mut lsm = self.lsm.borrow_mut();
        let before = lsm.stats().bytes_compacted;
        lsm.put(key.as_str().as_bytes(), &[0u8; 64]);
        lsm.stats().bytes_compacted - before
    }

    /// Occupies this partition's store with `compacted` bytes of
    /// background compaction work.
    fn charge_compaction(self: &Rc<Self>, sim: &mut Sim, compacted: u64) {
        if compacted == 0 {
            return;
        }
        let busy = SimDuration::from_secs_f64(compacted as f64 / self.compaction_bw);
        Station::submit(&self.cpu, sim, busy, |_sim| {});
    }
}

/// Configuration for vanilla IndexFS.
#[derive(Debug, Clone)]
pub struct IndexFsConfig {
    /// Number of IndexFS servers (deployed on the 4 BeeGFS client VMs).
    pub servers: u32,
    /// Effective parallel width per server (shares the client VM's CPU).
    pub server_width: u32,
    /// Number of clients.
    pub clients: u32,
    /// LevelDB tuning.
    pub lsm: LsmConfig,
    /// Network model.
    pub net: NetParams,
}

impl Default for IndexFsConfig {
    fn default() -> Self {
        IndexFsConfig {
            servers: 4,
            server_width: 8,
            clients: 64,
            lsm: LsmConfig::default(),
            net: NetParams::default(),
        }
    }
}

/// Vanilla IndexFS: a fixed middleware cluster over LevelDB.
pub struct IndexFs {
    config: IndexFsConfig,
    backends: Vec<Rc<LevelDbBackend>>,
    metrics: Rc<RefCell<RunMetrics>>,
}

impl std::fmt::Debug for IndexFs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IndexFs").field("servers", &self.backends.len()).finish()
    }
}

impl IndexFs {
    /// Builds the cluster.
    #[must_use]
    pub fn build(sim: &mut Sim, config: IndexFsConfig) -> Self {
        let _ = &sim;
        let backends = (0..config.servers)
            .map(|i| {
                LevelDbBackend::new(
                    &format!("indexfs-{i}"),
                    config.server_width,
                    config.lsm.clone(),
                )
            })
            .collect();
        IndexFs { config, backends, metrics: Rc::new(RefCell::new(RunMetrics::new())) }
    }

    /// The client-observed metrics.
    #[must_use]
    pub fn metrics(&self) -> Rc<RefCell<RunMetrics>> {
        Rc::clone(&self.metrics)
    }

    /// Number of clients configured.
    #[must_use]
    pub fn client_count(&self) -> usize {
        self.config.clients as usize
    }

    /// Submits one tree-test operation.
    pub fn submit(&self, sim: &mut Sim, _client: usize, op: TreeOp, done: TreeDone) {
        self.metrics.borrow_mut().issued += 1;
        self.metrics.borrow_mut().tcp_rpcs += 1;
        let backend =
            Rc::clone(&self.backends[(dir_hash(op.path()) % self.backends.len() as u64) as usize]);
        let hop = sim.rng().sample_duration(&self.config.net.tcp_one_way);
        let net = self.config.net.clone();
        let metrics = Rc::clone(&self.metrics);
        let started = sim.now();
        sim.schedule(hop, move |sim| {
            let class = op.class();
            let wrapped: TreeDone = Box::new(move |sim, found| {
                let back = sim.rng().sample_duration(&net.tcp_one_way);
                sim.schedule(back, move |sim| {
                    let latency = sim.now().saturating_since(started);
                    metrics.borrow_mut().record_success(sim.now(), class, latency);
                    done(sim, found);
                });
            });
            match op {
                TreeOp::Mknod(path) => backend.put(sim, &path, wrapped),
                TreeOp::Getattr(path) => backend.get(sim, &path, wrapped),
            }
        });
    }
}

// ---------------------------------------------------------------------
// λIndexFS
// ---------------------------------------------------------------------

/// Per-deployment registry of live instance caches (for sibling
/// invalidation on writes).
type CacheRegistry = Rc<RefCell<Vec<(InstanceId, Rc<RefCell<HashMap<String, bool>>>)>>>;

/// The serverless function body of λIndexFS: an in-memory metadata cache
/// in front of one LevelDB partition.
pub struct IndexFn {
    backend: Rc<LevelDbBackend>,
    registry: CacheRegistry,
    cache: Rc<RefCell<HashMap<String, bool>>>,
    cache_capacity: usize,
    coord_rtt: Dist,
    instance: Cell<Option<InstanceId>>,
}

/// λIndexFS responses carry the serving instance so clients can keep TCP
/// connections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeResp {
    /// Whether the target existed.
    pub found: bool,
    /// The serving instance.
    pub served_by: InstanceId,
}

impl Function for IndexFn {
    type Req = TreeOp;
    type Resp = TreeResp;

    fn on_start(&mut self, _sim: &mut Sim, ctx: &InstanceCtx) {
        self.instance.set(Some(ctx.instance));
        self.registry.borrow_mut().push((ctx.instance, Rc::clone(&self.cache)));
    }

    fn on_request(
        &mut self,
        sim: &mut Sim,
        ctx: &InstanceCtx,
        req: TreeOp,
        respond: Responder<TreeResp>,
    ) {
        let instance = ctx.instance;
        match req {
            TreeOp::Getattr(path) => {
                let cached = self.cache.borrow().get(path.as_str()).copied();
                if let Some(found) = cached {
                    // Cache hit: function CPU only, no LevelDB.
                    let service = SimDuration::from_micros(sim.rng().gen_range(60..140));
                    Station::submit(&ctx.cpu, sim, service, move |sim| {
                        respond.send(sim, TreeResp { found, served_by: instance });
                    });
                    return;
                }
                let cache = Rc::clone(&self.cache);
                let capacity = self.cache_capacity;
                let key = path.as_str().to_string();
                self.backend.get(
                    sim,
                    &path,
                    Box::new(move |sim, found| {
                        let mut c = cache.borrow_mut();
                        if c.len() >= capacity {
                            c.clear();
                        }
                        c.insert(key, found);
                        drop(c);
                        respond.send(sim, TreeResp { found, served_by: instance });
                    }),
                );
            }
            TreeOp::Mknod(path) => {
                // IndexFS invalidation is lease-precise: the partition's
                // (deployment-shared) lease table knows which instances
                // hold the entry, and a freshly created path is held by
                // nobody — the common tree-test case — so no round trip
                // is paid. When sharers exist, two concurrent legs run:
                // (1) their invalidation via the coordinator, (2) the
                // memtable/WAL insert, which runs on *this function's*
                // CPU — the decoupling that lets write capacity scale
                // with instances (§5.7) — while compaction debt still
                // lands on the deployment's shared LevelDB store.
                let sharers: Vec<_> = self
                    .registry
                    .borrow()
                    .iter()
                    .filter(|(id, cache)| {
                        *id != instance && cache.borrow().contains_key(path.as_str())
                    })
                    .map(|(_, cache)| Rc::clone(cache))
                    .collect();
                let legs = if sharers.is_empty() { 1 } else { 2 };
                let remaining = Rc::new(Cell::new(legs));
                let respond = Rc::new(RefCell::new(Some(respond)));
                let own = Rc::clone(&self.cache);
                let key = path.as_str().to_string();
                let join = move |sim: &mut Sim,
                                 remaining: &Rc<Cell<u32>>,
                                 respond: &Rc<RefCell<Option<Responder<TreeResp>>>>| {
                    remaining.set(remaining.get() - 1);
                    if remaining.get() == 0 {
                        own.borrow_mut().insert(key.clone(), true);
                        if let Some(r) = respond.borrow_mut().take() {
                            r.send(sim, TreeResp { found: true, served_by: instance });
                        }
                    }
                };
                if !sharers.is_empty() {
                    let rtt = sim.rng().sample_duration(&self.coord_rtt)
                        + sim.rng().sample_duration(&self.coord_rtt);
                    let inv_path = path.clone();
                    let (rem, resp, j) =
                        (Rc::clone(&remaining), Rc::clone(&respond), join.clone());
                    sim.schedule(rtt, move |sim| {
                        for sibling in &sharers {
                            sibling.borrow_mut().remove(inv_path.as_str());
                        }
                        j(sim, &rem, &resp);
                    });
                }
                let compacted = self.backend.insert_local(&path);
                self.backend.charge_compaction(sim, compacted);
                let service = sim.rng().sample_duration(&self.backend.base_write);
                let (rem, resp) = (remaining, respond);
                Station::submit(&ctx.cpu, sim, service, move |sim| {
                    join(sim, &rem, &resp);
                });
            }
        }
    }

    fn on_terminate(&mut self, _sim: &mut Sim, ctx: &InstanceCtx, _graceful: bool) {
        self.registry.borrow_mut().retain(|(id, _)| *id != ctx.instance);
    }
}

/// Configuration for λIndexFS.
#[derive(Debug, Clone)]
pub struct LambdaIndexFsConfig {
    /// Function deployments (one per LevelDB instance; the evaluation ran
    /// 4 LevelDB instances).
    pub deployments: u32,
    /// vCPUs per function instance.
    pub fn_vcpus: u32,
    /// Per-instance HTTP concurrency.
    pub concurrency: u32,
    /// OpenWhisk cluster vCPUs (the evaluation used 64).
    pub cluster_vcpus: u32,
    /// Per-instance cache entries.
    pub cache_capacity: usize,
    /// HTTP-TCP replacement probability.
    pub http_replace_prob: f64,
    /// Client request timeout before retry.
    pub timeout: SimDuration,
    /// Number of clients.
    pub clients: u32,
    /// LevelDB tuning.
    pub lsm: LsmConfig,
    /// Network model.
    pub net: NetParams,
}

impl Default for LambdaIndexFsConfig {
    fn default() -> Self {
        LambdaIndexFsConfig {
            deployments: 4,
            fn_vcpus: 4,
            concurrency: 4,
            cluster_vcpus: 64,
            cache_capacity: 500_000,
            http_replace_prob: 0.01,
            timeout: SimDuration::from_secs(5),
            clients: 64,
            lsm: LsmConfig::default(),
            net: NetParams::default(),
        }
    }
}

/// λIndexFS: IndexFS's metadata handling repackaged into auto-scaling
/// serverless functions over LevelDB.
pub struct LambdaIndexFs {
    config: LambdaIndexFsConfig,
    platform: Platform<IndexFn>,
    deployments: Vec<DeploymentId>,
    metrics: Rc<RefCell<RunMetrics>>,
    /// client → (deployment → connected instance).
    connections: Rc<RefCell<Vec<HashMap<u32, InstanceId>>>>,
}

impl std::fmt::Debug for LambdaIndexFs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LambdaIndexFs").field("deployments", &self.deployments.len()).finish()
    }
}

impl LambdaIndexFs {
    /// Builds the system.
    #[must_use]
    pub fn build(sim: &mut Sim, config: LambdaIndexFsConfig) -> Self {
        let _ = &sim;
        let platform: Platform<IndexFn> = Platform::new(&PlatformConfig {
            cluster_vcpus: config.cluster_vcpus,
            faas: FaasParams::default(),
            net: config.net.clone(),
            pricing: lambda_sim::LambdaPricing::default(),
            request_ttl: config.timeout * 2,
        });
        let deployments: Vec<DeploymentId> = (0..config.deployments)
            .map(|d| {
                let backend = LevelDbBackend::new(
                    &format!("leveldb-{d}"),
                    4,
                    config.lsm.clone(),
                );
                let registry: CacheRegistry = Rc::new(RefCell::new(Vec::new()));
                let capacity = config.cache_capacity;
                let coord_rtt = config.net.coord_one_way;
                platform.register_deployment(
                    format!("lambda-indexfs-{d}"),
                    FunctionConfig {
                        vcpus: config.fn_vcpus,
                        mem_gb: 4.0,
                        concurrency: config.concurrency,
                        max_instances: u32::MAX,
                        min_instances: 0,
                    },
                    Box::new(move |_ctx| IndexFn {
                        backend: Rc::clone(&backend),
                        registry: Rc::clone(&registry),
                        cache: Rc::new(RefCell::new(HashMap::new())),
                        cache_capacity: capacity,
                        coord_rtt,
                        instance: Cell::new(None),
                    }),
                )
            })
            .collect();
        let connections =
            Rc::new(RefCell::new(vec![HashMap::new(); config.clients.max(1) as usize]));
        LambdaIndexFs {
            config,
            platform,
            deployments,
            metrics: Rc::new(RefCell::new(RunMetrics::new())),
            connections,
        }
    }

    /// Starts platform maintenance.
    pub fn start(&self, sim: &mut Sim) {
        self.platform.run_maintenance(sim);
    }

    /// Stops platform maintenance.
    pub fn stop(&self, _sim: &mut Sim) {
        self.platform.stop_maintenance();
    }

    /// The client-observed metrics.
    #[must_use]
    pub fn metrics(&self) -> Rc<RefCell<RunMetrics>> {
        Rc::clone(&self.metrics)
    }

    /// Number of clients configured.
    #[must_use]
    pub fn client_count(&self) -> usize {
        self.config.clients as usize
    }

    /// The hosting platform (scale observation).
    #[must_use]
    pub fn platform(&self) -> &Platform<IndexFn> {
        &self.platform
    }

    /// Submits one tree-test operation with the hybrid TCP/HTTP scheme.
    pub fn submit(&self, sim: &mut Sim, client: usize, op: TreeOp, done: TreeDone) {
        self.metrics.borrow_mut().issued += 1;
        let started = sim.now();
        self.attempt(sim, client, op, 0, started, Rc::new(RefCell::new(Some(done))));
    }

    fn attempt(
        &self,
        sim: &mut Sim,
        client: usize,
        op: TreeOp,
        tries: u32,
        started: lambda_sim::SimTime,
        done: Rc<RefCell<Option<TreeDone>>>,
    ) {
        if done.borrow().is_none() {
            return;
        }
        let dep = (dir_hash(op.path()) % u64::from(self.config.deployments)) as u32;
        let conn = self.connections.borrow()[client].get(&dep).copied();
        let replace = sim.rng().gen_bool(self.config.http_replace_prob);
        let this = self.clone_handle();
        let class = op.class();
        let metrics = Rc::clone(&self.metrics);
        let respond: Responder<TreeResp> = {
            let done = Rc::clone(&done);
            let connections = Rc::clone(&self.connections);
            Responder::new(move |sim, resp: TreeResp| {
                connections.borrow_mut()[client].insert(dep, resp.served_by);
                if let Some(d) = done.borrow_mut().take() {
                    let latency = sim.now().saturating_since(started);
                    metrics.borrow_mut().record_success(sim.now(), class, latency);
                    d(sim, resp.found);
                }
            })
        };
        let dispatched = match conn {
            Some(instance) if !replace => {
                self.metrics.borrow_mut().tcp_rpcs += 1;
                let ok = self.platform.deliver_tcp(sim, instance, op.clone(), respond);
                if !ok {
                    self.connections.borrow_mut()[client].remove(&dep);
                }
                ok
            }
            _ => {
                self.metrics.borrow_mut().http_rpcs += 1;
                self.platform.invoke_http(sim, self.deployments[dep as usize], op.clone(), respond);
                true
            }
        };
        if !dispatched {
            // Broken connection: immediate reroute.
            self.attempt(sim, client, op, tries, started, done);
            return;
        }
        // Timeout + retry.
        let timeout = self.config.timeout;
        let this2 = this.clone_handle();
        sim.schedule(timeout, move |sim| {
            if done.borrow().is_none() {
                return;
            }
            if tries >= 4 {
                if let Some(d) = done.borrow_mut().take() {
                    this2.metrics.borrow_mut().record_failure(true);
                    d(sim, false);
                }
                return;
            }
            this2.metrics.borrow_mut().retries += 1;
            this2.attempt(sim, client, op, tries + 1, started, done);
        });
    }

    fn clone_handle(&self) -> LambdaIndexFs {
        LambdaIndexFs {
            config: self.config.clone(),
            platform: self.platform.clone(),
            deployments: self.deployments.clone(),
            metrics: Rc::clone(&self.metrics),
            connections: Rc::clone(&self.connections),
        }
    }
}
