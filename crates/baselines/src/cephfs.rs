//! A CephFS-style metadata service (paper §5.3's third serverful
//! comparator).
//!
//! CephFS keeps the namespace in the memory of a Metadata Server (MDS)
//! cluster, partitioned by (dynamic) subtree assignment, durably journaled
//! to RADOS; its *capabilities* system lets clients complete many write
//! paths with fewer round trips than a store-backed design (§5.3.1's
//! explanation for CephFS's strong `create`/`mkdir` numbers).
//!
//! The model, calibrated to the behaviors Figs. 11/12 show:
//!
//! * reads are answered from MDS memory — the lowest small-scale latency
//!   of any system, so CephFS wins the first problem sizes;
//! * each MDS dispatches from an effectively narrow thread pool (the real
//!   MDS is largely single-threaded), so the cluster's aggregate
//!   throughput plateaus well below its nominal vCPU count — CephFS
//!   "fails to scale" at large client counts;
//! * writes pay a RADOS journal append on a per-MDS journal station whose
//!   bandwidth exceeds an NDB-backed commit path (capabilities), giving
//!   CephFS the best write throughput.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use lambda_fs::{DfsService, OpDone, RunMetrics};
use lambda_namespace::{
    DfsPath, FsError, FsOp, Inode, InodeId, OpOutcome, OpResult, Partitioner, ROOT_INODE_ID,
};
use lambda_sim::params::NetParams;
use lambda_sim::{every, CostMeter, Dist, Sim, SimDuration, Station, StationRef, VmPricing};

/// Configuration for the CephFS-style MDS cluster.
#[derive(Debug, Clone)]
pub struct CephFsConfig {
    /// Number of MDS daemons.
    pub mds_count: u32,
    /// vCPUs provisioned per MDS host (billed; mostly idle, reflecting
    /// the MDS's narrow dispatch).
    pub vcpus_per_mds: u32,
    /// Effective parallel dispatch per MDS.
    pub dispatch_width: u32,
    /// CPU service per read-class op.
    pub read_service: Dist,
    /// CPU service per write-class op (excluding the journal).
    pub write_service: Dist,
    /// Journal append service per write.
    pub journal_service: Dist,
    /// Parallel journal writers per MDS.
    pub journal_width: u32,
    /// Number of clients.
    pub clients: u32,
    /// Network model.
    pub net: NetParams,
}

impl Default for CephFsConfig {
    fn default() -> Self {
        CephFsConfig {
            mds_count: 32,
            vcpus_per_mds: 16,
            dispatch_width: 2,
            read_service: Dist::uniform_ms(0.10, 0.20),
            write_service: Dist::uniform_ms(0.15, 0.30),
            journal_service: Dist::uniform_ms(0.9, 1.4),
            journal_width: 1,
            clients: 64,
            net: NetParams::default(),
        }
    }
}

impl CephFsConfig {
    /// A cluster sized from a total vCPU budget (16 vCPUs per MDS host).
    #[must_use]
    pub fn sized(total_vcpus: u32, clients: u32) -> Self {
        CephFsConfig { mds_count: (total_vcpus / 16).max(1), clients, ..Default::default() }
    }
}

/// The in-memory namespace shared by the MDS cluster (authoritative state
/// lives in MDS memory; the journal provides durability).
#[derive(Debug, Default)]
struct MemNamespace {
    inodes: BTreeMap<InodeId, Inode>,
    children: BTreeMap<(InodeId, String), InodeId>,
    next_id: InodeId,
}

impl MemNamespace {
    fn new() -> Self {
        let mut ns = MemNamespace {
            inodes: BTreeMap::new(),
            children: BTreeMap::new(),
            next_id: ROOT_INODE_ID + 1,
        };
        ns.inodes.insert(ROOT_INODE_ID, Inode::root());
        ns
    }

    fn alloc(&mut self) -> InodeId {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    fn resolve(&self, path: &DfsPath) -> Result<Inode, FsError> {
        let mut current = ROOT_INODE_ID;
        for comp in path.components() {
            let parent = &self.inodes[&current];
            if !parent.is_dir() {
                return Err(FsError::NotADirectory(path.to_string()));
            }
            current = *self
                .children
                .get(&(current, comp.to_string()))
                .ok_or_else(|| FsError::NotFound(path.to_string()))?;
        }
        Ok(self.inodes[&current].clone())
    }

    fn add(&mut self, path: &DfsPath, dir: bool, now_nanos: u64) -> OpResult {
        let parent_path = path.parent().ok_or_else(|| FsError::AlreadyExists("/".into()))?;
        let parent = self.resolve(&parent_path)?;
        if !parent.is_dir() {
            return Err(FsError::NotADirectory(parent_path.to_string()));
        }
        let name = path.file_name().expect("non-root").to_string();
        if self.children.contains_key(&(parent.id, name.clone())) {
            return Err(FsError::AlreadyExists(path.to_string()));
        }
        let id = self.alloc();
        let mut inode = if dir {
            Inode::directory(id, parent.id, name.clone())
        } else {
            Inode::file(id, parent.id, name.clone())
        };
        inode.mtime_nanos = now_nanos;
        self.inodes.insert(id, inode.clone());
        self.children.insert((parent.id, name), id);
        Ok(OpOutcome::Created(Box::new(inode)))
    }

    fn subtree_ids(&self, root: InodeId) -> Vec<InodeId> {
        let mut out = Vec::new();
        let mut stack = vec![root];
        while let Some(dir) = stack.pop() {
            let kids: Vec<InodeId> = self
                .children
                .range((dir, String::new())..(dir + 1, String::new()))
                .map(|(_, id)| *id)
                .collect();
            for id in kids {
                if self.inodes[&id].is_dir() {
                    stack.push(id);
                }
                out.push(id);
            }
        }
        out
    }

    fn delete(&mut self, path: &DfsPath) -> Result<(OpOutcome, u64), FsError> {
        let target = self.resolve(path)?;
        let descendants = if target.is_dir() { self.subtree_ids(target.id) } else { Vec::new() };
        for id in &descendants {
            let inode = self.inodes.remove(id).expect("collected");
            self.children.remove(&(inode.parent, inode.name.to_string()));
        }
        self.inodes.remove(&target.id);
        self.children.remove(&(target.parent, target.name.to_string()));
        let n = descendants.len() as u64 + 1;
        Ok((OpOutcome::Deleted(n), n))
    }

    fn mv(&mut self, src: &DfsPath, dst: &DfsPath) -> Result<(OpOutcome, u64), FsError> {
        if src.is_root() || dst.starts_with(src) {
            return Err(FsError::Retryable("invalid mv".into()));
        }
        let target = self.resolve(src)?;
        let dst_parent_path = dst.parent().ok_or_else(|| FsError::AlreadyExists("/".into()))?;
        let dst_parent = self.resolve(&dst_parent_path)?;
        if !dst_parent.is_dir() {
            return Err(FsError::NotADirectory(dst_parent_path.to_string()));
        }
        let dst_name = dst.file_name().expect("non-root").to_string();
        if self.children.contains_key(&(dst_parent.id, dst_name.clone())) {
            return Err(FsError::AlreadyExists(dst.to_string()));
        }
        let moved_count =
            if target.is_dir() { self.subtree_ids(target.id).len() as u64 + 1 } else { 1 };
        self.children.remove(&(target.parent, target.name.to_string()));
        self.children.insert((dst_parent.id, dst_name.clone()), target.id);
        let inode = self.inodes.get_mut(&target.id).expect("resolved");
        inode.parent = dst_parent.id;
        inode.name = dst_name.into();
        Ok((OpOutcome::Moved(moved_count), moved_count))
    }

    fn ls(&self, path: &DfsPath) -> OpResult {
        let target = self.resolve(path)?;
        if !target.is_dir() {
            return Ok(OpOutcome::Listing(vec![target.name.to_string()]));
        }
        let names = self
            .children
            .range((target.id, String::new())..(target.id + 1, String::new()))
            .map(|((_, name), _)| name.clone())
            .collect();
        Ok(OpOutcome::Listing(names))
    }
}

struct Mds {
    cpu: StationRef,
    journal: StationRef,
}

/// The CephFS-style MDS cluster.
pub struct CephFs {
    config: CephFsConfig,
    mds: Vec<Rc<Mds>>,
    namespace: Rc<RefCell<MemNamespace>>,
    partitioner: Rc<Partitioner>,
    metrics: Rc<RefCell<RunMetrics>>,
    meter: Rc<RefCell<CostMeter>>,
    billing_on: Rc<std::cell::Cell<bool>>,
}

impl std::fmt::Debug for CephFs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CephFs").field("mds", &self.mds.len()).finish()
    }
}

impl CephFs {
    /// Builds the cluster.
    #[must_use]
    pub fn build(sim: &mut Sim, config: CephFsConfig) -> Self {
        let _ = &sim;
        let mds = (0..config.mds_count)
            .map(|i| {
                Rc::new(Mds {
                    cpu: Station::new(format!("mds-{i}"), config.dispatch_width.max(1)),
                    journal: Station::new(format!("mds-journal-{i}"), config.journal_width.max(1)),
                })
            })
            .collect();
        CephFs {
            partitioner: Rc::new(Partitioner::new(config.mds_count.max(1))),
            mds,
            namespace: Rc::new(RefCell::new(MemNamespace::new())),
            metrics: Rc::new(RefCell::new(RunMetrics::new())),
            meter: Rc::new(RefCell::new(CostMeter::new())),
            billing_on: Rc::new(std::cell::Cell::new(false)),
            config,
        }
    }

    /// Starts per-second VM billing. Idempotent.
    pub fn start(&self, sim: &mut Sim) {
        if self.billing_on.replace(true) {
            return;
        }
        let meter = Rc::clone(&self.meter);
        let vcpus = f64::from(self.config.mds_count * self.config.vcpus_per_mds);
        let on = Rc::clone(&self.billing_on);
        every(sim, sim.now() + SimDuration::from_secs(1), SimDuration::from_secs(1), move |sim| {
            if !on.get() {
                return false;
            }
            meter.borrow_mut().charge_vm(
                sim.now(),
                &VmPricing::default(),
                vcpus,
                SimDuration::from_secs(1),
            );
            true
        });
    }

    /// Stops billing at its next tick.
    pub fn stop(&self, _sim: &mut Sim) {
        self.billing_on.set(false);
    }

    /// Cumulative cost meter.
    #[must_use]
    pub fn cost_meter(&self) -> CostMeter {
        self.meter.borrow().clone()
    }

    /// Submits an operation.
    pub fn submit(&self, sim: &mut Sim, _client: usize, op: FsOp, done: OpDone) {
        self.metrics.borrow_mut().issued += 1;
        self.metrics.borrow_mut().tcp_rpcs += 1;
        let mds_idx =
            self.partitioner.deployment_for_path(op.primary_path()) as usize % self.mds.len();
        let mds = Rc::clone(&self.mds[mds_idx]);
        let hop = sim.rng().sample_duration(&self.config.net.tcp_one_way);
        let namespace = Rc::clone(&self.namespace);
        let config = self.config.clone();
        let metrics = Rc::clone(&self.metrics);
        let started = sim.now();
        sim.schedule(hop, move |sim| {
            let is_write = op.is_write();
            let class = op.class();
            let cpu_service = if is_write {
                sim.rng().sample_duration(&config.write_service)
            } else {
                sim.rng().sample_duration(&config.read_service)
            };
            let net = config.net.clone();
            let journal_service = sim.rng().sample_duration(&config.journal_service);
            let mds2 = Rc::clone(&mds);
            Station::submit(&mds.cpu, sim, cpu_service, move |sim| {
                let finish = move |sim: &mut Sim, result: OpResult| {
                    let back = sim.rng().sample_duration(&net.tcp_one_way);
                    sim.schedule(back, move |sim| {
                        let latency = sim.now().saturating_since(started);
                        match &result {
                            Ok(_) => metrics.borrow_mut().record_success(
                                sim.now(),
                                class,
                                latency,
                            ),
                            Err(e) => {
                                metrics.borrow_mut().record_failure(matches!(e, FsError::Timeout));
                            }
                        }
                        done(sim, result);
                    });
                };
                if is_write {
                    // Journal first (durability), then apply in memory.
                    let namespace = Rc::clone(&namespace);
                    Station::submit(&mds2.journal, sim, journal_service, move |sim| {
                        let now_nanos = sim.now().as_nanos();
                        let result = {
                            let mut ns = namespace.borrow_mut();
                            match &op {
                                FsOp::CreateFile(p) => ns.add(p, false, now_nanos),
                                FsOp::Mkdir(p) => ns.add(p, true, now_nanos),
                                FsOp::Delete(p) => ns.delete(p).map(|(o, _)| o),
                                FsOp::Mv(s, d) => ns.mv(s, d).map(|(o, _)| o),
                                _ => unreachable!("read op on write path"),
                            }
                        };
                        finish(sim, result);
                    });
                } else {
                    let result = {
                        let ns = namespace.borrow();
                        match &op {
                            FsOp::ReadFile(p) | FsOp::Stat(p) => {
                                ns.resolve(p).map(|i| OpOutcome::Meta(Box::new(i)))
                            }
                            FsOp::Ls(p) => ns.ls(p),
                            _ => unreachable!("write op on read path"),
                        }
                    };
                    finish(sim, result);
                }
            });
        });
    }
}

impl DfsService for CephFs {
    fn service_name(&self) -> &'static str {
        "cephfs"
    }

    fn submit_op(&self, sim: &mut Sim, client: usize, op: FsOp, done: OpDone) {
        self.submit(sim, client, op, done);
    }

    fn client_count(&self) -> usize {
        self.config.clients as usize
    }

    fn run_metrics(&self) -> Rc<RefCell<RunMetrics>> {
        Rc::clone(&self.metrics)
    }

    fn bootstrap_tree(&self, root: &DfsPath, dirs: usize, files_per_dir: usize) -> Vec<DfsPath> {
        let mut ns = self.namespace.borrow_mut();
        if !root.is_root() && ns.resolve(root).is_err() {
            ns.add(root, true, 0).expect("bootstrap root");
        }
        let mut out = Vec::with_capacity(dirs);
        for d in 0..dirs {
            let dir = root.join(&format!("dir{d:05}")).expect("valid");
            ns.add(&dir, true, 0).expect("bootstrap dir");
            for f in 0..files_per_dir {
                let file = dir.join(&format!("file{f:05}")).expect("valid");
                ns.add(&file, false, 0).expect("bootstrap file");
            }
            out.push(dir);
        }
        out
    }

    fn bootstrap_file(&self, path: &DfsPath) {
        self.namespace.borrow_mut().add(path, false, 0).expect("bootstrap file");
    }
}
