//! The HopsFS baselines (paper §2, Fig. 1(b); evaluated throughout §5):
//!
//! * **Vanilla HopsFS** — a statically fixed cluster of *stateless*
//!   NameNodes in front of MySQL Cluster NDB. Every metadata operation
//!   goes to the store, so throughput is capped by the NDB cluster and
//!   the NameNodes behave as proxies (the paper observes ≈70 % CPU
//!   utilization with no way to use the rest).
//! * **HopsFS+Cache** — the paper's serverful, cache-based baseline: the
//!   same cluster with each NameNode holding a λFS-style metadata cache,
//!   kept coherent by direct peer INV/ACK round trips; clients route by
//!   consistent hashing on the parent directory so caches actually hit.
//! * **CN HopsFS+Cache** — the cost-normalized variant (§5.2.2): the same
//!   system provisioned with only as many vCPUs as λFS's dollars buy.

use std::cell::RefCell;
use std::rc::Rc;

use lambda_fs::{DfsService, OpDone, OpEngine, RunMetrics, SubtreeSettings};
use lambda_namespace::{
    DataNodeFleet, FsOp, MetadataCache, MetadataSchema, Partitioner,
};
use lambda_sim::params::{CpuParams, NetParams, StoreParams};
use lambda_sim::{CostMeter, Sim, SimDuration, Station};
use lambda_store::Db;

use crate::serverful::{PeerCoherence, Routing, ServerNode, ServerfulCluster};

/// Configuration for a HopsFS-family deployment.
#[derive(Debug, Clone)]
pub struct HopsFsConfig {
    /// Number of NameNode servers.
    pub namenodes: u32,
    /// vCPUs per NameNode (the evaluation used 16-vCPU r5.4xlarge).
    pub vcpus_per_nn: u32,
    /// Whether NameNodes cache metadata (HopsFS+Cache).
    pub cache_enabled: bool,
    /// Cache capacity per NameNode, in inodes.
    pub cache_capacity: usize,
    /// Number of simulated clients.
    pub clients: u32,
    /// Transparent retry budget.
    pub max_retries: u32,
    /// Subtree sub-operation batch size.
    pub subtree_batch_size: usize,
    /// Concurrent in-flight subtree batches (HopsFS runs sub-operations
    /// in parallel on the coordinating NameNode; no offloading).
    pub subtree_parallelism: usize,
    /// Number of DataNodes publishing reports.
    pub datanodes: u32,
    /// Network model.
    pub net: NetParams,
    /// NameNode CPU model.
    pub cpu: CpuParams,
    /// NDB capacity model.
    pub store: StoreParams,
    /// Store lock-wait timeout.
    pub lock_timeout: SimDuration,
}

impl Default for HopsFsConfig {
    fn default() -> Self {
        HopsFsConfig {
            namenodes: 32,
            vcpus_per_nn: 16,
            cache_enabled: false,
            cache_capacity: 2_000_000,
            clients: 64,
            max_retries: 6,
            subtree_batch_size: 512,
            subtree_parallelism: 7,
            datanodes: 8,
            net: NetParams::default(),
            cpu: CpuParams::default(),
            store: StoreParams::default(),
            lock_timeout: SimDuration::from_secs(5),
        }
    }
}

impl HopsFsConfig {
    /// Vanilla HopsFS with `total_vcpus` split over 16-vCPU NameNodes.
    #[must_use]
    pub fn vanilla(total_vcpus: u32, clients: u32) -> Self {
        let namenodes = (total_vcpus / 16).max(1);
        HopsFsConfig { namenodes, clients, ..Default::default() }
    }

    /// HopsFS+Cache with `total_vcpus` split over 16-vCPU NameNodes.
    #[must_use]
    pub fn with_cache(total_vcpus: u32, clients: u32) -> Self {
        HopsFsConfig { cache_enabled: true, ..Self::vanilla(total_vcpus, clients) }
    }
}

/// A HopsFS deployment (vanilla or +Cache).
pub struct HopsFs {
    config: HopsFsConfig,
    cluster: ServerfulCluster,
    db: Db,
    schema: MetadataSchema,
    fleet: DataNodeFleet,
}

impl std::fmt::Debug for HopsFs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HopsFs")
            .field("namenodes", &self.config.namenodes)
            .field("cached", &self.config.cache_enabled)
            .finish()
    }
}

impl HopsFs {
    /// Builds the deployment.
    #[must_use]
    pub fn build(sim: &mut Sim, config: HopsFsConfig) -> Self {
        let _ = &sim;
        let db = Db::new(&config.store, config.lock_timeout);
        let schema = MetadataSchema::install(&db);
        let partitioner = Rc::new(Partitioner::new(config.namenodes.max(1)));
        // Build caches first so every node's coherence hook can see all
        // peers.
        let caches: Vec<Rc<RefCell<MetadataCache>>> = (0..config.namenodes)
            .map(|_| Rc::new(RefCell::new(MetadataCache::new(config.cache_capacity))))
            .collect();
        let nodes: Vec<ServerNode> = (0..config.namenodes as usize)
            .map(|i| {
                let cpu = Station::new(format!("hops-nn-{i}"), config.vcpus_per_nn.max(1));
                let engine = OpEngine {
                    db: db.clone(),
                    schema: schema.clone(),
                    cpu: Rc::clone(&cpu),
                    cpu_params: config.cpu.clone(),
                    cache: config.cache_enabled.then(|| Rc::clone(&caches[i])),
                    coherence: config.cache_enabled.then(|| {
                        Rc::new(PeerCoherence::new(caches.clone(), i, config.net.clone()))
                            as Rc<dyn lambda_fs::CoherenceHook>
                    }),
                    subtree: SubtreeSettings {
                        batch_size: config.subtree_batch_size,
                        parallelism: config.subtree_parallelism,
                        offloader: None,
                        holder_tag: i as u64 + 1,
                        holder_alive: None,
                    },
                };
                ServerNode { cpu, engine }
            })
            .collect();
        let routing =
            if config.cache_enabled { Routing::HashParent } else { Routing::RoundRobin };
        let cluster = ServerfulCluster::new(
            nodes,
            routing,
            partitioner,
            config.net.clone(),
            config.namenodes * config.vcpus_per_nn,
            config.clients,
            config.max_retries,
        );
        let fleet = DataNodeFleet::new(&db, &schema, config.datanodes, SimDuration::from_secs(10));
        HopsFs { config, cluster, db, schema, fleet }
    }

    /// Starts billing and DataNode reporting.
    pub fn start(&self, sim: &mut Sim) {
        self.cluster.start_billing(sim);
        self.fleet.start(sim);
    }

    /// Stops background activity so the event queue can drain.
    pub fn stop(&self, _sim: &mut Sim) {
        self.cluster.stop_billing();
        self.fleet.stop();
    }

    /// Submits an operation.
    pub fn submit(&self, sim: &mut Sim, client: usize, op: FsOp, done: OpDone) {
        self.cluster.submit(sim, client, op, done);
    }

    /// The persistent store.
    #[must_use]
    pub fn db(&self) -> &Db {
        &self.db
    }

    /// The store schema.
    #[must_use]
    pub fn schema(&self) -> &MetadataSchema {
        &self.schema
    }

    /// The configuration this deployment was built with.
    #[must_use]
    pub fn config(&self) -> &HopsFsConfig {
        &self.config
    }

    /// Cumulative VM cost (Fig. 9's HopsFS curve: $2.50 for the 25 k run).
    #[must_use]
    pub fn cost_meter(&self) -> CostMeter {
        self.cluster.cost_meter()
    }

    /// Total vCPUs provisioned.
    #[must_use]
    pub fn vcpus_total(&self) -> u32 {
        self.cluster.vcpus_total()
    }

    /// Namespace consistency violations (empty = consistent).
    #[must_use]
    pub fn check_consistency(&self) -> Vec<String> {
        self.schema.check_consistency(&self.db)
    }
}

impl DfsService for HopsFs {
    fn service_name(&self) -> &'static str {
        if self.config.cache_enabled {
            "hopsfs+cache"
        } else {
            "hopsfs"
        }
    }

    fn submit_op(&self, sim: &mut Sim, client: usize, op: FsOp, done: OpDone) {
        self.submit(sim, client, op, done);
    }

    fn client_count(&self) -> usize {
        self.cluster.clients() as usize
    }

    fn run_metrics(&self) -> Rc<RefCell<RunMetrics>> {
        self.cluster.metrics()
    }

    fn bootstrap_tree(
        &self,
        root: &lambda_namespace::DfsPath,
        dirs: usize,
        files_per_dir: usize,
    ) -> Vec<lambda_namespace::DfsPath> {
        self.schema.bootstrap_tree(&self.db, root, dirs, files_per_dir)
    }

    fn bootstrap_file(&self, path: &lambda_namespace::DfsPath) {
        self.schema.bootstrap_create(&self.db, path);
    }
}
