//! # lambda-baselines
//!
//! Every comparator system of the λFS evaluation (paper §5.1),
//! re-implemented against the same substrates (store, DES, network
//! model) so the figures compare *architectures*, not measurement
//! artifacts:
//!
//! * [`HopsFs`] — vanilla HopsFS (stateless NameNodes over NDB) and
//!   HopsFS+Cache (serverful caching + peer coherence), including the
//!   cost-normalized variant;
//! * [`CephFs`] — a CephFS-style in-memory MDS cluster with journaling
//!   and capability-efficient writes;
//! * [`InfiniCacheStyle`] — λFS constrained to a fixed deployment with
//!   per-operation HTTP invocations;
//! * [`IndexFs`] / [`LambdaIndexFs`] — the §5.7 portability pair over the
//!   real LSM-tree substrate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cephfs;
mod hopsfs;
mod indexfs;
mod infinicache;
mod serverful;

pub use cephfs::{CephFs, CephFsConfig};
pub use hopsfs::{HopsFs, HopsFsConfig};
pub use indexfs::{
    IndexFs, IndexFsConfig, LambdaIndexFs, LambdaIndexFsConfig, TreeDone, TreeOp, TreeResp,
};
pub use infinicache::InfiniCacheStyle;
pub use serverful::{PeerCoherence, Routing, ServerNode, ServerfulCluster};

#[cfg(test)]
mod tests {
    use super::*;
    use lambda_fs::DfsService;
    use lambda_namespace::{DfsPath, FsError, FsOp, OpOutcome, OpResult};
    use lambda_sim::{Sim, SimDuration};
    use std::cell::RefCell;
    use std::rc::Rc;

    fn p(s: &str) -> DfsPath {
        s.parse().unwrap()
    }

    fn run_op(sim: &mut Sim, svc: &dyn DfsService, client: usize, op: FsOp) -> OpResult {
        let slot: Rc<RefCell<Option<OpResult>>> = Rc::new(RefCell::new(None));
        let out = Rc::clone(&slot);
        svc.submit_op(sim, client, op, Box::new(move |_s, r| *out.borrow_mut() = Some(r)));
        let deadline = sim.now() + SimDuration::from_secs(60);
        while slot.borrow().is_none() && sim.now() < deadline {
            if !sim.step() {
                break;
            }
        }
        let r = slot.borrow_mut().take();
        r.expect("op did not complete")
    }

    fn lifecycle(sim: &mut Sim, svc: &dyn DfsService) {
        assert!(matches!(
            run_op(sim, svc, 0, FsOp::Mkdir(p("/a"))).unwrap(),
            OpOutcome::Created(_)
        ));
        run_op(sim, svc, 1, FsOp::CreateFile(p("/a/f"))).unwrap();
        assert!(matches!(
            run_op(sim, svc, 2, FsOp::ReadFile(p("/a/f"))).unwrap(),
            OpOutcome::Meta(_)
        ));
        let OpOutcome::Listing(names) = run_op(sim, svc, 3, FsOp::Ls(p("/a"))).unwrap() else {
            panic!("expected Listing")
        };
        assert_eq!(names, vec!["f"]);
        run_op(sim, svc, 0, FsOp::Mv(p("/a/f"), p("/a/g"))).unwrap();
        assert!(matches!(
            run_op(sim, svc, 1, FsOp::ReadFile(p("/a/f"))),
            Err(FsError::NotFound(_))
        ));
        run_op(sim, svc, 2, FsOp::Delete(p("/a/g"))).unwrap();
        run_op(sim, svc, 3, FsOp::Delete(p("/a"))).unwrap();
        assert!(matches!(
            run_op(sim, svc, 0, FsOp::Stat(p("/a"))),
            Err(FsError::NotFound(_))
        ));
    }

    #[test]
    fn hopsfs_serves_the_full_lifecycle() {
        let mut sim = Sim::new(1);
        let fs = HopsFs::build(&mut sim, HopsFsConfig::vanilla(64, 8));
        fs.start(&mut sim);
        lifecycle(&mut sim, &fs);
        assert!(fs.check_consistency().is_empty());
        fs.stop(&mut sim);
        // Stateless NameNodes: every read hit the store.
        assert!(fs.db().stats().locked_reads > 0);
    }

    #[test]
    fn hopsfs_cache_avoids_store_reads_on_repeats() {
        let mut sim = Sim::new(2);
        let fs = HopsFs::build(&mut sim, HopsFsConfig::with_cache(64, 8));
        fs.start(&mut sim);
        run_op(&mut sim, &fs, 0, FsOp::Mkdir(p("/hot"))).unwrap();
        run_op(&mut sim, &fs, 0, FsOp::CreateFile(p("/hot/f"))).unwrap();
        run_op(&mut sim, &fs, 0, FsOp::ReadFile(p("/hot/f"))).unwrap();
        let before = fs.db().stats().locked_reads;
        for _ in 0..30 {
            run_op(&mut sim, &fs, 0, FsOp::ReadFile(p("/hot/f"))).unwrap();
        }
        let after = fs.db().stats().locked_reads;
        assert!(after - before <= 2, "cache ineffective: {} store reads", after - before);
        fs.stop(&mut sim);
    }

    #[test]
    fn hopsfs_cache_peer_invalidation_prevents_stale_reads() {
        let mut sim = Sim::new(3);
        let fs = HopsFs::build(&mut sim, HopsFsConfig::with_cache(64, 8));
        fs.start(&mut sim);
        run_op(&mut sim, &fs, 0, FsOp::Mkdir(p("/s"))).unwrap();
        run_op(&mut sim, &fs, 0, FsOp::CreateFile(p("/s/doc"))).unwrap();
        for c in 0..8 {
            run_op(&mut sim, &fs, c, FsOp::ReadFile(p("/s/doc"))).unwrap();
        }
        run_op(&mut sim, &fs, 0, FsOp::Delete(p("/s/doc"))).unwrap();
        for c in 0..8 {
            assert!(matches!(
                run_op(&mut sim, &fs, c, FsOp::ReadFile(p("/s/doc"))),
                Err(FsError::NotFound(_))
            ));
        }
        fs.stop(&mut sim);
    }

    #[test]
    fn cephfs_serves_the_full_lifecycle_fast_reads() {
        let mut sim = Sim::new(4);
        let fs = CephFs::build(&mut sim, CephFsConfig::sized(128, 8));
        fs.start(&mut sim);
        lifecycle(&mut sim, &fs);
        // Reads are in-memory: sub-millisecond is typical.
        run_op(&mut sim, &fs, 0, FsOp::Mkdir(p("/q"))).unwrap();
        run_op(&mut sim, &fs, 0, FsOp::Stat(p("/q"))).unwrap();
        let m = fs.run_metrics();
        let mut m = m.borrow_mut();
        let stat = m.latency.get_mut(&lambda_namespace::OpClass::Stat).unwrap();
        assert!(stat.percentile(0.5) < SimDuration::from_millis(2));
        fs.stop(&mut sim);
    }

    #[test]
    fn infinicache_style_only_speaks_http() {
        let mut sim = Sim::new(5);
        let base = lambda_fs::LambdaFsConfig {
            deployments: 4,
            clients: 8,
            client_vms: 2,
            datanodes: 2,
            ..Default::default()
        };
        let fs = InfiniCacheStyle::build(&mut sim, base);
        fs.start(&mut sim);
        run_op(&mut sim, &fs, 0, FsOp::Mkdir(p("/ic"))).unwrap();
        for i in 0..20 {
            run_op(&mut sim, &fs, i % 8, FsOp::Stat(p("/ic"))).unwrap();
        }
        let m = fs.run_metrics();
        let m = m.borrow();
        assert_eq!(m.tcp_rpcs, 0, "InfiniCache-style must never use TCP RPCs");
        assert!(m.http_rpcs >= 21);
        // Fixed deployment: at most one instance per deployment.
        assert!(fs.system().active_namenodes() <= 4);
        fs.stop(&mut sim);
    }

    #[test]
    fn indexfs_tree_test_round_trip() {
        let mut sim = Sim::new(6);
        let fs = IndexFs::build(&mut sim, IndexFsConfig::default());
        let found = Rc::new(RefCell::new(Vec::new()));
        for i in 0..50 {
            let out = Rc::clone(&found);
            fs.submit(
                &mut sim,
                i % 4,
                TreeOp::Mknod(p(&format!("/d{}/f{i}", i % 3))),
                Box::new(move |_s, ok| out.borrow_mut().push(ok)),
            );
        }
        sim.run();
        for i in 0..50 {
            let out = Rc::clone(&found);
            fs.submit(
                &mut sim,
                i % 4,
                TreeOp::Getattr(p(&format!("/d{}/f{i}", i % 3))),
                Box::new(move |_s, ok| out.borrow_mut().push(ok)),
            );
        }
        sim.run();
        assert_eq!(found.borrow().len(), 100);
        assert!(found.borrow().iter().all(|ok| *ok), "getattr missed a created node");
        // Misses on never-created paths.
        let missing = Rc::new(RefCell::new(None));
        let out = Rc::clone(&missing);
        fs.submit(&mut sim, 0, TreeOp::Getattr(p("/nope/x")), Box::new(move |_s, ok| {
            *out.borrow_mut() = Some(ok);
        }));
        sim.run();
        assert_eq!(*missing.borrow(), Some(false));
    }

    #[test]
    fn lambda_indexfs_scales_and_caches() {
        let mut sim = Sim::new(7);
        let fs = LambdaIndexFs::build(&mut sim, LambdaIndexFsConfig::default());
        fs.start(&mut sim);
        let done = Rc::new(RefCell::new(0u32));
        for i in 0..100 {
            let d = Rc::clone(&done);
            fs.submit(
                &mut sim,
                i % 8,
                TreeOp::Mknod(p(&format!("/dir{}/f{i}", i % 4))),
                Box::new(move |_s, ok| {
                    assert!(ok);
                    *d.borrow_mut() += 1;
                }),
            );
        }
        sim.run_for(SimDuration::from_secs(30));
        assert_eq!(*done.borrow(), 100);
        // Reads after writes: every node is found.
        let hits = Rc::new(RefCell::new(0u32));
        for i in 0..100 {
            let h = Rc::clone(&hits);
            fs.submit(
                &mut sim,
                i % 8,
                TreeOp::Getattr(p(&format!("/dir{}/f{i}", i % 4))),
                Box::new(move |_s, ok| {
                    assert!(ok, "stale or missing read");
                    *h.borrow_mut() += 1;
                }),
            );
        }
        sim.run_for(SimDuration::from_secs(30));
        assert_eq!(*hits.borrow(), 100);
        assert!(fs.platform().total_instances() >= 1);
        let m = fs.metrics();
        let m = m.borrow();
        assert!(m.tcp_rpcs > 0, "hybrid RPC never used TCP");
        fs.stop(&mut sim);
    }
}
