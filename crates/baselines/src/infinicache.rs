//! The InfiniCache-style comparator (paper §5.1):
//!
//! > "InfiniCache uses a static, fixed-size deployment of cloud functions
//! > to serve I/O operations via short TCP connections that require
//! > invoking functions for every operation. InfiniCache thus serves as
//! > an approximation of λFS with no auto-scaling or long-lived TCP-RPC
//! > request mechanism."
//!
//! The comparator is therefore λFS itself with three knobs turned:
//! every RPC goes through the FaaS gateway (`http_replace_prob = 1`),
//! each deployment is pinned to a single instance (no intra-deployment
//! scale-out), and anti-thrashing is disabled (it would suppress the
//! HTTP-per-op behavior being measured). The evaluation's observation —
//! the platform drowning in HTTP invocations under load (§5.2.2) —
//! emerges from exactly these settings.

use std::cell::RefCell;
use std::rc::Rc;

use lambda_fs::{DfsService, LambdaFs, LambdaFsConfig, OpDone, RunMetrics};
use lambda_namespace::{DfsPath, FsOp};
use lambda_sim::Sim;

/// The InfiniCache-style fixed FaaS deployment.
pub struct InfiniCacheStyle {
    inner: LambdaFs,
}

impl std::fmt::Debug for InfiniCacheStyle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InfiniCacheStyle").finish_non_exhaustive()
    }
}

impl InfiniCacheStyle {
    /// Builds the comparator from a λFS base configuration, applying the
    /// InfiniCache constraints.
    #[must_use]
    pub fn build(sim: &mut Sim, base: LambdaFsConfig) -> Self {
        let config = LambdaFsConfig {
            // Per-op function invocation: every RPC is HTTP.
            http_replace_prob: 1.0,
            // Static fixed-size deployment: no intra-deployment scaling.
            max_instances_per_deployment: 1,
            // Anti-thrashing would fall back to TCP, defeating the model.
            anti_thrash_threshold: f64::INFINITY,
            ..base
        };
        InfiniCacheStyle { inner: LambdaFs::build(sim, config) }
    }

    /// Starts background activity.
    pub fn start(&self, sim: &mut Sim) {
        self.inner.start(sim);
    }

    /// Stops background activity.
    pub fn stop(&self, sim: &mut Sim) {
        self.inner.stop(sim);
    }

    /// The wrapped system (metrics, platform, store access).
    #[must_use]
    pub fn system(&self) -> &LambdaFs {
        &self.inner
    }
}

impl DfsService for InfiniCacheStyle {
    fn service_name(&self) -> &'static str {
        "infinicache-style"
    }

    fn submit_op(&self, sim: &mut Sim, client: usize, op: FsOp, done: OpDone) {
        self.inner.submit(sim, client, op, done);
    }

    fn client_count(&self) -> usize {
        self.inner.client_count()
    }

    fn run_metrics(&self) -> Rc<RefCell<RunMetrics>> {
        self.inner.metrics()
    }

    fn bootstrap_tree(&self, root: &DfsPath, dirs: usize, files_per_dir: usize) -> Vec<DfsPath> {
        self.inner.bootstrap_tree(root, dirs, files_per_dir)
    }

    fn bootstrap_file(&self, path: &DfsPath) {
        self.inner.bootstrap_file(path);
    }
}
