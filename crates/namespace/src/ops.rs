//! The file-system metadata operations and their results.
//!
//! These are the seven operation types of the evaluation's industrial
//! workload (Table 2) and micro-benchmarks (Figs. 11, 12, 14): `create
//! file`, `mkdirs`, `delete file/dir`, `mv file/dir`, `read file`,
//! `stat file/dir`, and `ls file/dir`.

use std::error::Error;
use std::fmt;

use crate::inode::Inode;
use crate::path::DfsPath;

/// A metadata request submitted by a DFS client.
#[derive(Debug, Clone, PartialEq)]
pub enum FsOp {
    /// Create an (empty) file; fails if it exists.
    CreateFile(DfsPath),
    /// Create a directory; parents must exist; fails if it exists.
    Mkdir(DfsPath),
    /// Delete a file, or recursively delete a directory (subtree op).
    Delete(DfsPath),
    /// Rename/move a file or directory (subtree op for directories).
    Mv(DfsPath, DfsPath),
    /// Open-for-read: resolve the path, check permissions, return the
    /// inode and block locations.
    ReadFile(DfsPath),
    /// Stat: resolve and return the inode's attributes.
    Stat(DfsPath),
    /// List a directory's children (or the file itself).
    Ls(DfsPath),
}

/// Operation categories used to aggregate latency/throughput (Fig. 10's
/// CDFs, Figs. 11/12's per-op panels).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OpClass {
    /// `read file`.
    Read,
    /// `stat file/dir`.
    Stat,
    /// `ls file/dir`.
    Ls,
    /// `create file`.
    Create,
    /// `mkdirs`.
    Mkdir,
    /// `delete file/dir`.
    Delete,
    /// `mv file/dir`.
    Mv,
}

impl OpClass {
    /// All classes, in the order the figures report them.
    pub const ALL: [OpClass; 7] = [
        OpClass::Read,
        OpClass::Stat,
        OpClass::Ls,
        OpClass::Create,
        OpClass::Mkdir,
        OpClass::Delete,
        OpClass::Mv,
    ];

    /// Whether operations of this class mutate the namespace.
    #[must_use]
    pub fn is_write(self) -> bool {
        matches!(self, OpClass::Create | OpClass::Mkdir | OpClass::Delete | OpClass::Mv)
    }
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpClass::Read => "read",
            OpClass::Stat => "stat",
            OpClass::Ls => "ls",
            OpClass::Create => "create",
            OpClass::Mkdir => "mkdir",
            OpClass::Delete => "delete",
            OpClass::Mv => "mv",
        };
        f.write_str(s)
    }
}

impl FsOp {
    /// This operation's reporting class.
    #[must_use]
    pub fn class(&self) -> OpClass {
        match self {
            FsOp::CreateFile(_) => OpClass::Create,
            FsOp::Mkdir(_) => OpClass::Mkdir,
            FsOp::Delete(_) => OpClass::Delete,
            FsOp::Mv(..) => OpClass::Mv,
            FsOp::ReadFile(_) => OpClass::Read,
            FsOp::Stat(_) => OpClass::Stat,
            FsOp::Ls(_) => OpClass::Ls,
        }
    }

    /// Whether the operation mutates the namespace.
    #[must_use]
    pub fn is_write(&self) -> bool {
        self.class().is_write()
    }

    /// The path whose **parent directory** determines the owning
    /// deployment under λFS's partitioning (§3.1: consistent hashing on
    /// the parent of the target).
    #[must_use]
    pub fn primary_path(&self) -> &DfsPath {
        match self {
            FsOp::CreateFile(p)
            | FsOp::Mkdir(p)
            | FsOp::Delete(p)
            | FsOp::Mv(p, _)
            | FsOp::ReadFile(p)
            | FsOp::Stat(p)
            | FsOp::Ls(p) => p,
        }
    }
}

/// Successful result of a metadata operation.
#[derive(Debug, Clone, PartialEq)]
pub enum OpOutcome {
    /// Attributes (and, for reads, block list) of the resolved inode.
    Meta(Box<Inode>),
    /// Directory listing: child names in order.
    Listing(Vec<String>),
    /// The inode created by `create`/`mkdir`.
    Created(Box<Inode>),
    /// A delete completed, removing this many inodes.
    Deleted(u64),
    /// A move completed, relocating this many inodes.
    Moved(u64),
}

/// Failure of a metadata operation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FsError {
    /// A path component does not exist.
    NotFound(String),
    /// Create/mkdir target already exists.
    AlreadyExists(String),
    /// A non-final path component is not a directory.
    NotADirectory(String),
    /// The service aborted the operation (lock timeout, crash); the client
    /// library retries these transparently.
    Retryable(String),
    /// The request timed out at the client and exhausted its retries.
    Timeout,
    /// The service kept answering with transient errors until the client
    /// ran out of retry budget. Distinct from [`FsError::Timeout`]: the
    /// service was reachable, it just never produced a final answer.
    RetriesExhausted,
    /// A concurrent subtree operation owns this part of the namespace.
    SubtreeLocked(String),
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::NotFound(p) => write!(f, "no such file or directory: {p}"),
            FsError::AlreadyExists(p) => write!(f, "already exists: {p}"),
            FsError::NotADirectory(p) => write!(f, "not a directory: {p}"),
            FsError::Retryable(why) => write!(f, "transient failure: {why}"),
            FsError::Timeout => write!(f, "request timed out"),
            FsError::RetriesExhausted => write!(f, "retry budget exhausted"),
            FsError::SubtreeLocked(p) => write!(f, "subtree operation in progress on {p}"),
        }
    }
}

impl Error for FsError {}

/// Result alias for metadata operations.
pub type OpResult = Result<OpOutcome, FsError>;

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> DfsPath {
        s.parse().unwrap()
    }

    #[test]
    fn classes_partition_reads_and_writes() {
        assert!(!FsOp::ReadFile(p("/f")).is_write());
        assert!(!FsOp::Stat(p("/f")).is_write());
        assert!(!FsOp::Ls(p("/d")).is_write());
        assert!(FsOp::CreateFile(p("/f")).is_write());
        assert!(FsOp::Mkdir(p("/d")).is_write());
        assert!(FsOp::Delete(p("/f")).is_write());
        assert!(FsOp::Mv(p("/a"), p("/b")).is_write());
    }

    #[test]
    fn all_classes_listed_once() {
        let mut sorted = OpClass::ALL.to_vec();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 7);
    }

    #[test]
    fn primary_path_is_the_source_for_mv() {
        let op = FsOp::Mv(p("/src/x"), p("/dst/x"));
        assert_eq!(op.primary_path(), &p("/src/x"));
    }

    #[test]
    fn errors_display_lowercase_and_concise() {
        let e = FsError::NotFound("/x".into());
        assert_eq!(e.to_string(), "no such file or directory: /x");
    }
}
