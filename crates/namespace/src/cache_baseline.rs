//! The **pre-overhaul** metadata cache trie, retained verbatim as a
//! differential-testing and benchmarking baseline.
//!
//! PR 3 replaced this `HashMap<String, usize>`-child, `BTreeSet`-LRU trie
//! with the arena/symbol-keyed trie in [`crate::MetadataCache`]. The two
//! implementations must stay observationally equivalent: the differential
//! proptest in `tests/cache_differential.rs` drives identical operation
//! sequences through both and asserts equal statistics and surviving-entry
//! sets, and `bench_metadata` measures the speedup of the new trie against
//! this one. Do not "improve" this module — its value is standing still.

use std::collections::{BTreeSet, HashMap};

use crate::cache::CacheStats;
use crate::inode::{Inode, InodeId};
use crate::path::DfsPath;

#[derive(Debug)]
struct Node {
    name: String,
    parent: Option<usize>,
    children: HashMap<String, usize>,
    entry: Option<Inode>,
    last_used: u64,
}

/// A bounded, LRU-evicting metadata trie.
///
/// # Examples
///
/// ```
/// use lambda_namespace::Inode;
/// use lambda_namespace::cache_baseline::MetadataCache;
///
/// let mut cache = MetadataCache::new(1024);
/// let path = "/a/b".parse().unwrap();
/// let chain = vec![
///     Inode::root(),
///     Inode::directory(2, 1, "a"),
///     Inode::file(3, 2, "b"),
/// ];
/// cache.insert_chain(&path, &chain);
/// assert_eq!(cache.lookup(&path).unwrap()[2].id, 3);
/// cache.invalidate_inode(3);
/// assert!(cache.lookup(&path).is_none());
/// ```
#[derive(Debug)]
pub struct MetadataCache {
    nodes: Vec<Option<Node>>,
    free: Vec<usize>,
    root: usize,
    by_id: HashMap<InodeId, usize>,
    lru: BTreeSet<(u64, usize)>,
    tick: u64,
    capacity: usize,
    len: usize,
    listings: HashMap<InodeId, Vec<String>>,
    listing_capacity: usize,
    stats: CacheStats,
}

impl MetadataCache {
    /// Creates a cache bounded at `capacity` cached inodes.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self::with_listing_capacity(capacity, (capacity / 4).max(1))
    }

    /// Creates a cache with an explicit directory-listing bound.
    ///
    /// # Panics
    ///
    /// Panics if either capacity is zero.
    #[must_use]
    pub fn with_listing_capacity(capacity: usize, listing_capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        assert!(listing_capacity > 0, "listing capacity must be positive");
        let root = Node {
            name: String::new(),
            parent: None,
            children: HashMap::new(),
            entry: None,
            last_used: 0,
        };
        MetadataCache {
            nodes: vec![Some(root)],
            free: Vec::new(),
            root: 0,
            by_id: HashMap::new(),
            lru: BTreeSet::new(),
            tick: 0,
            capacity,
            len: 0,
            listings: HashMap::new(),
            listing_capacity,
            stats: CacheStats::default(),
        }
    }

    /// Caches a directory's child names (kept sorted so in-place updates
    /// can binary-search). When the listing bound is hit the listing cache
    /// is flushed wholesale (coarse but sufficient: λFS's benefit comes
    /// from repeated `ls` of hot directories).
    pub fn cache_listing(&mut self, dir: InodeId, mut names: Vec<String>) {
        if self.listings.len() >= self.listing_capacity {
            self.listings.clear();
        }
        names.sort_unstable();
        self.listings.insert(dir, names);
    }

    /// Looks up a cached listing, recording hit/miss statistics.
    pub fn listing(&mut self, dir: InodeId) -> Option<Vec<String>> {
        match self.listings.get(&dir) {
            Some(names) => {
                self.stats.listing_hits += 1;
                Some(names.clone())
            }
            None => {
                self.stats.listing_misses += 1;
                None
            }
        }
    }

    /// Drops a cached listing (a child was created/deleted/moved).
    pub fn invalidate_listing(&mut self, dir: InodeId) {
        self.listings.remove(&dir);
    }

    /// Applies an in-place listing delta: a coherence INV that *names* the
    /// created/deleted child lets caches update their listing instead of
    /// dropping it (equivalent to invalidate-then-refill, without the
    /// store round trip). No-op when the listing is not cached.
    pub fn update_listing(&mut self, dir: InodeId, name: &str, present: bool) {
        if let Some(names) = self.listings.get_mut(&dir) {
            match (names.binary_search_by(|n| n.as_str().cmp(name)), present) {
                (Ok(_), true) => {}
                (Ok(idx), false) => {
                    names.remove(idx);
                }
                (Err(idx), true) => names.insert(idx, name.to_string()),
                (Err(_), false) => {}
            }
        }
    }

    /// Number of cached inodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the cache holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Cumulative statistics.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    fn node(&self, idx: usize) -> &Node {
        self.nodes[idx].as_ref().expect("live node")
    }

    fn node_mut(&mut self, idx: usize) -> &mut Node {
        self.nodes[idx].as_mut().expect("live node")
    }

    fn touch(&mut self, idx: usize) {
        self.tick += 1;
        let tick = self.tick;
        let node = self.node_mut(idx);
        let had_entry = node.entry.is_some();
        let old = node.last_used;
        node.last_used = tick;
        if had_entry {
            self.lru.remove(&(old, idx));
            self.lru.insert((tick, idx));
        }
    }

    /// Finds the trie node for `path`, if present.
    fn find(&self, path: &DfsPath) -> Option<usize> {
        let mut idx = self.root;
        for comp in path.components() {
            idx = *self.node(idx).children.get(comp)?;
        }
        Some(idx)
    }

    /// Looks up the full inode chain (root → target) for `path`.
    ///
    /// Returns `Some(chain)` only when **every** component — including the
    /// root inode — is cached (a hit serves the whole permission-check
    /// walk); otherwise records a miss.
    pub fn lookup(&mut self, path: &DfsPath) -> Option<Vec<Inode>> {
        let mut idxs = vec![self.root];
        let mut idx = self.root;
        for comp in path.components() {
            match self.node(idx).children.get(comp) {
                Some(child) => {
                    idx = *child;
                    idxs.push(idx);
                }
                None => {
                    self.stats.misses += 1;
                    return None;
                }
            }
        }
        let mut chain = Vec::with_capacity(idxs.len());
        for i in &idxs {
            match &self.node(*i).entry {
                Some(inode) => chain.push(inode.clone()),
                None => {
                    self.stats.misses += 1;
                    return None;
                }
            }
        }
        for i in idxs {
            self.touch(i);
        }
        self.stats.hits += 1;
        Some(chain)
    }

    /// The longest cached prefix of `path`'s chain, starting at the root
    /// inode (so the result is never empty unless the root itself is
    /// uncached). Used for partial fills: a miss only fetches the suffix
    /// the trie does not hold — in particular, the root and hot ancestor
    /// directories are almost never re-read from the store.
    ///
    /// Does not count hit/miss statistics (the caller records the miss)
    /// but does refresh the prefix's LRU position.
    pub fn lookup_prefix(&mut self, path: &DfsPath) -> Vec<Inode> {
        let mut idxs = vec![self.root];
        let mut idx = self.root;
        for comp in path.components() {
            match self.node(idx).children.get(comp) {
                Some(child) => {
                    idx = *child;
                    idxs.push(idx);
                }
                None => break,
            }
        }
        let mut chain = Vec::new();
        for i in idxs {
            match &self.node(i).entry {
                Some(inode) => chain.push(inode.clone()),
                None => break,
            }
        }
        // Touch after the immutable walk.
        let len = chain.len();
        let mut idx = self.root;
        let mut touched = 0;
        if len > 0 {
            self.touch(idx);
            touched += 1;
        }
        for comp in path.components() {
            if touched >= len {
                break;
            }
            match self.node(idx).children.get(comp).copied() {
                Some(child) => {
                    idx = child;
                    self.touch(idx);
                    touched += 1;
                }
                None => break,
            }
        }
        chain
    }

    /// Caches the resolved chain for `path` (root inode first).
    ///
    /// # Panics
    ///
    /// Panics if `chain.len() != path.depth() + 1`.
    pub fn insert_chain(&mut self, path: &DfsPath, chain: &[Inode]) {
        assert_eq!(chain.len(), path.depth() + 1, "chain must cover root through target");
        let mut idx = self.root;
        self.set_entry(idx, chain[0].clone());
        for (comp, inode) in path.components().zip(&chain[1..]) {
            let child = match self.node(idx).children.get(comp) {
                Some(c) => *c,
                None => {
                    let c = self.alloc(Node {
                        name: comp.to_string(),
                        parent: Some(idx),
                        children: HashMap::new(),
                        entry: None,
                        last_used: 0,
                    });
                    self.node_mut(idx).children.insert(comp.to_string(), c);
                    c
                }
            };
            self.set_entry(child, inode.clone());
            idx = child;
        }
        while self.len > self.capacity {
            self.evict_one();
        }
    }

    fn alloc(&mut self, node: Node) -> usize {
        match self.free.pop() {
            Some(idx) => {
                self.nodes[idx] = Some(node);
                idx
            }
            None => {
                self.nodes.push(Some(node));
                self.nodes.len() - 1
            }
        }
    }

    fn set_entry(&mut self, idx: usize, inode: Inode) {
        // An inode id may move (mv); drop any stale placement first.
        if let Some(&old_idx) = self.by_id.get(&inode.id) {
            if old_idx != idx {
                self.clear_entry(old_idx);
                self.prune(old_idx);
            }
        }
        let node = self.node_mut(idx);
        let fresh = node.entry.is_none();
        node.entry = Some(inode.clone());
        if fresh {
            self.len += 1;
            self.stats.insertions += 1;
        }
        self.by_id.insert(inode.id, idx);
        self.touch(idx);
    }

    /// Clears an entry without pruning; updates `len`, `by_id`, `lru`.
    fn clear_entry(&mut self, idx: usize) -> bool {
        let node = self.node_mut(idx);
        match node.entry.take() {
            Some(inode) => {
                let last = node.last_used;
                self.lru.remove(&(last, idx));
                self.by_id.remove(&inode.id);
                self.listings.remove(&inode.id);
                self.len -= 1;
                true
            }
            None => false,
        }
    }

    /// Removes childless, entryless nodes from `idx` upward.
    fn prune(&mut self, mut idx: usize) {
        while idx != self.root {
            let node = self.node(idx);
            if node.entry.is_some() || !node.children.is_empty() {
                break;
            }
            let parent = node.parent.expect("non-root has a parent");
            let name = node.name.clone();
            self.node_mut(parent).children.remove(&name);
            self.nodes[idx] = None;
            self.free.push(idx);
            idx = parent;
        }
    }

    fn evict_one(&mut self) {
        if let Some(&(tick, idx)) = self.lru.iter().next() {
            self.lru.remove(&(tick, idx));
            // clear_entry re-removes from lru (no-op) and fixes len/by_id.
            let node = self.node_mut(idx);
            if let Some(inode) = node.entry.take() {
                self.by_id.remove(&inode.id);
                self.listings.remove(&inode.id);
                self.len -= 1;
                self.stats.evictions += 1;
            }
            self.prune(idx);
        }
    }

    /// Drops the entry for `id`, wherever it is cached (single-INode INV).
    /// Returns whether anything was dropped.
    pub fn invalidate_inode(&mut self, id: InodeId) -> bool {
        match self.by_id.get(&id).copied() {
            Some(idx) => {
                if self.clear_entry(idx) {
                    self.stats.invalidations += 1;
                }
                self.prune(idx);
                true
            }
            None => false,
        }
    }

    /// Drops every cached entry at or under `prefix` (subtree INV,
    /// Appendix D). Returns the number of entries dropped.
    pub fn invalidate_prefix(&mut self, prefix: &DfsPath) -> u64 {
        let Some(start) = self.find(prefix) else { return 0 };
        // Collect the subtree, then clear.
        let mut stack = vec![start];
        let mut subtree = Vec::new();
        while let Some(idx) = stack.pop() {
            subtree.push(idx);
            stack.extend(self.node(idx).children.values().copied());
        }
        let mut dropped = 0;
        for idx in &subtree {
            if self.clear_entry(*idx) {
                dropped += 1;
            }
        }
        self.stats.prefix_invalidations += dropped;
        // Remove subtree nodes bottom-up (children were pushed after
        // parents, so reverse order is safe), then prune upward from the
        // prefix node.
        for idx in subtree.into_iter().rev() {
            if idx == self.root {
                continue;
            }
            let node = self.node(idx);
            if node.children.is_empty() {
                let parent = node.parent.expect("non-root");
                let name = node.name.clone();
                self.node_mut(parent).children.remove(&name);
                self.nodes[idx] = None;
                self.free.push(idx);
            }
        }
        if self.nodes[start].is_some() {
            self.prune(start);
        }
        dropped
    }

    /// Whether an inode id is currently cached.
    #[must_use]
    pub fn contains_inode(&self, id: InodeId) -> bool {
        self.by_id.contains_key(&id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> DfsPath {
        s.parse().unwrap()
    }

    fn chain_for(path: &str, ids: &[InodeId]) -> (DfsPath, Vec<Inode>) {
        let path: DfsPath = path.parse().unwrap();
        let comps: Vec<&str> = path.components().collect();
        assert_eq!(ids.len(), comps.len() + 1);
        let mut chain = vec![Inode::root()];
        for (i, comp) in comps.iter().enumerate() {
            let parent = ids[i];
            let id = ids[i + 1];
            let inode = if i + 1 == comps.len() {
                Inode::file(id, parent, *comp)
            } else {
                Inode::directory(id, parent, *comp)
            };
            chain.push(inode);
        }
        (path, chain)
    }

    #[test]
    fn hit_after_insert_miss_before() {
        let mut cache = MetadataCache::new(100);
        let (path, chain) = chain_for("/a/b", &[1, 2, 3]);
        assert!(cache.lookup(&path).is_none());
        cache.insert_chain(&path, &chain);
        let got = cache.lookup(&path).unwrap();
        assert_eq!(got.len(), 3);
        assert_eq!(got[2].id, 3);
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn partial_chain_is_a_miss() {
        let mut cache = MetadataCache::new(100);
        let (path, chain) = chain_for("/a/b", &[1, 2, 3]);
        cache.insert_chain(&path, &chain);
        // Invalidate the middle component: the full chain is broken.
        assert!(cache.invalidate_inode(2));
        assert!(cache.lookup(&path).is_none());
        // But a sibling chain sharing only the root still works once
        // reinserted.
        let (p2, c2) = chain_for("/x", &[1, 9]);
        cache.insert_chain(&p2, &c2);
        assert!(cache.lookup(&p2).is_some());
    }

    #[test]
    fn lru_evicts_least_recently_used_entry() {
        let mut cache = MetadataCache::new(3);
        let (pa, ca) = chain_for("/a", &[1, 2]);
        let (pb, cb) = chain_for("/b", &[1, 3]);
        cache.insert_chain(&pa, &ca); // root + a = 2 entries
        cache.insert_chain(&pb, &cb); // + b = 3 entries
        assert!(cache.lookup(&pa).is_some()); // a is now MRU
        let (pc, cc) = chain_for("/c", &[1, 4]);
        cache.insert_chain(&pc, &cc); // over capacity: evict LRU = b
        assert!(cache.lookup(&pb).is_none(), "b should be evicted");
        assert!(cache.lookup(&pa).is_some());
        assert!(cache.lookup(&pc).is_some());
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.len() <= 3);
    }

    #[test]
    fn prefix_invalidation_drops_whole_subtree() {
        let mut cache = MetadataCache::new(100);
        let (p1, c1) = chain_for("/dir/sub/f1", &[1, 2, 3, 4]);
        let (p2, c2) = chain_for("/dir/sub/f2", &[1, 2, 3, 5]);
        let (p3, c3) = chain_for("/other/g", &[1, 6, 7]);
        cache.insert_chain(&p1, &c1);
        cache.insert_chain(&p2, &c2);
        cache.insert_chain(&p3, &c3);
        let dropped = cache.invalidate_prefix(&p("/dir"));
        assert_eq!(dropped, 4); // dir, sub, f1, f2
        assert!(cache.lookup(&p1).is_none());
        assert!(cache.lookup(&p2).is_none());
        assert!(cache.lookup(&p3).is_some(), "unrelated subtree survived");
        assert!(!cache.contains_inode(3));
    }

    #[test]
    fn prefix_invalidation_of_missing_path_is_noop() {
        let mut cache = MetadataCache::new(10);
        assert_eq!(cache.invalidate_prefix(&p("/nope")), 0);
    }

    #[test]
    fn reinsert_after_invalidation_works() {
        let mut cache = MetadataCache::new(100);
        let (path, chain) = chain_for("/a/b", &[1, 2, 3]);
        cache.insert_chain(&path, &chain);
        cache.invalidate_prefix(&p("/a"));
        assert!(cache.lookup(&path).is_none());
        cache.insert_chain(&path, &chain);
        assert!(cache.lookup(&path).is_some());
    }

    #[test]
    fn moved_inode_id_relocates_its_entry() {
        let mut cache = MetadataCache::new(100);
        let (p1, c1) = chain_for("/a/f", &[1, 2, 7]);
        cache.insert_chain(&p1, &c1);
        assert!(cache.contains_inode(7));
        // The same inode id reappears at a new path (after a mv).
        let (p2, mut c2) = chain_for("/b/f", &[1, 3, 7]);
        c2[2].parent = 3;
        cache.insert_chain(&p2, &c2);
        assert!(cache.lookup(&p2).is_some());
        // The old placement no longer serves hits.
        assert!(cache.lookup(&p1).is_none());
        assert_eq!(cache.len(), 4); // root, a, b, f
    }

    #[test]
    fn capacity_bound_is_never_exceeded() {
        let mut cache = MetadataCache::new(16);
        for i in 0..200u64 {
            let (path, chain) = chain_for(&format!("/d{i}/f{i}"), &[1, 1000 + i, 2000 + i]);
            cache.insert_chain(&path, &chain);
            assert!(cache.len() <= 16, "len {} at i={i}", cache.len());
        }
        assert!(cache.stats().evictions > 0);
    }

    #[test]
    fn deep_chains_cache_all_ancestors() {
        let mut cache = MetadataCache::new(100);
        let (path, chain) = chain_for("/a/b/c/d/e", &[1, 2, 3, 4, 5, 6]);
        cache.insert_chain(&path, &chain);
        // Any ancestor path should now be a full hit too.
        let (anc, anc_chain) = chain_for("/a/b/c", &[1, 2, 3, 4]);
        let got = cache.lookup(&anc).unwrap();
        assert_eq!(got.len(), anc_chain.len());
        assert_eq!(got[3].id, 4);
    }
}

#[cfg(test)]
mod listing_tests {
    use super::*;

    fn p(s: &str) -> DfsPath {
        s.parse().unwrap()
    }

    #[test]
    fn listing_cache_round_trip_and_stats() {
        let mut cache = MetadataCache::new(100);
        assert_eq!(cache.listing(7), None);
        cache.cache_listing(7, vec!["b".into(), "a".into()]);
        // Stored sorted for in-place updates.
        assert_eq!(cache.listing(7), Some(vec!["a".to_string(), "b".to_string()]));
        assert_eq!(cache.stats().listing_hits, 1);
        assert_eq!(cache.stats().listing_misses, 1);
    }

    #[test]
    fn update_listing_inserts_and_removes_in_order() {
        let mut cache = MetadataCache::new(100);
        cache.cache_listing(7, vec!["b".into(), "d".into()]);
        cache.update_listing(7, "c", true);
        cache.update_listing(7, "a", true);
        cache.update_listing(7, "d", false);
        assert_eq!(
            cache.listing(7),
            Some(vec!["a".to_string(), "b".to_string(), "c".to_string()])
        );
        // Idempotent in both directions.
        cache.update_listing(7, "a", true);
        cache.update_listing(7, "zz", false);
        assert_eq!(cache.listing(7).unwrap().len(), 3);
    }

    #[test]
    fn update_listing_on_uncached_dir_is_a_noop() {
        let mut cache = MetadataCache::new(100);
        cache.update_listing(9, "ghost", true);
        assert_eq!(cache.listing(9), None);
    }

    #[test]
    fn invalidating_a_dir_inode_drops_its_listing() {
        let mut cache = MetadataCache::new(100);
        let path = p("/d");
        let chain = vec![Inode::root(), Inode::directory(2, 1, "d")];
        cache.insert_chain(&path, &chain);
        cache.cache_listing(2, vec!["x".into()]);
        cache.invalidate_inode(2);
        assert_eq!(cache.listing(2), None, "listing survived its inode's invalidation");
    }

    #[test]
    fn listing_capacity_flushes_wholesale() {
        let mut cache = MetadataCache::with_listing_capacity(100, 2);
        cache.cache_listing(1, vec!["a".into()]);
        cache.cache_listing(2, vec!["b".into()]);
        cache.cache_listing(3, vec!["c".into()]); // exceeds bound: flush
        assert_eq!(cache.listing(1), None);
        assert_eq!(cache.listing(2), None);
        assert_eq!(cache.listing(3), Some(vec!["c".to_string()]));
    }

    #[test]
    fn lookup_prefix_returns_longest_cached_run() {
        let mut cache = MetadataCache::new(100);
        let path = p("/a/b/c");
        let chain = vec![
            Inode::root(),
            Inode::directory(2, 1, "a"),
            Inode::directory(3, 2, "b"),
            Inode::file(4, 3, "c"),
        ];
        cache.insert_chain(&path, &chain);
        // Full chain cached: the prefix is the whole chain.
        assert_eq!(cache.lookup_prefix(&path).len(), 4);
        // Knock out the middle: the prefix stops before it.
        cache.invalidate_inode(3);
        let prefix = cache.lookup_prefix(&path);
        assert_eq!(prefix.len(), 2);
        assert_eq!(prefix[1].id, 2);
        // Empty cache: empty prefix.
        let mut empty = MetadataCache::new(10);
        assert!(empty.lookup_prefix(&path).is_empty());
        // Prefix lookups do not skew hit/miss statistics.
        assert_eq!(cache.stats().hits, 0);
    }

    #[test]
    fn lookup_prefix_of_unrelated_path_is_root_only() {
        let mut cache = MetadataCache::new(100);
        let (pa, ca) = (p("/a"), vec![Inode::root(), Inode::directory(2, 1, "a")]);
        cache.insert_chain(&pa, &ca);
        let prefix = cache.lookup_prefix(&p("/zzz/deep"));
        assert_eq!(prefix.len(), 1);
        assert_eq!(prefix[0].id, crate::inode::ROOT_INODE_ID);
    }
}
