//! Validated DFS paths.

use std::error::Error;
use std::fmt;

/// A validated, absolute, normalized DFS path (e.g. `/dir/file.txt`).
///
/// Invariants: starts with `/`, contains no empty, `.` or `..` components,
/// and has no trailing slash (except the root itself).
///
/// # Examples
///
/// ```
/// use lambda_namespace::DfsPath;
///
/// let p: DfsPath = "/data/logs/app.log".parse()?;
/// assert_eq!(p.components().collect::<Vec<_>>(), vec!["data", "logs", "app.log"]);
/// assert_eq!(p.parent().unwrap().as_str(), "/data/logs");
/// assert_eq!(p.file_name(), Some("app.log"));
/// assert_eq!(p.depth(), 3);
/// # Ok::<(), lambda_namespace::ParsePathError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DfsPath(String);

/// Error returned when parsing an invalid path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePathError {
    input: String,
    reason: &'static str,
}

impl fmt::Display for ParsePathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid DFS path {:?}: {}", self.input, self.reason)
    }
}

impl Error for ParsePathError {}

impl DfsPath {
    /// The filesystem root, `/`.
    #[must_use]
    pub fn root() -> DfsPath {
        DfsPath("/".to_string())
    }

    /// Whether this is the root path.
    #[must_use]
    pub fn is_root(&self) -> bool {
        self.0 == "/"
    }

    /// The path as a string slice.
    #[must_use]
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// The path components, in order (empty for the root).
    pub fn components(&self) -> impl Iterator<Item = &str> {
        self.0.split('/').filter(|c| !c.is_empty())
    }

    /// Number of components (0 for the root).
    #[must_use]
    pub fn depth(&self) -> usize {
        self.components().count()
    }

    /// The final component, or `None` for the root.
    #[must_use]
    pub fn file_name(&self) -> Option<&str> {
        if self.is_root() {
            None
        } else {
            self.0.rsplit('/').next()
        }
    }

    /// The parent path, or `None` for the root.
    #[must_use]
    pub fn parent(&self) -> Option<DfsPath> {
        if self.is_root() {
            return None;
        }
        match self.0.rfind('/') {
            Some(0) => Some(DfsPath::root()),
            Some(idx) => Some(DfsPath(self.0[..idx].to_string())),
            None => None,
        }
    }

    /// Appends a single component.
    ///
    /// # Errors
    ///
    /// Returns [`ParsePathError`] if `name` is empty or contains `/`.
    pub fn join(&self, name: &str) -> Result<DfsPath, ParsePathError> {
        if name.is_empty() || name.contains('/') || name == "." || name == ".." {
            return Err(ParsePathError { input: name.to_string(), reason: "invalid component" });
        }
        if self.is_root() {
            Ok(DfsPath(format!("/{name}")))
        } else {
            Ok(DfsPath(format!("{}/{name}", self.0)))
        }
    }

    /// All ancestor paths from the root down to the parent (exclusive of
    /// `self`). Empty for the root.
    #[must_use]
    pub fn ancestors(&self) -> Vec<DfsPath> {
        let mut out = Vec::new();
        let mut current = self.parent();
        while let Some(p) = current {
            current = p.parent();
            out.push(p);
        }
        out.reverse();
        out
    }

    /// Whether `self` is `other` or a descendant of `other`.
    #[must_use]
    pub fn starts_with(&self, other: &DfsPath) -> bool {
        if other.is_root() {
            return true;
        }
        self.0 == other.0
            || (self.0.starts_with(&other.0) && self.0.as_bytes().get(other.0.len()) == Some(&b'/'))
    }
}

impl std::str::FromStr for DfsPath {
    type Err = ParsePathError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if !s.starts_with('/') {
            return Err(ParsePathError { input: s.to_string(), reason: "must be absolute" });
        }
        if s == "/" {
            return Ok(DfsPath::root());
        }
        if s.ends_with('/') {
            return Err(ParsePathError { input: s.to_string(), reason: "trailing slash" });
        }
        for comp in s[1..].split('/') {
            if comp.is_empty() {
                return Err(ParsePathError { input: s.to_string(), reason: "empty component" });
            }
            if comp == "." || comp == ".." {
                return Err(ParsePathError {
                    input: s.to_string(),
                    reason: "relative components not allowed",
                });
            }
        }
        Ok(DfsPath(s.to_string()))
    }
}

impl fmt::Display for DfsPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl AsRef<str> for DfsPath {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> DfsPath {
        s.parse().unwrap()
    }

    #[test]
    fn parses_valid_paths() {
        assert!(p("/").is_root());
        assert_eq!(p("/a/b").depth(), 2);
        assert_eq!(p("/a").parent(), Some(DfsPath::root()));
        assert_eq!(p("/a/b/c").parent(), Some(p("/a/b")));
    }

    #[test]
    fn rejects_invalid_paths() {
        for bad in ["", "relative", "/a/", "//", "/a//b", "/a/./b", "/a/../b"] {
            assert!(bad.parse::<DfsPath>().is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn ancestors_run_root_to_parent() {
        let path = p("/a/b/c");
        let anc: Vec<String> = path.ancestors().iter().map(ToString::to_string).collect();
        assert_eq!(anc, vec!["/", "/a", "/a/b"]);
        assert!(p("/").ancestors().is_empty());
    }

    #[test]
    fn join_builds_children() {
        assert_eq!(DfsPath::root().join("a").unwrap(), p("/a"));
        assert_eq!(p("/a").join("b").unwrap(), p("/a/b"));
        assert!(p("/a").join("b/c").is_err());
        assert!(p("/a").join("").is_err());
        assert!(p("/a").join("..").is_err());
    }

    #[test]
    fn starts_with_respects_component_boundaries() {
        assert!(p("/a/b").starts_with(&p("/a")));
        assert!(p("/a/b").starts_with(&p("/a/b")));
        assert!(p("/a/b").starts_with(&DfsPath::root()));
        assert!(!p("/ab").starts_with(&p("/a")));
        assert!(!p("/a").starts_with(&p("/a/b")));
    }

    #[test]
    fn file_name_of_root_is_none() {
        assert_eq!(p("/").file_name(), None);
        assert_eq!(p("/x/y").file_name(), Some("y"));
    }
}
