//! Validated DFS paths over interned component symbols.
//!
//! Path components are interned once into a process-wide symbol arena and
//! referenced by `u32` symbol ids. A [`DfsPath`] is then a small sequence of
//! symbols — stored inline for up to [`INLINE_COMPS`] components, in a
//! shared `Arc<[Sym]>` beyond — so the hot-path operations `parent()`,
//! `join()`, `components()`, `depth()` and `ancestors()` neither allocate
//! nor copy component strings. The rendered form is materialized lazily and
//! cached (`as_str`); parsing caches it eagerly since the caller already
//! holds the string.

use std::cell::{Cell, RefCell};
use std::cmp::Ordering;
use std::collections::{HashMap, HashSet};
use std::error::Error;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex, OnceLock};

/// Interned path-component symbol: an index into the process-wide arena.
///
/// Two components are the same string iff their symbols are equal, which is
/// what lets the metadata cache key its trie children by `(node, Sym)`
/// instead of hashing component strings.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub(crate) struct Sym(pub(crate) u32);

struct SymTab {
    ids: HashMap<&'static str, u32>,
    names: Vec<&'static str>,
}

fn symtab() -> &'static Mutex<SymTab> {
    static TAB: OnceLock<Mutex<SymTab>> = OnceLock::new();
    TAB.get_or_init(|| Mutex::new(SymTab { ids: HashMap::new(), names: Vec::new() }))
}

/// Interns one component. Each distinct component string is leaked exactly
/// once; namespace vocabularies (directory/file names) are bounded, so the
/// arena is too.
fn intern(comp: &str) -> Sym {
    let mut tab = symtab().lock().expect("symbol table poisoned");
    if let Some(&id) = tab.ids.get(comp) {
        return Sym(id);
    }
    let name: &'static str = Box::leak(comp.to_owned().into_boxed_str());
    let id = u32::try_from(tab.names.len()).expect("symbol arena overflow");
    tab.names.push(name);
    tab.ids.insert(name, id);
    Sym(id)
}

thread_local! {
    /// Read-only mirror of the arena's names, refreshed on miss, so
    /// resolving a symbol needs no lock after first sight on this thread.
    static NAMES: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

fn resolve(sym: Sym) -> &'static str {
    NAMES.with(|cache| {
        let mut cache = cache.borrow_mut();
        if (sym.0 as usize) >= cache.len() {
            // The arena is append-only, so the mirror's prefix is always
            // current: copy only the tail it hasn't seen. (Rebuilding the
            // whole mirror per new symbol made resolving a fresh symbol
            // O(arena) — quadratic over a bulk load that interns hundreds
            // of thousands of names.)
            let tab = symtab().lock().expect("symbol table poisoned");
            let seen = cache.len();
            cache.extend_from_slice(&tab.names[seen..]);
        }
        cache[sym.0 as usize]
    })
}

/// Interns `name` as a path component and returns the arena-backed string.
/// For a name that is already in the arena (every path component that ever
/// appeared in a parsed or joined [`DfsPath`] is), this is a hash probe —
/// no allocation — so message types can replace owned `String` fields with
/// `&'static str` copies.
#[must_use]
pub fn interned(name: &str) -> &'static str {
    resolve(intern(name))
}

/// An inode's name within its parent directory, stored as a 4-byte interned
/// symbol instead of a 24-byte (plus heap) `String`.
///
/// `Copy`, so cloning an [`Inode`](crate::Inode) row — which the store does
/// on every read — copies a word where it used to allocate. Two names are
/// equal iff their symbols are equal (the interner guarantees one symbol
/// per distinct string); ordering is by content, matching the `String` it
/// replaced.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct InodeName(Sym);

impl InodeName {
    /// Interns `name`. A hash probe for any name seen before (every
    /// component of every parsed or joined path already is).
    #[must_use]
    pub fn new(name: &str) -> InodeName {
        InodeName(intern(name))
    }

    /// The name text, backed by the interner arena (outlives `self`).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        resolve(self.0)
    }

    /// Whether the name is empty (only the root's is).
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.as_str().is_empty()
    }

    /// This name as a children-index key suffix (resolves the symbol to
    /// its arena string; no interner lock, no allocation).
    #[must_use]
    pub fn key(self) -> lambda_store::NameKey {
        lambda_store::NameKey::new(self.as_str())
    }
}

impl From<InodeName> for lambda_store::NameKey {
    fn from(name: InodeName) -> lambda_store::NameKey {
        name.key()
    }
}

impl From<&str> for InodeName {
    fn from(name: &str) -> InodeName {
        InodeName::new(name)
    }
}

impl From<String> for InodeName {
    fn from(name: String) -> InodeName {
        InodeName::new(&name)
    }
}

impl From<&String> for InodeName {
    fn from(name: &String) -> InodeName {
        InodeName::new(name)
    }
}

impl std::ops::Deref for InodeName {
    type Target = str;
    fn deref(&self) -> &str {
        self.as_str()
    }
}

impl PartialEq<str> for InodeName {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for InodeName {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl PartialEq<InodeName> for str {
    fn eq(&self, other: &InodeName) -> bool {
        self == other.as_str()
    }
}

impl PartialEq<InodeName> for &str {
    fn eq(&self, other: &InodeName) -> bool {
        *self == other.as_str()
    }
}

impl Ord for InodeName {
    fn cmp(&self, other: &Self) -> Ordering {
        if self.0 == other.0 {
            return Ordering::Equal;
        }
        self.as_str().cmp(other.as_str())
    }
}

impl PartialOrd for InodeName {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for InodeName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for InodeName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.as_str())
    }
}

/// Interner for *rendered* full-path strings (backing [`DfsPath::as_str`]):
/// one allocation per distinct rendered path, shared by every `DfsPath`
/// that renders it.
fn intern_full(s: &str) -> &'static str {
    static TAB: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();
    let tab = TAB.get_or_init(|| Mutex::new(HashSet::new()));
    let mut tab = tab.lock().expect("path table poisoned");
    if let Some(&existing) = tab.get(s) {
        return existing;
    }
    let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
    tab.insert(leaked);
    leaked
}

/// Components stored inline up to this depth; deeper paths spill to a
/// shared heap slice.
const INLINE_COMPS: usize = 8;

#[derive(Clone)]
enum Comps {
    Inline { len: u8, syms: [Sym; INLINE_COMPS] },
    Heap(Arc<[Sym]>),
}

impl Comps {
    const EMPTY: Comps = Comps::Inline { len: 0, syms: [Sym(0); INLINE_COMPS] };

    fn as_slice(&self) -> &[Sym] {
        match self {
            Comps::Inline { len, syms } => &syms[..usize::from(*len)],
            Comps::Heap(syms) => syms,
        }
    }

    fn from_slice(slice: &[Sym]) -> Comps {
        if slice.len() <= INLINE_COMPS {
            let mut syms = [Sym(0); INLINE_COMPS];
            syms[..slice.len()].copy_from_slice(slice);
            Comps::Inline { len: slice.len() as u8, syms }
        } else {
            Comps::Heap(slice.into())
        }
    }

    fn push(&self, sym: Sym) -> Comps {
        match self {
            Comps::Inline { len, syms } if usize::from(*len) < INLINE_COMPS => {
                let mut syms = *syms;
                syms[usize::from(*len)] = sym;
                Comps::Inline { len: len + 1, syms }
            }
            _ => {
                let old = self.as_slice();
                let mut v = Vec::with_capacity(old.len() + 1);
                v.extend_from_slice(old);
                v.push(sym);
                Comps::Heap(v.into())
            }
        }
    }
}

/// A validated, absolute, normalized DFS path (e.g. `/dir/file.txt`).
///
/// Invariants: starts with `/`, contains no empty, `.` or `..` components,
/// and has no trailing slash (except the root itself).
///
/// # Examples
///
/// ```
/// use lambda_namespace::DfsPath;
///
/// let p: DfsPath = "/data/logs/app.log".parse()?;
/// assert_eq!(p.components().collect::<Vec<_>>(), vec!["data", "logs", "app.log"]);
/// assert_eq!(p.parent().unwrap().as_str(), "/data/logs");
/// assert_eq!(p.file_name(), Some("app.log"));
/// assert_eq!(p.depth(), 3);
/// # Ok::<(), lambda_namespace::ParsePathError>(())
/// ```
#[derive(Clone)]
pub struct DfsPath {
    comps: Comps,
    /// Lazily rendered-and-interned full string; `Cell` so `as_str(&self)`
    /// can fill it in.
    full: Cell<Option<&'static str>>,
}

/// Error returned when parsing an invalid path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePathError {
    input: String,
    reason: &'static str,
}

impl fmt::Display for ParsePathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid DFS path {:?}: {}", self.input, self.reason)
    }
}

impl Error for ParsePathError {}

impl DfsPath {
    /// The filesystem root, `/`.
    #[must_use]
    pub fn root() -> DfsPath {
        DfsPath { comps: Comps::EMPTY, full: Cell::new(Some("/")) }
    }

    /// Whether this is the root path.
    #[must_use]
    pub fn is_root(&self) -> bool {
        self.comps.as_slice().is_empty()
    }

    /// The path as a string slice.
    ///
    /// The first call on a non-parsed path renders and interns the string;
    /// subsequent calls are free. The slice borrows the interner arena, so
    /// it outlives the path — row types (e.g. subtree-lock rows) can carry
    /// it as a plain `&'static str` instead of cloning a `String`.
    #[must_use]
    pub fn as_str(&self) -> &'static str {
        if let Some(s) = self.full.get() {
            return s;
        }
        let s = intern_full(&self.render());
        self.full.set(Some(s));
        s
    }

    fn render(&self) -> String {
        let comps = self.comps.as_slice();
        if comps.is_empty() {
            return "/".to_string();
        }
        let mut out = String::new();
        for &c in comps {
            out.push('/');
            out.push_str(resolve(c));
        }
        out
    }

    /// The path components, in order (empty for the root).
    pub fn components(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.comps.as_slice().iter().map(|&s| resolve(s))
    }

    /// The components as interned symbols (for symbol-keyed tries).
    pub(crate) fn comp_syms(&self) -> &[Sym] {
        self.comps.as_slice()
    }

    /// Number of components (0 for the root).
    #[must_use]
    pub fn depth(&self) -> usize {
        self.comps.as_slice().len()
    }

    /// The final component, or `None` for the root. The returned string
    /// borrows the component interner's arena, so it outlives the path —
    /// wire types can carry it without cloning.
    #[must_use]
    pub fn file_name(&self) -> Option<&'static str> {
        self.comps.as_slice().last().map(|&s| resolve(s))
    }

    /// The parent path, or `None` for the root.
    #[must_use]
    pub fn parent(&self) -> Option<DfsPath> {
        let comps = self.comps.as_slice();
        let (_, init) = comps.split_last()?;
        // If our rendered form is cached, the parent's is a prefix slice of
        // the same interned string — no re-rendering, no new interning.
        let full = self.full.get().map(|s: &'static str| -> &'static str {
            match s.rfind('/') {
                Some(0) => "/",
                Some(idx) => &s[..idx],
                None => unreachable!("cached path string always contains '/'"),
            }
        });
        Some(DfsPath { comps: Comps::from_slice(init), full: Cell::new(full) })
    }

    /// Appends a single component.
    ///
    /// # Errors
    ///
    /// Returns [`ParsePathError`] if `name` is empty or contains `/`.
    pub fn join(&self, name: &str) -> Result<DfsPath, ParsePathError> {
        if name.is_empty() || name.contains('/') || name == "." || name == ".." {
            return Err(ParsePathError { input: name.to_string(), reason: "invalid component" });
        }
        Ok(DfsPath { comps: self.comps.push(intern(name)), full: Cell::new(None) })
    }

    /// Appends an already-interned name without re-validating or
    /// re-interning it.
    ///
    /// Equivalent to [`DfsPath::join`] for any name that parses as a valid
    /// component (an [`InodeName`] always does — it came from one), but
    /// skips the interner lock and the byte scan, which matters when a
    /// bulk loader joins millions of names it already interned.
    #[must_use]
    pub fn join_interned(&self, name: InodeName) -> DfsPath {
        DfsPath { comps: self.comps.push(name.0), full: Cell::new(None) }
    }

    /// The ancestor path with the first `k` of our components.
    fn prefix(&self, k: usize) -> DfsPath {
        let full = if k == 0 { Some("/") } else { None };
        DfsPath { comps: Comps::from_slice(&self.comps.as_slice()[..k]), full: Cell::new(full) }
    }

    /// Iterates over all ancestor paths from the root down to the parent
    /// (exclusive of `self`). Empty for the root.
    ///
    /// Each yielded `DfsPath` is built from this path's own symbols without
    /// touching the interner or cloning strings.
    #[must_use]
    pub fn ancestors(&self) -> Ancestors<'_> {
        Ancestors { path: self, next: 0, end: self.depth() }
    }

    /// Whether `self` is `other` or a descendant of `other`.
    #[must_use]
    pub fn starts_with(&self, other: &DfsPath) -> bool {
        self.comps.as_slice().starts_with(other.comps.as_slice())
    }
}

/// Borrowing iterator over a path's ancestors, root first.
///
/// Returned by [`DfsPath::ancestors`].
#[derive(Debug, Clone)]
pub struct Ancestors<'a> {
    path: &'a DfsPath,
    next: usize,
    end: usize,
}

impl Iterator for Ancestors<'_> {
    type Item = DfsPath;

    fn next(&mut self) -> Option<DfsPath> {
        if self.next >= self.end {
            return None;
        }
        let p = self.path.prefix(self.next);
        self.next += 1;
        Some(p)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.end - self.next;
        (n, Some(n))
    }
}

impl ExactSizeIterator for Ancestors<'_> {}

impl DoubleEndedIterator for Ancestors<'_> {
    fn next_back(&mut self) -> Option<DfsPath> {
        if self.next >= self.end {
            return None;
        }
        self.end -= 1;
        Some(self.path.prefix(self.end))
    }
}

impl PartialEq for DfsPath {
    fn eq(&self, other: &Self) -> bool {
        self.comps.as_slice() == other.comps.as_slice()
    }
}

impl Eq for DfsPath {}

impl Hash for DfsPath {
    fn hash<H: Hasher>(&self, state: &mut H) {
        let comps = self.comps.as_slice();
        state.write_usize(comps.len());
        for &Sym(id) in comps {
            state.write_u32(id);
        }
    }
}

/// Compares two component sequences as the byte strings they render to
/// (each component preceded by `/`), so the ordering matches the previous
/// `String`-backed representation exactly — including names containing
/// bytes below `/` such as `.` and `-`.
fn cmp_comps(a: &[Sym], b: &[Sym]) -> Ordering {
    let shared = a.len().min(b.len());
    for i in 0..shared {
        if a[i] == b[i] {
            continue;
        }
        let xs = resolve(a[i]).as_bytes();
        let ys = resolve(b[i]).as_bytes();
        let m = xs.len().min(ys.len());
        for j in 0..m {
            match xs[j].cmp(&ys[j]) {
                Ordering::Equal => {}
                other => return other,
            }
        }
        // One name is a strict prefix of the other. The shorter side's next
        // rendered byte is `/` (if it has more components) or end-of-string;
        // the longer name's next byte is never `/`, so this decides.
        return if xs.len() < ys.len() {
            if i + 1 == a.len() { Ordering::Less } else { b'/'.cmp(&ys[m]) }
        } else if i + 1 == b.len() {
            Ordering::Greater
        } else {
            xs[m].cmp(&b'/')
        };
    }
    a.len().cmp(&b.len())
}

impl Ord for DfsPath {
    fn cmp(&self, other: &Self) -> Ordering {
        if let (Some(a), Some(b)) = (self.full.get(), other.full.get()) {
            return a.cmp(b);
        }
        cmp_comps(self.comps.as_slice(), other.comps.as_slice())
    }
}

impl PartialOrd for DfsPath {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl std::str::FromStr for DfsPath {
    type Err = ParsePathError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if !s.starts_with('/') {
            return Err(ParsePathError { input: s.to_string(), reason: "must be absolute" });
        }
        if s == "/" {
            return Ok(DfsPath::root());
        }
        if s.ends_with('/') {
            return Err(ParsePathError { input: s.to_string(), reason: "trailing slash" });
        }
        let mut comps = Comps::EMPTY;
        for comp in s[1..].split('/') {
            if comp.is_empty() {
                return Err(ParsePathError { input: s.to_string(), reason: "empty component" });
            }
            if comp == "." || comp == ".." {
                return Err(ParsePathError {
                    input: s.to_string(),
                    reason: "relative components not allowed",
                });
            }
            comps = comps.push(intern(comp));
        }
        // The caller already holds the rendered string: cache it now.
        Ok(DfsPath { comps, full: Cell::new(Some(intern_full(s))) })
    }
}

impl fmt::Display for DfsPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(s) = self.full.get() {
            return f.write_str(s);
        }
        let comps = self.comps.as_slice();
        if comps.is_empty() {
            return f.write_str("/");
        }
        for &c in comps {
            f.write_str("/")?;
            f.write_str(resolve(c))?;
        }
        Ok(())
    }
}

impl fmt::Debug for DfsPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DfsPath(\"{self}\")")
    }
}

impl AsRef<str> for DfsPath {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> DfsPath {
        s.parse().unwrap()
    }

    #[test]
    fn parses_valid_paths() {
        assert!(p("/").is_root());
        assert_eq!(p("/a/b").depth(), 2);
        assert_eq!(p("/a").parent(), Some(DfsPath::root()));
        assert_eq!(p("/a/b/c").parent(), Some(p("/a/b")));
    }

    #[test]
    fn rejects_invalid_paths() {
        for bad in ["", "relative", "/a/", "//", "/a//b", "/a/./b", "/a/../b"] {
            assert!(bad.parse::<DfsPath>().is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn ancestors_run_root_to_parent() {
        let path = p("/a/b/c");
        let anc: Vec<String> = path.ancestors().map(|a| a.to_string()).collect();
        assert_eq!(anc, vec!["/", "/a", "/a/b"]);
        assert_eq!(p("/").ancestors().count(), 0);
    }

    #[test]
    fn ancestors_iterate_both_ways_without_allocation() {
        let path = p("/a/b/c/d");
        let fwd: Vec<String> = path.ancestors().map(|a| a.to_string()).collect();
        let mut rev: Vec<String> = path.ancestors().rev().map(|a| a.to_string()).collect();
        rev.reverse();
        assert_eq!(fwd, rev);
        assert_eq!(path.ancestors().len(), 4);
        assert_eq!(path.ancestors().last(), path.parent());
    }

    #[test]
    fn join_builds_children() {
        assert_eq!(DfsPath::root().join("a").unwrap(), p("/a"));
        assert_eq!(p("/a").join("b").unwrap(), p("/a/b"));
        assert!(p("/a").join("b/c").is_err());
        assert!(p("/a").join("").is_err());
        assert!(p("/a").join("..").is_err());
    }

    #[test]
    fn starts_with_respects_component_boundaries() {
        assert!(p("/a/b").starts_with(&p("/a")));
        assert!(p("/a/b").starts_with(&p("/a/b")));
        assert!(p("/a/b").starts_with(&DfsPath::root()));
        assert!(!p("/ab").starts_with(&p("/a")));
        assert!(!p("/a").starts_with(&p("/a/b")));
    }

    #[test]
    fn file_name_of_root_is_none() {
        assert_eq!(p("/").file_name(), None);
        assert_eq!(p("/x/y").file_name(), Some("y"));
    }

    #[test]
    fn deep_paths_spill_to_heap_and_round_trip() {
        let mut path = DfsPath::root();
        let mut expect = String::new();
        for i in 0..12 {
            let name = format!("d{i}");
            expect.push('/');
            expect.push_str(&name);
            path = path.join(&name).unwrap();
        }
        assert_eq!(path.depth(), 12);
        assert_eq!(path.as_str(), expect);
        assert_eq!(path, expect.parse().unwrap());
        assert_eq!(path.parent().unwrap().depth(), 11);
    }

    #[test]
    fn ordering_matches_rendered_strings() {
        let mut strs =
            vec!["/", "/a", "/a/b", "/a-x", "/a.b", "/ab", "/a/b/c", "/b", "/a/b-c", "/a/bb"];
        let mut paths: Vec<DfsPath> = strs.iter().map(|s| p(s)).collect();
        // Defeat the cached-string fast path: rebuild via join so `full`
        // starts unset for non-root paths.
        let mut rebuilt: Vec<DfsPath> = paths
            .iter()
            .map(|path| {
                let mut q = DfsPath::root();
                for c in path.components() {
                    q = q.join(c).unwrap();
                }
                q
            })
            .collect();
        strs.sort_unstable();
        paths.sort();
        rebuilt.sort();
        let sorted: Vec<String> = paths.iter().map(ToString::to_string).collect();
        let sorted2: Vec<String> = rebuilt.iter().map(ToString::to_string).collect();
        assert_eq!(sorted, strs);
        assert_eq!(sorted2, strs);
    }

    #[test]
    fn display_and_as_str_agree_for_joined_paths() {
        let q = DfsPath::root().join("x").unwrap().join("y").unwrap();
        assert_eq!(q.to_string(), "/x/y");
        assert_eq!(q.as_str(), "/x/y");
        assert_eq!(format!("{q:?}"), "DfsPath(\"/x/y\")");
    }
}
