//! Simulated DataNode fleet.
//!
//! λFS "re-implements many DFS maintenance features, such as block reports
//! and DataNode discovery, in a serverless-compatible way by publishing
//! information to the persistent metadata store on a regular interval"
//! (paper §1). This module provides that fleet: each DataNode periodically
//! writes its heartbeat/block-report row into the `datanodes` table using
//! an ordinary store transaction, so NameNodes — serverless or not —
//! discover DataNodes by reading the store rather than by holding
//! long-lived connections.

use std::cell::Cell;
use std::rc::Rc;

use lambda_sim::{every, Sim, SimDuration, SimTime};
use lambda_store::{Db, LockMode};

use crate::inode::{DataNodeId, DataNodeInfo};
use crate::schema::MetadataSchema;

/// A fleet of DataNodes publishing heartbeats and block reports.
#[derive(Debug, Clone)]
pub struct DataNodeFleet {
    db: Db,
    schema: MetadataSchema,
    ids: Vec<DataNodeId>,
    interval: SimDuration,
    running: Rc<Cell<bool>>,
}

impl DataNodeFleet {
    /// Registers `n` DataNodes (bulk-loaded rows) reporting every
    /// `interval`.
    #[must_use]
    pub fn new(db: &Db, schema: &MetadataSchema, n: u32, interval: SimDuration) -> Self {
        let ids: Vec<DataNodeId> = (1..=u64::from(n)).collect();
        for &id in &ids {
            db.bootstrap_insert(
                schema.datanodes,
                id,
                DataNodeInfo {
                    id,
                    last_heartbeat_nanos: 0,
                    capacity: 12 * 1024 * 1024 * 1024 * 1024, // 12 TB
                    used: 0,
                    reported_blocks: 0,
                },
            );
        }
        DataNodeFleet {
            db: db.clone(),
            schema: schema.clone(),
            ids,
            interval,
            running: Rc::new(Cell::new(false)),
        }
    }

    /// The registered DataNode ids.
    #[must_use]
    pub fn ids(&self) -> &[DataNodeId] {
        &self.ids
    }

    /// Starts periodic reporting, staggered across the interval so the
    /// fleet does not thunder against the store. Idempotent.
    pub fn start(&self, sim: &mut Sim) {
        if self.running.replace(true) {
            return;
        }
        for (i, &id) in self.ids.iter().enumerate() {
            let offset = self.interval.div_u64(self.ids.len() as u64) * i as u64;
            let fleet = self.clone();
            every(sim, sim.now() + offset, self.interval, move |sim| {
                if !fleet.running.get() {
                    return false;
                }
                fleet.publish_report(sim, id);
                true
            });
        }
    }

    /// Stops reporting at each DataNode's next tick.
    pub fn stop(&self) {
        self.running.set(false);
    }

    /// Writes one heartbeat/block-report row through a real store
    /// transaction (exclusive row lock, commit charge).
    fn publish_report(&self, sim: &mut Sim, id: DataNodeId) {
        let db = self.db.clone();
        let schema = self.schema.clone();
        let txn = db.begin();
        let lock = db.lock_key(schema.datanodes, &id);
        let db2 = db.clone();
        db.lock(sim, txn, vec![lock], LockMode::Exclusive, move |sim, res| {
            if res.is_err() {
                // Contention on a heartbeat row: skip this round.
                db2.abort(sim, txn);
                return;
            }
            let now = sim.now();
            let current = db2.peek(schema.datanodes, &id);
            if let Some(mut info) = current {
                info.last_heartbeat_nanos = now.as_nanos();
                info.reported_blocks += 1;
                info.used = info.used.saturating_add(64 * 1024 * 1024);
                if db2.upsert(txn, schema.datanodes, id, info).is_err() {
                    db2.abort(sim, txn);
                    return;
                }
            }
            db2.commit(sim, txn, |_sim, _res| {});
        });
    }

    /// DataNodes whose last heartbeat is within `staleness` of `now`
    /// (DataNode discovery, as a NameNode would perform it via the store).
    #[must_use]
    pub fn live_datanodes(&self, now: SimTime, staleness: SimDuration) -> Vec<DataNodeId> {
        self.db
            .peek_range(self.schema.datanodes, ..)
            .into_iter()
            .filter(|(_, info)| {
                now.saturating_since(SimTime::from_nanos(info.last_heartbeat_nanos)) <= staleness
            })
            .map(|(id, _)| id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lambda_sim::params::StoreParams;

    #[test]
    fn fleet_publishes_heartbeats_through_the_store() {
        let mut sim = Sim::new(1);
        let db = Db::new(&StoreParams::default(), SimDuration::from_secs(5));
        let schema = MetadataSchema::install(&db);
        let fleet = DataNodeFleet::new(&db, &schema, 4, SimDuration::from_secs(10));
        fleet.start(&mut sim);
        sim.run_until(SimTime::from_secs(35));
        fleet.stop();
        sim.run_until(SimTime::from_secs(50));
        for id in fleet.ids() {
            let info = db.peek(schema.datanodes, id).unwrap();
            assert!(info.reported_blocks >= 3, "dn {id} reported {}", info.reported_blocks);
            assert!(info.last_heartbeat_nanos > 0);
        }
        // Reports are real transactions: commits were charged.
        assert!(db.stats().commits >= 12);
    }

    #[test]
    fn discovery_filters_stale_datanodes() {
        let mut sim = Sim::new(2);
        let db = Db::new(&StoreParams::default(), SimDuration::from_secs(5));
        let schema = MetadataSchema::install(&db);
        let fleet = DataNodeFleet::new(&db, &schema, 3, SimDuration::from_secs(5));
        fleet.start(&mut sim);
        sim.run_until(SimTime::from_secs(12));
        fleet.stop();
        sim.run_until(SimTime::from_secs(13));
        let live = fleet.live_datanodes(sim.now(), SimDuration::from_secs(10));
        assert_eq!(live.len(), 3);
        // Far in the future, everyone is stale.
        sim.run_until(SimTime::from_secs(100));
        let live = fleet.live_datanodes(sim.now(), SimDuration::from_secs(10));
        assert!(live.is_empty());
    }

    #[test]
    fn start_is_idempotent() {
        let mut sim = Sim::new(3);
        let db = Db::new(&StoreParams::default(), SimDuration::from_secs(5));
        let schema = MetadataSchema::install(&db);
        let fleet = DataNodeFleet::new(&db, &schema, 2, SimDuration::from_secs(5));
        fleet.start(&mut sim);
        fleet.start(&mut sim);
        sim.run_until(SimTime::from_secs(6));
        fleet.stop();
        sim.run_until(SimTime::from_secs(20));
        // One report per node per tick — not doubled.
        let info = db.peek(schema.datanodes, &1).unwrap();
        assert!(info.reported_blocks <= 2);
    }
}
