//! INodes, blocks, and DataNode descriptors — the row types of the
//! persistent metadata store.
//!
//! The [`Inode`] row is deliberately compact (64 bytes, down from 104 with
//! an owned `String` name and `Vec` block list): the store keeps every row
//! resident and clones rows on every read, so at the 10M-inode scale of
//! `fig08d_million_scale` each row byte is ~10MB of resident memory and
//! each per-clone allocation is measurable wall-clock.

use crate::path::InodeName;

/// Identifier of an inode. The root directory is always
/// [`ROOT_INODE_ID`].
pub type InodeId = u64;

/// The well-known id of `/`.
pub const ROOT_INODE_ID: InodeId = 1;

/// Whether an inode is a file or a directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InodeKind {
    /// A regular file with data blocks.
    File,
    /// A directory containing named children.
    Directory,
}

/// An inode's ordered data-block ids, inline up to one block.
///
/// Directories and empty files — the overwhelming majority of rows in the
/// simulated namespaces — pay 0 heap bytes; a `Vec<u64>` spent 24 bytes of
/// row plus an allocation per non-empty list. The canonical form is
/// maintained by [`BlockList::push`]: `Many` always holds ≥ 2 blocks, so
/// derived equality agrees with slice equality.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum BlockList {
    /// No blocks (directories, empty files).
    #[default]
    Empty,
    /// Exactly one block, stored inline.
    One(BlockId),
    /// Two or more blocks (boxed twice-indirect: the spill case is rare
    /// enough that keeping the enum at 16 bytes wins).
    Many(Box<Vec<BlockId>>),
}

impl BlockList {
    /// Whether the list is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        matches!(self, BlockList::Empty)
    }

    /// Number of blocks.
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            BlockList::Empty => 0,
            BlockList::One(_) => 1,
            BlockList::Many(v) => v.len(),
        }
    }

    /// The blocks, in order.
    #[must_use]
    pub fn as_slice(&self) -> &[BlockId] {
        match self {
            BlockList::Empty => &[],
            BlockList::One(b) => std::slice::from_ref(b),
            BlockList::Many(v) => v,
        }
    }

    /// Appends a block id.
    pub fn push(&mut self, block: BlockId) {
        match self {
            BlockList::Empty => *self = BlockList::One(block),
            BlockList::One(first) => *self = BlockList::Many(Box::new(vec![*first, block])),
            BlockList::Many(v) => v.push(block),
        }
    }

    /// Iterates over the block ids.
    pub fn iter(&self) -> impl Iterator<Item = BlockId> + '_ {
        self.as_slice().iter().copied()
    }
}

impl FromIterator<BlockId> for BlockList {
    fn from_iter<I: IntoIterator<Item = BlockId>>(iter: I) -> BlockList {
        let mut list = BlockList::Empty;
        for b in iter {
            list.push(b);
        }
        list
    }
}

/// File-system metadata for one file or directory.
///
/// This mirrors the HopsFS `INode` row: identity, tree position,
/// permissions, and (for files) the block list.
#[derive(Debug, Clone, PartialEq)]
pub struct Inode {
    /// This inode's id.
    pub id: InodeId,
    /// Parent directory id (the root is its own parent).
    pub parent: InodeId,
    /// Name within the parent directory (`""` for the root), as a 4-byte
    /// interned symbol.
    pub name: InodeName,
    /// File or directory.
    pub kind: InodeKind,
    /// POSIX-style permission bits.
    pub perm: u16,
    /// Owner uid.
    pub owner: u32,
    /// Group gid.
    pub group: u32,
    /// File size in bytes (0 for directories).
    pub size: u64,
    /// Modification time, nanoseconds of simulated time.
    pub mtime_nanos: u64,
    /// Ids of the file's data blocks, in order.
    pub blocks: BlockList,
}

impl Inode {
    /// Builds a directory inode.
    #[must_use]
    pub fn directory(id: InodeId, parent: InodeId, name: impl Into<InodeName>) -> Self {
        Inode {
            id,
            parent,
            name: name.into(),
            kind: InodeKind::Directory,
            perm: 0o755,
            owner: 0,
            group: 0,
            size: 0,
            mtime_nanos: 0,
            blocks: BlockList::Empty,
        }
    }

    /// Builds a file inode.
    #[must_use]
    pub fn file(id: InodeId, parent: InodeId, name: impl Into<InodeName>) -> Self {
        Inode {
            id,
            parent,
            name: name.into(),
            kind: InodeKind::File,
            perm: 0o644,
            owner: 0,
            group: 0,
            size: 0,
            mtime_nanos: 0,
            blocks: BlockList::Empty,
        }
    }

    /// The root inode.
    #[must_use]
    pub fn root() -> Self {
        Inode::directory(ROOT_INODE_ID, ROOT_INODE_ID, "")
    }

    /// Whether this inode is a directory.
    #[must_use]
    pub fn is_dir(&self) -> bool {
        self.kind == InodeKind::Directory
    }
}

/// Identifier of a data block.
pub type BlockId = u64;

/// Location and length of one data block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockInfo {
    /// This block's id.
    pub id: BlockId,
    /// Owning file inode.
    pub inode: InodeId,
    /// Generation stamp (bumped on re-replication).
    pub generation: u64,
    /// Bytes in the block.
    pub len: u64,
    /// DataNodes currently holding replicas.
    pub locations: Vec<DataNodeId>,
}

/// Identifier of a DataNode.
pub type DataNodeId = u64;

/// Liveness and capacity record a DataNode publishes to the metadata store
/// (λFS re-implements block reports and DataNode discovery by publishing to
/// the persistent store on an interval — paper §1/§3).
#[derive(Debug, Clone, PartialEq)]
pub struct DataNodeInfo {
    /// This DataNode's id.
    pub id: DataNodeId,
    /// Last heartbeat, nanoseconds of simulated time.
    pub last_heartbeat_nanos: u64,
    /// Total capacity in bytes.
    pub capacity: u64,
    /// Bytes in use.
    pub used: u64,
    /// Number of blocks reported in the last block report.
    pub reported_blocks: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_sane_defaults() {
        let d = Inode::directory(5, 1, "data");
        assert!(d.is_dir());
        assert_eq!(d.perm, 0o755);
        let f = Inode::file(6, 5, "x.bin");
        assert!(!f.is_dir());
        assert_eq!(f.perm, 0o644);
        assert!(f.blocks.is_empty());
    }

    #[test]
    fn root_is_its_own_parent() {
        let r = Inode::root();
        assert_eq!(r.id, ROOT_INODE_ID);
        assert_eq!(r.parent, ROOT_INODE_ID);
        assert!(r.is_dir());
        assert_eq!(r.name, "");
    }

    #[test]
    fn inode_row_stays_compact() {
        // The point of the interned name + inline block list: the resident
        // row is 64 bytes. A change that grows it shows up here, not as a
        // silent regression in the fig08d memory sweep.
        assert_eq!(std::mem::size_of::<Inode>(), 64);
        assert_eq!(std::mem::size_of::<BlockList>(), 16);
        assert_eq!(std::mem::size_of::<InodeName>(), 4);
    }

    #[test]
    fn block_list_keeps_canonical_form() {
        let mut b = BlockList::Empty;
        assert_eq!(b.len(), 0);
        assert_eq!(b.as_slice(), &[] as &[u64]);
        b.push(7);
        assert_eq!(b, BlockList::One(7));
        b.push(9);
        assert_eq!(b.as_slice(), &[7, 9]);
        assert_eq!(b.len(), 2);
        b.push(11);
        assert_eq!(b.iter().collect::<Vec<_>>(), vec![7, 9, 11]);
        let again: BlockList = b.iter().collect();
        assert_eq!(again, b);
    }

    #[test]
    fn inode_names_compare_like_strings() {
        let a = InodeName::new("alpha");
        let b = InodeName::new("beta");
        assert!(a < b);
        assert_eq!(a, InodeName::new("alpha"));
        assert_eq!(a.as_str(), "alpha");
        assert_eq!(a, "alpha");
        assert_eq!("alpha", a);
        assert!(!a.is_empty());
        assert!(InodeName::new("").is_empty());
    }
}
