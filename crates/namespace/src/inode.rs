//! INodes, blocks, and DataNode descriptors — the row types of the
//! persistent metadata store.

/// Identifier of an inode. The root directory is always
/// [`ROOT_INODE_ID`].
pub type InodeId = u64;

/// The well-known id of `/`.
pub const ROOT_INODE_ID: InodeId = 1;

/// Whether an inode is a file or a directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InodeKind {
    /// A regular file with data blocks.
    File,
    /// A directory containing named children.
    Directory,
}

/// File-system metadata for one file or directory.
///
/// This mirrors the HopsFS `INode` row: identity, tree position,
/// permissions, and (for files) the block list.
#[derive(Debug, Clone, PartialEq)]
pub struct Inode {
    /// This inode's id.
    pub id: InodeId,
    /// Parent directory id (the root is its own parent).
    pub parent: InodeId,
    /// Name within the parent directory (`""` for the root).
    pub name: String,
    /// File or directory.
    pub kind: InodeKind,
    /// POSIX-style permission bits.
    pub perm: u16,
    /// Owner uid.
    pub owner: u32,
    /// Group gid.
    pub group: u32,
    /// File size in bytes (0 for directories).
    pub size: u64,
    /// Modification time, nanoseconds of simulated time.
    pub mtime_nanos: u64,
    /// Ids of the file's data blocks, in order.
    pub blocks: Vec<u64>,
}

impl Inode {
    /// Builds a directory inode.
    #[must_use]
    pub fn directory(id: InodeId, parent: InodeId, name: impl Into<String>) -> Self {
        Inode {
            id,
            parent,
            name: name.into(),
            kind: InodeKind::Directory,
            perm: 0o755,
            owner: 0,
            group: 0,
            size: 0,
            mtime_nanos: 0,
            blocks: Vec::new(),
        }
    }

    /// Builds a file inode.
    #[must_use]
    pub fn file(id: InodeId, parent: InodeId, name: impl Into<String>) -> Self {
        Inode {
            id,
            parent,
            name: name.into(),
            kind: InodeKind::File,
            perm: 0o644,
            owner: 0,
            group: 0,
            size: 0,
            mtime_nanos: 0,
            blocks: Vec::new(),
        }
    }

    /// The root inode.
    #[must_use]
    pub fn root() -> Self {
        Inode::directory(ROOT_INODE_ID, ROOT_INODE_ID, "")
    }

    /// Whether this inode is a directory.
    #[must_use]
    pub fn is_dir(&self) -> bool {
        self.kind == InodeKind::Directory
    }
}

/// Identifier of a data block.
pub type BlockId = u64;

/// Location and length of one data block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockInfo {
    /// This block's id.
    pub id: BlockId,
    /// Owning file inode.
    pub inode: InodeId,
    /// Generation stamp (bumped on re-replication).
    pub generation: u64,
    /// Bytes in the block.
    pub len: u64,
    /// DataNodes currently holding replicas.
    pub locations: Vec<DataNodeId>,
}

/// Identifier of a DataNode.
pub type DataNodeId = u64;

/// Liveness and capacity record a DataNode publishes to the metadata store
/// (λFS re-implements block reports and DataNode discovery by publishing to
/// the persistent store on an interval — paper §1/§3).
#[derive(Debug, Clone, PartialEq)]
pub struct DataNodeInfo {
    /// This DataNode's id.
    pub id: DataNodeId,
    /// Last heartbeat, nanoseconds of simulated time.
    pub last_heartbeat_nanos: u64,
    /// Total capacity in bytes.
    pub capacity: u64,
    /// Bytes in use.
    pub used: u64,
    /// Number of blocks reported in the last block report.
    pub reported_blocks: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_sane_defaults() {
        let d = Inode::directory(5, 1, "data");
        assert!(d.is_dir());
        assert_eq!(d.perm, 0o755);
        let f = Inode::file(6, 5, "x.bin");
        assert!(!f.is_dir());
        assert_eq!(f.perm, 0o644);
        assert!(f.blocks.is_empty());
    }

    #[test]
    fn root_is_its_own_parent() {
        let r = Inode::root();
        assert_eq!(r.id, ROOT_INODE_ID);
        assert_eq!(r.parent, ROOT_INODE_ID);
        assert!(r.is_dir());
        assert_eq!(r.name, "");
    }
}
