//! Namespace partitioning across serverless function deployments.
//!
//! λFS registers a fixed number `n` of uniquely named NameNode deployments
//! and partitions the file-system namespace among them by **consistently
//! hashing the parent of each file/directory** (paper §3.1/§3.3). All
//! metadata of one directory's children therefore lands on one deployment
//! (good for locality, like LocoFS), while FaaS auto-scaling *within* the
//! deployment absorbs hot directories (unlike LocoFS, §6).
//!
//! Two key variants exist in the paper ("parent directory path" in §3.1,
//! "parent INode ID" in §3.3); both are provided.

use crate::inode::InodeId;
use crate::path::DfsPath;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

fn fnv1a_step(mut h: u64, data: &[u8]) -> u64 {
    for b in data {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn mix64(mut x: u64) -> u64 {
    // splitmix64 finalizer: decorrelates sequential ids.
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A consistent-hash ring mapping keys to one of `n` deployments, with
/// virtual nodes for balance.
///
/// # Examples
///
/// ```
/// use lambda_namespace::Partitioner;
///
/// let ring = Partitioner::new(8);
/// let path = "/data/logs/app.log".parse().unwrap();
/// let d = ring.deployment_for_path(&path);
/// // Deterministic: same path, same deployment.
/// assert_eq!(d, ring.deployment_for_path(&path));
/// assert!(d < 8);
/// ```
#[derive(Debug, Clone)]
pub struct Partitioner {
    /// Sorted `(point, deployment)` ring.
    ring: Vec<(u64, u32)>,
    deployments: u32,
}

impl Partitioner {
    /// Virtual nodes per deployment.
    const VNODES: u32 = 64;

    /// Builds a ring over `deployments` deployments.
    ///
    /// # Panics
    ///
    /// Panics if `deployments == 0`.
    #[must_use]
    pub fn new(deployments: u32) -> Self {
        assert!(deployments > 0, "need at least one deployment");
        let mut ring = Vec::with_capacity((deployments * Self::VNODES) as usize);
        for d in 0..deployments {
            for v in 0..Self::VNODES {
                ring.push((mix64((u64::from(d) << 32) | u64::from(v)), d));
            }
        }
        ring.sort_unstable();
        Partitioner { ring, deployments }
    }

    /// Number of deployments on the ring.
    #[must_use]
    pub fn deployments(&self) -> u32 {
        self.deployments
    }

    fn owner_of_hash(&self, h: u64) -> u32 {
        let idx = self.ring.partition_point(|(p, _)| *p < h);
        let idx = if idx == self.ring.len() { 0 } else { idx };
        self.ring[idx].1
    }

    /// The deployment responsible for a file/directory, keyed by its
    /// **parent directory's path** (§3.1: hash of the parent directory
    /// path; the root is keyed by itself).
    ///
    /// FNV's upper bits avalanche poorly on short, similar strings, so the
    /// raw hash is finalized with splitmix64 before the (order-sensitive)
    /// ring lookup.
    #[must_use]
    pub fn deployment_for_path(&self, path: &DfsPath) -> u32 {
        // Hash the parent's rendered bytes without materializing it: feed
        // `/component` per parent component (the root hashes as a lone
        // `/`, both for root-keyed top-level items and for the root path
        // itself, which the paper keys by itself).
        let parent_comps = path.depth().saturating_sub(1);
        let mut h = FNV_OFFSET;
        if parent_comps == 0 {
            h = fnv1a_step(h, b"/");
        } else {
            for comp in path.components().take(parent_comps) {
                h = fnv1a_step(h, b"/");
                h = fnv1a_step(h, comp.as_bytes());
            }
        }
        self.owner_of_hash(mix64(h))
    }

    /// The deployment responsible for an inode, keyed by its **parent
    /// INode id** (§3.3 variant).
    #[must_use]
    pub fn deployment_for_parent_id(&self, parent: InodeId) -> u32 {
        self.owner_of_hash(mix64(parent))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> DfsPath {
        s.parse().unwrap()
    }

    #[test]
    fn deterministic_across_instances() {
        let a = Partitioner::new(16);
        let b = Partitioner::new(16);
        for i in 0..100 {
            let path = p(&format!("/d{i}/f"));
            assert_eq!(a.deployment_for_path(&path), b.deployment_for_path(&path));
            assert_eq!(a.deployment_for_parent_id(i), b.deployment_for_parent_id(i));
        }
    }

    #[test]
    fn siblings_share_a_deployment() {
        let ring = Partitioner::new(8);
        let d1 = ring.deployment_for_path(&p("/data/a.txt"));
        let d2 = ring.deployment_for_path(&p("/data/b.txt"));
        assert_eq!(d1, d2, "children of one directory must co-locate");
    }

    #[test]
    fn partitions_are_reasonably_balanced() {
        let ring = Partitioner::new(10);
        let mut counts = vec![0u32; 10];
        for i in 0..10_000u64 {
            counts[ring.deployment_for_parent_id(i) as usize] += 1;
        }
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(*min > 0, "unused deployment");
        assert!(
            f64::from(*max) / f64::from(*min) < 4.0,
            "imbalance {counts:?}"
        );
    }

    #[test]
    fn all_deployments_reachable() {
        let ring = Partitioner::new(32);
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..50_000u64 {
            seen.insert(ring.deployment_for_parent_id(i));
        }
        assert_eq!(seen.len(), 32);
    }

    #[test]
    fn consistency_under_growth() {
        // Consistent hashing: growing the ring moves only a fraction of
        // keys.
        let small = Partitioner::new(8);
        let large = Partitioner::new(9);
        let moved = (0..10_000u64)
            .filter(|i| {
                let a = small.deployment_for_parent_id(*i);
                let b = large.deployment_for_parent_id(*i);
                a != b && b != 8
            })
            .count();
        // Keys that changed owner without moving to the new deployment
        // should be rare (only ring-boundary shifts).
        assert!(moved < 1500, "moved {moved} of 10000");
    }

    #[test]
    fn path_keys_spread_over_all_deployments() {
        // Regression: FNV without finalization clustered similar paths
        // ("/dir00000", "/dir00001", …) onto one or two deployments.
        let ring = Partitioner::new(10);
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..128 {
            let dir: DfsPath = format!("/dir{i:05}").parse().unwrap();
            let file = dir.join("file00000").unwrap();
            seen.insert(ring.deployment_for_path(&file));
        }
        assert_eq!(seen.len(), 10, "path hashing uses {} of 10 deployments", seen.len());
    }

    #[test]
    fn root_items_are_keyed_by_root() {
        let ring = Partitioner::new(4);
        let d1 = ring.deployment_for_path(&p("/top1"));
        let d2 = ring.deployment_for_path(&p("/top2"));
        assert_eq!(d1, d2);
    }
}
