//! # lambda-namespace
//!
//! The DFS namespace model shared by λFS and every baseline in the
//! ASPLOS '23 reproduction:
//!
//! * [`DfsPath`] — validated absolute paths;
//! * [`Inode`], [`BlockInfo`], [`DataNodeInfo`] — the metadata row types;
//! * [`FsOp`] / [`OpOutcome`] / [`FsError`] — the seven operation types of
//!   the evaluation (Table 2) and their results;
//! * [`MetadataSchema`] — the store schema (inodes, children index, blocks,
//!   DataNodes, subtree locks) plus bulk loading and a consistency checker;
//! * [`Partitioner`] — consistent hashing of parents onto function
//!   deployments (paper §3.1/§3.3);
//! * [`MetadataCache`] — the per-NameNode trie cache with LRU bounds and
//!   single-INode / prefix invalidation (§3.3, Appendix D);
//! * [`DataNodeFleet`] — DataNodes publishing block reports through the
//!   persistent store (the serverless-compatible maintenance path).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
pub mod cache_baseline;
mod datanode;
mod inode;
mod ops;
mod partition;
mod path;
mod schema;

pub use cache::{CacheStats, MetadataCache};
pub use datanode::DataNodeFleet;
pub use inode::{
    BlockId, BlockInfo, BlockList, DataNodeId, DataNodeInfo, Inode, InodeId, InodeKind,
    ROOT_INODE_ID,
};
pub use ops::{FsError, FsOp, OpClass, OpOutcome, OpResult};
pub use partition::Partitioner;
pub use path::{interned, Ancestors, DfsPath, InodeName, ParsePathError};
pub use schema::{MetadataSchema, SubtreeLockRow};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashMap;

    fn comp_strategy() -> impl Strategy<Value = String> {
        "[a-d]{1,2}".prop_map(|s| s)
    }

    fn path_strategy() -> impl Strategy<Value = DfsPath> {
        proptest::collection::vec(comp_strategy(), 1..5).prop_map(|comps| {
            let mut p = DfsPath::root();
            for c in comps {
                p = p.join(&c).expect("valid component");
            }
            p
        })
    }

    #[derive(Debug, Clone)]
    enum CacheOp {
        Insert(DfsPath),
        InvalidateInode(DfsPath),
        InvalidatePrefix(DfsPath),
        Lookup(DfsPath),
    }

    fn cache_op() -> impl Strategy<Value = CacheOp> {
        prop_oneof![
            4 => path_strategy().prop_map(CacheOp::Insert),
            2 => path_strategy().prop_map(CacheOp::InvalidateInode),
            1 => path_strategy().prop_map(CacheOp::InvalidatePrefix),
            3 => path_strategy().prop_map(CacheOp::Lookup),
        ]
    }

    /// A reference model: one entry per cached path node (ids are a
    /// deterministic function of the path, so path ≡ inode id). A lookup
    /// hits iff every prefix — root included — has an entry; single-inode
    /// invalidation drops exactly one entry; prefix invalidation drops all
    /// entries at or under the prefix.
    #[derive(Default)]
    struct Model {
        entries: HashMap<String, Inode>,
    }

    impl Model {
        fn lookup(&self, path: &DfsPath) -> Option<Vec<Inode>> {
            let all = path.ancestors().chain(std::iter::once(path.clone()));
            all.map(|p| self.entries.get(p.as_str()).cloned()).collect()
        }
    }

    /// Deterministic inode ids per path so the model and the cache agree.
    fn chain_for(path: &DfsPath) -> Vec<Inode> {
        fn id_of(p: &str) -> u64 {
            if p == "/" {
                return ROOT_INODE_ID;
            }
            let mut h: u64 = 0xcbf29ce484222325;
            for b in p.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100000001b3);
            }
            (h | 1).max(2)
        }
        let mut chain = vec![Inode::root()];
        for p in path.ancestors().skip(1).chain(std::iter::once(path.clone())) {
            let p = &p;
            let parent = id_of(p.parent().expect("non-root").as_str());
            chain.push(Inode::directory(id_of(p.as_str()), parent, p.file_name().unwrap()));
        }
        chain
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        /// With unbounded capacity the trie cache agrees with a flat-map
        /// model under inserts, lookups, and both invalidation flavors.
        #[test]
        fn cache_matches_model(ops in proptest::collection::vec(cache_op(), 1..120)) {
            let mut cache = MetadataCache::new(1_000_000);
            let mut model = Model::default();
            for op in &ops {
                match op {
                    CacheOp::Insert(path) => {
                        let chain = chain_for(path);
                        cache.insert_chain(path, &chain);
                        let all = path.ancestors().chain(std::iter::once(path.clone()));
                        for (i, p) in all.enumerate() {
                            model.entries.insert(p.as_str().to_string(), chain[i].clone());
                        }
                    }
                    CacheOp::InvalidateInode(path) => {
                        let id = chain_for(path).last().unwrap().id;
                        cache.invalidate_inode(id);
                        model.entries.remove(path.as_str());
                    }
                    CacheOp::InvalidatePrefix(path) => {
                        cache.invalidate_prefix(path);
                        model.entries.retain(|p, _| {
                            let p: DfsPath = p.parse().unwrap();
                            !p.starts_with(path)
                        });
                    }
                    CacheOp::Lookup(path) => {
                        let got = cache.lookup(path);
                        let want = model.lookup(path);
                        prop_assert_eq!(got, want, "path {}", path);
                    }
                }
            }
        }

        /// Path parsing round-trips through Display.
        #[test]
        fn path_round_trips(path in path_strategy()) {
            let s = path.to_string();
            let back: DfsPath = s.parse().unwrap();
            prop_assert_eq!(back, path);
        }

        /// The partitioner always co-locates siblings and spreads
        /// different directories over the ring deterministically.
        #[test]
        fn partitioner_colocates_siblings(dir in path_strategy(), n in 1u32..64) {
            let ring = Partitioner::new(n);
            let a = dir.join("child-a").unwrap();
            let b = dir.join("child-b").unwrap();
            prop_assert_eq!(ring.deployment_for_path(&a), ring.deployment_for_path(&b));
            prop_assert!(ring.deployment_for_path(&a) < n);
        }
    }
}
