//! The metadata store schema shared by λFS and the HopsFS-family
//! baselines, plus bulk-loading helpers.
//!
//! Tables (mirroring HopsFS's NDB schema at the granularity the
//! reproduction needs):
//!
//! * `inodes`: inode id → [`Inode`];
//! * `children`: `(parent id, name)` → child inode id (the lookup index
//!   used for path resolution and `ls` range scans);
//! * `blocks`: block id → [`BlockInfo`];
//! * `datanodes`: DataNode id → [`DataNodeInfo`] (heartbeats/reports);
//! * `subtree_locks`: subtree-root inode id → [`SubtreeLockRow`] (the
//!   application-level subtree locking protocol of Appendix D).

use std::cell::Cell;
use std::rc::Rc;

use lambda_store::{Db, NameKey, TableHandle};

use crate::inode::{BlockId, BlockInfo, DataNodeId, DataNodeInfo, Inode, InodeId, ROOT_INODE_ID};
use crate::path::{DfsPath, InodeName};

/// The subtree-lock flag persisted on a subtree root (Appendix D, Phase 1).
///
/// Both strings are `&'static str`: the path borrows the interner arena
/// ([`DfsPath::as_str`] strings live forever) and the op description is a
/// literal, so the row is `Copy`-cheap and holds no heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubtreeLockRow {
    /// Which NameNode (coordinator session raw id) holds the lock.
    pub holder: u64,
    /// When the lock was taken, nanoseconds of simulated time.
    pub acquired_nanos: u64,
    /// The locked subtree's root path (used for overlap checks: two
    /// subtree operations may not run on overlapping trees).
    pub path: &'static str,
    /// The operation description (for diagnostics).
    pub op: &'static str,
}

/// Typed handles to every table, plus the inode-id allocator.
#[derive(Debug, Clone)]
pub struct MetadataSchema {
    /// inode id → inode.
    pub inodes: TableHandle<InodeId, Inode>,
    /// (parent id, child name) → child inode id. The name suffix is a
    /// [`NameKey`] — a `Copy` pointer into the component interner arena —
    /// with an encoding byte-identical to the `(u64, String)` key it
    /// replaced, so shard routing and lock ordering are unchanged.
    pub children: TableHandle<(InodeId, NameKey), InodeId>,
    /// block id → block info.
    pub blocks: TableHandle<BlockId, BlockInfo>,
    /// DataNode id → liveness/capacity record.
    pub datanodes: TableHandle<DataNodeId, DataNodeInfo>,
    /// subtree-root inode id → subtree lock flag.
    pub subtree_locks: TableHandle<InodeId, SubtreeLockRow>,
    next_id: Rc<Cell<u64>>,
}

impl MetadataSchema {
    /// Creates the tables in `db` and installs the root inode.
    #[must_use]
    pub fn install(db: &Db) -> Self {
        let schema = MetadataSchema {
            inodes: db.create_table("inodes"),
            children: db.create_table("children"),
            blocks: db.create_table("blocks"),
            datanodes: db.create_table("datanodes"),
            subtree_locks: db.create_table("subtree_locks"),
            next_id: Rc::new(Cell::new(ROOT_INODE_ID + 1)),
        };
        db.bootstrap_insert(schema.inodes, ROOT_INODE_ID, Inode::root());
        schema
    }

    /// Allocates a fresh inode id. (NDB serves this from an atomic
    /// sequence; the allocation itself is not a charged row operation.)
    #[must_use]
    pub fn next_id(&self) -> InodeId {
        let id = self.next_id.get();
        self.next_id.set(id + 1);
        id
    }

    /// Resolves `path` against the committed state **without** locks or
    /// capacity charges.
    ///
    /// This is (a) the model of the client-side "INode Hint Cache" — the
    /// ids a client predicts so the server can validate them in a single
    /// batched query — and (b) the test oracle. Returns the inode chain
    /// from the root to the target inclusive, or `None` if any component
    /// is missing.
    #[must_use]
    pub fn peek_chain(&self, db: &Db, path: &DfsPath) -> Option<Vec<Inode>> {
        let mut chain = vec![db.peek(self.inodes, &ROOT_INODE_ID)?];
        // One children-table probe per component; components are already
        // arena-backed, so building each probe key is two register moves.
        let mut parent = ROOT_INODE_ID;
        for comp in path.components() {
            let child = db.peek(self.children, &(parent, NameKey::new(comp)))?;
            let inode = db.peek(self.inodes, &child)?;
            parent = child;
            chain.push(inode);
        }
        Some(chain)
    }

    /// The id chain for `path` (root inclusive) against the committed
    /// state — the same hints as [`MetadataSchema::peek_chain`] without
    /// materializing inode rows: one children-table probe per component,
    /// no inode-table touches. Committed state is transactionally
    /// consistent (children and inode rows change together), so a
    /// resolving id chain implies the rows exist; callers that need the
    /// rows re-read them under locks anyway, which is why hinting fetches
    /// them only to drop them.
    #[must_use]
    pub fn peek_chain_ids(&self, db: &Db, path: &DfsPath) -> Option<Vec<InodeId>> {
        let comps = path.components();
        let mut ids = Vec::with_capacity(comps.size_hint().0 + 1);
        ids.push(ROOT_INODE_ID);
        let mut parent = ROOT_INODE_ID;
        for comp in comps {
            let child = db.peek(self.children, &(parent, NameKey::new(comp)))?;
            parent = child;
            ids.push(child);
        }
        Some(ids)
    }

    /// Bulk-loads a directory at `path` (parents must exist), returning
    /// its id. Pre-run loading only; see [`Db::bootstrap_insert`].
    ///
    /// # Panics
    ///
    /// Panics if the parent chain does not resolve or the name is taken.
    pub fn bootstrap_mkdir(&self, db: &Db, path: &DfsPath) -> InodeId {
        self.bootstrap_add(db, path, true)
    }

    /// Bulk-loads a file at `path` (parents must exist), returning its id.
    ///
    /// # Panics
    ///
    /// Panics if the parent chain does not resolve or the name is taken.
    pub fn bootstrap_create(&self, db: &Db, path: &DfsPath) -> InodeId {
        self.bootstrap_add(db, path, false)
    }

    fn bootstrap_add(&self, db: &Db, path: &DfsPath, dir: bool) -> InodeId {
        let parent_path = path.parent().expect("cannot create the root");
        let parent = self
            .peek_chain(db, &parent_path)
            .unwrap_or_else(|| panic!("bootstrap parent missing: {parent_path}"))
            .pop()
            .expect("chain non-empty");
        assert!(parent.is_dir(), "bootstrap parent is a file: {parent_path}");
        // One intern for the whole entry; the inode row and the children
        // key both reuse it.
        let name = InodeName::new(path.file_name().expect("non-root"));
        assert!(
            db.peek(self.children, &(parent.id, name.key())).is_none(),
            "bootstrap name collision: {path}"
        );
        self.bootstrap_add_under(db, parent.id, name, dir)
    }

    /// Inserts one entry under an already-resolved parent id. The caller
    /// owns the invariants `bootstrap_add` checks: the parent exists, is a
    /// directory, and has no child named `name`.
    fn bootstrap_add_under(&self, db: &Db, parent: InodeId, name: InodeName, dir: bool) -> InodeId {
        let id = self.next_id();
        let inode =
            if dir { Inode::directory(id, parent, name) } else { Inode::file(id, parent, name) };
        db.bootstrap_insert(self.inodes, id, inode);
        db.bootstrap_insert(self.children, (parent, name.key()), id);
        id
    }

    /// Bulk-loads a balanced tree under `root`: `dirs` directories each
    /// holding `files_per_dir` files. Returns the created directory paths.
    ///
    /// This is the "existing directory tree" every micro-benchmark
    /// targets (§5.3: "all operations target random files and directories
    /// across an existing directory tree").
    ///
    /// When none of the `dir{d:05}` names exist under `root` yet — every
    /// fresh bootstrap — the tree is *streamed*: inode ids are laid out
    /// arithmetically (each directory's id followed by its files', exactly
    /// the order per-entry allocation produces) and both tables are built
    /// through [`Db::bootstrap_bulk_load`]'s dense bulk build, with no
    /// per-entry path resolution, B-tree insert, or post-hoc repack.
    /// Re-bootstrapping an existing tree falls back to the idempotent
    /// per-entry path (a no-op per existing entry), with the parent id
    /// carried instead of re-walked.
    pub fn bootstrap_tree(
        &self,
        db: &Db,
        root: &DfsPath,
        dirs: usize,
        files_per_dir: usize,
    ) -> Vec<DfsPath> {
        if !root.is_root() && self.peek_chain(db, root).is_none() {
            self.bootstrap_mkdir(db, root);
        }
        if dirs == 0 {
            return Vec::new();
        }
        let root_inode = self
            .peek_chain(db, root)
            .unwrap_or_else(|| panic!("bootstrap parent missing: {root}"))
            .pop()
            .expect("chain non-empty");
        assert!(root_inode.is_dir(), "bootstrap parent is a file: {root}");
        let root_id = root_inode.id;

        let mut buf = String::new();
        let render = |buf: &mut String, prefix: &str, i: usize| {
            use std::fmt::Write;
            buf.clear();
            write!(buf, "{prefix}{i:05}").expect("write to String");
            InodeName::new(buf)
        };
        let dir_names: Vec<InodeName> =
            (0..dirs).map(|d| render(&mut buf, "dir", d)).collect();
        let file_names: Vec<InodeName> =
            (0..files_per_dir).map(|f| render(&mut buf, "file", f)).collect();

        let fresh = dir_names
            .iter()
            .all(|dn| db.peek(self.children, &(root_id, dn.key())).is_none());
        let mut out = Vec::with_capacity(dirs);
        if fresh {
            self.stream_tree(db, root_id, &dir_names, &file_names);
            out.extend(dir_names.iter().map(|&dn| root.join_interned(dn)));
            return out;
        }

        // Idempotent per-entry path: re-bootstrapping an existing tree
        // (e.g. a harness pre-loading before the workload driver does) is
        // a no-op per existing entry.
        for (d, &dname) in dir_names.iter().enumerate() {
            let dir_id = match db.peek(self.children, &(root_id, dname.key())) {
                Some(id) => id,
                None => self.bootstrap_add_under(db, root_id, dname, true),
            };
            if files_per_dir > 0 {
                let dir_inode =
                    db.peek(self.inodes, &dir_id).expect("children row points at live inode");
                assert!(
                    dir_inode.is_dir(),
                    "bootstrap parent is a file: {root}/dir{d:05}"
                );
            }
            for &fname in &file_names {
                if db.peek(self.children, &(dir_id, fname.key())).is_none() {
                    self.bootstrap_add_under(db, dir_id, fname, false);
                }
            }
            out.push(root.join_interned(dname));
        }
        // Per-entry loading inserts in ascending key order, which leaves
        // every B-tree node half full; repacking densifies them (≈2× less
        // node memory at the fig08d 10M-inode scale) without touching any
        // observable state. (The streaming path above builds dense nodes
        // directly and never needs this.)
        db.bootstrap_repack();
        out
    }

    /// Streams a fresh `dirs × files_per_dir` tree into the store through
    /// the dense bulk build.
    ///
    /// Ids are allocated arithmetically in exactly the order the per-entry
    /// path would have produced (each directory's id, then its files'), so
    /// the resulting tables — and every later allocation — are identical
    /// to the per-entry path followed by a repack.
    fn stream_tree(
        &self,
        db: &Db,
        root_id: InodeId,
        dir_names: &[InodeName],
        file_names: &[InodeName],
    ) {
        let base = self.next_id.get();
        assert!(root_id < base, "tree root must predate the ids of its children");
        let stride = file_names.len() as u64 + 1;
        let dir_id = |d: usize| base + d as u64 * stride;
        self.next_id.set(base + dir_names.len() as u64 * stride);

        // The inodes stream ascends by construction: ids are handed out in
        // generation order.
        let inode_rows = dir_names.iter().enumerate().flat_map(|(d, &dname)| {
            let did = dir_id(d);
            std::iter::once((did, Inode::directory(did, root_id, dname))).chain(
                file_names.iter().enumerate().map(move |(f, &fname)| {
                    let fid = did + 1 + f as u64;
                    (fid, Inode::file(fid, did, fname))
                }),
            )
        });
        // `flat_map` erases the stream length; both lengths are known
        // arithmetically, and an exact hint lets the bulk build reserve
        // its arenas in one allocation (single huge-page-advised fault-in
        // instead of doubling reallocs — see BpTree::from_ascending).
        let rows = dir_names.len() * (file_names.len() + 1);
        db.bootstrap_bulk_load(self.inodes, KnownLen { inner: inode_rows, remaining: rows });

        // The children stream must ascend by (parent id, name). Generation
        // order is not name order once numbered names grow a digit
        // ("dir100000" < "dir99999"), so each name block goes through a
        // sorted index; the root block (all keyed by `root_id`) precedes
        // every per-directory block (keyed by the strictly larger fresh
        // directory ids), which ascend in generation order.
        let mut dir_order: Vec<u32> = (0..dir_names.len() as u32).collect();
        dir_order.sort_unstable_by_key(|&d| dir_names[d as usize].as_str());
        let mut file_order: Vec<u32> = (0..file_names.len() as u32).collect();
        file_order.sort_unstable_by_key(|&f| file_names[f as usize].as_str());
        let root_block = dir_order
            .iter()
            .map(|&d| ((root_id, dir_names[d as usize].key()), dir_id(d as usize)));
        let file_blocks = (0..dir_names.len()).flat_map(|d| {
            let did = dir_id(d);
            file_order
                .iter()
                .map(move |&f| ((did, file_names[f as usize].key()), did + 1 + u64::from(f)))
        });
        db.bootstrap_bulk_load(
            self.children,
            KnownLen { inner: root_block.chain(file_blocks), remaining: rows },
        );
    }

    /// Total number of inodes currently stored.
    #[must_use]
    pub fn inode_count(&self, db: &Db) -> usize {
        db.table_len(self.inodes)
    }

    /// Verifies namespace well-formedness against the committed state:
    /// every inode's parent exists, is a directory, and indexes the inode
    /// under its name; every children row points at a live inode; ids are
    /// unique. Returns a list of violations (empty = consistent).
    ///
    /// Used by the integration tests after crash-injection runs (paper
    /// §3.6: "failures cannot leave the namespace in an inconsistent
    /// state").
    #[must_use]
    pub fn check_consistency(&self, db: &Db) -> Vec<String> {
        let mut problems = Vec::new();
        let inodes = db.peek_range(self.inodes, ..);
        let children = db.peek_range(self.children, ..);
        for (id, inode) in &inodes {
            if *id != inode.id {
                problems.push(format!("inode {} stored under key {}", inode.id, id));
            }
            if *id == ROOT_INODE_ID {
                continue;
            }
            match inodes.iter().find(|(pid, _)| *pid == inode.parent) {
                None => problems.push(format!("inode {} has dangling parent {}", id, inode.parent)),
                Some((_, parent)) => {
                    if !parent.is_dir() {
                        problems.push(format!("inode {} parent {} is a file", id, parent.id));
                    }
                }
            }
            let indexed = children
                .iter()
                .any(|((pid, name), cid)| {
                    *pid == inode.parent && name.as_str() == inode.name.as_str() && cid == id
                });
            if !indexed {
                problems.push(format!("inode {id} missing from children index"));
            }
        }
        for ((pid, name), cid) in &children {
            if !inodes.iter().any(|(id, _)| id == cid) {
                problems.push(format!("children row ({pid},{name}) -> dangling inode {cid}"));
            }
        }
        problems
    }
}

/// Iterator adapter pinning an exact `size_hint` onto a stream whose
/// length is known arithmetically but erased by `flat_map`/`chain`
/// (their lower bounds are 0); the bulk build reserves arenas off the
/// hint, so losing it means doubling reallocs over a gigabyte-scale
/// buffer.
struct KnownLen<I> {
    inner: I,
    remaining: usize,
}

impl<I: Iterator> Iterator for KnownLen<I> {
    type Item = I::Item;

    fn next(&mut self) -> Option<I::Item> {
        let item = self.inner.next();
        if item.is_some() {
            self.remaining = self.remaining.saturating_sub(1);
        }
        item
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lambda_sim::params::StoreParams;
    use lambda_sim::SimDuration;

    fn db_and_schema() -> (Db, MetadataSchema) {
        let db = Db::new(&StoreParams::default(), SimDuration::from_secs(5));
        let schema = MetadataSchema::install(&db);
        (db, schema)
    }

    fn p(s: &str) -> DfsPath {
        s.parse().unwrap()
    }

    #[test]
    fn install_creates_root() {
        let (db, schema) = db_and_schema();
        let chain = schema.peek_chain(&db, &DfsPath::root()).unwrap();
        assert_eq!(chain.len(), 1);
        assert_eq!(chain[0].id, ROOT_INODE_ID);
        assert!(schema.check_consistency(&db).is_empty());
    }

    #[test]
    fn bootstrap_builds_resolvable_paths() {
        let (db, schema) = db_and_schema();
        schema.bootstrap_mkdir(&db, &p("/a"));
        schema.bootstrap_mkdir(&db, &p("/a/b"));
        let f = schema.bootstrap_create(&db, &p("/a/b/c.txt"));
        let chain = schema.peek_chain(&db, &p("/a/b/c.txt")).unwrap();
        assert_eq!(chain.len(), 4);
        assert_eq!(chain[3].id, f);
        assert!(!chain[3].is_dir());
        assert!(schema.peek_chain(&db, &p("/a/x")).is_none());
        assert!(schema.check_consistency(&db).is_empty());
    }

    #[test]
    fn bootstrap_tree_creates_expected_shape() {
        let (db, schema) = db_and_schema();
        let dirs = schema.bootstrap_tree(&db, &p("/bench"), 4, 8);
        assert_eq!(dirs.len(), 4);
        // 1 root + 1 bench + 4 dirs + 32 files.
        assert_eq!(schema.inode_count(&db), 38);
        assert!(schema.check_consistency(&db).is_empty());
    }

    #[test]
    #[should_panic(expected = "name collision")]
    fn bootstrap_rejects_duplicates() {
        let (db, schema) = db_and_schema();
        schema.bootstrap_mkdir(&db, &p("/a"));
        schema.bootstrap_mkdir(&db, &p("/a"));
    }

    #[test]
    fn ids_are_monotonic_and_unique() {
        let (_db, schema) = db_and_schema();
        let a = schema.next_id();
        let b = schema.next_id();
        assert!(b > a);
    }

    #[test]
    fn consistency_checker_detects_corruption() {
        let (db, schema) = db_and_schema();
        schema.bootstrap_mkdir(&db, &p("/a"));
        // Forge an orphan: an inode whose parent does not exist.
        db.bootstrap_insert(schema.inodes, 999, Inode::file(999, 12345, "orphan"));
        let problems = schema.check_consistency(&db);
        assert!(!problems.is_empty());
    }
}
