//! The metadata store schema shared by λFS and the HopsFS-family
//! baselines, plus bulk-loading helpers.
//!
//! Tables (mirroring HopsFS's NDB schema at the granularity the
//! reproduction needs):
//!
//! * `inodes`: inode id → [`Inode`];
//! * `children`: `(parent id, name)` → child inode id (the lookup index
//!   used for path resolution and `ls` range scans);
//! * `blocks`: block id → [`BlockInfo`];
//! * `datanodes`: DataNode id → [`DataNodeInfo`] (heartbeats/reports);
//! * `subtree_locks`: subtree-root inode id → [`SubtreeLockRow`] (the
//!   application-level subtree locking protocol of Appendix D).

use std::cell::Cell;
use std::rc::Rc;

use lambda_store::{Db, NameKey, TableHandle};

use crate::inode::{BlockId, BlockInfo, DataNodeId, DataNodeInfo, Inode, InodeId, ROOT_INODE_ID};
use crate::path::DfsPath;

/// The subtree-lock flag persisted on a subtree root (Appendix D, Phase 1).
///
/// Both strings are `&'static str`: the path borrows the interner arena
/// ([`DfsPath::as_str`] strings live forever) and the op description is a
/// literal, so the row is `Copy`-cheap and holds no heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubtreeLockRow {
    /// Which NameNode (coordinator session raw id) holds the lock.
    pub holder: u64,
    /// When the lock was taken, nanoseconds of simulated time.
    pub acquired_nanos: u64,
    /// The locked subtree's root path (used for overlap checks: two
    /// subtree operations may not run on overlapping trees).
    pub path: &'static str,
    /// The operation description (for diagnostics).
    pub op: &'static str,
}

/// Typed handles to every table, plus the inode-id allocator.
#[derive(Debug, Clone)]
pub struct MetadataSchema {
    /// inode id → inode.
    pub inodes: TableHandle<InodeId, Inode>,
    /// (parent id, child name) → child inode id. The name suffix is a
    /// [`NameKey`] — a `Copy` pointer into the component interner arena —
    /// with an encoding byte-identical to the `(u64, String)` key it
    /// replaced, so shard routing and lock ordering are unchanged.
    pub children: TableHandle<(InodeId, NameKey), InodeId>,
    /// block id → block info.
    pub blocks: TableHandle<BlockId, BlockInfo>,
    /// DataNode id → liveness/capacity record.
    pub datanodes: TableHandle<DataNodeId, DataNodeInfo>,
    /// subtree-root inode id → subtree lock flag.
    pub subtree_locks: TableHandle<InodeId, SubtreeLockRow>,
    next_id: Rc<Cell<u64>>,
}

impl MetadataSchema {
    /// Creates the tables in `db` and installs the root inode.
    #[must_use]
    pub fn install(db: &Db) -> Self {
        let schema = MetadataSchema {
            inodes: db.create_table("inodes"),
            children: db.create_table("children"),
            blocks: db.create_table("blocks"),
            datanodes: db.create_table("datanodes"),
            subtree_locks: db.create_table("subtree_locks"),
            next_id: Rc::new(Cell::new(ROOT_INODE_ID + 1)),
        };
        db.bootstrap_insert(schema.inodes, ROOT_INODE_ID, Inode::root());
        schema
    }

    /// Allocates a fresh inode id. (NDB serves this from an atomic
    /// sequence; the allocation itself is not a charged row operation.)
    #[must_use]
    pub fn next_id(&self) -> InodeId {
        let id = self.next_id.get();
        self.next_id.set(id + 1);
        id
    }

    /// Resolves `path` against the committed state **without** locks or
    /// capacity charges.
    ///
    /// This is (a) the model of the client-side "INode Hint Cache" — the
    /// ids a client predicts so the server can validate them in a single
    /// batched query — and (b) the test oracle. Returns the inode chain
    /// from the root to the target inclusive, or `None` if any component
    /// is missing.
    #[must_use]
    pub fn peek_chain(&self, db: &Db, path: &DfsPath) -> Option<Vec<Inode>> {
        let mut chain = vec![db.peek(self.inodes, &ROOT_INODE_ID)?];
        // One children-table probe per component; components are already
        // arena-backed, so building each probe key is two register moves.
        let mut parent = ROOT_INODE_ID;
        for comp in path.components() {
            let child = db.peek(self.children, &(parent, NameKey::new(comp)))?;
            let inode = db.peek(self.inodes, &child)?;
            parent = child;
            chain.push(inode);
        }
        Some(chain)
    }

    /// Bulk-loads a directory at `path` (parents must exist), returning
    /// its id. Pre-run loading only; see [`Db::bootstrap_insert`].
    ///
    /// # Panics
    ///
    /// Panics if the parent chain does not resolve or the name is taken.
    pub fn bootstrap_mkdir(&self, db: &Db, path: &DfsPath) -> InodeId {
        self.bootstrap_add(db, path, true)
    }

    /// Bulk-loads a file at `path` (parents must exist), returning its id.
    ///
    /// # Panics
    ///
    /// Panics if the parent chain does not resolve or the name is taken.
    pub fn bootstrap_create(&self, db: &Db, path: &DfsPath) -> InodeId {
        self.bootstrap_add(db, path, false)
    }

    fn bootstrap_add(&self, db: &Db, path: &DfsPath, dir: bool) -> InodeId {
        let parent_path = path.parent().expect("cannot create the root");
        let parent = self
            .peek_chain(db, &parent_path)
            .unwrap_or_else(|| panic!("bootstrap parent missing: {parent_path}"))
            .pop()
            .expect("chain non-empty");
        assert!(parent.is_dir(), "bootstrap parent is a file: {parent_path}");
        let name = path.file_name().expect("non-root");
        assert!(
            db.peek(self.children, &(parent.id, NameKey::new(name))).is_none(),
            "bootstrap name collision: {path}"
        );
        let id = self.next_id();
        let inode =
            if dir { Inode::directory(id, parent.id, name) } else { Inode::file(id, parent.id, name) };
        db.bootstrap_insert(self.inodes, id, inode);
        db.bootstrap_insert(self.children, (parent.id, NameKey::new(name)), id);
        id
    }

    /// Bulk-loads a balanced tree under `root`: `dirs` directories each
    /// holding `files_per_dir` files. Returns the created directory paths.
    ///
    /// This is the "existing directory tree" every micro-benchmark
    /// targets (§5.3: "all operations target random files and directories
    /// across an existing directory tree").
    pub fn bootstrap_tree(
        &self,
        db: &Db,
        root: &DfsPath,
        dirs: usize,
        files_per_dir: usize,
    ) -> Vec<DfsPath> {
        if !root.is_root() && self.peek_chain(db, root).is_none() {
            self.bootstrap_mkdir(db, root);
        }
        let mut out = Vec::with_capacity(dirs);
        for d in 0..dirs {
            let dir = root.join(&format!("dir{d:05}")).expect("valid component");
            // Idempotent: re-bootstrapping an existing tree (e.g. a
            // harness pre-loading before the workload driver does) is a
            // no-op per existing path.
            if self.peek_chain(db, &dir).is_none() {
                self.bootstrap_mkdir(db, &dir);
            }
            for f in 0..files_per_dir {
                let file = dir.join(&format!("file{f:05}")).expect("valid component");
                if self.peek_chain(db, &file).is_none() {
                    self.bootstrap_create(db, &file);
                }
            }
            out.push(dir);
        }
        // Bulk loading inserts in ascending key order, which leaves every
        // B-tree node half full; repacking densifies them (≈2× less node
        // memory at the fig08d 10M-inode scale) without touching any
        // observable state.
        db.bootstrap_repack();
        out
    }

    /// Total number of inodes currently stored.
    #[must_use]
    pub fn inode_count(&self, db: &Db) -> usize {
        db.table_len(self.inodes)
    }

    /// Verifies namespace well-formedness against the committed state:
    /// every inode's parent exists, is a directory, and indexes the inode
    /// under its name; every children row points at a live inode; ids are
    /// unique. Returns a list of violations (empty = consistent).
    ///
    /// Used by the integration tests after crash-injection runs (paper
    /// §3.6: "failures cannot leave the namespace in an inconsistent
    /// state").
    #[must_use]
    pub fn check_consistency(&self, db: &Db) -> Vec<String> {
        let mut problems = Vec::new();
        let inodes = db.peek_range(self.inodes, ..);
        let children = db.peek_range(self.children, ..);
        for (id, inode) in &inodes {
            if *id != inode.id {
                problems.push(format!("inode {} stored under key {}", inode.id, id));
            }
            if *id == ROOT_INODE_ID {
                continue;
            }
            match inodes.iter().find(|(pid, _)| *pid == inode.parent) {
                None => problems.push(format!("inode {} has dangling parent {}", id, inode.parent)),
                Some((_, parent)) => {
                    if !parent.is_dir() {
                        problems.push(format!("inode {} parent {} is a file", id, parent.id));
                    }
                }
            }
            let indexed = children
                .iter()
                .any(|((pid, name), cid)| {
                    *pid == inode.parent && name.as_str() == inode.name.as_str() && cid == id
                });
            if !indexed {
                problems.push(format!("inode {id} missing from children index"));
            }
        }
        for ((pid, name), cid) in &children {
            if !inodes.iter().any(|(id, _)| id == cid) {
                problems.push(format!("children row ({pid},{name}) -> dangling inode {cid}"));
            }
        }
        problems
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lambda_sim::params::StoreParams;
    use lambda_sim::SimDuration;

    fn db_and_schema() -> (Db, MetadataSchema) {
        let db = Db::new(&StoreParams::default(), SimDuration::from_secs(5));
        let schema = MetadataSchema::install(&db);
        (db, schema)
    }

    fn p(s: &str) -> DfsPath {
        s.parse().unwrap()
    }

    #[test]
    fn install_creates_root() {
        let (db, schema) = db_and_schema();
        let chain = schema.peek_chain(&db, &DfsPath::root()).unwrap();
        assert_eq!(chain.len(), 1);
        assert_eq!(chain[0].id, ROOT_INODE_ID);
        assert!(schema.check_consistency(&db).is_empty());
    }

    #[test]
    fn bootstrap_builds_resolvable_paths() {
        let (db, schema) = db_and_schema();
        schema.bootstrap_mkdir(&db, &p("/a"));
        schema.bootstrap_mkdir(&db, &p("/a/b"));
        let f = schema.bootstrap_create(&db, &p("/a/b/c.txt"));
        let chain = schema.peek_chain(&db, &p("/a/b/c.txt")).unwrap();
        assert_eq!(chain.len(), 4);
        assert_eq!(chain[3].id, f);
        assert!(!chain[3].is_dir());
        assert!(schema.peek_chain(&db, &p("/a/x")).is_none());
        assert!(schema.check_consistency(&db).is_empty());
    }

    #[test]
    fn bootstrap_tree_creates_expected_shape() {
        let (db, schema) = db_and_schema();
        let dirs = schema.bootstrap_tree(&db, &p("/bench"), 4, 8);
        assert_eq!(dirs.len(), 4);
        // 1 root + 1 bench + 4 dirs + 32 files.
        assert_eq!(schema.inode_count(&db), 38);
        assert!(schema.check_consistency(&db).is_empty());
    }

    #[test]
    #[should_panic(expected = "name collision")]
    fn bootstrap_rejects_duplicates() {
        let (db, schema) = db_and_schema();
        schema.bootstrap_mkdir(&db, &p("/a"));
        schema.bootstrap_mkdir(&db, &p("/a"));
    }

    #[test]
    fn ids_are_monotonic_and_unique() {
        let (_db, schema) = db_and_schema();
        let a = schema.next_id();
        let b = schema.next_id();
        assert!(b > a);
    }

    #[test]
    fn consistency_checker_detects_corruption() {
        let (db, schema) = db_and_schema();
        schema.bootstrap_mkdir(&db, &p("/a"));
        // Forge an orphan: an inode whose parent does not exist.
        db.bootstrap_insert(schema.inodes, 999, Inode::file(999, 12345, "orphan"));
        let problems = schema.check_consistency(&db);
        assert!(!problems.is_empty());
    }
}
