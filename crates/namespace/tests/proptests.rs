//! Property-based tests of the namespace substrate: the path algebra,
//! the metadata-cache trie against a flat reference model, listing
//! deltas against set semantics, and partitioner determinism.

use std::collections::{BTreeSet, HashMap};

use lambda_namespace::{DfsPath, Inode, InodeId, MetadataCache, Partitioner};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------

/// A path component from a deliberately tiny alphabet, so generated
/// paths collide and nest often.
fn component() -> impl Strategy<Value = String> {
    prop::sample::select(vec!["a", "b", "c", "dd", "ee", "f0", "g1", "x"])
        .prop_map(str::to_string)
}

/// An absolute path of 1..=4 components.
fn path() -> impl Strategy<Value = DfsPath> {
    prop::collection::vec(component(), 1..=4)
        .prop_map(|comps| format!("/{}", comps.join("/")).parse().expect("valid path"))
}

// ---------------------------------------------------------------------
// Path algebra
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn parse_display_roundtrip(p in path()) {
        let reparsed: DfsPath = p.as_str().parse().expect("display output re-parses");
        prop_assert_eq!(&reparsed, &p);
    }

    #[test]
    fn join_then_parent_is_identity(p in path(), name in component()) {
        let child = p.join(&name).expect("component is valid");
        prop_assert_eq!(child.parent().expect("child has a parent"), p);
        prop_assert_eq!(child.file_name(), Some(name.as_str()));
    }

    #[test]
    fn depth_counts_components(p in path()) {
        prop_assert_eq!(p.depth(), p.components().count());
    }

    #[test]
    fn ancestors_are_orderly_prefixes(p in path()) {
        // Root first, the parent last (exclusive of `p`), depth
        // increasing by one.
        prop_assert_eq!(p.ancestors().len(), p.depth());
        prop_assert_eq!(p.ancestors().next(), Some(DfsPath::root()));
        let parent = p.parent();
        prop_assert_eq!(p.ancestors().next_back(), parent);
        for (i, a) in p.ancestors().enumerate() {
            prop_assert_eq!(a.depth(), i);
            prop_assert!(p.starts_with(&a));
        }
    }

    #[test]
    fn starts_with_agrees_with_ancestor_set(p in path(), q in path()) {
        // `starts_with` means "is `q` or descends from `q`".
        let is_ancestor_or_self = p == q || p.ancestors().any(|a| a == q);
        prop_assert_eq!(p.starts_with(&q), is_ancestor_or_self);
    }
}

// ---------------------------------------------------------------------
// Cache trie vs a flat reference model
// ---------------------------------------------------------------------

/// Interns every distinct absolute prefix as a directory inode with a
/// stable id, so chains agree across inserts.
struct Interner {
    ids: HashMap<String, InodeId>,
}

impl Interner {
    fn new() -> Self {
        let mut ids = HashMap::new();
        ids.insert("/".to_string(), 1);
        Interner { ids }
    }

    fn id(&mut self, path: &DfsPath) -> InodeId {
        let next = self.ids.len() as InodeId + 1;
        *self.ids.entry(path.as_str().to_string()).or_insert(next)
    }

    /// The root-through-target inode chain for `path`.
    fn chain(&mut self, path: &DfsPath) -> Vec<Inode> {
        let full: Vec<DfsPath> =
            path.ancestors().chain(std::iter::once(path.clone())).collect();
        let mut chain = vec![Inode::root()];
        for pair in full.windows(2) {
            let parent = self.id(&pair[0]);
            let id = self.id(&pair[1]);
            chain.push(Inode::directory(id, parent, pair[1].file_name().expect("non-root")));
        }
        chain
    }
}

#[derive(Debug, Clone)]
enum CacheOp {
    Insert(usize),
    Lookup(usize),
    InvalidatePrefix(usize),
    InvalidateInode(usize),
}

fn cache_ops(universe: usize) -> impl Strategy<Value = Vec<CacheOp>> {
    prop::collection::vec(
        prop_oneof![
            (0..universe).prop_map(CacheOp::Insert),
            (0..universe).prop_map(CacheOp::Lookup),
            (0..universe).prop_map(CacheOp::InvalidatePrefix),
            (0..universe).prop_map(CacheOp::InvalidateInode),
        ],
        1..80,
    )
}

proptest! {
    /// Drives the trie and a flat "set of cached paths" model through the
    /// same operation sequence; a full-chain lookup must hit exactly when
    /// the model holds every prefix of the path.
    #[test]
    fn trie_agrees_with_flat_model(
        paths in prop::collection::vec(path(), 4..10),
        ops in cache_ops(10),
    ) {
        // Capacity large enough that eviction never fires: the model has
        // no eviction.
        let mut cache = MetadataCache::new(10_000);
        let mut intern = Interner::new();
        let mut model: BTreeSet<String> = BTreeSet::new();
        for op in ops {
            match op {
                CacheOp::Insert(i) => {
                    let p = &paths[i % paths.len()];
                    let chain = intern.chain(p);
                    cache.insert_chain(p, &chain);
                    for a in p.ancestors() {
                        model.insert(a.as_str().to_string());
                    }
                    model.insert(p.as_str().to_string());
                }
                CacheOp::Lookup(i) => {
                    let p = &paths[i % paths.len()];
                    let model_hit = model.contains(p.as_str())
                        && p.ancestors().all(|a| model.contains(a.as_str()));
                    let got = cache.lookup(p);
                    prop_assert_eq!(got.is_some(), model_hit, "lookup({}) disagrees", p);
                    if let Some(chain) = got {
                        // The returned chain is the interned one.
                        let expect = intern.chain(p);
                        let got_ids: Vec<InodeId> = chain.iter().map(|n| n.id).collect();
                        let expect_ids: Vec<InodeId> = expect.iter().map(|n| n.id).collect();
                        prop_assert_eq!(got_ids, expect_ids);
                    }
                }
                CacheOp::InvalidatePrefix(i) => {
                    let p = &paths[i % paths.len()];
                    cache.invalidate_prefix(p);
                    model.retain(|q| {
                        let q: DfsPath = q.parse().expect("interned paths are valid");
                        !q.starts_with(p)
                    });
                }
                CacheOp::InvalidateInode(i) => {
                    let p = &paths[i % paths.len()];
                    // Only meaningful for ids the interner has assigned.
                    let id = intern.id(p);
                    cache.invalidate_inode(id);
                    model.remove(p.as_str());
                }
            }
        }
    }

    /// The cache never exceeds its capacity, whatever the op sequence.
    #[test]
    fn capacity_is_respected(
        paths in prop::collection::vec(path(), 4..12),
        ops in cache_ops(12),
        capacity in 1usize..12,
    ) {
        let mut cache = MetadataCache::new(capacity);
        let mut intern = Interner::new();
        for op in ops {
            match op {
                CacheOp::Insert(i) | CacheOp::Lookup(i) => {
                    let p = &paths[i % paths.len()];
                    if matches!(op, CacheOp::Insert(_)) {
                        let chain = intern.chain(p);
                        cache.insert_chain(p, &chain);
                    } else {
                        let _ = cache.lookup(p);
                    }
                }
                CacheOp::InvalidatePrefix(i) => {
                    cache.invalidate_prefix(&paths[i % paths.len()]);
                }
                CacheOp::InvalidateInode(i) => {
                    let id = intern.id(&paths[i % paths.len()]);
                    cache.invalidate_inode(id);
                }
            }
            prop_assert!(cache.len() <= cache.capacity().max(1) + 4,
                "len {} exceeded capacity {}", cache.len(), cache.capacity());
        }
    }

    /// `lookup_prefix` returns a true prefix of the chain `lookup` would
    /// return, and is never shorter than what full lookups could use.
    #[test]
    fn lookup_prefix_is_a_chain_prefix(p in path()) {
        let mut cache = MetadataCache::new(1_000);
        let mut intern = Interner::new();
        let chain = intern.chain(&p);
        cache.insert_chain(&p, &chain);
        // Invalidate the leaf: the prefix lookup must still return all
        // ancestors.
        let leaf = intern.id(&p);
        cache.invalidate_inode(leaf);
        let got = cache.lookup_prefix(&p);
        prop_assert_eq!(got.len(), chain.len() - 1);
        for (g, c) in got.iter().zip(chain.iter()) {
            prop_assert_eq!(g.id, c.id);
        }
        prop_assert!(cache.lookup(&p).is_none());
    }
}

// ---------------------------------------------------------------------
// Listing deltas vs set semantics
// ---------------------------------------------------------------------

proptest! {
    /// Applying `(name, present)` deltas to a cached listing matches a
    /// BTreeSet maintained with the same updates — i.e. deltas are
    /// equivalent to invalidate-then-refill.
    #[test]
    fn listing_deltas_match_set_semantics(
        initial in prop::collection::btree_set(component(), 0..6),
        updates in prop::collection::vec((component(), any::<bool>()), 0..24),
    ) {
        let mut cache = MetadataCache::new(100);
        let dir: InodeId = 7;
        cache.cache_listing(dir, initial.iter().cloned().collect());
        let mut model = initial;
        for (name, present) in updates {
            cache.update_listing(dir, &name, present);
            if present {
                model.insert(name);
            } else {
                model.remove(&name);
            }
            let got = cache.listing(dir).expect("listing stays cached");
            let expect: Vec<String> = model.iter().cloned().collect();
            prop_assert_eq!(got, expect);
        }
    }
}

// ---------------------------------------------------------------------
// Partitioner
// ---------------------------------------------------------------------

proptest! {
    /// Deployment choice is deterministic and in range; a path and its
    /// sibling under the same parent land on the same deployment
    /// (partitioning is by parent directory).
    #[test]
    fn partitioner_is_deterministic_and_parent_keyed(
        p in path(),
        a in component(),
        b in component(),
        n in 1u32..16,
    ) {
        let part = Partitioner::new(n);
        let child_a = p.join(&a).expect("valid");
        let child_b = p.join(&b).expect("valid");
        let da = part.deployment_for_path(&child_a);
        prop_assert!(da < n);
        prop_assert_eq!(da, part.deployment_for_path(&child_a), "must be deterministic");
        prop_assert_eq!(da, part.deployment_for_path(&child_b),
            "siblings share the parent's deployment");
    }
}

/// Ten deployments must all receive work from a realistic directory
/// population (regression for the FNV clustering bug, DESIGN.md §4.1.6).
#[test]
fn partitioner_spreads_realistic_directories() {
    let part = Partitioner::new(10);
    let mut seen = BTreeSet::new();
    for i in 0..2048 {
        let dir: DfsPath = format!("/dir{i:05}/file00000").parse().expect("valid");
        seen.insert(part.deployment_for_path(&dir));
    }
    assert_eq!(seen.len(), 10, "only deployments {seen:?} received work");
}
