//! Differential property test: the arena-trie [`MetadataCache`] against
//! the retained pre-overhaul implementation
//! ([`lambda_namespace::cache_baseline::MetadataCache`]).
//!
//! Identical operation sequences — inserts, lookups, prefix lookups,
//! LRU-pressured evictions (tiny capacity), inode and prefix
//! invalidations, and listing-cache traffic — must produce identical
//! return values, identical [`CacheStats`], and the same surviving-entry
//! set. The overhaul changed the representation (slab nodes, symbol keys,
//! intrusive LRU links); it must not have changed a single observable.

use std::collections::HashMap;

use lambda_namespace::cache_baseline::MetadataCache as BaselineCache;
use lambda_namespace::{DfsPath, Inode, InodeId, MetadataCache, ROOT_INODE_ID};
use proptest::prelude::*;

/// One cache operation, path-addressed; ids are assigned deterministically
/// by the driver so both caches see byte-identical arguments.
#[derive(Debug, Clone)]
enum Op {
    InsertChain(DfsPath),
    Lookup(DfsPath),
    LookupPrefix(DfsPath),
    InvalidateInode(DfsPath),
    InvalidatePrefix(DfsPath),
    CacheListing(DfsPath, Vec<String>),
    Listing(DfsPath),
    UpdateListing(DfsPath, String, bool),
    InvalidateListing(DfsPath),
}

/// Tiny component alphabet so sequences revisit, nest, and collide.
fn component() -> impl Strategy<Value = String> {
    prop::sample::select(vec!["a", "b", "c", "dd", "e"]).prop_map(str::to_string)
}

fn path() -> impl Strategy<Value = DfsPath> {
    prop::collection::vec(component(), 1..=4)
        .prop_map(|comps| format!("/{}", comps.join("/")).parse().expect("valid path"))
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => path().prop_map(Op::InsertChain),
        3 => path().prop_map(Op::Lookup),
        2 => path().prop_map(Op::LookupPrefix),
        1 => path().prop_map(Op::InvalidateInode),
        1 => path().prop_map(Op::InvalidatePrefix),
        1 => (path(), prop::collection::vec(component(), 0..3))
            .prop_map(|(p, names)| Op::CacheListing(p, names)),
        1 => path().prop_map(Op::Listing),
        1 => (path(), component(), any::<bool>())
            .prop_map(|(p, n, present)| Op::UpdateListing(p, n, present)),
        1 => path().prop_map(Op::InvalidateListing),
    ]
}

/// Assigns stable inode ids per path (first-use order) and builds the
/// root-to-target directory chain `insert_chain` expects. All inodes are
/// directories so any path can later appear as an ancestor.
struct IdSpace {
    ids: HashMap<DfsPath, InodeId>,
    next: InodeId,
}

impl IdSpace {
    fn new() -> Self {
        IdSpace { ids: HashMap::new(), next: ROOT_INODE_ID + 1 }
    }

    fn id_of(&mut self, path: &DfsPath) -> InodeId {
        if path.is_root() {
            return ROOT_INODE_ID;
        }
        if let Some(&id) = self.ids.get(path) {
            return id;
        }
        let id = self.next;
        self.next += 1;
        self.ids.insert(path.clone(), id);
        id
    }

    fn chain_for(&mut self, path: &DfsPath) -> Vec<Inode> {
        let mut chain = vec![Inode::root()];
        let mut parent_id = ROOT_INODE_ID;
        let ancestors: Vec<DfsPath> = path.ancestors().collect();
        for node in ancestors.into_iter().skip(1).chain(std::iter::once(path.clone())) {
            let id = self.id_of(&node);
            let name = node.file_name().expect("non-root").to_string();
            chain.push(Inode::directory(id, parent_id, name));
            parent_id = id;
        }
        chain
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every op returns the same value from both caches, and the final
    /// stats, sizes, and surviving-entry sets are identical.
    #[test]
    fn arena_cache_matches_baseline(ops in prop::collection::vec(op(), 1..80)) {
        // Capacity far below the reachable path universe so the LRU is
        // constantly evicting; a small listing cache for the same reason.
        let mut arena = MetadataCache::with_listing_capacity(5, 3);
        let mut baseline = BaselineCache::with_listing_capacity(5, 3);
        let mut ids = IdSpace::new();

        for op in &ops {
            match op {
                Op::InsertChain(p) => {
                    let chain = ids.chain_for(p);
                    arena.insert_chain(p, &chain);
                    baseline.insert_chain(p, &chain);
                }
                Op::Lookup(p) => {
                    prop_assert_eq!(arena.lookup(p), baseline.lookup(p));
                }
                Op::LookupPrefix(p) => {
                    prop_assert_eq!(arena.lookup_prefix(p), baseline.lookup_prefix(p));
                }
                Op::InvalidateInode(p) => {
                    let id = ids.id_of(p);
                    prop_assert_eq!(arena.invalidate_inode(id), baseline.invalidate_inode(id));
                }
                Op::InvalidatePrefix(p) => {
                    prop_assert_eq!(arena.invalidate_prefix(p), baseline.invalidate_prefix(p));
                }
                Op::CacheListing(p, names) => {
                    let dir = ids.id_of(p);
                    arena.cache_listing(dir, names.clone());
                    baseline.cache_listing(dir, names.clone());
                }
                Op::Listing(p) => {
                    let dir = ids.id_of(p);
                    prop_assert_eq!(arena.listing(dir), baseline.listing(dir));
                }
                Op::UpdateListing(p, name, present) => {
                    let dir = ids.id_of(p);
                    arena.update_listing(dir, name, *present);
                    baseline.update_listing(dir, name, *present);
                }
                Op::InvalidateListing(p) => {
                    let dir = ids.id_of(p);
                    arena.invalidate_listing(dir);
                    baseline.invalidate_listing(dir);
                }
            }
            // Size must track op-by-op, not just at the end: a transient
            // divergence (say, an over-eager eviction that a later
            // invalidation masks) would hide otherwise.
            prop_assert_eq!(arena.len(), baseline.len());
        }

        prop_assert_eq!(arena.stats(), baseline.stats());
        // Surviving-entry set: every id ever assigned is cached in one
        // iff it is cached in the other. `contains_inode` takes `&self`,
        // so probing does not perturb LRU order or the counters.
        let assigned: Vec<(DfsPath, InodeId)> =
            ids.ids.iter().map(|(p, &id)| (p.clone(), id)).collect();
        for (p, id) in assigned {
            prop_assert_eq!(
                arena.contains_inode(id),
                baseline.contains_inode(id),
                "surviving-entry sets diverge at {} (inode {})", p, id
            );
        }
    }
}
