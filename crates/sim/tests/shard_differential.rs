//! Differential property tests for the parallel sharded DES: for any
//! generated multi-domain station workload, a run on one thread must be
//! observationally identical to a run on many threads — same per-domain
//! event traces, same cross-domain delivery traces, same merged metrics.
//!
//! Each property generates a random *shard program* (plain data, so it can
//! be replayed for every thread count): per-domain station capacities and
//! job lists, where some jobs forward a completion notice to another domain
//! over the [`ShardLink`]. The programs deliberately provoke the hard
//! cases: same-instant submissions, simultaneous cross-domain deliveries
//! from different sources, RNG-sampled service times (pinning the
//! per-domain seed derivation), and sends landing exactly one lookahead
//! ahead of the receiver's frontier.

use lambda_sim::shard::{run_sharded, ShardConfig, ShardWorld};
use lambda_sim::{
    Dist, LatencyRecorder, ShardLink, Sim, SimDuration, SimTime, Station, StationRef, Timeline,
};
use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

/// Nanoseconds per delay unit; small integer delays scaled up so that
/// same-instant collisions stay common.
const TICK: u64 = 50_000;

/// The conservative lookahead every generated program runs under.
const LOOKAHEAD: SimDuration = SimDuration::from_millis(2);

/// One job in a domain's program.
#[derive(Debug, Clone)]
struct JobSpec {
    id: u32,
    /// Submission instant, in ticks.
    submit_at: u64,
    /// Base service time, in ticks (a sampled jitter is added on top).
    service: u64,
    /// Forward a completion notice to this domain, `extra` ticks past the
    /// lookahead.
    notify: Option<(usize, u64)>,
}

/// One domain's slice of the program.
#[derive(Debug, Clone)]
struct DomainSpec {
    servers: u32,
    jobs: Vec<JobSpec>,
}

/// Everything observable about one domain after a run.
#[derive(Debug, Clone, PartialEq)]
struct DomainTrace {
    /// `(completion_ns, job_id)` in execution order.
    completions: Vec<(u64, u32)>,
    /// `(delivery_ns, src_domain, job_id)` in execution order.
    deliveries: Vec<(u64, u32, u32)>,
    /// Raw per-completion latencies in nanoseconds, in completion order
    /// (feeds the run-wide merge).
    raw_latencies: Vec<u64>,
    /// Latency digest: `(count, mean_ns, p50_ns, p99_ns, max_ns)`.
    latency: (usize, u64, u64, u64, u64),
    /// Per-10ms-bucket completion counts (bit-exact f64 comparison).
    throughput: Vec<f64>,
    final_now_ns: u64,
}

fn digest(lat: &LatencyRecorder) -> (usize, u64, u64, u64, u64) {
    (
        lat.count(),
        lat.mean().as_nanos(),
        lat.percentile(0.50).as_nanos(),
        lat.percentile(0.99).as_nanos(),
        lat.max().as_nanos(),
    )
}

/// Shared mutable state between the world and its in-flight job closures.
struct Inner {
    completions: Vec<(u64, u32)>,
    deliveries: Vec<(u64, u32, u32)>,
    raw_latencies: Vec<u64>,
    latency: LatencyRecorder,
    throughput: Timeline,
}

struct StationWorld {
    inner: Rc<RefCell<Inner>>,
    #[allow(dead_code)]
    station: StationRef,
}

impl ShardWorld for StationWorld {
    /// `(src_domain, job_id)` — a completion notice from another domain.
    type Msg = (u32, u32);
    type Out = DomainTrace;

    fn deliver(&mut self, sim: &mut Sim, (src, job): Self::Msg) {
        self.inner.borrow_mut().deliveries.push((sim.now().as_nanos(), src, job));
    }

    fn finish(&mut self, sim: &mut Sim) -> DomainTrace {
        let inner = self.inner.borrow();
        DomainTrace {
            completions: inner.completions.clone(),
            deliveries: inner.deliveries.clone(),
            raw_latencies: inner.raw_latencies.clone(),
            latency: digest(&inner.latency),
            throughput: inner.throughput.buckets(),
            final_now_ns: sim.now().as_nanos(),
        }
    }
}

fn build_domain(sim: &mut Sim, link: ShardLink<(u32, u32)>, spec: &DomainSpec) -> StationWorld {
    let station = Station::new("shard-cpu", spec.servers);
    let inner = Rc::new(RefCell::new(Inner {
        completions: Vec::new(),
        deliveries: Vec::new(),
        raw_latencies: Vec::new(),
        latency: LatencyRecorder::new(),
        throughput: Timeline::new(SimDuration::from_millis(10)),
    }));
    // Service jitter sampled from the domain's own RNG stream: exercises
    // the domain_seed derivation — any thread-count leakage into RNG
    // consumption order would show up as diverging completion times.
    let jitter = Dist::uniform(0.0, TICK as f64 / 1e9);
    for job in spec.jobs.iter().cloned() {
        let station = Rc::clone(&station);
        let inner = Rc::clone(&inner);
        let link = link.clone();
        sim.schedule_at(SimTime::from_nanos(job.submit_at * TICK), move |sim| {
            let submitted = sim.now();
            let service =
                SimDuration::from_nanos(job.service * TICK) + sim.rng().sample_duration(&jitter);
            Station::submit(&station, sim, service, move |sim: &mut Sim| {
                let now = sim.now();
                {
                    let mut inner = inner.borrow_mut();
                    let latency = now.saturating_since(submitted);
                    inner.completions.push((now.as_nanos(), job.id));
                    inner.raw_latencies.push(latency.as_nanos());
                    inner.latency.record(latency);
                    inner.throughput.add(now, 1.0);
                }
                if let Some((dest, extra)) = job.notify {
                    let delay = link.lookahead() + SimDuration::from_nanos(extra * TICK);
                    link.send(sim, dest, delay, (link.domain() as u32, job.id));
                }
            });
        });
    }
    StationWorld { inner, station }
}

/// Runs a program on `threads` threads and returns every domain's trace
/// plus the run-wide merged metrics digest.
fn run_program(
    threads: usize,
    seed: u64,
    specs: &[DomainSpec],
) -> (Vec<DomainTrace>, (usize, u64, u64, u64, u64), Vec<f64>) {
    let cfg = ShardConfig {
        threads,
        lookahead: LOOKAHEAD,
        until: Some(SimTime::from_secs(2)),
    };
    let builders: Vec<_> = specs
        .iter()
        .map(|spec| move |sim: &mut Sim, link: ShardLink<(u32, u32)>| build_domain(sim, link, spec))
        .collect();
    let traces = run_sharded::<StationWorld, _>(&cfg, seed, builders);
    // Reduce per-domain metrics into run-wide figures the same way a real
    // sharded experiment does (LatencyRecorder::merge / Timeline::merge);
    // the merge itself must also be thread-count-invariant.
    let mut merged_lat = LatencyRecorder::new();
    let mut merged_tp = Timeline::new(SimDuration::from_millis(10));
    for trace in &traces {
        let mut lat = LatencyRecorder::new();
        for &ns in &trace.raw_latencies {
            lat.record(SimDuration::from_nanos(ns));
        }
        merged_lat.merge(&lat);
        let mut tp = Timeline::new(SimDuration::from_millis(10));
        for (i, v) in trace.throughput.iter().enumerate() {
            tp.add(SimTime::from_nanos(i as u64 * 10_000_000), *v);
        }
        merged_tp.merge(&tp);
    }
    (traces, digest(&merged_lat), merged_tp.buckets())
}

/// Turns raw proptest output into a numbered program over `domains`
/// domains.
fn number_program(
    domains: usize,
    raw: Vec<(u8, Vec<(u64, u64, (bool, u8, u64))>)>,
) -> Vec<DomainSpec> {
    let mut next_id = 0u32;
    raw.into_iter()
        .take(domains)
        .enumerate()
        .map(|(d, (servers, jobs))| DomainSpec {
            servers: u32::from(servers % 3) + 1,
            jobs: jobs
                .into_iter()
                .map(|(submit_at, service, (notify, dest, extra))| {
                    let id = next_id;
                    next_id += 1;
                    JobSpec {
                        id,
                        submit_at,
                        service,
                        notify: notify.then(|| {
                            // Never notify yourself; wrap into another domain.
                            let dest = (d + 1 + usize::from(dest) % (domains - 1)) % domains;
                            (dest, extra)
                        }),
                    }
                })
                .collect(),
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The tentpole invariant: for any program and seed, every thread
    /// count produces the same traces and merged metrics as the serial
    /// (N=1) run.
    #[test]
    fn thread_count_is_unobservable(
        seed in any::<u64>(),
        raw in prop::collection::vec(
            (
                0..3u8,
                prop::collection::vec(
                    (0..40u64, 1..30u64, (any::<bool>(), 0..8u8, 0..20u64)),
                    0..24,
                ),
            ),
            4,
        ),
    ) {
        let specs = number_program(4, raw);
        let serial = run_program(1, seed, &specs);
        for threads in [2, 4] {
            let parallel = run_program(threads, seed, &specs);
            prop_assert_eq!(&parallel.0, &serial.0, "traces diverged at N={}", threads);
            prop_assert_eq!(parallel.1, serial.1, "merged latencies diverged at N={}", threads);
            prop_assert_eq!(&parallel.2, &serial.2, "merged timeline diverged at N={}", threads);
        }
    }

    /// Replays are bit-identical: the same `(seed, program, N)` twice.
    #[test]
    fn same_inputs_replay_bit_identically(
        seed in any::<u64>(),
        raw in prop::collection::vec(
            (
                0..3u8,
                prop::collection::vec(
                    (0..30u64, 1..20u64, (any::<bool>(), 0..8u8, 0..10u64)),
                    0..12,
                ),
            ),
            4,
        ),
    ) {
        let specs = number_program(4, raw);
        let a = run_program(4, seed, &specs);
        let b = run_program(4, seed, &specs);
        prop_assert_eq!(a.0, b.0);
        prop_assert_eq!(a.1, b.1);
        prop_assert_eq!(a.2, b.2);
    }
}

/// A deterministic companion pinning one interesting fixed program, so a
/// regression shows up as a plain test failure with a readable diff.
#[test]
fn fixed_cross_traffic_program_is_thread_count_invariant() {
    let specs: Vec<DomainSpec> = (0..4)
        .map(|d| DomainSpec {
            servers: (d as u32 % 2) + 1,
            jobs: (0..16)
                .map(|i| JobSpec {
                    id: (d * 16 + i) as u32,
                    submit_at: (i as u64 * 3) % 17,
                    service: 1 + (i as u64 * 5) % 11,
                    notify: if i % 2 == 0 { Some(((d + 1) % 4, i as u64 % 6)) } else { None },
                })
                .collect(),
        })
        .collect();
    let serial = run_program(1, 0xF5, &specs);
    // Every domain saw traffic and every domain received notices.
    for (d, trace) in serial.0.iter().enumerate() {
        assert_eq!(trace.completions.len(), 16, "domain {d}");
        assert_eq!(trace.deliveries.len(), 8, "domain {d}");
        assert_eq!(trace.latency.0, 16, "domain {d}");
    }
    for threads in [2, 3, 4, 7] {
        assert_eq!(run_program(threads, 0xF5, &specs), serial, "N={threads}");
    }
}
