//! Differential property tests: the slab/enum DES kernel ([`Sim`]) must be
//! observationally identical to the preserved boxed-closure reference
//! implementation ([`lambda_sim::baseline::BoxedSim`]).
//!
//! Each property generates a random *schedule program* — a plain data
//! structure, so it can be replayed on both engines — and requires the two
//! runs to produce identical firing logs (event id and virtual time of
//! every firing), identical final clocks, and identical executed-event
//! counts. The programs deliberately exercise the ordering edge cases:
//! same-instant bursts (FIFO by scheduling order), events scheduling
//! further events from inside their own firing, and past-instant schedules
//! that must clamp to "now".

use lambda_sim::baseline::{boxed_every, BoxedSim, BoxedStation};
use lambda_sim::{every, Sim, SimDuration, SimTime, Station};
use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

/// Nanoseconds per delay unit. Delays are drawn from a tiny integer range
/// so that same-instant collisions are common, then scaled up.
const TICK: u64 = 1_000;

/// One root event: fires after `delay`, then schedules its children.
#[derive(Debug, Clone)]
struct RootSpec {
    id: u32,
    delay: u64,
    children: Vec<ChildSpec>,
}

/// A child event scheduled from inside its parent's firing. When `past` is
/// set it is scheduled at `parent_fire_time - delay` (clamped by the
/// engine); otherwise at `parent_fire_time + delay`.
#[derive(Debug, Clone)]
struct ChildSpec {
    id: u32,
    delay: u64,
    past: bool,
    grandchildren: Vec<(u32, u64)>,
}

/// Assigns stable event ids to a raw generated program, in generation
/// order, so both engines label firings identically.
fn number_program(raw: Vec<(u64, Vec<(u64, bool, Vec<u64>)>)>) -> Vec<RootSpec> {
    let mut next_id = 0u32;
    let mut id = || {
        let v = next_id;
        next_id += 1;
        v
    };
    raw.into_iter()
        .map(|(delay, children)| RootSpec {
            id: id(),
            delay,
            children: children
                .into_iter()
                .map(|(cdelay, past, grand)| ChildSpec {
                    id: id(),
                    delay: cdelay,
                    past,
                    grandchildren: grand.into_iter().map(|gdelay| (id(), gdelay)).collect(),
                })
                .collect(),
        })
        .collect()
}

/// Drives one engine through a closure program, returning the firing log
/// `(time_ns, event_id)` plus `(final_now_ns, events_executed)`.
macro_rules! run_closure_program {
    ($sim_ty:ty, $program:expr) => {{
        let program: &[RootSpec] = $program;
        let log: Rc<RefCell<Vec<(u64, u32)>>> = Rc::new(RefCell::new(Vec::new()));
        let mut sim = <$sim_ty>::new(7);
        for root in program.iter().cloned() {
            let log = Rc::clone(&log);
            sim.schedule(SimDuration::from_nanos(root.delay * TICK), move |sim| {
                log.borrow_mut().push((sim.now().as_nanos(), root.id));
                for child in root.children.iter().cloned() {
                    let log = Rc::clone(&log);
                    let fire = move |sim: &mut $sim_ty| {
                        log.borrow_mut().push((sim.now().as_nanos(), child.id));
                        for (gid, gdelay) in child.grandchildren.iter().copied() {
                            let log = Rc::clone(&log);
                            sim.schedule(SimDuration::from_nanos(gdelay * TICK), move |sim| {
                                log.borrow_mut().push((sim.now().as_nanos(), gid));
                            });
                        }
                    };
                    if child.past {
                        let target = sim.now().as_nanos().saturating_sub(child.delay * TICK);
                        sim.schedule_at(SimTime::from_nanos(target), fire);
                    } else {
                        sim.schedule(SimDuration::from_nanos(child.delay * TICK), fire);
                    }
                }
            });
        }
        sim.run();
        let events = Rc::try_unwrap(log).expect("run complete").into_inner();
        (events, sim.now().as_nanos(), sim.events_executed())
    }};
}

/// One timer: starts at `first`, ticks every `period`, cancels itself after
/// `ticks` firings.
#[derive(Debug, Clone)]
struct TimerSpec {
    id: u32,
    first: u64,
    period: u64,
    ticks: u8,
}

macro_rules! run_timer_program {
    ($sim_ty:ty, $every:path, $timers:expr, $bursts:expr) => {{
        let timers: &[TimerSpec] = $timers;
        let bursts: &[u64] = $bursts;
        let log: Rc<RefCell<Vec<(u64, u32)>>> = Rc::new(RefCell::new(Vec::new()));
        let mut sim = <$sim_ty>::new(7);
        for (i, spec) in timers.iter().cloned().enumerate() {
            let tick_log = Rc::clone(&log);
            let mut left = u32::from(spec.ticks) + 1;
            $every(
                &mut sim,
                SimTime::from_nanos(spec.first * TICK),
                SimDuration::from_nanos((spec.period + 1) * TICK),
                move |sim: &mut $sim_ty| {
                    tick_log.borrow_mut().push((sim.now().as_nanos(), spec.id));
                    left -= 1;
                    left > 0
                },
            );
            // Interleave one-shot closures between timer registrations so
            // the two engines must agree on mixed-variant FIFO order too.
            if let Some(&delay) = bursts.get(i) {
                let log = Rc::clone(&log);
                sim.schedule(SimDuration::from_nanos(delay * TICK), move |sim| {
                    log.borrow_mut().push((sim.now().as_nanos(), u32::MAX));
                });
            }
        }
        sim.run();
        let events = Rc::try_unwrap(log).expect("run complete").into_inner();
        (events, sim.now().as_nanos(), sim.events_executed())
    }};
}

/// One station job: submitted at `submit_at`, needing `service` time, on
/// station `station` (two stations exist, with 1 and 2 servers).
#[derive(Debug, Clone)]
struct JobSpec {
    id: u32,
    submit_at: u64,
    service: u64,
    station: bool,
}

macro_rules! run_station_program {
    ($sim_ty:ty, $station_ty:ty, $new_station:expr, $jobs:expr, $resizes:expr) => {{
        let jobs: &[JobSpec] = $jobs;
        let resizes: &[(u64, bool, u32)] = $resizes;
        let log: Rc<RefCell<Vec<(u64, u32)>>> = Rc::new(RefCell::new(Vec::new()));
        let mut sim = <$sim_ty>::new(7);
        let stations = [$new_station(1), $new_station(2)];
        for job in jobs.iter().cloned() {
            let log = Rc::clone(&log);
            let station = Rc::clone(&stations[usize::from(job.station)]);
            sim.schedule(SimDuration::from_nanos(job.submit_at * TICK), move |sim| {
                let log = Rc::clone(&log);
                <$station_ty>::submit(
                    &station,
                    sim,
                    SimDuration::from_nanos(job.service * TICK),
                    move |sim: &mut $sim_ty| {
                        log.borrow_mut().push((sim.now().as_nanos(), job.id));
                    },
                );
            });
        }
        for (at, which, servers) in resizes.iter().copied() {
            let station = Rc::clone(&stations[usize::from(which)]);
            sim.schedule(SimDuration::from_nanos(at * TICK), move |_| {
                station.borrow_mut().set_servers(servers + 1);
            });
        }
        sim.run();
        let stats = [stations[0].borrow().stats(), stations[1].borrow().stats()];
        let events = Rc::try_unwrap(log).expect("run complete").into_inner();
        (events, sim.now().as_nanos(), sim.events_executed(), stats)
    }};
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn closure_schedules_fire_identically(
        raw in prop::collection::vec(
            (
                0..8u64,
                prop::collection::vec(
                    (0..8u64, any::<bool>(), prop::collection::vec(0..8u64, 0..3)),
                    0..4,
                ),
            ),
            0..24,
        ),
    ) {
        let program = number_program(raw);
        let slab = run_closure_program!(Sim, &program);
        let boxed = run_closure_program!(BoxedSim, &program);
        prop_assert_eq!(slab, boxed);
    }

    #[test]
    fn timer_programs_tick_identically(
        raw in prop::collection::vec((0..6u64, 0..4u64, 0..5u8), 0..8),
        bursts in prop::collection::vec(0..20u64, 0..8),
    ) {
        let timers: Vec<TimerSpec> = raw
            .into_iter()
            .enumerate()
            .map(|(i, (first, period, ticks))| TimerSpec {
                id: u32::try_from(i).expect("small index"),
                first,
                period,
                ticks,
            })
            .collect();
        let slab = run_timer_program!(Sim, every, &timers, &bursts);
        let boxed = run_timer_program!(BoxedSim, boxed_every, &timers, &bursts);
        prop_assert_eq!(slab, boxed);
    }

    #[test]
    fn station_programs_complete_identically(
        raw in prop::collection::vec((0..12u64, 0..10u64, any::<bool>()), 0..32),
        resizes in prop::collection::vec((0..12u64, any::<bool>(), 0..3u32), 0..4),
    ) {
        let jobs: Vec<JobSpec> = raw
            .into_iter()
            .enumerate()
            .map(|(i, (submit_at, service, station))| JobSpec {
                id: u32::try_from(i).expect("small index"),
                submit_at,
                service,
                station,
            })
            .collect();
        let slab = run_station_program!(
            Sim, Station, |k| Station::new("s", k), &jobs, &resizes
        );
        let boxed = run_station_program!(
            BoxedSim, BoxedStation, BoxedStation::new, &jobs, &resizes
        );
        prop_assert_eq!(slab, boxed);
    }
}

/// A fixed mixed workload driven through both engines: closures, timers,
/// and stations interleaved at the same instants, comparing the complete
/// firing transcript. Deterministic companion to the properties above.
#[test]
fn mixed_kernel_transcripts_match() {
    fn drive_slab() -> (Vec<(u64, u32)>, u64, u64) {
        let log: Rc<RefCell<Vec<(u64, u32)>>> = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Sim::new(99);
        let station = Station::new("mix", 2);
        {
            let log = Rc::clone(&log);
            let mut left = 5u32;
            every(&mut sim, SimTime::ZERO, SimDuration::from_nanos(3 * TICK), move |sim| {
                log.borrow_mut().push((sim.now().as_nanos(), 1000));
                left -= 1;
                left > 0
            });
        }
        for i in 0..10u32 {
            let log = Rc::clone(&log);
            let station = Rc::clone(&station);
            sim.schedule(SimDuration::from_nanos(u64::from(i % 3) * TICK), move |sim| {
                let log = Rc::clone(&log);
                Station::submit(&station, sim, SimDuration::from_nanos(2 * TICK), move |sim| {
                    log.borrow_mut().push((sim.now().as_nanos(), i));
                });
            });
        }
        sim.run();
        let events = Rc::try_unwrap(log).expect("run complete").into_inner();
        (events, sim.now().as_nanos(), sim.events_executed())
    }
    fn drive_boxed() -> (Vec<(u64, u32)>, u64, u64) {
        let log: Rc<RefCell<Vec<(u64, u32)>>> = Rc::new(RefCell::new(Vec::new()));
        let mut sim = BoxedSim::new(99);
        let station = BoxedStation::new(2);
        {
            let log = Rc::clone(&log);
            let mut left = 5u32;
            boxed_every(&mut sim, SimTime::ZERO, SimDuration::from_nanos(3 * TICK), move |sim| {
                log.borrow_mut().push((sim.now().as_nanos(), 1000));
                left -= 1;
                left > 0
            });
        }
        for i in 0..10u32 {
            let log = Rc::clone(&log);
            let station = Rc::clone(&station);
            sim.schedule(SimDuration::from_nanos(u64::from(i % 3) * TICK), move |sim| {
                let log = Rc::clone(&log);
                BoxedStation::submit(&station, sim, SimDuration::from_nanos(2 * TICK), move |sim| {
                    log.borrow_mut().push((sim.now().as_nanos(), i));
                });
            });
        }
        sim.run();
        let events = Rc::try_unwrap(log).expect("run complete").into_inner();
        (events, sim.now().as_nanos(), sim.events_executed())
    }
    assert_eq!(drive_slab(), drive_boxed());
}
