//! Cross-shard message fabric for the parallel sharded DES.
//!
//! A sharded run (see [`shard`](crate::shard)) partitions a simulation into
//! per-thread domains, each owning its own [`Sim`] engine. Domains interact
//! only through timestamped messages sent over a [`ShardLink`]; every send
//! must ride at least [`lookahead`](ShardLink::lookahead) of virtual latency,
//! which is what lets the conservative synchronization protocol execute each
//! domain's window in parallel without ever receiving a message from its
//! past.
//!
//! Determinism is structural: envelopes carry a `(deliver_at, src, seq)` key
//! that totally orders every exchange round, so the order in which worker
//! threads happened to push into the shared mailboxes never leaks into the
//! destination engine's event order.

use std::cell::RefCell;
use std::rc::Rc;

use crate::engine::Sim;
use crate::time::{SimDuration, SimTime};

/// A timestamped cross-shard message in flight.
#[derive(Debug, Clone)]
pub struct Envelope<M> {
    /// Virtual instant the destination must process the message at.
    pub deliver_at: SimTime,
    /// Sending domain index.
    pub src: u32,
    /// Per-source send counter; the tie-break of last resort.
    pub seq: u64,
    /// The model's payload.
    pub payload: M,
}

impl<M> Envelope<M> {
    /// The total-order key every exchange round is sorted by before
    /// injection: delivery time, then source domain, then send order.
    /// Distinct envelopes never compare equal (the `(src, seq)` pair is
    /// unique), so the destination's same-instant FIFO order is fully
    /// determined no matter which worker thread routed the envelope first.
    #[must_use]
    pub fn order_key(&self) -> (SimTime, u32, u64) {
        (self.deliver_at, self.src, self.seq)
    }
}

/// Outbound messages accumulated by one domain during a window.
#[derive(Debug)]
pub(crate) struct Outbox<M> {
    next_seq: u64,
    pub(crate) pending: Vec<(u32, Envelope<M>)>,
}

impl<M> Default for Outbox<M> {
    fn default() -> Self {
        Outbox { next_seq: 0, pending: Vec::new() }
    }
}

/// A domain's handle for sending timestamped messages to other domains.
///
/// Cloneable; clones share the domain's outbox, so model components can
/// each hold one. Sends are collected locally during a window and exchanged
/// at the next synchronization barrier — they never block.
#[derive(Debug)]
pub struct ShardLink<M> {
    domain: u32,
    domains: u32,
    lookahead: SimDuration,
    outbox: Rc<RefCell<Outbox<M>>>,
}

impl<M> Clone for ShardLink<M> {
    fn clone(&self) -> Self {
        ShardLink {
            domain: self.domain,
            domains: self.domains,
            lookahead: self.lookahead,
            outbox: Rc::clone(&self.outbox),
        }
    }
}

impl<M> ShardLink<M> {
    pub(crate) fn new(domain: u32, domains: u32, lookahead: SimDuration) -> Self {
        ShardLink { domain, domains, lookahead, outbox: Rc::new(RefCell::new(Outbox::default())) }
    }

    /// This domain's index.
    #[must_use]
    pub fn domain(&self) -> usize {
        self.domain as usize
    }

    /// Total number of domains in the sharded run.
    #[must_use]
    pub fn domains(&self) -> usize {
        self.domains as usize
    }

    /// The run's conservative lookahead: the minimum virtual latency every
    /// cross-shard send must carry.
    #[must_use]
    pub fn lookahead(&self) -> SimDuration {
        self.lookahead
    }

    /// Sends `payload` to domain `dest`, delivered `delay` after the
    /// sender's current instant.
    ///
    /// # Panics
    ///
    /// Panics if `delay` undercuts the lookahead (the message could land in
    /// a window the destination already executed — a conservative-sync
    /// violation, always a model bug), or if `dest` is out of range.
    pub fn send(&self, sim: &Sim, dest: usize, delay: SimDuration, payload: M) {
        assert!(
            delay >= self.lookahead,
            "cross-shard send with delay {delay:?} under the lookahead {:?}",
            self.lookahead
        );
        assert!(dest < self.domains as usize, "destination domain {dest} out of range");
        let mut outbox = self.outbox.borrow_mut();
        let seq = outbox.next_seq;
        outbox.next_seq += 1;
        let env =
            Envelope { deliver_at: sim.now() + delay, src: self.domain, seq, payload };
        outbox.pending.push((u32::try_from(dest).expect("domain index fits u32"), env));
    }

    /// Takes everything sent since the last drain (the barrier-exchange
    /// step). Send sequence numbers keep counting across drains.
    pub(crate) fn drain(&self) -> Vec<(u32, Envelope<M>)> {
        std::mem::take(&mut self.outbox.borrow_mut().pending)
    }
}

/// Sorts one domain's freshly exchanged envelopes into their canonical
/// injection order and schedules each at its delivery instant, invoking
/// `deliver` from inside the destination engine.
pub(crate) fn inject_sorted<M: 'static, F>(
    sim: &mut Sim,
    mut envelopes: Vec<Envelope<M>>,
    deliver: F,
) where
    F: Fn(&mut Sim, Envelope<M>) + Clone + 'static,
{
    envelopes.sort_by_key(Envelope::order_key);
    for env in envelopes {
        let deliver = deliver.clone();
        sim.schedule_at(env.deliver_at, move |sim| deliver(sim, env));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_stamps_monotone_sequence_numbers() {
        let sim = Sim::new(0);
        let link: ShardLink<u32> = ShardLink::new(1, 4, SimDuration::from_millis(1));
        link.send(&sim, 0, SimDuration::from_millis(1), 10);
        link.send(&sim, 3, SimDuration::from_millis(2), 20);
        let drained = link.drain();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].0, 0);
        assert_eq!(drained[0].1.seq, 0);
        assert_eq!(drained[1].1.seq, 1);
        // Sequence numbers keep counting across drains.
        link.send(&sim, 2, SimDuration::from_millis(1), 30);
        assert_eq!(link.drain()[0].1.seq, 2);
    }

    #[test]
    #[should_panic(expected = "under the lookahead")]
    fn sends_below_the_lookahead_are_rejected() {
        let sim = Sim::new(0);
        let link: ShardLink<()> = ShardLink::new(0, 2, SimDuration::from_millis(5));
        link.send(&sim, 1, SimDuration::from_millis(4), ());
    }

    #[test]
    fn injection_sorts_by_time_then_source_then_seq() {
        let mut sim = Sim::new(0);
        let log = Rc::new(RefCell::new(Vec::new()));
        let out = Rc::clone(&log);
        let at = SimTime::from_nanos(1_000);
        let envelopes = vec![
            Envelope { deliver_at: at, src: 2, seq: 0, payload: "c" },
            Envelope { deliver_at: at, src: 1, seq: 1, payload: "b" },
            Envelope { deliver_at: SimTime::from_nanos(500), src: 9, seq: 0, payload: "first" },
            Envelope { deliver_at: at, src: 1, seq: 0, payload: "a" },
        ];
        inject_sorted(&mut sim, envelopes, move |_sim, env| {
            out.borrow_mut().push(env.payload);
        });
        sim.run();
        assert_eq!(*log.borrow(), vec!["first", "a", "b", "c"]);
    }
}
