//! Parallel sharded simulation with conservative synchronization.
//!
//! [`run_sharded`] partitions a simulation into `D` *domains* — independent
//! [`Sim`] engines, each with its own clock, event queue, and RNG stream —
//! and advances them on up to `N` worker threads under a classic
//! conservative time-window protocol (Chandy–Misra–Bryant with a barrier
//! window instead of per-link null messages):
//!
//! 1. every domain publishes the instant of its earliest pending event;
//! 2. the global minimum `gmin` plus the run's *lookahead* bounds a safe
//!    window `[gmin, gmin + lookahead)` — no cross-domain message sent at or
//!    after `gmin` can be delivered inside it, because every send must ride
//!    at least `lookahead` of virtual latency ([`ShardLink::send`]);
//! 3. all domains execute their events strictly before the window end in
//!    parallel, then exchange the messages they produced and repeat.
//!
//! # Determinism: `N = 1` ≡ `N = k`
//!
//! The partition into domains is fixed by the model, **not** by the thread
//! count: `N` only decides how domains are multiplexed onto threads. Every
//! source of ordering is thread-count-invariant by construction:
//!
//! * each domain's RNG seed is [`domain_seed`]`(seed, d)`;
//! * window boundaries come from a global minimum over *all* domain queues,
//!   which is the same no matter how the queues are distributed;
//! * exchanged messages are injected in the total order
//!   `(deliver_at, src domain, send seq)` ([`Envelope::order_key`]), erasing
//!   the wall-clock order in which worker threads routed them;
//! * within a domain, the engine's FIFO same-instant tie-break applies.
//!
//! Hence the same `(seed, builders, horizon)` produces bit-identical domain
//! traces and outputs for every thread count, and the differential suite
//! (`tests/shard_differential.rs`) pins exactly that.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};

use crate::engine::Sim;
use crate::sync::{inject_sorted, Envelope, ShardLink};
use crate::time::{SimDuration, SimTime};

/// Sentinel published when a domain's event queue is empty, and stored as
/// the window decision when the run should stop.
const IDLE: u64 = u64::MAX;

/// How a sharded run is partitioned and bounded.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Worker threads to advance domains on. Clamped to `[1, domains]`;
    /// the *result* of the run does not depend on this value.
    pub threads: usize,
    /// Conservative lookahead: the minimum virtual latency every
    /// cross-domain send must carry. Must be positive — a zero lookahead
    /// admits no safe window (derive it from the model's latency floors,
    /// e.g. `NetParams::conservative_lookahead`).
    pub lookahead: SimDuration,
    /// Optional virtual-time horizon. Events scheduled after it never run;
    /// each domain's clock is advanced to exactly the horizon at the end,
    /// as [`Sim::run_until`] does.
    pub until: Option<SimTime>,
}

/// One domain's model state in a sharded run.
///
/// A world lives on the thread that owns its domain for the whole run
/// (worlds need not be `Send`; messages and outputs must be).
pub trait ShardWorld: 'static {
    /// Cross-domain message payload.
    type Msg: Send + 'static;
    /// Per-domain result extracted when the run completes.
    type Out: Send + 'static;

    /// Handles a message from another domain, invoked inside the receiving
    /// engine at exactly the envelope's delivery instant.
    fn deliver(&mut self, sim: &mut Sim, msg: Self::Msg);

    /// Extracts the domain's result after the run completes (queue drained
    /// or horizon reached).
    fn finish(&mut self, sim: &mut Sim) -> Self::Out;
}

/// Derives domain `d`'s RNG seed from the run's master seed.
///
/// SplitMix64-style finalizer: deterministic, cheap, and decorrelated
/// across both arguments, so neighboring domains (and neighboring master
/// seeds) get unrelated streams. Thread count never enters the derivation —
/// this is one of the pillars of `N = 1` ≡ `N = k` reproducibility.
#[must_use]
pub fn domain_seed(master: u64, domain: usize) -> u64 {
    let mut z = master ^ (domain as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Cross-thread coordination state for one sharded run.
struct Fabric<M> {
    /// Per-domain earliest-pending-event instant in nanos (`IDLE` = empty
    /// queue). Barriers order the writes against the reads.
    mins: Vec<AtomicU64>,
    /// Per-destination-domain mailboxes for the exchange step.
    inboxes: Mutex<Vec<Vec<Envelope<M>>>>,
    /// The window decision thread 0 publishes each round: the exclusive
    /// window end in nanos, or `IDLE` to stop.
    decision: AtomicU64,
    barrier: Barrier,
}

/// Runs `builders.len()` domains to completion (or to the configured
/// horizon) on up to `cfg.threads` worker threads, returning each domain's
/// output in domain order.
///
/// Builder `d` constructs domain `d`'s world inside that domain's fresh
/// engine (seeded with [`domain_seed`]); the [`ShardLink`] it receives is
/// the world's only channel to other domains. Builders may send on the link
/// immediately — such messages are exchanged before the first window.
///
/// # Panics
///
/// Panics if `builders` is empty, `cfg.threads` is zero, or
/// `cfg.lookahead` is zero.
pub fn run_sharded<W, B>(cfg: &ShardConfig, seed: u64, builders: Vec<B>) -> Vec<W::Out>
where
    W: ShardWorld,
    B: FnOnce(&mut Sim, ShardLink<W::Msg>) -> W + Send,
{
    let domains = builders.len();
    assert!(domains > 0, "run_sharded needs at least one domain");
    assert!(cfg.threads > 0, "run_sharded needs at least one thread");
    assert!(!cfg.lookahead.is_zero(), "conservative sync needs a positive lookahead");
    let threads = cfg.threads.min(domains);

    let fabric = Fabric::<W::Msg> {
        mins: (0..domains).map(|_| AtomicU64::new(IDLE)).collect(),
        inboxes: Mutex::new((0..domains).map(|_| Vec::new()).collect()),
        decision: AtomicU64::new(IDLE),
        barrier: Barrier::new(threads),
    };
    let outputs: Mutex<Vec<Option<W::Out>>> = Mutex::new((0..domains).map(|_| None).collect());

    // Round-robin domain ownership: thread t owns every domain d with
    // d % threads == t. (Ownership affects wall-clock balance only, never
    // results.)
    let mut per_thread: Vec<Vec<(usize, B)>> = (0..threads).map(|_| Vec::new()).collect();
    for (d, builder) in builders.into_iter().enumerate() {
        per_thread[d % threads].push((d, builder));
    }

    std::thread::scope(|scope| {
        for (t, owned) in per_thread.into_iter().enumerate() {
            let fabric = &fabric;
            let outputs = &outputs;
            let worker = move || {
                run_worker::<W, B>(cfg, seed, t == 0, domains, owned, fabric, outputs);
            };
            if t == threads - 1 {
                // Run the last partition on the calling thread; with
                // threads == 1 this makes the serial path truly serial.
                worker();
            } else {
                scope.spawn(worker);
            }
        }
    });

    let mut outputs = outputs.into_inner().expect("no worker panicked");
    outputs
        .iter_mut()
        .enumerate()
        .map(|(d, slot)| slot.take().unwrap_or_else(|| panic!("domain {d} produced no output")))
        .collect()
}

/// One domain as a worker thread sees it: its index, engine, world, and
/// cross-shard link.
type ShardCell<W> = (usize, Sim, Rc<RefCell<W>>, ShardLink<<W as ShardWorld>::Msg>);

/// One worker thread's share of the conservative-sync protocol.
fn run_worker<W, B>(
    cfg: &ShardConfig,
    seed: u64,
    leader: bool,
    domains: usize,
    owned: Vec<(usize, B)>,
    fabric: &Fabric<W::Msg>,
    outputs: &Mutex<Vec<Option<W::Out>>>,
) where
    W: ShardWorld,
    B: FnOnce(&mut Sim, ShardLink<W::Msg>) -> W,
{
    let domain_count = u32::try_from(domains).expect("domain count fits u32");
    // Build this thread's domains: a fresh engine per domain, seeded
    // independently of thread count, plus the world and its link.
    let mut shards: Vec<ShardCell<W>> = owned
        .into_iter()
        .map(|(d, builder)| {
            let mut sim = Sim::new(domain_seed(seed, d));
            let link = ShardLink::new(
                u32::try_from(d).expect("domain index fits u32"),
                domain_count,
                cfg.lookahead,
            );
            let world = Rc::new(RefCell::new(builder(&mut sim, link.clone())));
            (d, sim, world, link)
        })
        .collect();

    loop {
        // (a) Exchange: publish everything our domains sent last window
        // (or at build time) into the shared per-destination mailboxes.
        {
            let mut inboxes = fabric.inboxes.lock().expect("no worker panicked");
            for (_, _, _, link) in &shards {
                for (dest, env) in link.drain() {
                    inboxes[dest as usize].push(env);
                }
            }
        }
        fabric.barrier.wait();

        // (b) Inject: schedule our domains' freshly arrived messages in the
        // canonical (deliver_at, src, seq) order. Local step — our own
        // mailboxes only — so no barrier is needed before (c).
        for (d, sim, world, _) in &mut shards {
            let arrived = {
                let mut inboxes = fabric.inboxes.lock().expect("no worker panicked");
                std::mem::take(&mut inboxes[*d])
            };
            if !arrived.is_empty() {
                let world = Rc::clone(world);
                inject_sorted(sim, arrived, move |sim, env: Envelope<W::Msg>| {
                    world.borrow_mut().deliver(sim, env.payload);
                });
            }
        }

        // (c) Publish each owned domain's earliest pending instant.
        for (d, sim, _, _) in &mut shards {
            let min = sim.next_event_at().map_or(IDLE, SimTime::as_nanos);
            fabric.mins[*d].store(min, Ordering::SeqCst);
        }
        fabric.barrier.wait();

        // (d) The leader turns the global minimum into a window decision.
        if leader {
            let gmin = fabric.mins.iter().map(|m| m.load(Ordering::SeqCst)).min().unwrap_or(IDLE);
            let decision = match cfg.until {
                _ if gmin == IDLE => IDLE,
                Some(until) if gmin > until.as_nanos() => IDLE,
                Some(until) => {
                    // Cap the window just past the horizon so events at
                    // exactly `until` still run but nothing later does.
                    let end = SimTime::from_nanos(gmin) + cfg.lookahead;
                    end.as_nanos().min(until.as_nanos() + 1)
                }
                None => (SimTime::from_nanos(gmin) + cfg.lookahead).as_nanos(),
            };
            fabric.decision.store(decision, Ordering::SeqCst);
        }
        fabric.barrier.wait();

        // (e) Execute the window in parallel, or stop.
        let decision = fabric.decision.load(Ordering::SeqCst);
        if decision == IDLE {
            break;
        }
        let window_end = SimTime::from_nanos(decision);
        for (_, sim, _, _) in &mut shards {
            sim.run_before(window_end);
        }
    }

    // Settle clocks on the horizon (queues hold only post-horizon events,
    // if any) and collect outputs in domain order.
    let mut outputs = outputs.lock().expect("no worker panicked");
    for (d, sim, world, _) in &mut shards {
        if let Some(until) = cfg.until {
            sim.run_until(until);
        }
        outputs[*d] = Some(world.borrow_mut().finish(sim));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy world: every `period`, domain `d` sends a counter to domain
    /// `(d + 1) % D`; deliveries append `(now_nanos, src, value)` to a log.
    struct RingWorld {
        link: ShardLink<u64>,
        log: Vec<(u64, u32, u64)>,
        sent: u64,
    }

    impl RingWorld {
        fn build(sim: &mut Sim, link: ShardLink<u64>, period: SimDuration, rounds: u64) -> Self {
            let next = (link.domain() + 1) % link.domains();
            for i in 0..rounds {
                let link = link.clone();
                let base = link.domain() as u64 * 1_000;
                sim.schedule_at(SimTime::ZERO + period * i, move |sim| {
                    link.send(sim, next, link.lookahead(), base + i);
                });
            }
            RingWorld { link, log: Vec::new(), sent: rounds }
        }
    }

    impl ShardWorld for RingWorld {
        type Msg = u64;
        type Out = (Vec<(u64, u32, u64)>, u64, u64);

        fn deliver(&mut self, sim: &mut Sim, msg: Self::Msg) {
            self.log.push((sim.now().as_nanos(), self.link.domain() as u32, msg));
        }

        fn finish(&mut self, sim: &mut Sim) -> Self::Out {
            (std::mem::take(&mut self.log), self.sent, sim.now().as_nanos())
        }
    }

    fn ring_run(threads: usize, domains: usize, seed: u64) -> Vec<<RingWorld as ShardWorld>::Out> {
        let cfg = ShardConfig {
            threads,
            lookahead: SimDuration::from_millis(1),
            until: Some(SimTime::from_secs(1)),
        };
        let builders: Vec<_> = (0..domains)
            .map(|_| {
                |sim: &mut Sim, link: ShardLink<u64>| {
                    RingWorld::build(sim, link, SimDuration::from_millis(7), 40)
                }
            })
            .collect();
        run_sharded::<RingWorld, _>(&cfg, seed, builders)
    }

    #[test]
    fn messages_cross_domains_and_arrive_on_time() {
        let outs = ring_run(2, 3, 11);
        for (d, (log, _, now)) in outs.iter().enumerate() {
            assert_eq!(log.len(), 40, "domain {d} received every ring message");
            // Clock settled exactly on the horizon.
            assert_eq!(*now, SimTime::from_secs(1).as_nanos());
            let src = ((d + 3 - 1) % 3) as u64;
            for (at, _, value) in log {
                assert_eq!(value / 1_000, src, "messages come from the ring predecessor");
                // deliver_at = send instant + lookahead, and sends are on a
                // 7 ms grid.
                let offset = at - 1_000_000;
                assert_eq!(offset % 7_000_000, 0, "domain {d} delivery at {at}");
            }
        }
    }

    #[test]
    fn thread_count_never_changes_results() {
        let serial = ring_run(1, 5, 99);
        for threads in [2, 3, 5, 8] {
            assert_eq!(ring_run(threads, 5, 99), serial, "N={threads} diverged from N=1");
        }
    }

    #[test]
    fn same_seed_replays_and_seeds_differ_across_domains() {
        assert_eq!(ring_run(2, 3, 7), ring_run(2, 3, 7));
        assert_ne!(domain_seed(7, 0), domain_seed(7, 1));
        assert_ne!(domain_seed(7, 0), domain_seed(8, 0));
        // Domain RNG streams are decorrelated in practice.
        let mut a = crate::rng::SimRng::new(domain_seed(7, 0));
        let mut b = crate::rng::SimRng::new(domain_seed(7, 1));
        assert_ne!(a.gen_unit().to_bits(), b.gen_unit().to_bits());
    }

    /// Same-instant cross-domain deliveries land in (src, seq) order no
    /// matter which thread routed them first.
    struct SinkWorld {
        seen: Vec<(u32, u64)>,
    }

    impl ShardWorld for SinkWorld {
        type Msg = (u32, u64);
        type Out = Vec<(u32, u64)>;

        fn deliver(&mut self, _sim: &mut Sim, msg: Self::Msg) {
            self.seen.push(msg);
        }

        fn finish(&mut self, _sim: &mut Sim) -> Self::Out {
            std::mem::take(&mut self.seen)
        }
    }

    #[test]
    fn simultaneous_deliveries_order_by_source_then_seq() {
        for threads in [1, 4] {
            let cfg = ShardConfig {
                threads,
                lookahead: SimDuration::from_millis(2),
                until: None,
            };
            // Domains 1..4 each send two messages to domain 0, all
            // delivered at exactly t = 2 ms.
            let builders: Vec<_> = (0..4)
                .map(|_| {
                    |sim: &mut Sim, link: ShardLink<(u32, u64)>| {
                        if link.domain() != 0 {
                            let d = link.domain() as u32;
                            for seq in 0..2 {
                                link.send(sim, 0, link.lookahead(), (d, seq));
                            }
                        }
                        SinkWorld { seen: Vec::new() }
                    }
                })
                .collect();
            let outs = run_sharded::<SinkWorld, _>(&cfg, 1, builders);
            assert_eq!(
                outs[0],
                vec![(1, 0), (1, 1), (2, 0), (2, 1), (3, 0), (3, 1)],
                "N={threads}"
            );
        }
    }

    #[test]
    fn horizon_cuts_off_later_events() {
        struct Quiet;
        impl ShardWorld for Quiet {
            type Msg = ();
            type Out = u64;
            fn deliver(&mut self, _sim: &mut Sim, (): Self::Msg) {}
            fn finish(&mut self, sim: &mut Sim) -> u64 {
                sim.now().as_nanos()
            }
        }
        let cfg = ShardConfig {
            threads: 2,
            lookahead: SimDuration::from_millis(1),
            until: Some(SimTime::from_nanos(10_000_000)),
        };
        let fired = std::sync::Arc::new(AtomicU64::new(0));
        let builders: Vec<_> = (0..2)
            .map(|_| {
                let fired = std::sync::Arc::clone(&fired);
                move |sim: &mut Sim, _link: ShardLink<()>| {
                    let early = std::sync::Arc::clone(&fired);
                    let late = std::sync::Arc::clone(&fired);
                    sim.schedule_at(SimTime::from_nanos(10_000_000), move |_| {
                        early.fetch_add(1, Ordering::SeqCst);
                    });
                    sim.schedule_at(SimTime::from_nanos(10_000_001), move |_| {
                        late.fetch_add(100, Ordering::SeqCst);
                    });
                    Quiet
                }
            })
            .collect();
        let outs = run_sharded::<Quiet, _>(&cfg, 5, builders);
        // Events at exactly the horizon ran; one nanosecond later did not.
        assert_eq!(fired.load(Ordering::SeqCst), 2);
        assert_eq!(outs, vec![10_000_000, 10_000_000]);
    }

    #[test]
    fn more_threads_than_domains_clamps() {
        let outs = ring_run(64, 2, 3);
        assert_eq!(outs.len(), 2);
        assert_eq!(outs, ring_run(1, 2, 3));
    }

    #[test]
    #[should_panic(expected = "positive lookahead")]
    fn zero_lookahead_is_rejected() {
        struct Quiet;
        impl ShardWorld for Quiet {
            type Msg = ();
            type Out = ();
            fn deliver(&mut self, _sim: &mut Sim, (): Self::Msg) {}
            fn finish(&mut self, _sim: &mut Sim) {}
        }
        let cfg = ShardConfig { threads: 1, lookahead: SimDuration::ZERO, until: None };
        let builders = vec![|_: &mut Sim, _: ShardLink<()>| Quiet];
        run_sharded::<Quiet, _>(&cfg, 0, builders);
    }
}
