//! A hierarchical timing-wheel priority queue for the event engine.
//!
//! [`EventWheel`] replaces a binary heap as the pending-event store. It
//! yields entries in exactly ascending `(at, seq)` order — the same total
//! order a heap gives, bit for bit — but pushes in O(1) and pops in
//! near-O(1), instead of paying an O(log n) sift on every operation. For a
//! metadata-service simulation holding thousands of pending timers and job
//! completions, the sift traffic is the single largest kernel cost, so this
//! is where the hot-path budget goes.
//!
//! # Structure
//!
//! Three wheel levels of 256 buckets each, with power-of-two bucket widths
//! (128 ns, 32.8 µs, 8.4 ms), cover ~2.1 s of virtual time ahead of the
//! cursor; entries beyond that wait in an unordered overflow list. A push
//! lands in the finest level whose window contains its instant: one shift,
//! one mask, a `Vec` push, and an occupancy-bitmap bit set.
//!
//! Popping drains one finest-level bucket at a time into `run`, sorted
//! once, and then pops from the end of the sorted run. Coarser buckets
//! cascade downward as the cursor reaches them (each entry moves at most
//! twice), and the occupancy bitmaps let the cursor jump straight over
//! empty buckets, so sparse queues don't pay a scan. Entries scheduled
//! *behind* the already-drained cursor — same-instant follow-ups, mostly —
//! go to a small `late` binary heap, and the pop path merges the two heads.
//!
//! # Determinism
//!
//! `(at, seq)` keys are unique (the engine hands out `seq` sequentially),
//! every bucket is sorted with the same total order before use, and no
//! iteration order depends on addresses or hashing — so the pop sequence is
//! a pure function of the push sequence, exactly as with the heap it
//! replaces. The differential tests in `tests/differential.rs` hold the
//! engine to that, comparing full transcripts against the boxed
//! [`baseline`](crate::baseline) engine.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// Bucket-width shifts per level: 2^7 ns, 2^15 ns, 2^23 ns.
const SHIFT: [u32; 3] = [7, 15, 23];
/// Buckets per level (and the matching index mask).
const BUCKETS: usize = 256;
/// Span of one full level window in nanoseconds: 2^15, 2^23, 2^31.
const SPAN: [u64; 3] = [1 << (SHIFT[0] + 8), 1 << (SHIFT[1] + 8), 1 << (SHIFT[2] + 8)];

/// A pending event: all `Copy`, 24 bytes, no drop glue — bucket moves and
/// sorts shuffle plain words and never run destructors or panic paths. The
/// `action` word is the engine's packed action payload; the wheel never
/// interprets it.
#[derive(Clone, Copy)]
pub(crate) struct Entry {
    pub(crate) at: SimTime,
    pub(crate) seq: u64,
    pub(crate) action: u64,
}

impl Entry {
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        (self.at, self.seq)
    }
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    // Inverted: the max end of a sorted slice and the max of a `BinaryHeap`
    // are then the *earliest* `(at, seq)`, which is what pop wants.
    fn cmp(&self, other: &Self) -> Ordering {
        other.key().cmp(&self.key())
    }
}

/// One wheel level: 256 buckets plus an occupancy bitmap so the cursor can
/// jump straight to the next non-empty bucket.
struct Level {
    buckets: Vec<Vec<Entry>>,
    occupied: [u64; BUCKETS / 64],
}

impl Level {
    fn new() -> Self {
        Level { buckets: (0..BUCKETS).map(|_| Vec::new()).collect(), occupied: [0; 4] }
    }

    #[inline]
    fn insert(&mut self, idx: usize, entry: Entry) {
        debug_assert!(idx < BUCKETS);
        self.buckets[idx].push(entry);
        self.occupied[idx / 64] |= 1 << (idx % 64);
    }

    /// Index of the first occupied bucket at or after `from`.
    fn next_occupied(&self, from: usize) -> Option<usize> {
        if from >= BUCKETS {
            return None;
        }
        let mut word = from / 64;
        let mut bits = self.occupied[word] & (!0u64 << (from % 64));
        loop {
            if bits != 0 {
                return Some(word * 64 + bits.trailing_zeros() as usize);
            }
            word += 1;
            if word == BUCKETS / 64 {
                return None;
            }
            bits = self.occupied[word];
        }
    }

    /// Empties bucket `idx`, clearing its occupancy bit, and returns a
    /// draining handle that leaves the bucket's capacity in place.
    fn drain(&mut self, idx: usize) -> std::vec::Drain<'_, Entry> {
        self.occupied[idx / 64] &= !(1 << (idx % 64));
        self.buckets[idx].drain(..)
    }
}

/// The engine's pending-event store. See the module docs for the layout.
pub(crate) struct EventWheel {
    /// The drained-and-sorted current bucket, descending by `(at, seq)`;
    /// the earliest entry is at the end, so the hot pop is `Vec::pop`.
    run: Vec<Entry>,
    /// Entries scheduled behind the cursor (`at` earlier than `run_hi`) —
    /// same-instant follow-ups scheduled by executing events. Merged with
    /// `run` head-to-head on pop; bursts stay O(log n) per entry.
    late: BinaryHeap<Entry>,
    /// Exclusive upper bound of the span already drained into `run`.
    run_hi: u64,
    /// Aligned start of each level's current window.
    window: [u64; 3],
    levels: [Level; 3],
    /// Entries at or beyond `window[2] + SPAN[2]`, unordered; partitioned
    /// into level 2 whenever the cursor exhausts all three wheels.
    overflow: Vec<Entry>,
    len: usize,
}

impl EventWheel {
    pub(crate) fn new() -> Self {
        EventWheel {
            run: Vec::new(),
            late: BinaryHeap::new(),
            run_hi: 0,
            window: [0; 3],
            levels: [Level::new(), Level::new(), Level::new()],
            overflow: Vec::new(),
            len: 0,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    #[inline]
    pub(crate) fn push(&mut self, entry: Entry) {
        self.len += 1;
        let t = entry.at.as_nanos();
        if t < self.run_hi {
            self.late.push(entry);
        } else if t < self.window[0] + SPAN[0] {
            let idx = ((t - self.window[0]) >> SHIFT[0]) as usize;
            self.levels[0].insert(idx, entry);
        } else if t < self.window[1] + SPAN[1] {
            let idx = ((t - self.window[1]) >> SHIFT[1]) as usize;
            self.levels[1].insert(idx, entry);
        } else if t < self.window[2] + SPAN[2] {
            let idx = ((t - self.window[2]) >> SHIFT[2]) as usize;
            self.levels[2].insert(idx, entry);
        } else {
            self.overflow.push(entry);
        }
    }

    /// Removes and returns the earliest `(at, seq)` entry.
    #[inline]
    pub(crate) fn pop(&mut self) -> Option<Entry> {
        loop {
            let run = self.run.last().map(Entry::key);
            let late = self.late.peek().map(Entry::key);
            match (run, late) {
                (Some(r), Some(l)) => {
                    self.len -= 1;
                    return if l < r { self.late.pop() } else { self.run.pop() };
                }
                (Some(_), None) => {
                    self.len -= 1;
                    return self.run.pop();
                }
                (None, Some(_)) => {
                    self.len -= 1;
                    return self.late.pop();
                }
                (None, None) => {
                    if !self.advance() {
                        return None;
                    }
                }
            }
        }
    }

    /// The instant of the earliest pending entry, if any. Advances the
    /// cursor internally (cheap, and pure bookkeeping) but pops nothing.
    pub(crate) fn peek_at(&mut self) -> Option<SimTime> {
        loop {
            let run = self.run.last().map(Entry::key);
            let late = self.late.peek().map(Entry::key);
            match (run, late) {
                (Some(r), Some(l)) => return Some(r.min(l).0),
                (Some(r), None) => return Some(r.0),
                (None, Some(l)) => return Some(l.0),
                (None, None) => {
                    if !self.advance() {
                        return None;
                    }
                }
            }
        }
    }

    /// Drains the next non-empty finest-level bucket into `run`, cascading
    /// coarser levels and the overflow list down as the cursor crosses
    /// their windows. Returns `false` when no entries remain anywhere.
    fn advance(&mut self) -> bool {
        debug_assert!(self.run.is_empty() && self.late.is_empty());
        loop {
            // Next occupied bucket at the finest level, at or after the
            // already-drained span.
            let idx0 = ((self.run_hi - self.window[0]) >> SHIFT[0]) as usize;
            if let Some(b) = self.levels[0].next_occupied(idx0) {
                self.run.extend(self.levels[0].drain(b));
                // The inverted `Ord` sorts descending; keys are unique, so
                // unstable sorting is still fully deterministic.
                self.run.sort_unstable();
                self.run_hi = self.window[0] + ((b as u64 + 1) << SHIFT[0]);
                return true;
            }
            // Finest window exhausted: cascade the next level-1 bucket.
            let idx1 = ((self.window[0] - self.window[1]) >> SHIFT[1]) as usize;
            if let Some(b) = self.levels[1].next_occupied(idx1) {
                let start = self.window[1] + ((b as u64) << SHIFT[1]);
                self.window[0] = start;
                self.run_hi = start;
                let level = &mut self.levels[..2];
                let (l0, l1) = level.split_at_mut(1);
                for entry in l1[0].drain(b) {
                    let idx = ((entry.at.as_nanos() - start) >> SHIFT[0]) as usize;
                    l0[0].insert(idx, entry);
                }
                continue;
            }
            // Level 1 exhausted: cascade the next level-2 bucket.
            let idx2 = ((self.window[1] - self.window[2]) >> SHIFT[2]) as usize;
            if let Some(b) = self.levels[2].next_occupied(idx2) {
                let start = self.window[2] + ((b as u64) << SHIFT[2]);
                self.window[1] = start;
                self.window[0] = start;
                self.run_hi = start;
                let level = &mut self.levels[1..];
                let (l1, l2) = level.split_at_mut(1);
                for entry in l2[0].drain(b) {
                    let idx = ((entry.at.as_nanos() - start) >> SHIFT[1]) as usize;
                    l1[0].insert(idx, entry);
                }
                continue;
            }
            // All wheels exhausted: open the window containing the
            // earliest overflow entry and partition overflow into level 2.
            if self.overflow.is_empty() {
                return false;
            }
            let min_at =
                self.overflow.iter().map(|e| e.at.as_nanos()).min().expect("overflow non-empty");
            let base = min_at & !(SPAN[2] - 1);
            self.window = [base; 3];
            self.run_hi = base;
            let horizon = base + SPAN[2];
            let mut keep = Vec::with_capacity(self.overflow.len());
            for entry in self.overflow.drain(..) {
                let t = entry.at.as_nanos();
                if t < horizon {
                    let idx = ((t - base) >> SHIFT[2]) as usize;
                    self.levels[2].insert(idx, entry);
                } else {
                    keep.push(entry);
                }
            }
            self.overflow = keep;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(at_ns: u64, seq: u64) -> Entry {
        Entry { at: SimTime::from_nanos(at_ns), seq, action: seq }
    }

    /// Deterministic pseudo-random u64 stream (SplitMix64).
    struct Mix(u64);
    impl Mix {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    fn drain_keys(wheel: &mut EventWheel) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        while let Some(e) = wheel.pop() {
            out.push((e.at.as_nanos(), e.seq));
        }
        out
    }

    #[test]
    fn pops_in_key_order_across_all_levels_and_overflow() {
        let mut wheel = EventWheel::new();
        let mut mix = Mix(7);
        let mut expect = Vec::new();
        for seq in 0..20_000u64 {
            // Spread instants from sub-bucket to far beyond the level-2
            // horizon (several seconds), exercising every routing arm.
            let exp = mix.next() % 34;
            let at = mix.next() % (1u64 << exp);
            wheel.push(entry(at, seq));
            expect.push((at, seq));
        }
        expect.sort_unstable();
        assert_eq!(wheel.len(), 20_000);
        assert_eq!(drain_keys(&mut wheel), expect);
        assert_eq!(wheel.len(), 0);
    }

    #[test]
    fn interleaved_push_pop_matches_reference_order() {
        let mut wheel = EventWheel::new();
        let mut reference = std::collections::BTreeSet::new();
        let mut mix = Mix(99);
        let mut seq = 0u64;
        let mut vnow = 0u64;
        for round in 0..5_000 {
            for _ in 0..(mix.next() % 4) {
                // Pushes never precede the virtual clock, as in the engine.
                let at = vnow + mix.next() % 3_000_000;
                wheel.push(entry(at, seq));
                reference.insert((at, seq));
                seq += 1;
            }
            if round % 3 != 0 {
                let got = wheel.pop().map(|e| (e.at.as_nanos(), e.seq));
                let want = reference.pop_first();
                assert_eq!(got, want);
                if let Some((at, _)) = want {
                    vnow = at;
                }
            }
        }
        let rest: Vec<_> = reference.into_iter().collect();
        assert_eq!(drain_keys(&mut wheel), rest);
    }

    #[test]
    fn same_instant_bursts_pop_in_seq_order() {
        let mut wheel = EventWheel::new();
        // A burst scheduled "during execution": run_hi has advanced past
        // the instant, so these all land in the late heap.
        wheel.push(entry(500, 0));
        assert_eq!(wheel.pop().map(|e| e.seq), Some(0));
        for seq in 1..200u64 {
            wheel.push(entry(500, seq));
        }
        let popped = drain_keys(&mut wheel);
        assert_eq!(popped, (1..200).map(|s| (500, s)).collect::<Vec<_>>());
    }

    #[test]
    fn peek_matches_pop_and_is_stable() {
        let mut wheel = EventWheel::new();
        let mut mix = Mix(3);
        for seq in 0..1_000u64 {
            wheel.push(entry(mix.next() % 50_000_000, seq));
        }
        while let Some(at) = wheel.peek_at() {
            assert_eq!(wheel.peek_at(), Some(at), "peek is idempotent");
            let popped = wheel.pop().expect("peeked entry pops");
            assert_eq!(popped.at, at);
        }
        assert_eq!(wheel.pop().map(|e| e.seq), None);
    }

    #[test]
    fn far_future_entries_survive_multiple_window_refills() {
        let mut wheel = EventWheel::new();
        // Three entries, each several level-2 windows apart.
        for (seq, secs) in [(0u64, 0u64), (1, 10), (2, 40), (3, 90)] {
            wheel.push(entry(secs * 1_000_000_000, seq));
        }
        assert_eq!(
            drain_keys(&mut wheel),
            vec![
                (0, 0),
                (10_000_000_000, 1),
                (40_000_000_000, 2),
                (90_000_000_000, 3)
            ]
        );
    }
}
