//! Monetary cost accounting.
//!
//! Two pricing models from the paper's evaluation (§5.2.5, Fig. 9):
//!
//! * **FaaS pay-per-use** — AWS Lambda prices: $0.0000166667 per GB-second
//!   billed at 1 ms granularity, plus $0.20 per million requests. A
//!   NameNode is billed only for intervals in which it is actively serving
//!   a request.
//! * **Serverful VM** — per-vCPU-hour pricing derived from the r5.4xlarge
//!   on-demand rate used in the evaluation (16 vCPU, 128 GB, ≈$1.008/h).
//!   The whole provisioned cluster is billed for every interval, idle or
//!   not. The paper's "simplified" λFS model bills instances while they are
//!   provisioned, which Fig. 9 shows roughly doubles λFS's cost.

use crate::metrics::Timeline;
use crate::time::{SimDuration, SimTime};

/// AWS-Lambda-style pay-per-use prices.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LambdaPricing {
    /// Dollars per GB-second of active execution.
    pub per_gb_second: f64,
    /// Dollars per one million invocations.
    pub per_million_requests: f64,
}

impl Default for LambdaPricing {
    /// The prices quoted in the paper's Fig. 9 caption.
    fn default() -> Self {
        LambdaPricing { per_gb_second: 0.000_016_666_7, per_million_requests: 0.20 }
    }
}

impl LambdaPricing {
    /// Cost of `active` execution time at `mem_gb` of configured memory.
    #[must_use]
    pub fn execution_cost(&self, active: SimDuration, mem_gb: f64) -> f64 {
        self.per_gb_second * mem_gb * active.as_secs_f64()
    }

    /// Cost of `n` invocations.
    #[must_use]
    pub fn request_cost(&self, n: u64) -> f64 {
        self.per_million_requests * n as f64 / 1e6
    }
}

/// Serverful VM prices.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VmPricing {
    /// Dollars per vCPU-hour.
    pub per_vcpu_hour: f64,
}

impl Default for VmPricing {
    /// r5.4xlarge on-demand: ≈$1.008/hour for 16 vCPU.
    fn default() -> Self {
        VmPricing { per_vcpu_hour: 1.008 / 16.0 }
    }
}

impl VmPricing {
    /// Cost of running `vcpus` for `span`.
    #[must_use]
    pub fn cost(&self, vcpus: f64, span: SimDuration) -> f64 {
        self.per_vcpu_hour * vcpus * span.as_secs_f64() / 3600.0
    }
}

/// Accumulates charges into a per-second timeline, from which cumulative
/// cost curves (Fig. 9) and per-second performance-per-cost series
/// (Fig. 8(c)) are derived.
///
/// # Examples
///
/// ```
/// use lambda_sim::{CostMeter, SimDuration, SimTime};
///
/// let mut meter = CostMeter::new();
/// meter.charge(SimTime::from_secs(0), 0.10);
/// meter.charge(SimTime::from_secs(2), 0.05);
/// assert!((meter.total() - 0.15).abs() < 1e-12);
/// let cumulative = meter.cumulative_per_second();
/// assert_eq!(cumulative.len(), 3);
/// assert!((cumulative[2] - 0.15).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct CostMeter {
    per_second: Timeline,
    requests: u64,
}

impl Default for CostMeter {
    fn default() -> Self {
        Self::new()
    }
}

impl CostMeter {
    /// Creates an empty meter.
    #[must_use]
    pub fn new() -> Self {
        CostMeter { per_second: Timeline::new(SimDuration::from_secs(1)), requests: 0 }
    }

    /// Adds a dollar charge at instant `at`.
    pub fn charge(&mut self, at: SimTime, usd: f64) {
        debug_assert!(usd >= 0.0, "negative charge");
        self.per_second.add(at, usd);
    }

    /// Adds a Lambda execution charge for `active` time at `mem_gb`.
    pub fn charge_lambda_execution(
        &mut self,
        at: SimTime,
        pricing: &LambdaPricing,
        active: SimDuration,
        mem_gb: f64,
    ) {
        self.charge(at, pricing.execution_cost(active, mem_gb));
    }

    /// Adds one Lambda request charge.
    pub fn charge_lambda_request(&mut self, at: SimTime, pricing: &LambdaPricing) {
        self.requests += 1;
        self.charge(at, pricing.request_cost(1));
    }

    /// Adds a VM charge for `vcpus` running over `span` ending at `at`.
    pub fn charge_vm(&mut self, at: SimTime, pricing: &VmPricing, vcpus: f64, span: SimDuration) {
        self.charge(at, pricing.cost(vcpus, span));
    }

    /// Total dollars charged.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.per_second.total()
    }

    /// Number of Lambda request charges recorded.
    #[must_use]
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Dollars charged in each one-second bucket.
    #[must_use]
    pub fn per_second(&self) -> Vec<f64> {
        self.per_second.buckets()
    }

    /// Cumulative dollars at the end of each one-second bucket (the Fig. 9
    /// curve).
    #[must_use]
    pub fn cumulative_per_second(&self) -> Vec<f64> {
        self.per_second.cumulative()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lambda_prices_match_paper_quote() {
        let p = LambdaPricing::default();
        // 1 GB for 1 second.
        assert!((p.execution_cost(SimDuration::from_secs(1), 1.0) - 0.0000166667).abs() < 1e-12);
        // $0.20 per 1M requests.
        assert!((p.request_cost(1_000_000) - 0.20).abs() < 1e-12);
    }

    #[test]
    fn vm_pricing_scales_linearly() {
        let p = VmPricing::default();
        // The evaluation's 512-vCPU HopsFS cluster for a 300 s workload
        // costs ≈ $2.69 at the r5.4xlarge rate; the paper reports $2.50
        // ("cumulative cost of HopsFS ... was $2.50"), i.e. the same
        // magnitude.
        let c = p.cost(512.0, SimDuration::from_secs(300));
        assert!((2.0..3.2).contains(&c), "512 vCPU x 300s cost {c}");
    }

    #[test]
    fn meter_accumulates_and_bucketizes() {
        let mut m = CostMeter::new();
        let p = LambdaPricing::default();
        m.charge_lambda_request(SimTime::from_secs(0), &p);
        m.charge_lambda_execution(SimTime::from_secs(1), &p, SimDuration::from_secs(10), 6.0);
        assert_eq!(m.requests(), 1);
        let buckets = m.per_second();
        assert_eq!(buckets.len(), 2);
        assert!(buckets[1] > buckets[0]);
        assert!((m.total() - (p.request_cost(1) + p.execution_cost(SimDuration::from_secs(10), 6.0))).abs() < 1e-12);
    }

    #[test]
    fn pay_per_use_cheaper_than_provisioned_for_idle_heavy_load() {
        // A NameNode with 6 GB active only 10% of the time is far cheaper
        // under Lambda pricing than a VM with equivalent resources.
        let lambda = LambdaPricing::default();
        let vm = VmPricing::default();
        let span = SimDuration::from_secs(300);
        let lambda_cost = lambda.execution_cost(span.mul_f64(0.1), 6.0);
        let vm_cost = vm.cost(5.0, span);
        assert!(lambda_cost < vm_cost / 5.0, "{lambda_cost} vs {vm_cost}");
    }
}
