//! Virtual time for the discrete-event simulation.
//!
//! The simulation clock is a monotonically non-decreasing count of
//! nanoseconds since the start of the run, represented by [`SimTime`].
//! Durations between instants are represented by [`SimDuration`].
//!
//! These are deliberately *not* `std::time` types: simulated time has no
//! relation to wall-clock time, and a dedicated newtype keeps the two from
//! being mixed up ([C-NEWTYPE]).
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulation clock, in nanoseconds since the run started.
///
/// # Examples
///
/// ```
/// use lambda_sim::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_millis(250);
/// assert_eq!(t.as_nanos(), 250_000_000);
/// assert!(t > SimTime::ZERO);
/// ```
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
///
/// # Examples
///
/// ```
/// use lambda_sim::SimDuration;
///
/// let d = SimDuration::from_millis(3) + SimDuration::from_micros(500);
/// assert_eq!(d.as_nanos(), 3_500_000);
/// assert_eq!(d.as_secs_f64(), 0.0035);
/// ```
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Builds an instant from raw nanoseconds since the start of the run.
    #[must_use]
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Builds an instant from whole seconds since the start of the run.
    #[must_use]
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000_000)
    }

    /// Raw nanoseconds since the start of the run.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the start of the run, as a float.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Milliseconds since the start of the run, as a float.
    #[must_use]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The duration elapsed since `earlier`, or [`SimDuration::ZERO`] if
    /// `earlier` is in the future.
    #[must_use]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a duration from nanoseconds.
    #[must_use]
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Builds a duration from microseconds.
    #[must_use]
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Builds a duration from milliseconds.
    #[must_use]
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Builds a duration from whole seconds.
    #[must_use]
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Builds a duration from fractional seconds.
    ///
    /// Negative or non-finite inputs are clamped to zero: simulated spans
    /// of time are never negative.
    #[must_use]
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs.is_finite() && secs > 0.0 {
            SimDuration((secs * 1e9).round() as u64)
        } else {
            SimDuration::ZERO
        }
    }

    /// Builds a duration from fractional milliseconds (clamping like
    /// [`SimDuration::from_secs_f64`]).
    #[must_use]
    pub fn from_millis_f64(millis: f64) -> Self {
        Self::from_secs_f64(millis / 1e3)
    }

    /// Raw nanoseconds.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Fractional milliseconds.
    #[must_use]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Whether this is the zero duration.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Scales the duration by a non-negative factor, saturating on overflow.
    #[must_use]
    pub fn mul_f64(self, factor: f64) -> Self {
        Self::from_secs_f64(self.as_secs_f64() * factor)
    }

    /// Integer division of the duration into `n` equal parts.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn div_u64(self, n: u64) -> Self {
        SimDuration(self.0 / n)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// The duration between two instants.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`; use
    /// [`SimTime::saturating_since`] when the ordering is uncertain.
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self >= rhs, "SimTime subtraction went negative");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<SimDuration> for SimDuration {
    type Output = f64;
    fn div(self, rhs: SimDuration) -> f64 {
        self.as_secs_f64() / rhs.as_secs_f64()
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t0 = SimTime::from_secs(2);
        let d = SimDuration::from_millis(1500);
        let t1 = t0 + d;
        assert_eq!(t1.as_nanos(), 3_500_000_000);
        assert_eq!(t1 - t0, d);
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1000));
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1000));
        assert_eq!(SimDuration::from_micros(1), SimDuration::from_nanos(1000));
        assert_eq!(SimDuration::from_secs_f64(0.25), SimDuration::from_millis(250));
    }

    #[test]
    fn negative_float_durations_clamp_to_zero() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NEG_INFINITY), SimDuration::ZERO);
    }

    #[test]
    fn saturating_since_handles_future_instants() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(5);
        assert_eq!(late.saturating_since(early), SimDuration::from_secs(4));
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
    }

    #[test]
    fn scaling_and_division() {
        let d = SimDuration::from_millis(10);
        assert_eq!(d.mul_f64(2.5), SimDuration::from_millis(25));
        assert_eq!(d * 3, SimDuration::from_millis(30));
        assert!((SimDuration::from_secs(1) / SimDuration::from_millis(250) - 4.0).abs() < 1e-12);
        assert_eq!(d.div_u64(4), SimDuration::from_micros(2500));
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_millis(5).to_string(), "5.000ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
        assert_eq!(SimTime::from_secs(1).to_string(), "t=1.000000s");
    }

    #[test]
    fn durations_sum() {
        let total: SimDuration =
            [SimDuration::from_millis(1), SimDuration::from_millis(2)].into_iter().sum();
        assert_eq!(total, SimDuration::from_millis(3));
    }
}
