//! The discrete-event simulation engine.
//!
//! [`Sim`] owns a virtual clock and a priority queue of pending events.
//! Simulation components live outside the engine as `Rc<RefCell<_>>` handles
//! captured by event closures, which keeps the engine generic and the whole
//! run single-threaded and deterministic.
//!
//! Events scheduled for the same instant fire in scheduling order (FIFO),
//! which — together with the seeded [`SimRng`] — makes runs reproducible
//! bit-for-bit.
//!
//! # Queue internals
//!
//! The pending-event store is a hierarchical timing wheel (see
//! [`wheel`](crate::wheel)) ordering 24-byte plain-old-data [`Entry`]
//! records — `(at, seq, packed action)` — rather than boxed closures:
//! O(1) pushes and near-O(1) pops in place of heap sifts. The [`Action`]
//! payload, bit-packed into one `u64`, is one of three variants:
//!
//! * **`Closure(slot)`** — a one-shot `FnOnce` parked in a slab
//!   (`Vec<Option<Event>>` plus a free list). The slot index is recycled the
//!   moment the event fires, so a steady-state workload touches the same few
//!   cache-hot slab cells instead of fresh heap allocations.
//! * **`Timer(slot)`** — a periodic `FnMut` tick (see [`every`]). The
//!   closure is boxed **once** at registration; every subsequent tick is
//!   re-armed by pushing a heap entry, with no allocation at all.
//! * **`Station { station, slot }`** — a queueing-station job completion
//!   (see [`crate::Station`]). The station is named by its index in the
//!   engine's station registry, so entries stay `Copy` — no `Rc`, no drop
//!   glue anywhere in the heap, and the sift loops compile to straight
//!   word moves. Firing is two slab lookups; no allocation on the
//!   completion path.
//!
//! The closure slab still boxes each one-shot closure (they are
//! heterogeneous types and this crate forbids `unsafe`), but the two hot
//! paths of a metadata-service simulation — station job completions and
//! periodic timers — never allocate per event.

use std::fmt;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};

use crate::rng::SimRng;
use crate::station::{Station, StationRef};
use crate::time::{SimDuration, SimTime};
use crate::wheel::{Entry, EventWheel};

/// A scheduled one-shot action.
pub type Event = Box<dyn FnOnce(&mut Sim)>;

/// Process-wide counter handing each [`Sim`] a distinct identity, so a
/// station can tell whether its cached registry index belongs to the engine
/// it is being scheduled on (see [`Sim::register_station`]).
static SIM_IDS: AtomicU64 = AtomicU64::new(0);

/// What to do when an [`Entry`] fires. Bit-packed into a single `u64` (see
/// [`Action::pack`]) so heap entries stay 24 bytes of `Copy` data.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Action {
    /// Run and free the one-shot closure parked in this slab slot.
    Closure(u32),
    /// Tick the periodic timer parked in this slab slot; re-arm if it
    /// returns `true`.
    Timer(u32),
    /// Complete the job in `slot` of the job slab of the station at
    /// `station` in the engine's registry.
    Station { station: u32, slot: u32 },
}

const TAG_CLOSURE: u64 = 0;
const TAG_TIMER: u64 = 1;
const TAG_STATION: u64 = 2;

impl Action {
    /// Packs the action into one word: a 2-bit tag, then the payload.
    /// Station entries carry two 31-bit indices, which bounds one engine at
    /// ~2 billion registered stations and in-flight jobs per station — far
    /// beyond anything a single-process simulation can hold anyway.
    #[inline]
    fn pack(self) -> u64 {
        match self {
            Action::Closure(slot) => TAG_CLOSURE | u64::from(slot) << 2,
            Action::Timer(slot) => TAG_TIMER | u64::from(slot) << 2,
            Action::Station { station, slot } => {
                debug_assert!(station < (1 << 31) && slot < (1 << 31));
                TAG_STATION | u64::from(station) << 2 | u64::from(slot) << 33
            }
        }
    }

    #[inline]
    fn unpack(word: u64) -> Self {
        match word & 0b11 {
            TAG_CLOSURE => Action::Closure((word >> 2) as u32),
            TAG_TIMER => Action::Timer((word >> 2) as u32),
            _ => Action::Station {
                station: (word >> 2 & ((1 << 31) - 1)) as u32,
                slot: (word >> 33) as u32,
            },
        }
    }
}

/// A registered periodic event (see [`every`]).
struct Timer {
    period: SimDuration,
    tick: Box<dyn FnMut(&mut Sim) -> bool>,
}

/// The discrete-event simulation engine: a virtual clock, an event queue,
/// and the run's random-number generator.
///
/// # Examples
///
/// ```
/// use lambda_sim::{Sim, SimDuration, SimTime};
/// use std::cell::Cell;
/// use std::rc::Rc;
///
/// let mut sim = Sim::new(0xC0FFEE);
/// let fired = Rc::new(Cell::new(false));
/// let flag = Rc::clone(&fired);
/// sim.schedule(SimDuration::from_millis(10), move |sim| {
///     assert_eq!(sim.now(), SimTime::from_nanos(10_000_000));
///     flag.set(true);
/// });
/// sim.run();
/// assert!(fired.get());
/// ```
pub struct Sim {
    now: SimTime,
    queue: EventWheel,
    next_seq: u64,
    rng: SimRng,
    executed: u64,
    /// Distinct per-engine identity (see [`SIM_IDS`]).
    id: u64,
    /// One-shot closure slab; indices are recycled through `free_closures`.
    closures: Vec<Option<Event>>,
    free_closures: Vec<u32>,
    /// Periodic-timer slab; indices are recycled through `free_timers`.
    timers: Vec<Option<Timer>>,
    free_timers: Vec<u32>,
    /// Stations that have scheduled completions on this engine; heap
    /// entries name them by index here so they stay `Copy`.
    stations: Vec<StationRef>,
}

impl fmt::Debug for Sim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Sim")
            .field("now", &self.now)
            .field("pending", &self.queue.len())
            .field("executed", &self.executed)
            .finish()
    }
}

impl Sim {
    /// Creates an engine with an empty queue, the clock at
    /// [`SimTime::ZERO`], and an RNG seeded with `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Sim {
            now: SimTime::ZERO,
            queue: EventWheel::new(),
            next_seq: 0,
            rng: SimRng::new(seed),
            executed: 0,
            id: SIM_IDS.fetch_add(1, AtomicOrdering::Relaxed),
            closures: Vec::new(),
            free_closures: Vec::new(),
            timers: Vec::new(),
            free_timers: Vec::new(),
            stations: Vec::new(),
        }
    }

    /// This engine's process-unique identity; stations use it to detect a
    /// stale cached registry index when reused across engines.
    pub(crate) fn instance_id(&self) -> u64 {
        self.id
    }

    /// Adds `station` to the registry and returns its index, which the
    /// station caches (keyed by [`Self::instance_id`]) and passes to
    /// [`Self::schedule_station`]. Registration is not an event: it consumes
    /// no sequence number and cannot perturb firing order.
    pub(crate) fn register_station(&mut self, station: StationRef) -> u32 {
        let id = u32::try_from(self.stations.len()).expect("station registry overflow");
        self.stations.push(station);
        id
    }

    /// The current virtual time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The run's random-number generator.
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    /// Number of events executed so far.
    #[must_use]
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Number of events still pending.
    #[must_use]
    pub fn events_pending(&self) -> usize {
        self.queue.len()
    }

    /// Pushes a heap entry at `at` (clamped to now), consuming one sequence
    /// number. All scheduling funnels through here so same-instant FIFO
    /// order is exactly the order of scheduling calls, whatever the variant.
    #[inline]
    fn push_entry(&mut self, at: SimTime, action: Action) {
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(Entry { at, seq, action: action.pack() });
    }

    /// Parks a one-shot closure in the slab and returns its slot.
    fn park_closure(&mut self, event: Event) -> u32 {
        match self.free_closures.pop() {
            Some(slot) => {
                debug_assert!(self.closures[slot as usize].is_none());
                self.closures[slot as usize] = Some(event);
                slot
            }
            None => {
                let slot = u32::try_from(self.closures.len()).expect("closure slab overflow");
                self.closures.push(Some(event));
                slot
            }
        }
    }

    /// Parks a periodic timer in the slab and returns its slot.
    fn park_timer(&mut self, timer: Timer) -> u32 {
        match self.free_timers.pop() {
            Some(slot) => {
                debug_assert!(self.timers[slot as usize].is_none());
                self.timers[slot as usize] = Some(timer);
                slot
            }
            None => {
                let slot = u32::try_from(self.timers.len()).expect("timer slab overflow");
                self.timers.push(Some(timer));
                slot
            }
        }
    }

    /// Schedules `event` to fire at the absolute instant `at`.
    ///
    /// Instants in the past are clamped to "now" (the event fires next, in
    /// FIFO order with other events at the current instant).
    pub fn schedule_at<F>(&mut self, at: SimTime, event: F)
    where
        F: FnOnce(&mut Sim) + 'static,
    {
        let slot = self.park_closure(Box::new(event));
        self.push_entry(at, Action::Closure(slot));
    }

    /// Schedules `event` to fire `after` from now.
    pub fn schedule<F>(&mut self, after: SimDuration, event: F)
    where
        F: FnOnce(&mut Sim) + 'static,
    {
        self.schedule_at(self.now + after, event);
    }

    /// Schedules completion of the job in `slot` of the registered station
    /// `station` after `service`. The allocation-free fast path used by
    /// [`Station::submit`](crate::Station::submit).
    #[inline]
    pub(crate) fn schedule_station(&mut self, service: SimDuration, station: u32, slot: u32) {
        self.push_entry(self.now + service, Action::Station { station, slot });
    }

    /// Executes the next pending event, advancing the clock to its instant.
    ///
    /// Returns `false` if the queue was empty.
    pub fn step(&mut self) -> bool {
        let Some(entry) = self.queue.pop() else {
            return false;
        };
        debug_assert!(entry.at >= self.now, "event queue time went backwards");
        self.now = entry.at;
        self.executed += 1;
        match Action::unpack(entry.action) {
            Action::Closure(slot) => {
                let event = self.closures[slot as usize]
                    .take()
                    .expect("closure slot fired twice");
                self.free_closures.push(slot);
                event(self);
            }
            Action::Timer(slot) => {
                // Move the timer out while it runs so the tick can freely
                // register new timers without aliasing its own slot.
                let mut timer =
                    self.timers[slot as usize].take().expect("timer slot fired twice");
                if (timer.tick)(self) {
                    let next = self.now + timer.period;
                    self.timers[slot as usize] = Some(timer);
                    self.push_entry(next, Action::Timer(slot));
                } else {
                    self.free_timers.push(slot);
                }
            }
            Action::Station { station, slot } => {
                let station = Rc::clone(&self.stations[station as usize]);
                Station::complete(&station, self, slot);
            }
        }
        true
    }

    /// The instant of the earliest pending event, if any. The conservative
    /// shard-synchronization protocol (see [`crate::shard`]) reads this to
    /// compute the global lower bound on virtual time.
    pub fn next_event_at(&mut self) -> Option<SimTime> {
        self.queue.peek_at()
    }

    /// Runs until the event queue drains.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Runs every event scheduled strictly before `deadline`, leaving the
    /// clock at the last executed event (it is *not* bumped to `deadline`).
    ///
    /// This is the shard-window primitive: a conservative synchronization
    /// window `[w, w + lookahead)` must execute events up to but excluding
    /// its end, because a message sent at `w` may be delivered at exactly
    /// `w + lookahead` and must order ahead of any local event there.
    pub fn run_before(&mut self, deadline: SimTime) {
        while let Some(at) = self.queue.peek_at() {
            if at >= deadline {
                break;
            }
            self.step();
        }
    }

    /// Runs all events scheduled at or before `deadline`, then advances the
    /// clock to `deadline` (even if the queue drained earlier).
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(at) = self.queue.peek_at() {
            if at > deadline {
                break;
            }
            self.step();
        }
        if self.now < deadline {
            self.now = deadline;
        }
    }

    /// Runs for `span` of virtual time from the current instant.
    pub fn run_for(&mut self, span: SimDuration) {
        let deadline = self.now + span;
        self.run_until(deadline);
    }
}

/// Schedules a closure to fire every `period`, starting at `first`, until it
/// returns `false` or the simulation ends.
///
/// This is the idiom for heartbeats, block reports, and workload-rate
/// resampling. The closure is boxed once at registration; each tick re-arms
/// by pushing a small heap entry with no further allocation.
///
/// # Examples
///
/// ```
/// use lambda_sim::{every, Sim, SimDuration, SimTime};
/// use std::cell::Cell;
/// use std::rc::Rc;
///
/// let mut sim = Sim::new(1);
/// let ticks = Rc::new(Cell::new(0u32));
/// let counter = Rc::clone(&ticks);
/// every(&mut sim, SimTime::ZERO, SimDuration::from_secs(1), move |_sim| {
///     counter.set(counter.get() + 1);
///     counter.get() < 5
/// });
/// sim.run();
/// assert_eq!(ticks.get(), 5);
/// ```
pub fn every<F>(sim: &mut Sim, first: SimTime, period: SimDuration, tick: F)
where
    F: FnMut(&mut Sim) -> bool + 'static,
{
    assert!(!period.is_zero(), "periodic event with zero period would not advance time");
    let slot = sim.park_timer(Timer { period, tick: Box::new(tick) });
    sim.push_entry(first, Action::Timer(slot));
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn events_fire_in_time_order() {
        let mut sim = Sim::new(0);
        let log = Rc::new(RefCell::new(Vec::new()));
        for (delay_ms, label) in [(30u64, "c"), (10, "a"), (20, "b")] {
            let log = Rc::clone(&log);
            sim.schedule(SimDuration::from_millis(delay_ms), move |_| {
                log.borrow_mut().push(label);
            });
        }
        sim.run();
        assert_eq!(*log.borrow(), vec!["a", "b", "c"]);
    }

    #[test]
    fn same_instant_events_fire_fifo() {
        let mut sim = Sim::new(0);
        let log = Rc::new(RefCell::new(Vec::new()));
        for i in 0..10 {
            let log = Rc::clone(&log);
            sim.schedule(SimDuration::from_millis(5), move |_| log.borrow_mut().push(i));
        }
        sim.run();
        assert_eq!(*log.borrow(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn events_can_schedule_events() {
        let mut sim = Sim::new(0);
        let hits = Rc::new(RefCell::new(0u32));
        let h = Rc::clone(&hits);
        sim.schedule(SimDuration::from_secs(1), move |sim| {
            *h.borrow_mut() += 1;
            let h2 = Rc::clone(&h);
            sim.schedule(SimDuration::from_secs(1), move |sim| {
                assert_eq!(sim.now(), SimTime::from_secs(2));
                *h2.borrow_mut() += 1;
            });
        });
        sim.run();
        assert_eq!(*hits.borrow(), 2);
        assert_eq!(sim.events_executed(), 2);
    }

    #[test]
    fn past_schedules_clamp_to_now() {
        let mut sim = Sim::new(0);
        let order = Rc::new(RefCell::new(Vec::new()));
        let o = Rc::clone(&order);
        sim.schedule(SimDuration::from_secs(1), move |sim| {
            let o2 = Rc::clone(&o);
            sim.schedule_at(SimTime::ZERO, move |sim| {
                assert_eq!(sim.now(), SimTime::from_secs(1));
                o2.borrow_mut().push("clamped");
            });
            o.borrow_mut().push("outer");
        });
        sim.run();
        assert_eq!(*order.borrow(), vec!["outer", "clamped"]);
    }

    #[test]
    fn run_until_stops_at_deadline_and_advances_clock() {
        let mut sim = Sim::new(0);
        let fired = Rc::new(RefCell::new(Vec::new()));
        for s in [1u64, 2, 3, 4] {
            let fired = Rc::clone(&fired);
            sim.schedule(SimDuration::from_secs(s), move |_| fired.borrow_mut().push(s));
        }
        sim.run_until(SimTime::from_secs(2));
        assert_eq!(*fired.borrow(), vec![1, 2]);
        assert_eq!(sim.now(), SimTime::from_secs(2));
        assert_eq!(sim.events_pending(), 2);
        // Queue drains before a later deadline: the clock still lands on it.
        sim.run_until(SimTime::from_secs(100));
        assert_eq!(sim.now(), SimTime::from_secs(100));
    }

    #[test]
    fn run_before_excludes_the_deadline_instant() {
        let mut sim = Sim::new(0);
        let fired = Rc::new(RefCell::new(Vec::new()));
        for ms in [5u64, 10, 15] {
            let fired = Rc::clone(&fired);
            sim.schedule(SimDuration::from_millis(ms), move |_| fired.borrow_mut().push(ms));
        }
        assert_eq!(sim.next_event_at(), Some(SimTime::from_nanos(5_000_000)));
        sim.run_before(SimTime::from_nanos(10_000_000));
        // The event at exactly the deadline must NOT run, and the clock
        // stays at the last executed event rather than the deadline.
        assert_eq!(*fired.borrow(), vec![5]);
        assert_eq!(sim.now(), SimTime::from_nanos(5_000_000));
        assert_eq!(sim.next_event_at(), Some(SimTime::from_nanos(10_000_000)));
        sim.run_before(SimTime::from_nanos(100_000_000));
        assert_eq!(*fired.borrow(), vec![5, 10, 15]);
        assert_eq!(sim.next_event_at(), None);
    }

    #[test]
    fn periodic_events_tick_until_cancelled() {
        let mut sim = Sim::new(0);
        let times = Rc::new(RefCell::new(Vec::new()));
        let t = Rc::clone(&times);
        every(&mut sim, SimTime::from_secs(1), SimDuration::from_secs(2), move |sim| {
            t.borrow_mut().push(sim.now().as_secs_f64() as u64);
            t.borrow().len() < 3
        });
        sim.run();
        assert_eq!(*times.borrow(), vec![1, 3, 5]);
    }

    #[test]
    fn determinism_across_identical_runs() {
        fn run_once() -> Vec<u64> {
            let mut sim = Sim::new(777);
            let log = Rc::new(RefCell::new(Vec::new()));
            for _ in 0..100 {
                let delay = SimDuration::from_nanos(sim.rng().gen_range(0..1_000_000));
                let log = Rc::clone(&log);
                sim.schedule(delay, move |sim| log.borrow_mut().push(sim.now().as_nanos()));
            }
            sim.run();
            let v = log.borrow().clone();
            v
        }
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn closure_slots_are_recycled() {
        let mut sim = Sim::new(0);
        // Schedule-and-fire in a chain: at any instant only one closure is
        // parked, so the slab should stay at a single slot.
        fn chain(sim: &mut Sim, left: u32) {
            if left > 0 {
                sim.schedule(SimDuration::from_millis(1), move |sim| chain(sim, left - 1));
            }
        }
        chain(&mut sim, 1000);
        sim.run();
        assert_eq!(sim.events_executed(), 1000);
        assert_eq!(sim.closures.len(), 1, "chained one-shot events should reuse one slot");
    }

    #[test]
    fn timer_slots_are_recycled_after_cancellation() {
        let mut sim = Sim::new(0);
        for round in 0..5u32 {
            let mut left = 3;
            every(
                &mut sim,
                SimTime::from_secs(u64::from(round) * 100),
                SimDuration::from_secs(1),
                move |_| {
                    left -= 1;
                    left > 0
                },
            );
            sim.run();
        }
        assert_eq!(sim.timers.len(), 1, "sequential timers should reuse one slot");
    }

    #[test]
    fn timer_tick_can_register_new_timers() {
        let mut sim = Sim::new(0);
        let ticks = Rc::new(RefCell::new(Vec::new()));
        let outer_log = Rc::clone(&ticks);
        every(&mut sim, SimTime::ZERO, SimDuration::from_secs(10), move |sim| {
            outer_log.borrow_mut().push("outer");
            let inner_log = Rc::clone(&outer_log);
            let mut inner_left = 2;
            every(sim, sim.now() + SimDuration::from_secs(1), SimDuration::from_secs(1), move |_| {
                inner_log.borrow_mut().push("inner");
                inner_left -= 1;
                inner_left > 0
            });
            outer_log.borrow().iter().filter(|s| **s == "outer").count() < 2
        });
        sim.run();
        assert_eq!(
            *ticks.borrow(),
            vec!["outer", "inner", "inner", "outer", "inner", "inner"]
        );
    }
}
