//! The discrete-event simulation engine.
//!
//! [`Sim`] owns a virtual clock and a priority queue of pending events. An
//! event is a one-shot closure that receives `&mut Sim` when it fires and may
//! schedule further events. Simulation components live outside the engine as
//! `Rc<RefCell<_>>` handles captured by the closures, which keeps the engine
//! generic and the whole run single-threaded and deterministic.
//!
//! Events scheduled for the same instant fire in scheduling order (FIFO),
//! which — together with the seeded [`SimRng`] — makes runs reproducible
//! bit-for-bit.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;

use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// A scheduled one-shot action.
pub type Event = Box<dyn FnOnce(&mut Sim)>;

struct Entry {
    at: SimTime,
    seq: u64,
    event: Event,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// The discrete-event simulation engine: a virtual clock, an event queue,
/// and the run's random-number generator.
///
/// # Examples
///
/// ```
/// use lambda_sim::{Sim, SimDuration, SimTime};
/// use std::cell::Cell;
/// use std::rc::Rc;
///
/// let mut sim = Sim::new(0xC0FFEE);
/// let fired = Rc::new(Cell::new(false));
/// let flag = Rc::clone(&fired);
/// sim.schedule(SimDuration::from_millis(10), move |sim| {
///     assert_eq!(sim.now(), SimTime::from_nanos(10_000_000));
///     flag.set(true);
/// });
/// sim.run();
/// assert!(fired.get());
/// ```
pub struct Sim {
    now: SimTime,
    queue: BinaryHeap<Entry>,
    next_seq: u64,
    rng: SimRng,
    executed: u64,
}

impl fmt::Debug for Sim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Sim")
            .field("now", &self.now)
            .field("pending", &self.queue.len())
            .field("executed", &self.executed)
            .finish()
    }
}

impl Sim {
    /// Creates an engine with an empty queue, the clock at
    /// [`SimTime::ZERO`], and an RNG seeded with `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Sim {
            now: SimTime::ZERO,
            queue: BinaryHeap::new(),
            next_seq: 0,
            rng: SimRng::new(seed),
            executed: 0,
        }
    }

    /// The current virtual time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The run's random-number generator.
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    /// Number of events executed so far.
    #[must_use]
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Number of events still pending.
    #[must_use]
    pub fn events_pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules `event` to fire at the absolute instant `at`.
    ///
    /// Instants in the past are clamped to "now" (the event fires next, in
    /// FIFO order with other events at the current instant).
    pub fn schedule_at<F>(&mut self, at: SimTime, event: F)
    where
        F: FnOnce(&mut Sim) + 'static,
    {
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(Entry { at, seq, event: Box::new(event) });
    }

    /// Schedules `event` to fire `after` from now.
    pub fn schedule<F>(&mut self, after: SimDuration, event: F)
    where
        F: FnOnce(&mut Sim) + 'static,
    {
        self.schedule_at(self.now + after, event);
    }

    /// Executes the next pending event, advancing the clock to its instant.
    ///
    /// Returns `false` if the queue was empty.
    pub fn step(&mut self) -> bool {
        match self.queue.pop() {
            Some(entry) => {
                debug_assert!(entry.at >= self.now, "event queue time went backwards");
                self.now = entry.at;
                self.executed += 1;
                (entry.event)(self);
                true
            }
            None => false,
        }
    }

    /// Runs until the event queue drains.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Runs all events scheduled at or before `deadline`, then advances the
    /// clock to `deadline` (even if the queue drained earlier).
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(entry) = self.queue.peek() {
            if entry.at > deadline {
                break;
            }
            self.step();
        }
        if self.now < deadline {
            self.now = deadline;
        }
    }

    /// Runs for `span` of virtual time from the current instant.
    pub fn run_for(&mut self, span: SimDuration) {
        let deadline = self.now + span;
        self.run_until(deadline);
    }
}

/// Schedules a closure to fire every `period`, starting at `first`, until it
/// returns `false` or the simulation ends.
///
/// This is the idiom for heartbeats, block reports, and workload-rate
/// resampling.
///
/// # Examples
///
/// ```
/// use lambda_sim::{every, Sim, SimDuration, SimTime};
/// use std::cell::Cell;
/// use std::rc::Rc;
///
/// let mut sim = Sim::new(1);
/// let ticks = Rc::new(Cell::new(0u32));
/// let counter = Rc::clone(&ticks);
/// every(&mut sim, SimTime::ZERO, SimDuration::from_secs(1), move |_sim| {
///     counter.set(counter.get() + 1);
///     counter.get() < 5
/// });
/// sim.run();
/// assert_eq!(ticks.get(), 5);
/// ```
pub fn every<F>(sim: &mut Sim, first: SimTime, period: SimDuration, tick: F)
where
    F: FnMut(&mut Sim) -> bool + 'static,
{
    assert!(!period.is_zero(), "periodic event with zero period would not advance time");
    fn arm<F>(sim: &mut Sim, at: SimTime, period: SimDuration, mut tick: F)
    where
        F: FnMut(&mut Sim) -> bool + 'static,
    {
        sim.schedule_at(at, move |sim| {
            if tick(sim) {
                let next = sim.now() + period;
                arm(sim, next, period, tick);
            }
        });
    }
    arm(sim, first, period, tick);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn events_fire_in_time_order() {
        let mut sim = Sim::new(0);
        let log = Rc::new(RefCell::new(Vec::new()));
        for (delay_ms, label) in [(30u64, "c"), (10, "a"), (20, "b")] {
            let log = Rc::clone(&log);
            sim.schedule(SimDuration::from_millis(delay_ms), move |_| {
                log.borrow_mut().push(label);
            });
        }
        sim.run();
        assert_eq!(*log.borrow(), vec!["a", "b", "c"]);
    }

    #[test]
    fn same_instant_events_fire_fifo() {
        let mut sim = Sim::new(0);
        let log = Rc::new(RefCell::new(Vec::new()));
        for i in 0..10 {
            let log = Rc::clone(&log);
            sim.schedule(SimDuration::from_millis(5), move |_| log.borrow_mut().push(i));
        }
        sim.run();
        assert_eq!(*log.borrow(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn events_can_schedule_events() {
        let mut sim = Sim::new(0);
        let hits = Rc::new(RefCell::new(0u32));
        let h = Rc::clone(&hits);
        sim.schedule(SimDuration::from_secs(1), move |sim| {
            *h.borrow_mut() += 1;
            let h2 = Rc::clone(&h);
            sim.schedule(SimDuration::from_secs(1), move |sim| {
                assert_eq!(sim.now(), SimTime::from_secs(2));
                *h2.borrow_mut() += 1;
            });
        });
        sim.run();
        assert_eq!(*hits.borrow(), 2);
        assert_eq!(sim.events_executed(), 2);
    }

    #[test]
    fn past_schedules_clamp_to_now() {
        let mut sim = Sim::new(0);
        let order = Rc::new(RefCell::new(Vec::new()));
        let o = Rc::clone(&order);
        sim.schedule(SimDuration::from_secs(1), move |sim| {
            let o2 = Rc::clone(&o);
            sim.schedule_at(SimTime::ZERO, move |sim| {
                assert_eq!(sim.now(), SimTime::from_secs(1));
                o2.borrow_mut().push("clamped");
            });
            o.borrow_mut().push("outer");
        });
        sim.run();
        assert_eq!(*order.borrow(), vec!["outer", "clamped"]);
    }

    #[test]
    fn run_until_stops_at_deadline_and_advances_clock() {
        let mut sim = Sim::new(0);
        let fired = Rc::new(RefCell::new(Vec::new()));
        for s in [1u64, 2, 3, 4] {
            let fired = Rc::clone(&fired);
            sim.schedule(SimDuration::from_secs(s), move |_| fired.borrow_mut().push(s));
        }
        sim.run_until(SimTime::from_secs(2));
        assert_eq!(*fired.borrow(), vec![1, 2]);
        assert_eq!(sim.now(), SimTime::from_secs(2));
        assert_eq!(sim.events_pending(), 2);
        // Queue drains before a later deadline: the clock still lands on it.
        sim.run_until(SimTime::from_secs(100));
        assert_eq!(sim.now(), SimTime::from_secs(100));
    }

    #[test]
    fn periodic_events_tick_until_cancelled() {
        let mut sim = Sim::new(0);
        let times = Rc::new(RefCell::new(Vec::new()));
        let t = Rc::clone(&times);
        every(&mut sim, SimTime::from_secs(1), SimDuration::from_secs(2), move |sim| {
            t.borrow_mut().push(sim.now().as_secs_f64() as u64);
            t.borrow().len() < 3
        });
        sim.run();
        assert_eq!(*times.borrow(), vec![1, 3, 5]);
    }

    #[test]
    fn determinism_across_identical_runs() {
        fn run_once() -> Vec<u64> {
            let mut sim = Sim::new(777);
            let log = Rc::new(RefCell::new(Vec::new()));
            for _ in 0..100 {
                let delay = SimDuration::from_nanos(sim.rng().gen_range(0..1_000_000));
                let log = Rc::clone(&log);
                sim.schedule(delay, move |sim| log.borrow_mut().push(sim.now().as_nanos()));
            }
            sim.run();
            let v = log.borrow().clone();
            v
        }
        assert_eq!(run_once(), run_once());
    }
}
