//! The pre-slab DES kernel, preserved verbatim as a reference
//! implementation.
//!
//! [`BoxedSim`] is the engine this crate shipped before the slab/enum
//! event-store rewrite (see the [`engine`](crate::engine) docs): every
//! scheduled event is a `Box<dyn FnOnce>` carried *inside* the binary-heap
//! entry, station completions box a fresh closure per job, and periodic
//! events re-box their tick closure every period. It exists for two
//! purposes:
//!
//! 1. **Differential testing** — the property tests in
//!    `crates/sim/tests/differential.rs` drive [`BoxedSim`] and
//!    [`Sim`](crate::Sim) with identical schedules and require identical
//!    firing orders, clocks, and station statistics.
//! 2. **Benchmarking** — `cargo run -p lambda-bench --bin bench_kernel`
//!    measures the slab kernel's event throughput against this baseline;
//!    the ≥2× acceptance floor in `results/BENCH_kernel.json` is relative
//!    to these types.
//!
//! Nothing outside tests and benches should use this module.

use std::cell::RefCell;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};
use std::fmt;
use std::rc::Rc;

use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// A scheduled one-shot action (boxed per event).
pub type BoxedEvent = Box<dyn FnOnce(&mut BoxedSim)>;

struct Entry {
    at: SimTime,
    seq: u64,
    event: BoxedEvent,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// The boxed-closure reference engine. API mirrors [`Sim`](crate::Sim).
pub struct BoxedSim {
    now: SimTime,
    queue: BinaryHeap<Entry>,
    next_seq: u64,
    rng: SimRng,
    executed: u64,
}

impl fmt::Debug for BoxedSim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BoxedSim")
            .field("now", &self.now)
            .field("pending", &self.queue.len())
            .field("executed", &self.executed)
            .finish()
    }
}

impl BoxedSim {
    /// Creates an engine with an empty queue, the clock at
    /// [`SimTime::ZERO`], and an RNG seeded with `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        BoxedSim {
            now: SimTime::ZERO,
            queue: BinaryHeap::new(),
            next_seq: 0,
            rng: SimRng::new(seed),
            executed: 0,
        }
    }

    /// The current virtual time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The run's random-number generator.
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    /// Number of events executed so far.
    #[must_use]
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Number of events still pending.
    #[must_use]
    pub fn events_pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules `event` to fire at the absolute instant `at` (clamped to
    /// now).
    pub fn schedule_at<F>(&mut self, at: SimTime, event: F)
    where
        F: FnOnce(&mut BoxedSim) + 'static,
    {
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(Entry { at, seq, event: Box::new(event) });
    }

    /// Schedules `event` to fire `after` from now.
    pub fn schedule<F>(&mut self, after: SimDuration, event: F)
    where
        F: FnOnce(&mut BoxedSim) + 'static,
    {
        self.schedule_at(self.now + after, event);
    }

    /// Executes the next pending event; `false` if the queue was empty.
    pub fn step(&mut self) -> bool {
        match self.queue.pop() {
            Some(entry) => {
                debug_assert!(entry.at >= self.now, "event queue time went backwards");
                self.now = entry.at;
                self.executed += 1;
                (entry.event)(self);
                true
            }
            None => false,
        }
    }

    /// Runs until the event queue drains.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Runs all events at or before `deadline`, then advances the clock to
    /// it.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(entry) = self.queue.peek() {
            if entry.at > deadline {
                break;
            }
            self.step();
        }
        if self.now < deadline {
            self.now = deadline;
        }
    }

    /// Runs for `span` of virtual time from the current instant.
    pub fn run_for(&mut self, span: SimDuration) {
        let deadline = self.now + span;
        self.run_until(deadline);
    }
}

/// Periodic events on the boxed engine: re-boxes `tick` every period, the
/// way [`every`](crate::every) used to.
pub fn boxed_every<F>(sim: &mut BoxedSim, first: SimTime, period: SimDuration, tick: F)
where
    F: FnMut(&mut BoxedSim) -> bool + 'static,
{
    assert!(!period.is_zero(), "periodic event with zero period would not advance time");
    fn arm<F>(sim: &mut BoxedSim, at: SimTime, period: SimDuration, mut tick: F)
    where
        F: FnMut(&mut BoxedSim) -> bool + 'static,
    {
        sim.schedule_at(at, move |sim| {
            if tick(sim) {
                let next = sim.now() + period;
                arm(sim, next, period, tick);
            }
        });
    }
    arm(sim, first, period, tick);
}

/// A shared handle to a [`BoxedStation`].
pub type BoxedStationRef = Rc<RefCell<BoxedStation>>;

struct BoxedJob {
    service: SimDuration,
    enqueued_at: SimTime,
    done: BoxedEvent,
}

/// The boxed-closure reference station: each completion schedules a freshly
/// boxed closure on [`BoxedSim`]. Statistics match
/// [`StationStats`](crate::StationStats) field-for-field.
#[derive(Debug)]
pub struct BoxedStation {
    servers: u32,
    busy: u32,
    waiting: VecDeque<BoxedJob>,
    stats: crate::StationStats,
}

impl fmt::Debug for BoxedJob {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BoxedJob").field("service", &self.service).finish()
    }
}

impl BoxedStation {
    /// Creates a station with `servers` parallel servers.
    ///
    /// # Panics
    ///
    /// Panics if `servers == 0`.
    #[must_use]
    pub fn new(servers: u32) -> BoxedStationRef {
        assert!(servers > 0, "a station needs at least one server");
        Rc::new(RefCell::new(BoxedStation {
            servers,
            busy: 0,
            waiting: VecDeque::new(),
            stats: crate::StationStats::default(),
        }))
    }

    /// Cumulative statistics.
    #[must_use]
    pub fn stats(&self) -> crate::StationStats {
        self.stats
    }

    /// Resizes the station (shrinking drains naturally).
    ///
    /// # Panics
    ///
    /// Panics if `servers == 0`.
    pub fn set_servers(&mut self, servers: u32) {
        assert!(servers > 0, "a station needs at least one server");
        self.servers = servers;
    }

    /// Submits a job requiring `service` time; `done` fires at completion.
    pub fn submit<F>(this: &BoxedStationRef, sim: &mut BoxedSim, service: SimDuration, done: F)
    where
        F: FnOnce(&mut BoxedSim) + 'static,
    {
        let job = BoxedJob { service, enqueued_at: sim.now(), done: Box::new(done) };
        let start = {
            let mut st = this.borrow_mut();
            st.stats.arrivals += 1;
            if st.busy < st.servers {
                st.busy += 1;
                Some(job)
            } else {
                st.waiting.push_back(job);
                None
            }
        };
        if let Some(job) = start {
            Self::run_job(this, sim, job);
        }
    }

    fn run_job(this: &BoxedStationRef, sim: &mut BoxedSim, job: BoxedJob) {
        let wait = sim.now().saturating_since(job.enqueued_at);
        this.borrow_mut().stats.wait_time += wait;
        let handle = Rc::clone(this);
        let BoxedJob { service, done, .. } = job;
        sim.schedule(service, move |sim| {
            let next = {
                let mut st = handle.borrow_mut();
                st.stats.completions += 1;
                st.stats.busy_time += service;
                st.busy -= 1;
                if st.busy < st.servers {
                    let next = st.waiting.pop_front();
                    if next.is_some() {
                        st.busy += 1;
                    }
                    next
                } else {
                    None
                }
            };
            done(sim);
            if let Some(next) = next {
                BoxedStation::run_job(&handle, sim, next);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    #[test]
    fn boxed_engine_matches_documented_semantics() {
        let mut sim = BoxedSim::new(0);
        let log = Rc::new(RefCell::new(Vec::new()));
        for i in 0..5 {
            let log = Rc::clone(&log);
            sim.schedule(SimDuration::from_millis(5), move |_| log.borrow_mut().push(i));
        }
        sim.run();
        assert_eq!(*log.borrow(), (0..5).collect::<Vec<_>>());
        assert_eq!(sim.events_executed(), 5);
    }

    #[test]
    fn boxed_station_serializes_jobs() {
        let mut sim = BoxedSim::new(0);
        let station = BoxedStation::new(1);
        let done = Rc::new(Cell::new(0u32));
        for _ in 0..3 {
            let done = Rc::clone(&done);
            BoxedStation::submit(&station, &mut sim, SimDuration::from_millis(10), move |_| {
                done.set(done.get() + 1);
            });
        }
        sim.run();
        assert_eq!(done.get(), 3);
        assert_eq!(sim.now().as_millis_f64(), 30.0);
        assert_eq!(station.borrow().stats().completions, 3);
    }

    #[test]
    fn boxed_every_ticks_until_cancelled() {
        let mut sim = BoxedSim::new(0);
        let ticks = Rc::new(Cell::new(0u32));
        let t = Rc::clone(&ticks);
        boxed_every(&mut sim, SimTime::ZERO, SimDuration::from_secs(1), move |_| {
            t.set(t.get() + 1);
            t.get() < 4
        });
        sim.run();
        assert_eq!(ticks.get(), 4);
    }
}
