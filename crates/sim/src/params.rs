//! Shared calibration constants.
//!
//! All performance-model constants that more than one system depends on live
//! here, in one place, so the calibration is auditable. Defaults reproduce
//! the magnitudes reported in the paper:
//!
//! * TCP RPC end-to-end ≈ 1–2 ms, HTTP (API-gateway) RPC ≈ 8–20 ms (§3.2);
//! * cold starts take "a non-negligible amount of time" — modeled ≈ 0.6–1.5 s;
//! * the NDB-backed metadata store saturates at tens of thousands of
//!   round-trip-bearing operations per second for a 4-data-node deployment
//!   (§5.2 reports HopsFS capping around 38–45 k ops/s with 512 NN vCPUs).

use crate::rng::Dist;
use crate::time::SimDuration;

/// Network latency model shared by λFS and all baselines.
#[derive(Debug, Clone, PartialEq)]
pub struct NetParams {
    /// One-way latency of a direct TCP hop between a client and a server
    /// (NameNode, MDS, …) inside one region/VPC.
    pub tcp_one_way: Dist,
    /// Extra end-to-end overhead of routing an invocation through the FaaS
    /// API gateway + invoker instead of a direct TCP hop.
    pub http_overhead: Dist,
    /// One-way latency between a server and the persistent metadata store
    /// (NDB / LevelDB host).
    pub store_one_way: Dist,
    /// One-way latency to the Coordinator (ZooKeeper/NDB) for liveness and
    /// INV/ACK traffic.
    pub coord_one_way: Dist,
}

impl NetParams {
    /// The conservative-synchronization lookahead this network model
    /// guarantees: the smallest latency floor across every link class. Any
    /// message crossing between simulation shards rides at least one such
    /// link, so a sharded run (see `lambda_sim::shard`) may safely execute
    /// each shard this far ahead of the global virtual-time lower bound.
    ///
    /// With the default calibration this is the Coordinator link's 0.2 ms
    /// floor. A model whose link distributions have no positive floor (e.g.
    /// exponential latencies) yields zero, which the shard runner rejects.
    #[must_use]
    pub fn conservative_lookahead(&self) -> SimDuration {
        let floor = self
            .tcp_one_way
            .lower_bound()
            .min(self.http_overhead.lower_bound())
            .min(self.store_one_way.lower_bound())
            .min(self.coord_one_way.lower_bound());
        SimDuration::from_secs_f64(floor.max(0.0))
    }
}

impl Default for NetParams {
    fn default() -> Self {
        NetParams {
            // TCP RPC end-to-end read latency is 1-2 ms in the paper; a read
            // is two hops plus service, so ~0.35-0.7 ms per hop.
            tcp_one_way: Dist::uniform_ms(0.35, 0.7),
            // HTTP RPCs are 8-20 ms end-to-end: gateway + invoker + routing.
            http_overhead: Dist::uniform_ms(6.5, 17.0),
            store_one_way: Dist::uniform_ms(0.25, 0.5),
            coord_one_way: Dist::uniform_ms(0.2, 0.45),
        }
    }
}

/// Service-time model for metadata work on a NameNode-class CPU.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuParams {
    /// CPU time to execute a cached (hit) read-class metadata op on one
    /// core.
    pub read_hit: Dist,
    /// CPU time for the NameNode-side portion of a miss/write op (excludes
    /// store round trips, which are charged separately).
    pub op_overhead: Dist,
    /// CPU time to serialize/deserialize and process one HTTP invocation
    /// (on top of the op itself).
    pub http_handling: Dist,
}

impl Default for CpuParams {
    fn default() -> Self {
        CpuParams {
            // ~0.5 ms of NameNode CPU per cached read: a 5-vCPU NameNode
            // then serves ≈ 10 k cached reads/sec, which is the per-NN
            // ceiling Figs. 11/14 imply (≈ 800 k reads/sec across ≈ 100
            // NameNodes at 512 vCPUs).
            read_hit: Dist::uniform_ms(0.25, 0.42),
            op_overhead: Dist::uniform_ms(0.08, 0.15),
            http_handling: Dist::uniform_ms(0.15, 0.35),
        }
    }
}

/// Capacity/service model for the persistent metadata store (the NDB
/// analog).
#[derive(Debug, Clone, PartialEq)]
pub struct StoreParams {
    /// Number of data shards (NDB data nodes). The evaluation used 4.
    pub shards: u32,
    /// Worker threads per shard able to execute row operations in parallel.
    pub workers_per_shard: u32,
    /// Service time of a primary-key row read on a shard worker.
    pub pk_read: Dist,
    /// Service time of a batched path-resolution read (one batch hits each
    /// involved shard once; HopsFS's INode-hint cache makes resolution one
    /// batch).
    pub batch_read: Dist,
    /// Incremental service time per additional row in a batch or scan.
    pub batch_row_extra: Dist,
    /// Service time of a row write (redo logging + replication included).
    pub row_write: Dist,
    /// Service time of taking-and-releasing a row write lock without
    /// modifying the row — the quiesce step of subtree operations
    /// (Appendix D, Phase 2).
    pub lock_round: Dist,
    /// Additional commit overhead per transaction.
    pub commit: Dist,
}

impl StoreParams {
    /// A store slowed down by `factor`: all service times multiplied, so
    /// total capacity divides by `factor`. Used to shrink experiments
    /// while preserving the load-to-capacity ratio (and therefore the
    /// figures' *shapes*).
    #[must_use]
    pub fn slowed(&self, factor: f64) -> StoreParams {
        StoreParams {
            shards: self.shards,
            workers_per_shard: self.workers_per_shard,
            pk_read: self.pk_read.scaled(factor),
            batch_read: self.batch_read.scaled(factor),
            batch_row_extra: self.batch_row_extra.scaled(factor),
            row_write: self.row_write.scaled(factor),
            lock_round: self.lock_round.scaled(factor),
            commit: self.commit.scaled(factor),
        }
    }
}

impl Default for StoreParams {
    fn default() -> Self {
        StoreParams {
            shards: 4,
            workers_per_shard: 10,
            // Calibrated so a 4-shard NDB saturates in the mid tens of
            // thousands of FS write ops/sec and low hundreds of thousands of
            // pk reads/sec, matching the ceilings visible in Figs. 8/11/12.
            pk_read: Dist::uniform_ms(0.10, 0.20),
            batch_read: Dist::uniform_ms(0.10, 0.20),
            batch_row_extra: Dist::uniform_ms(0.02, 0.04),
            row_write: Dist::uniform_ms(0.7, 1.2),
            lock_round: Dist::uniform_ms(0.6, 0.9),
            commit: Dist::uniform_ms(0.4, 0.7),
        }
    }
}

/// FaaS platform behavior constants (the OpenWhisk analog).
#[derive(Debug, Clone, PartialEq)]
pub struct FaasParams {
    /// Cold-start delay: container provisioning + JVM/NameNode boot.
    pub cold_start: Dist,
    /// Idle time after which a warm instance is reclaimed (scale-in).
    pub idle_reclaim_after: SimDuration,
    /// Interval at which the platform re-evaluates reclamation.
    pub reclaim_scan_every: SimDuration,
}

impl Default for FaasParams {
    fn default() -> Self {
        FaasParams {
            cold_start: Dist::uniform(0.6, 1.5),
            idle_reclaim_after: SimDuration::from_secs(30),
            reclaim_scan_every: SimDuration::from_secs(5),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    #[test]
    fn default_net_params_reproduce_paper_latency_bands() {
        let mut rng = SimRng::new(5);
        let net = NetParams::default();
        let cpu = CpuParams::default();
        for _ in 0..1000 {
            // TCP read: two hops + hit service => ~1-2 ms.
            let tcp = rng.sample(&net.tcp_one_way) * 2.0 + rng.sample(&cpu.read_hit);
            assert!((0.0007..0.0021).contains(&tcp), "tcp e2e {tcp}");
            // HTTP read: the same plus gateway overhead => ~8-20 ms.
            let http = tcp + rng.sample(&net.http_overhead) + rng.sample(&cpu.http_handling);
            assert!((0.007..0.021).contains(&http), "http e2e {http}");
        }
    }

    #[test]
    fn store_defaults_have_expected_shape() {
        let s = StoreParams::default();
        assert_eq!(s.shards, 4);
        // Writes are several times slower than reads, which is what caps
        // write throughput in Figs. 11/12.
        assert!(s.row_write.mean() > 4.0 * s.pk_read.mean());
    }

    #[test]
    fn conservative_lookahead_is_the_smallest_link_floor() {
        let net = NetParams::default();
        let l = net.conservative_lookahead();
        // The default floor is the Coordinator link's 0.2 ms lower bound.
        assert_eq!(l, SimDuration::from_secs_f64(0.2 / 1e3));
        // No link class can undercut the lookahead.
        for d in [&net.tcp_one_way, &net.http_overhead, &net.store_one_way, &net.coord_one_way] {
            assert!(d.lower_bound() >= l.as_secs_f64());
        }
        // A floorless link collapses the lookahead to zero.
        let floorless = NetParams { coord_one_way: Dist::Exp { mean: 0.001 }, ..net };
        assert!(floorless.conservative_lookahead().is_zero());
    }

    #[test]
    fn cold_start_is_slow_relative_to_rpc() {
        let f = FaasParams::default();
        let n = NetParams::default();
        assert!(f.cold_start.mean() > 20.0 * n.http_overhead.mean());
    }
}
