//! Multi-server FIFO queueing stations.
//!
//! A [`Station`] models a compute resource with `k` parallel servers (≈
//! vCPUs): a NameNode instance, one NDB shard, a CephFS MDS, an IndexFS
//! server. Work is submitted with a service time; if a server is free the
//! job starts immediately, otherwise it waits in FIFO order. Saturation,
//! queueing delay, and throughput ceilings in the reproduced experiments all
//! emerge from these stations.
//!
//! # Completion fast path
//!
//! Jobs live in a slab (`Vec<Option<Job>>` plus a free list) inside the
//! station; the engine's queue holds only `(station, slot)` completion
//! entries (see the [`engine`](crate::engine) docs). Submitting boxes the
//! caller's `done` callback once; starting, completing, and dequeueing a job
//! move slot indices around and never allocate.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::rc::Rc;

use crate::engine::{Event, Sim};
use crate::time::{SimDuration, SimTime};

/// A shared handle to a station.
pub type StationRef = Rc<RefCell<Station>>;

struct Job {
    service: SimDuration,
    enqueued_at: SimTime,
    done: Event,
}

impl fmt::Debug for Job {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Job").field("service", &self.service).finish()
    }
}

/// Cumulative occupancy statistics for a station.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StationStats {
    /// Jobs submitted.
    pub arrivals: u64,
    /// Jobs completed.
    pub completions: u64,
    /// Total server-busy time integrated over the run.
    pub busy_time: SimDuration,
    /// Total time jobs spent waiting in the queue (excludes service).
    pub wait_time: SimDuration,
}

impl StationStats {
    /// Mean queueing delay per completed job.
    #[must_use]
    pub fn mean_wait(&self) -> SimDuration {
        if self.completions == 0 {
            SimDuration::ZERO
        } else {
            self.wait_time.div_u64(self.completions)
        }
    }

    /// Average utilization of the station's servers over `elapsed` with
    /// `servers` servers, in `[0, 1]`.
    #[must_use]
    pub fn utilization(&self, servers: u32, elapsed: SimDuration) -> f64 {
        if elapsed.is_zero() || servers == 0 {
            0.0
        } else {
            (self.busy_time.as_secs_f64() / (servers as f64 * elapsed.as_secs_f64())).min(1.0)
        }
    }
}

/// A `k`-server FIFO queueing station.
///
/// # Examples
///
/// ```
/// use lambda_sim::{Sim, SimDuration, Station};
/// use std::cell::Cell;
/// use std::rc::Rc;
///
/// let mut sim = Sim::new(0);
/// let station = Station::new("worker", 1);
/// let done = Rc::new(Cell::new(0u32));
/// for _ in 0..3 {
///     let done = Rc::clone(&done);
///     Station::submit(&station, &mut sim, SimDuration::from_millis(10), move |_| {
///         done.set(done.get() + 1);
///     });
/// }
/// sim.run();
/// assert_eq!(done.get(), 3);
/// // One server, three 10ms jobs: finishes at t = 30ms.
/// assert_eq!(sim.now().as_millis_f64(), 30.0);
/// ```
#[derive(Debug)]
pub struct Station {
    name: String,
    servers: u32,
    busy: u32,
    /// FIFO of slab slots waiting for a server.
    waiting: VecDeque<u32>,
    /// Job slab; indices are recycled through `free`.
    jobs: Vec<Option<Job>>,
    free: Vec<u32>,
    stats: StationStats,
    /// Cached `(engine identity, registry index)` from the last engine this
    /// station scheduled on; lets completion entries stay `Copy` (see the
    /// [`engine`](crate::engine) docs). Re-registers if the station is
    /// reused on a different engine.
    kernel_id: Option<(u64, u32)>,
}

impl Station {
    /// Creates a station with `servers` parallel servers.
    ///
    /// # Panics
    ///
    /// Panics if `servers == 0`.
    #[must_use]
    pub fn new(name: impl Into<String>, servers: u32) -> StationRef {
        assert!(servers > 0, "a station needs at least one server");
        Rc::new(RefCell::new(Station {
            name: name.into(),
            servers,
            busy: 0,
            waiting: VecDeque::new(),
            jobs: Vec::new(),
            free: Vec::new(),
            stats: StationStats::default(),
            kernel_id: None,
        }))
    }

    /// The station's name (for diagnostics).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The number of parallel servers.
    #[must_use]
    pub fn servers(&self) -> u32 {
        self.servers
    }

    /// Servers currently busy.
    #[must_use]
    pub fn busy(&self) -> u32 {
        self.busy
    }

    /// Jobs waiting for a server.
    #[must_use]
    pub fn queue_len(&self) -> usize {
        self.waiting.len()
    }

    /// In-flight load: busy servers plus queued jobs.
    #[must_use]
    pub fn load(&self) -> usize {
        self.busy as usize + self.waiting.len()
    }

    /// Cumulative statistics.
    #[must_use]
    pub fn stats(&self) -> StationStats {
        self.stats
    }

    /// Resizes the station. Shrinking never interrupts running jobs; excess
    /// busy servers drain naturally as their jobs complete.
    ///
    /// # Panics
    ///
    /// Panics if `servers == 0`.
    pub fn set_servers(&mut self, servers: u32) {
        assert!(servers > 0, "a station needs at least one server");
        self.servers = servers;
    }

    /// Parks a job in the slab and returns its slot.
    fn park(&mut self, job: Job) -> u32 {
        match self.free.pop() {
            Some(slot) => {
                debug_assert!(self.jobs[slot as usize].is_none());
                self.jobs[slot as usize] = Some(job);
                slot
            }
            None => {
                let slot = u32::try_from(self.jobs.len()).expect("job slab overflow");
                self.jobs.push(Some(job));
                slot
            }
        }
    }

    /// Resolves this station's registry index on `sim`, registering on
    /// first use (or again if the station moved to a different engine).
    #[inline]
    fn registry_id(st: &mut Station, this: &StationRef, sim: &mut Sim) -> u32 {
        match st.kernel_id {
            Some((engine, id)) if engine == sim.instance_id() => id,
            _ => {
                let id = sim.register_station(Rc::clone(this));
                st.kernel_id = Some((sim.instance_id(), id));
                id
            }
        }
    }

    /// Submits a job requiring `service` time; `done` fires at completion.
    pub fn submit<F>(this: &StationRef, sim: &mut Sim, service: SimDuration, done: F)
    where
        F: FnOnce(&mut Sim) + 'static,
    {
        let job = Job { service, enqueued_at: sim.now(), done: Box::new(done) };
        let mut st = this.borrow_mut();
        let slot = st.park(job);
        st.stats.arrivals += 1;
        if st.busy < st.servers {
            // Immediate start: the job never waits, so the wait-time
            // accounting a queued start needs is skipped entirely.
            st.busy += 1;
            let id = Self::registry_id(&mut st, this, sim);
            drop(st);
            sim.schedule_station(service, id, slot);
        } else {
            st.waiting.push_back(slot);
        }
    }

    /// Starts the queued job in `slot` on a server already accounted as
    /// busy, charging the time it waited.
    fn start(this: &StationRef, sim: &mut Sim, slot: u32) {
        let mut st = this.borrow_mut();
        let job = st.jobs[slot as usize].as_ref().expect("started job is parked");
        let wait = sim.now().saturating_since(job.enqueued_at);
        let service = job.service;
        st.stats.wait_time += wait;
        let id = Self::registry_id(&mut st, this, sim);
        drop(st);
        sim.schedule_station(service, id, slot);
    }

    /// Completes the job in `slot`: accounting, the `done` callback, then
    /// starting the next queued job (in that order — callbacks observe the
    /// free server, and the next job's completion is scheduled after any
    /// events the callback itself schedules at this instant).
    pub(crate) fn complete(this: &StationRef, sim: &mut Sim, slot: u32) {
        let (job, next) = {
            let mut st = this.borrow_mut();
            let job = st.jobs[slot as usize].take().expect("completed job is parked");
            st.free.push(slot);
            st.stats.completions += 1;
            st.stats.busy_time += job.service;
            st.busy -= 1;
            let next = if st.busy < st.servers {
                let next = st.waiting.pop_front();
                if next.is_some() {
                    st.busy += 1;
                }
                next
            } else {
                None
            };
            (job, next)
        };
        (job.done)(sim);
        if let Some(next) = next {
            Self::start(this, sim, next);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    fn count_jobs(station: &StationRef, sim: &mut Sim, n: u32, service_ms: u64) -> Rc<Cell<u32>> {
        let done = Rc::new(Cell::new(0u32));
        for _ in 0..n {
            let done = Rc::clone(&done);
            Station::submit(station, sim, SimDuration::from_millis(service_ms), move |_| {
                done.set(done.get() + 1);
            });
        }
        done
    }

    #[test]
    fn serial_station_serializes_jobs() {
        let mut sim = Sim::new(0);
        let station = Station::new("s", 1);
        let done = count_jobs(&station, &mut sim, 5, 10);
        sim.run();
        assert_eq!(done.get(), 5);
        assert_eq!(sim.now().as_millis_f64(), 50.0);
        let stats = station.borrow().stats();
        assert_eq!(stats.completions, 5);
        assert_eq!(stats.busy_time, SimDuration::from_millis(50));
        // Jobs 2..5 waited 10, 20, 30, 40 ms respectively.
        assert_eq!(stats.wait_time, SimDuration::from_millis(100));
    }

    #[test]
    fn parallel_servers_run_concurrently() {
        let mut sim = Sim::new(0);
        let station = Station::new("s", 4);
        let done = count_jobs(&station, &mut sim, 4, 10);
        sim.run();
        assert_eq!(done.get(), 4);
        assert_eq!(sim.now().as_millis_f64(), 10.0);
        assert_eq!(station.borrow().stats().wait_time, SimDuration::ZERO);
    }

    #[test]
    fn mixed_load_queues_in_fifo_order() {
        let mut sim = Sim::new(0);
        let station = Station::new("s", 2);
        let order = Rc::new(RefCell::new(Vec::new()));
        for (i, ms) in [(0, 30u64), (1, 10), (2, 5), (3, 5)] {
            let order = Rc::clone(&order);
            Station::submit(&station, &mut sim, SimDuration::from_millis(ms), move |sim| {
                order.borrow_mut().push((i, sim.now().as_millis_f64() as u64));
            });
        }
        sim.run();
        // Servers: job0 (0-30), job1 (0-10); job2 starts at 10 (10-15);
        // job3 starts at 15 (15-20).
        assert_eq!(*order.borrow(), vec![(1, 10), (2, 15), (3, 20), (0, 30)]);
    }

    #[test]
    fn utilization_reflects_busy_fraction() {
        let mut sim = Sim::new(0);
        let station = Station::new("s", 2);
        let _ = count_jobs(&station, &mut sim, 2, 10);
        sim.run_until(SimTime::from_nanos(40_000_000));
        let stats = station.borrow().stats();
        // 2 servers busy for 10 of 40 ms -> 25% utilization.
        let util = stats.utilization(2, SimDuration::from_millis(40));
        assert!((util - 0.25).abs() < 1e-9, "utilization {util}");
    }

    #[test]
    fn shrinking_drains_gracefully() {
        let mut sim = Sim::new(0);
        let station = Station::new("s", 2);
        let done = count_jobs(&station, &mut sim, 4, 10);
        station.borrow_mut().set_servers(1);
        sim.run();
        assert_eq!(done.get(), 4);
        // Two jobs started immediately (t=10); the remaining two ran serially
        // on the single remaining server: t=20, t=30.
        assert_eq!(sim.now().as_millis_f64(), 30.0);
    }

    #[test]
    fn growing_mid_run_admits_queued_work_as_jobs_complete() {
        let mut sim = Sim::new(0);
        let station = Station::new("s", 1);
        let done = count_jobs(&station, &mut sim, 3, 10);
        // Grow after the first job completes; the pop-on-completion path
        // admits one queued job per completion, so the backlog still drains.
        let grown = Rc::clone(&station);
        sim.schedule(SimDuration::from_millis(1), move |_| {
            grown.borrow_mut().set_servers(4);
        });
        sim.run();
        assert_eq!(done.get(), 3);
        assert!(sim.now().as_millis_f64() <= 30.0);
    }

    #[test]
    fn mean_wait_is_zero_for_unloaded_station() {
        let stats = StationStats::default();
        assert_eq!(stats.mean_wait(), SimDuration::ZERO);
        assert_eq!(stats.utilization(4, SimDuration::ZERO), 0.0);
    }

    #[test]
    fn job_slots_are_recycled_under_steady_load() {
        let mut sim = Sim::new(0);
        let station = Station::new("s", 1);
        // A closed loop of one job at a time: the slab never needs more
        // than one slot no matter how many jobs flow through.
        fn resubmit(station: &StationRef, sim: &mut Sim, left: u32) {
            if left == 0 {
                return;
            }
            let again = Rc::clone(station);
            Station::submit(station, sim, SimDuration::from_millis(1), move |sim| {
                resubmit(&again, sim, left - 1);
            });
        }
        resubmit(&station, &mut sim, 500);
        sim.run();
        let st = station.borrow();
        assert_eq!(st.stats().completions, 500);
        assert_eq!(st.jobs.len(), 1, "steady single-job load should reuse one slot");
    }
}
