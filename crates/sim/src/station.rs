//! Multi-server FIFO queueing stations.
//!
//! A [`Station`] models a compute resource with `k` parallel servers (≈
//! vCPUs): a NameNode instance, one NDB shard, a CephFS MDS, an IndexFS
//! server. Work is submitted with a service time; if a server is free the
//! job starts immediately, otherwise it waits in FIFO order. Saturation,
//! queueing delay, and throughput ceilings in the reproduced experiments all
//! emerge from these stations.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::rc::Rc;

use crate::engine::{Event, Sim};
use crate::time::{SimDuration, SimTime};

/// A shared handle to a station.
pub type StationRef = Rc<RefCell<Station>>;

struct Job {
    service: SimDuration,
    enqueued_at: SimTime,
    done: Event,
}

impl fmt::Debug for Job {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Job").field("service", &self.service).finish()
    }
}

/// Cumulative occupancy statistics for a station.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StationStats {
    /// Jobs submitted.
    pub arrivals: u64,
    /// Jobs completed.
    pub completions: u64,
    /// Total server-busy time integrated over the run.
    pub busy_time: SimDuration,
    /// Total time jobs spent waiting in the queue (excludes service).
    pub wait_time: SimDuration,
}

impl StationStats {
    /// Mean queueing delay per completed job.
    #[must_use]
    pub fn mean_wait(&self) -> SimDuration {
        if self.completions == 0 {
            SimDuration::ZERO
        } else {
            self.wait_time.div_u64(self.completions)
        }
    }

    /// Average utilization of the station's servers over `elapsed` with
    /// `servers` servers, in `[0, 1]`.
    #[must_use]
    pub fn utilization(&self, servers: u32, elapsed: SimDuration) -> f64 {
        if elapsed.is_zero() || servers == 0 {
            0.0
        } else {
            (self.busy_time.as_secs_f64() / (servers as f64 * elapsed.as_secs_f64())).min(1.0)
        }
    }
}

/// A `k`-server FIFO queueing station.
///
/// # Examples
///
/// ```
/// use lambda_sim::{Sim, SimDuration, Station};
/// use std::cell::Cell;
/// use std::rc::Rc;
///
/// let mut sim = Sim::new(0);
/// let station = Station::new("worker", 1);
/// let done = Rc::new(Cell::new(0u32));
/// for _ in 0..3 {
///     let done = Rc::clone(&done);
///     Station::submit(&station, &mut sim, SimDuration::from_millis(10), move |_| {
///         done.set(done.get() + 1);
///     });
/// }
/// sim.run();
/// assert_eq!(done.get(), 3);
/// // One server, three 10ms jobs: finishes at t = 30ms.
/// assert_eq!(sim.now().as_millis_f64(), 30.0);
/// ```
#[derive(Debug)]
pub struct Station {
    name: String,
    servers: u32,
    busy: u32,
    waiting: VecDeque<Job>,
    stats: StationStats,
}

impl Station {
    /// Creates a station with `servers` parallel servers.
    ///
    /// # Panics
    ///
    /// Panics if `servers == 0`.
    #[must_use]
    pub fn new(name: impl Into<String>, servers: u32) -> StationRef {
        assert!(servers > 0, "a station needs at least one server");
        Rc::new(RefCell::new(Station {
            name: name.into(),
            servers,
            busy: 0,
            waiting: VecDeque::new(),
            stats: StationStats::default(),
        }))
    }

    /// The station's name (for diagnostics).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The number of parallel servers.
    #[must_use]
    pub fn servers(&self) -> u32 {
        self.servers
    }

    /// Servers currently busy.
    #[must_use]
    pub fn busy(&self) -> u32 {
        self.busy
    }

    /// Jobs waiting for a server.
    #[must_use]
    pub fn queue_len(&self) -> usize {
        self.waiting.len()
    }

    /// In-flight load: busy servers plus queued jobs.
    #[must_use]
    pub fn load(&self) -> usize {
        self.busy as usize + self.waiting.len()
    }

    /// Cumulative statistics.
    #[must_use]
    pub fn stats(&self) -> StationStats {
        self.stats
    }

    /// Resizes the station. Shrinking never interrupts running jobs; excess
    /// busy servers drain naturally as their jobs complete.
    ///
    /// # Panics
    ///
    /// Panics if `servers == 0`.
    pub fn set_servers(&mut self, servers: u32) {
        assert!(servers > 0, "a station needs at least one server");
        self.servers = servers;
    }

    /// Submits a job requiring `service` time; `done` fires at completion.
    pub fn submit<F>(this: &StationRef, sim: &mut Sim, service: SimDuration, done: F)
    where
        F: FnOnce(&mut Sim) + 'static,
    {
        let job = Job { service, enqueued_at: sim.now(), done: Box::new(done) };
        let start = {
            let mut st = this.borrow_mut();
            st.stats.arrivals += 1;
            if st.busy < st.servers {
                st.busy += 1;
                Some(job)
            } else {
                st.waiting.push_back(job);
                None
            }
        };
        if let Some(job) = start {
            Self::run_job(this, sim, job);
        }
    }

    /// Starts `job` on a server already accounted as busy.
    fn run_job(this: &StationRef, sim: &mut Sim, job: Job) {
        let wait = sim.now().saturating_since(job.enqueued_at);
        this.borrow_mut().stats.wait_time += wait;
        let handle = Rc::clone(this);
        let Job { service, done, .. } = job;
        sim.schedule(service, move |sim| {
            let next = {
                let mut st = handle.borrow_mut();
                st.stats.completions += 1;
                st.stats.busy_time += service;
                st.busy -= 1;
                if st.busy < st.servers {
                    let next = st.waiting.pop_front();
                    if next.is_some() {
                        st.busy += 1;
                    }
                    next
                } else {
                    None
                }
            };
            done(sim);
            if let Some(next) = next {
                Station::run_job(&handle, sim, next);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    fn count_jobs(station: &StationRef, sim: &mut Sim, n: u32, service_ms: u64) -> Rc<Cell<u32>> {
        let done = Rc::new(Cell::new(0u32));
        for _ in 0..n {
            let done = Rc::clone(&done);
            Station::submit(station, sim, SimDuration::from_millis(service_ms), move |_| {
                done.set(done.get() + 1);
            });
        }
        done
    }

    #[test]
    fn serial_station_serializes_jobs() {
        let mut sim = Sim::new(0);
        let station = Station::new("s", 1);
        let done = count_jobs(&station, &mut sim, 5, 10);
        sim.run();
        assert_eq!(done.get(), 5);
        assert_eq!(sim.now().as_millis_f64(), 50.0);
        let stats = station.borrow().stats();
        assert_eq!(stats.completions, 5);
        assert_eq!(stats.busy_time, SimDuration::from_millis(50));
        // Jobs 2..5 waited 10, 20, 30, 40 ms respectively.
        assert_eq!(stats.wait_time, SimDuration::from_millis(100));
    }

    #[test]
    fn parallel_servers_run_concurrently() {
        let mut sim = Sim::new(0);
        let station = Station::new("s", 4);
        let done = count_jobs(&station, &mut sim, 4, 10);
        sim.run();
        assert_eq!(done.get(), 4);
        assert_eq!(sim.now().as_millis_f64(), 10.0);
        assert_eq!(station.borrow().stats().wait_time, SimDuration::ZERO);
    }

    #[test]
    fn mixed_load_queues_in_fifo_order() {
        let mut sim = Sim::new(0);
        let station = Station::new("s", 2);
        let order = Rc::new(RefCell::new(Vec::new()));
        for (i, ms) in [(0, 30u64), (1, 10), (2, 5), (3, 5)] {
            let order = Rc::clone(&order);
            Station::submit(&station, &mut sim, SimDuration::from_millis(ms), move |sim| {
                order.borrow_mut().push((i, sim.now().as_millis_f64() as u64));
            });
        }
        sim.run();
        // Servers: job0 (0-30), job1 (0-10); job2 starts at 10 (10-15);
        // job3 starts at 15 (15-20).
        assert_eq!(*order.borrow(), vec![(1, 10), (2, 15), (3, 20), (0, 30)]);
    }

    #[test]
    fn utilization_reflects_busy_fraction() {
        let mut sim = Sim::new(0);
        let station = Station::new("s", 2);
        let _ = count_jobs(&station, &mut sim, 2, 10);
        sim.run_until(SimTime::from_nanos(40_000_000));
        let stats = station.borrow().stats();
        // 2 servers busy for 10 of 40 ms -> 25% utilization.
        let util = stats.utilization(2, SimDuration::from_millis(40));
        assert!((util - 0.25).abs() < 1e-9, "utilization {util}");
    }

    #[test]
    fn shrinking_drains_gracefully() {
        let mut sim = Sim::new(0);
        let station = Station::new("s", 2);
        let done = count_jobs(&station, &mut sim, 4, 10);
        station.borrow_mut().set_servers(1);
        sim.run();
        assert_eq!(done.get(), 4);
        // Two jobs started immediately (t=10); the remaining two ran serially
        // on the single remaining server: t=20, t=30.
        assert_eq!(sim.now().as_millis_f64(), 30.0);
    }

    #[test]
    fn growing_mid_run_admits_queued_work_as_jobs_complete() {
        let mut sim = Sim::new(0);
        let station = Station::new("s", 1);
        let done = count_jobs(&station, &mut sim, 3, 10);
        // Grow after the first job completes; the pop-on-completion path
        // admits one queued job per completion, so the backlog still drains.
        let grown = Rc::clone(&station);
        sim.schedule(SimDuration::from_millis(1), move |_| {
            grown.borrow_mut().set_servers(4);
        });
        sim.run();
        assert_eq!(done.get(), 3);
        assert!(sim.now().as_millis_f64() <= 30.0);
    }

    #[test]
    fn mean_wait_is_zero_for_unloaded_station() {
        let stats = StationStats::default();
        assert_eq!(stats.mean_wait(), SimDuration::ZERO);
        assert_eq!(stats.utilization(4, SimDuration::ZERO), 0.0);
    }
}
