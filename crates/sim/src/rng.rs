//! Seeded randomness and the latency/throughput distributions used by the
//! performance models.
//!
//! Every run of the simulator is driven by a single [`SimRng`] seeded by the
//! experiment harness, so identical seeds reproduce identical runs
//! bit-for-bit. Components that need an independent stream call
//! [`SimRng::fork`], which derives a child seed without perturbing the parent
//! stream's future output more than one draw.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::time::SimDuration;

/// A deterministic random-number generator for one simulation run.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    ///
    /// # Examples
    ///
    /// ```
    /// use lambda_sim::SimRng;
    ///
    /// let mut a = SimRng::new(7);
    /// let mut b = SimRng::new(7);
    /// assert_eq!(a.gen_range(0..100), b.gen_range(0..100));
    /// ```
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SimRng { inner: StdRng::seed_from_u64(seed) }
    }

    /// Derives an independent child generator.
    ///
    /// Consumes exactly one draw from `self`, so sibling forks are
    /// decorrelated and the parent stays deterministic.
    #[must_use]
    pub fn fork(&mut self) -> SimRng {
        SimRng::new(self.inner.gen())
    }

    /// Uniformly samples from a range, like [`rand::Rng::gen_range`].
    pub fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: rand::distributions::uniform::SampleUniform,
        R: rand::distributions::uniform::SampleRange<T>,
    {
        self.inner.gen_range(range)
    }

    /// A uniform draw in `[0, 1)`.
    #[must_use]
    pub fn gen_unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// A Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    #[must_use]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.inner.gen_bool(p)
        }
    }

    /// Picks a uniformly random index in `[0, len)`.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    #[must_use]
    pub fn pick_index(&mut self, len: usize) -> usize {
        assert!(len > 0, "pick_index on empty range");
        self.inner.gen_range(0..len)
    }

    /// Samples a value from `dist`.
    #[must_use]
    pub fn sample(&mut self, dist: &Dist) -> f64 {
        dist.sample_with(|| self.gen_unit())
    }

    /// Samples a duration (in seconds) from `dist`, clamping negatives to
    /// zero.
    #[must_use]
    pub fn sample_duration(&mut self, dist: &Dist) -> SimDuration {
        SimDuration::from_secs_f64(self.sample(dist))
    }
}

/// A parametric one-dimensional distribution, used for latencies and
/// workload intensities.
///
/// Values are in the caller's unit of choice (the performance models use
/// seconds). Sampling uses inverse-transform methods on a uniform draw, so
/// no external distribution crate is needed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Dist {
    /// Always the same value.
    Constant(f64),
    /// Uniform over `[lo, hi)`.
    Uniform {
        /// Inclusive lower bound.
        lo: f64,
        /// Exclusive upper bound.
        hi: f64,
    },
    /// Exponential with the given mean.
    Exp {
        /// Mean of the distribution (1/rate).
        mean: f64,
    },
    /// Pareto with shape `alpha` and scale `x_m`, truncated at `cap`.
    ///
    /// This is the burst model of the industrial workload (§5.2.1 of the
    /// paper): `alpha = 2`, `x_m` = the base throughput, and `cap` bounds
    /// spikes (the paper reports bursts up to 7× the base).
    ParetoBounded {
        /// Tail index; smaller means heavier tails.
        alpha: f64,
        /// Scale (minimum value), a.k.a. `x_t` in the paper.
        x_m: f64,
        /// Upper truncation bound.
        cap: f64,
    },
}

impl Dist {
    /// A point mass at `v`.
    #[must_use]
    pub const fn constant(v: f64) -> Dist {
        Dist::Constant(v)
    }

    /// Uniform over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[must_use]
    pub fn uniform(lo: f64, hi: f64) -> Dist {
        assert!(lo <= hi, "uniform bounds out of order: {lo} > {hi}");
        Dist::Uniform { lo, hi }
    }

    /// Uniform over `[lo_ms, hi_ms)` interpreted in milliseconds, returned
    /// in seconds. Convenience for latency configs quoted in ms.
    #[must_use]
    pub fn uniform_ms(lo_ms: f64, hi_ms: f64) -> Dist {
        Dist::uniform(lo_ms / 1e3, hi_ms / 1e3)
    }

    /// A point mass at `ms` milliseconds, in seconds.
    #[must_use]
    pub fn constant_ms(ms: f64) -> Dist {
        Dist::Constant(ms / 1e3)
    }

    /// The distribution scaled by a positive factor (e.g. to slow a
    /// capacity model down proportionally when shrinking an experiment).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive and finite.
    #[must_use]
    pub fn scaled(&self, factor: f64) -> Dist {
        assert!(factor.is_finite() && factor > 0.0, "scale factor must be positive");
        match *self {
            Dist::Constant(v) => Dist::Constant(v * factor),
            Dist::Uniform { lo, hi } => Dist::Uniform { lo: lo * factor, hi: hi * factor },
            Dist::Exp { mean } => Dist::Exp { mean: mean * factor },
            Dist::ParetoBounded { alpha, x_m, cap } => {
                Dist::ParetoBounded { alpha, x_m: x_m * factor, cap: cap * factor }
            }
        }
    }

    /// The infimum of the distribution's support: no sample is ever below
    /// this value. This is the "latency floor" a conservative-synchronization
    /// lookahead is derived from — a link whose latency distribution has a
    /// positive lower bound guarantees that much virtual-time slack between
    /// shards. [`Dist::Exp`] has no positive floor and returns `0.0`.
    #[must_use]
    pub fn lower_bound(&self) -> f64 {
        match *self {
            Dist::Constant(v) => v,
            Dist::Uniform { lo, .. } => lo,
            Dist::Exp { .. } => 0.0,
            Dist::ParetoBounded { x_m, .. } => x_m,
        }
    }

    /// The mean of the distribution.
    #[must_use]
    pub fn mean(&self) -> f64 {
        match *self {
            Dist::Constant(v) => v,
            Dist::Uniform { lo, hi } => (lo + hi) / 2.0,
            Dist::Exp { mean } => mean,
            Dist::ParetoBounded { alpha, x_m, cap } => {
                // Mean of a Pareto truncated at `cap` (alpha != 1).
                if alpha == 1.0 {
                    x_m * (cap / x_m).ln() / (1.0 - x_m / cap)
                } else {
                    let num = 1.0 - (x_m / cap).powf(alpha - 1.0);
                    let den = 1.0 - (x_m / cap).powf(alpha);
                    (alpha * x_m / (alpha - 1.0)) * num / den
                }
            }
        }
    }

    fn sample_with<F: FnMut() -> f64>(&self, mut unit: F) -> f64 {
        match *self {
            Dist::Constant(v) => v,
            Dist::Uniform { lo, hi } => lo + (hi - lo) * unit(),
            Dist::Exp { mean } => {
                let u = (1.0 - unit()).max(f64::MIN_POSITIVE);
                -mean * u.ln()
            }
            Dist::ParetoBounded { alpha, x_m, cap } => {
                // Inverse CDF of a Pareto truncated at `cap`:
                // F(x) = (1 - (x_m/x)^a) / (1 - (x_m/cap)^a).
                let tail = 1.0 - (x_m / cap).powf(alpha);
                let u = unit() * tail;
                let x = x_m / (1.0 - u).powf(1.0 / alpha);
                x.min(cap)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_seeds_reproduce_streams() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.gen_unit().to_bits(), b.gen_unit().to_bits());
        }
    }

    #[test]
    fn forks_are_decorrelated_but_deterministic() {
        let mut parent1 = SimRng::new(1);
        let mut parent2 = SimRng::new(1);
        let mut c1 = parent1.fork();
        let mut c2 = parent2.fork();
        assert_eq!(c1.gen_unit().to_bits(), c2.gen_unit().to_bits());
        // The fork consumed one parent draw; parents remain in lockstep.
        assert_eq!(parent1.gen_unit().to_bits(), parent2.gen_unit().to_bits());
    }

    #[test]
    fn bernoulli_edge_cases() {
        let mut rng = SimRng::new(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(-0.5));
        assert!(rng.gen_bool(2.0));
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = SimRng::new(9);
        let d = Dist::uniform(2.0, 5.0);
        for _ in 0..1000 {
            let v = rng.sample(&d);
            assert!((2.0..5.0).contains(&v));
        }
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = SimRng::new(11);
        let d = Dist::Exp { mean: 0.01 };
        let n = 50_000;
        let total: f64 = (0..n).map(|_| rng.sample(&d)).sum();
        let mean = total / n as f64;
        assert!((mean - 0.01).abs() < 0.0005, "mean was {mean}");
    }

    #[test]
    fn pareto_respects_scale_and_cap() {
        let mut rng = SimRng::new(13);
        let d = Dist::ParetoBounded { alpha: 2.0, x_m: 25_000.0, cap: 175_000.0 };
        let mut max = 0.0f64;
        for _ in 0..20_000 {
            let v = rng.sample(&d);
            assert!(v >= 25_000.0);
            assert!(v <= 175_000.0);
            max = max.max(v);
        }
        // With 20k draws the 7x cap region is essentially always reached.
        assert!(max > 100_000.0, "max draw {max} suspiciously small");
    }

    #[test]
    fn pareto_bounded_mean_matches_analytic_value() {
        let mut rng = SimRng::new(17);
        let d = Dist::ParetoBounded { alpha: 2.0, x_m: 1.0, cap: 7.0 };
        let n = 200_000;
        let total: f64 = (0..n).map(|_| rng.sample(&d)).sum();
        let mean = total / n as f64;
        assert!((mean - d.mean()).abs() < 0.02, "sample {mean} vs analytic {}", d.mean());
    }

    #[test]
    fn sample_duration_clamps_negative() {
        let mut rng = SimRng::new(1);
        let d = Dist::Constant(-3.0);
        assert_eq!(rng.sample_duration(&d), SimDuration::ZERO);
    }

    #[test]
    fn millisecond_helpers() {
        assert_eq!(Dist::constant_ms(5.0), Dist::Constant(0.005));
        assert_eq!(Dist::uniform_ms(8.0, 20.0), Dist::Uniform { lo: 0.008, hi: 0.020 });
    }
}
