//! Deterministic fault-injection plans and the network fault injector.
//!
//! The λFS evaluation argues fault tolerance (§5.6 / Fig. 15) with a single
//! fault: kill a NameNode every 30 s. Real deployments also survive lossy
//! networks, NDB node-group failovers, and cold-start storms. This module
//! defines a declarative, seed-deterministic [`FaultPlan`] covering all of
//! those fault classes, plus the [`FaultInjector`] that adjudicates
//! per-message network faults.
//!
//! ## Determinism contract
//!
//! The injector owns a private [`SimRng`] stream, separate from the engine
//! RNG, and draws from it **only while a fault window is active for the
//! message being adjudicated**. Outside every window, [`FaultInjector::decide`]
//! is a pure time comparison: a run with an empty (or never-matching) plan
//! produces a bit-identical event trace to a run with no injector at all,
//! and the same `(seed, plan)` pair always replays the same decisions.
//!
//! Windows are half-open `[from, until)` intervals of simulated time.
//! Endpoints are small integer ids chosen by the embedding system (λFS uses
//! client VM ids and `1000 + deployment` for NameNode deployments).

use crate::rng::{Dist, SimRng};
use crate::time::{SimDuration, SimTime};

/// A half-open window `[from, until)` of simulated time during which a
/// fault is active.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct FaultWindow {
    /// Inclusive start of the window.
    pub from: SimTime,
    /// Exclusive end of the window.
    pub until: SimTime,
}

impl FaultWindow {
    /// Builds a window from two instants.
    ///
    /// # Panics
    ///
    /// Panics if `from > until`.
    #[must_use]
    pub fn new(from: SimTime, until: SimTime) -> Self {
        assert!(from <= until, "fault window out of order: {from} > {until}");
        FaultWindow { from, until }
    }

    /// Whether `t` falls inside the window.
    #[must_use]
    pub fn contains(self, t: SimTime) -> bool {
        t >= self.from && t < self.until
    }

    /// The window translated later in time by `by`.
    #[must_use]
    pub fn shifted(self, by: SimDuration) -> Self {
        FaultWindow { from: self.from + by, until: self.until + by }
    }
}

/// What a matching [`NetFault`] does to a message.
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum NetFaultKind {
    /// Silently discard the message; the sender's timeout path recovers.
    Drop,
    /// Add extra one-way latency sampled from the distribution (seconds).
    Delay(Dist),
    /// Deliver the message twice; receivers must deduplicate.
    Duplicate,
}

/// A probabilistic per-message network fault, active inside a window and
/// optionally filtered to a `(src, dst)` endpoint pair.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct NetFault {
    /// What happens to a message the fault fires on.
    pub kind: NetFaultKind,
    /// Probability in `[0, 1]` that the fault fires on a matching message.
    pub prob: f64,
    /// When the fault is armed.
    pub window: FaultWindow,
    /// Source endpoint filter; `None` matches any source.
    pub src: Option<u32>,
    /// Destination endpoint filter; `None` matches any destination.
    pub dst: Option<u32>,
}

impl NetFault {
    fn matches(&self, now: SimTime, src: u32, dst: u32) -> bool {
        self.window.contains(now)
            && self.src.is_none_or(|s| s == src)
            && self.dst.is_none_or(|d| d == dst)
    }
}

/// A pairwise network partition: every message between the two endpoints
/// (in either direction) is dropped while the window is active.
///
/// Partitions are deterministic — no random draw is involved.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Partition {
    /// One side of the partition.
    pub a: u32,
    /// The other side.
    pub b: u32,
    /// When the partition holds.
    pub window: FaultWindow,
}

/// An NDB-style shard crash: the shard is unavailable from `at` until a
/// replica in the node group finishes taking over, `takeover` later.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct ShardOutage {
    /// Index of the store shard that crashes.
    pub shard: u32,
    /// Crash instant.
    pub at: SimTime,
    /// Replica promotion delay; the shard serves again at `at + takeover`.
    pub takeover: SimDuration,
}

/// A correlated kill burst: `count` warm NameNode instances are killed at
/// once, optionally pinned to one deployment.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct KillBurst {
    /// When the burst strikes.
    pub at: SimTime,
    /// Deployment to target; `None` spreads the kills round-robin.
    pub deployment: Option<u32>,
    /// How many warm instances to kill.
    pub count: u32,
}

/// A cold-start storm: while the window is active every cold start takes
/// `factor`× its sampled latency (modeling pool exhaustion / image-pull
/// contention in the FaaS substrate).
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct ColdStartStorm {
    /// When the storm rages.
    pub window: FaultWindow,
    /// Multiplier applied to sampled cold-start latencies (must be ≥ 1
    /// to be meaningful, but any positive factor is accepted).
    pub factor: f64,
}

/// A complete, declarative fault schedule for one simulation run.
///
/// Build one programmatically or parse the compact spec format with
/// [`FaultPlan::parse`]. An empty plan (the [`Default`]) injects nothing
/// and leaves runs bit-identical to an uninstrumented simulation.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// Probabilistic per-message network faults.
    pub net: Vec<NetFault>,
    /// Deterministic pairwise partitions.
    pub partitions: Vec<Partition>,
    /// Store shard crash/failover events.
    pub shards: Vec<ShardOutage>,
    /// Correlated NameNode kill bursts.
    pub kills: Vec<KillBurst>,
    /// Cold-start latency storms.
    pub storms: Vec<ColdStartStorm>,
}

impl FaultPlan {
    /// Whether the plan injects nothing at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.net.is_empty()
            && self.partitions.is_empty()
            && self.shards.is_empty()
            && self.kills.is_empty()
            && self.storms.is_empty()
    }

    /// The plan with every window and instant translated later by `by`.
    ///
    /// Harnesses that bootstrap/prewarm before the measured workload use
    /// this to author plans relative to the workload start.
    #[must_use]
    pub fn shifted(&self, by: SimDuration) -> FaultPlan {
        FaultPlan {
            net: self
                .net
                .iter()
                .map(|f| NetFault { window: f.window.shifted(by), ..*f })
                .collect(),
            partitions: self
                .partitions
                .iter()
                .map(|p| Partition { window: p.window.shifted(by), ..*p })
                .collect(),
            shards: self
                .shards
                .iter()
                .map(|s| ShardOutage { at: s.at + by, ..*s })
                .collect(),
            kills: self.kills.iter().map(|k| KillBurst { at: k.at + by, ..*k }).collect(),
            storms: self
                .storms
                .iter()
                .map(|s| ColdStartStorm { window: s.window.shifted(by), ..*s })
                .collect(),
        }
    }

    /// Parses the compact fault-spec format.
    ///
    /// The spec is a `;`-separated list of clauses, each
    /// `kind@start[-end][:key=value,...]`. Times accept `s` or `ms`
    /// suffixes (`2.5s`, `80ms`). Supported clauses:
    ///
    /// | clause | example | meaning |
    /// |---|---|---|
    /// | `drop` | `drop@10s-20s:p=0.3` | drop messages w.p. `p` |
    /// | `delay` | `delay@5s-15s:p=0.5,ms=80` | add `ms` extra latency w.p. `p` |
    /// | `dup` | `dup@2s-9s:p=0.2` | duplicate messages w.p. `p` |
    /// | `part` | `part@10s-30s:a=0,b=1000` | partition endpoints `a`/`b` |
    /// | `shard` | `shard@30s:shard=2,down=5s` | crash shard, takeover `down` |
    /// | `kill` | `kill@60s:count=2,dep=3` | kill burst (`dep` optional) |
    /// | `storm` | `storm@60s-90s:x=4` | cold starts take `x`× longer |
    ///
    /// `drop`/`delay`/`dup` also accept optional `src=`/`dst=` endpoint
    /// filters.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed clause.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for clause in spec.split(';').map(str::trim).filter(|c| !c.is_empty()) {
            let (head, params) = match clause.split_once(':') {
                Some((h, p)) => (h, p),
                None => (clause, ""),
            };
            let (kind, when) = head
                .split_once('@')
                .ok_or_else(|| format!("clause `{clause}`: missing `@start`"))?;
            let (from, until) = parse_when(when)?;
            let window = || -> Result<FaultWindow, String> {
                let until =
                    until.ok_or_else(|| format!("clause `{clause}`: needs `start-end` window"))?;
                if from > until {
                    return Err(format!("clause `{clause}`: window out of order"));
                }
                Ok(FaultWindow { from, until })
            };
            let kv = parse_params(params, clause)?;
            match kind.trim() {
                "drop" | "delay" | "dup" => {
                    let prob = kv.f64("p").unwrap_or(1.0);
                    if !(0.0..=1.0).contains(&prob) {
                        return Err(format!("clause `{clause}`: p must be in [0,1]"));
                    }
                    let net_kind = match kind.trim() {
                        "drop" => NetFaultKind::Drop,
                        "dup" => NetFaultKind::Duplicate,
                        _ => {
                            let ms = kv
                                .f64("ms")
                                .ok_or_else(|| format!("clause `{clause}`: delay needs ms="))?;
                            NetFaultKind::Delay(Dist::constant_ms(ms))
                        }
                    };
                    plan.net.push(NetFault {
                        kind: net_kind,
                        prob,
                        window: window()?,
                        src: kv.u32("src"),
                        dst: kv.u32("dst"),
                    });
                }
                "part" => {
                    let a = kv
                        .u32("a")
                        .ok_or_else(|| format!("clause `{clause}`: part needs a="))?;
                    let b = kv
                        .u32("b")
                        .ok_or_else(|| format!("clause `{clause}`: part needs b="))?;
                    plan.partitions.push(Partition { a, b, window: window()? });
                }
                "shard" => {
                    let shard = kv
                        .u32("shard")
                        .ok_or_else(|| format!("clause `{clause}`: shard needs shard="))?;
                    let down = kv
                        .duration("down")
                        .ok_or_else(|| format!("clause `{clause}`: shard needs down="))??;
                    plan.shards.push(ShardOutage { shard, at: from, takeover: down });
                }
                "kill" => {
                    let count = kv.u32("count").unwrap_or(1);
                    plan.kills.push(KillBurst { at: from, deployment: kv.u32("dep"), count });
                }
                "storm" => {
                    let factor = kv
                        .f64("x")
                        .ok_or_else(|| format!("clause `{clause}`: storm needs x="))?;
                    if !(factor.is_finite() && factor > 0.0) {
                        return Err(format!("clause `{clause}`: x must be positive"));
                    }
                    plan.storms.push(ColdStartStorm { window: window()?, factor });
                }
                other => return Err(format!("clause `{clause}`: unknown fault kind `{other}`")),
            }
        }
        Ok(plan)
    }
}

/// Parses `start` or `start-end` into instants.
fn parse_when(when: &str) -> Result<(SimTime, Option<SimTime>), String> {
    let to_time = |s: &str| parse_time(s).map(|d| SimTime::ZERO + d);
    match when.split_once('-') {
        Some((a, b)) => Ok((to_time(a)?, Some(to_time(b)?))),
        None => Ok((to_time(when)?, None)),
    }
}

/// Parses a duration literal with an `s` or `ms` suffix.
fn parse_time(s: &str) -> Result<SimDuration, String> {
    let s = s.trim();
    let (num, scale) = if let Some(ms) = s.strip_suffix("ms") {
        (ms, 1e-3)
    } else if let Some(secs) = s.strip_suffix('s') {
        (secs, 1.0)
    } else {
        (s, 1.0)
    };
    let v: f64 = num.trim().parse().map_err(|_| format!("bad time literal `{s}`"))?;
    if !(v.is_finite() && v >= 0.0) {
        return Err(format!("time literal `{s}` must be non-negative"));
    }
    Ok(SimDuration::from_secs_f64(v * scale))
}

/// Parsed `key=value` clause parameters.
struct Params<'a>(Vec<(&'a str, &'a str)>);

impl<'a> Params<'a> {
    fn get(&self, key: &str) -> Option<&'a str> {
        self.0.iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
    }
    fn f64(&self, key: &str) -> Option<f64> {
        self.get(key).and_then(|v| v.parse().ok())
    }
    fn u32(&self, key: &str) -> Option<u32> {
        self.get(key).and_then(|v| v.parse().ok())
    }
    fn duration(&self, key: &str) -> Option<Result<SimDuration, String>> {
        self.get(key).map(parse_time)
    }
}

fn parse_params<'a>(params: &'a str, clause: &str) -> Result<Params<'a>, String> {
    let mut out = Vec::new();
    for pair in params.split(',').map(str::trim).filter(|p| !p.is_empty()) {
        let (k, v) = pair
            .split_once('=')
            .ok_or_else(|| format!("clause `{clause}`: bad param `{pair}`"))?;
        out.push((k.trim(), v.trim()));
    }
    Ok(Params(out))
}

/// The injector's verdict for one message hop.
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum NetDecision {
    /// Deliver normally.
    Deliver,
    /// Discard the message.
    Drop,
    /// Deliver two copies.
    Duplicate,
    /// Deliver after the given extra delay.
    Delay(SimDuration),
}

/// Adjudicates per-message network faults for a [`FaultPlan`].
///
/// Holds its own RNG stream so that installing an injector whose plan
/// never matches leaves the host simulation's event trace bit-identical
/// (see the module docs for the full determinism contract).
#[derive(Debug, Clone)]
pub struct FaultInjector {
    net: Vec<NetFault>,
    partitions: Vec<Partition>,
    rng: SimRng,
    dropped: u64,
    duplicated: u64,
    delayed: u64,
}

impl FaultInjector {
    /// Builds an injector for the network portion of `plan`, with a
    /// dedicated RNG seeded by `seed`.
    #[must_use]
    pub fn new(plan: &FaultPlan, seed: u64) -> Self {
        FaultInjector {
            net: plan.net.clone(),
            partitions: plan.partitions.clone(),
            rng: SimRng::new(seed),
            dropped: 0,
            duplicated: 0,
            delayed: 0,
        }
    }

    /// Decides the fate of one message hop from `src` to `dst` at `now`.
    ///
    /// Partitions are checked first (deterministically); then armed
    /// probabilistic faults are evaluated in plan order, first hit wins.
    /// No RNG draw happens unless a fault window is active for this hop.
    pub fn decide(&mut self, now: SimTime, src: u32, dst: u32) -> NetDecision {
        for p in &self.partitions {
            if p.window.contains(now)
                && ((p.a == src && p.b == dst) || (p.a == dst && p.b == src))
            {
                self.dropped += 1;
                return NetDecision::Drop;
            }
        }
        for i in 0..self.net.len() {
            let f = self.net[i];
            if !f.matches(now, src, dst) {
                continue;
            }
            if !self.rng.gen_bool(f.prob) {
                continue;
            }
            return match f.kind {
                NetFaultKind::Drop => {
                    self.dropped += 1;
                    NetDecision::Drop
                }
                NetFaultKind::Duplicate => {
                    self.duplicated += 1;
                    NetDecision::Duplicate
                }
                NetFaultKind::Delay(dist) => {
                    self.delayed += 1;
                    NetDecision::Delay(self.rng.sample_duration(&dist))
                }
            };
        }
        NetDecision::Deliver
    }

    /// Messages dropped so far (faults plus partitions).
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Messages duplicated so far.
    #[must_use]
    pub fn duplicated(&self) -> u64 {
        self.duplicated
    }

    /// Messages delayed so far.
    #[must_use]
    pub fn delayed(&self) -> u64 {
        self.delayed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn windows_are_half_open() {
        let w = FaultWindow::new(secs(10), secs(20));
        assert!(!w.contains(secs(9)));
        assert!(w.contains(secs(10)));
        assert!(w.contains(secs(19)));
        assert!(!w.contains(secs(20)));
    }

    #[test]
    fn empty_plan_is_empty_and_injects_nothing() {
        let plan = FaultPlan::default();
        assert!(plan.is_empty());
        let mut inj = FaultInjector::new(&plan, 7);
        for t in 0..100 {
            assert_eq!(inj.decide(secs(t), 0, 1000), NetDecision::Deliver);
        }
        assert_eq!(inj.dropped() + inj.duplicated() + inj.delayed(), 0);
    }

    #[test]
    fn out_of_window_decisions_consume_no_rng() {
        let plan = FaultPlan {
            net: vec![NetFault {
                kind: NetFaultKind::Drop,
                prob: 0.5,
                window: FaultWindow::new(secs(100), secs(200)),
                src: None,
                dst: None,
            }],
            ..FaultPlan::default()
        };
        let mut idle = FaultInjector::new(&plan, 99);
        let mut fresh = FaultInjector::new(&plan, 99);
        // Burn many out-of-window decisions on one injector.
        for t in 0..50 {
            assert_eq!(idle.decide(secs(t), 0, 1000), NetDecision::Deliver);
        }
        // Both injectors must now agree on every in-window decision: the
        // idle one made zero draws outside the window.
        for t in 100..160 {
            assert_eq!(idle.decide(secs(t), 0, 1000), fresh.decide(secs(t), 0, 1000));
        }
    }

    #[test]
    fn same_seed_replays_identical_decisions() {
        let plan = FaultPlan::parse("drop@0s-60s:p=0.3;delay@0s-60s:p=0.4,ms=25").unwrap();
        let mut a = FaultInjector::new(&plan, 42);
        let mut b = FaultInjector::new(&plan, 42);
        for t in 0..500u64 {
            let now = SimTime::from_nanos(t * 123_456_789);
            assert_eq!(a.decide(now, 3, 1001), b.decide(now, 3, 1001));
        }
    }

    #[test]
    fn partitions_block_both_directions_without_rng() {
        let plan = FaultPlan {
            partitions: vec![Partition { a: 2, b: 1001, window: FaultWindow::new(secs(5), secs(10)) }],
            ..FaultPlan::default()
        };
        let mut inj = FaultInjector::new(&plan, 1);
        assert_eq!(inj.decide(secs(6), 2, 1001), NetDecision::Drop);
        assert_eq!(inj.decide(secs(6), 1001, 2), NetDecision::Drop);
        assert_eq!(inj.decide(secs(6), 3, 1001), NetDecision::Deliver);
        assert_eq!(inj.decide(secs(11), 2, 1001), NetDecision::Deliver);
        assert_eq!(inj.dropped(), 2);
    }

    #[test]
    fn endpoint_filters_restrict_matches() {
        let plan = FaultPlan {
            net: vec![NetFault {
                kind: NetFaultKind::Drop,
                prob: 1.0,
                window: FaultWindow::new(secs(0), secs(100)),
                src: Some(4),
                dst: None,
            }],
            ..FaultPlan::default()
        };
        let mut inj = FaultInjector::new(&plan, 5);
        assert_eq!(inj.decide(secs(1), 4, 1000), NetDecision::Drop);
        assert_eq!(inj.decide(secs(1), 5, 1000), NetDecision::Deliver);
    }

    #[test]
    fn parse_covers_every_clause_kind() {
        let plan = FaultPlan::parse(
            "drop@10s-20s:p=0.3; delay@5s-15s:p=0.5,ms=80,src=1,dst=1002; dup@2s-9s:p=0.2; \
             part@10s-30s:a=0,b=1000; shard@30s:shard=2,down=5s; kill@60s:count=2,dep=3; \
             storm@60s-90s:x=4",
        )
        .unwrap();
        assert_eq!(plan.net.len(), 3);
        assert_eq!(plan.net[0].kind, NetFaultKind::Drop);
        assert_eq!(plan.net[1].kind, NetFaultKind::Delay(Dist::constant_ms(80.0)));
        assert_eq!(plan.net[1].src, Some(1));
        assert_eq!(plan.net[1].dst, Some(1002));
        assert_eq!(plan.net[2].kind, NetFaultKind::Duplicate);
        assert_eq!(plan.partitions, vec![Partition {
            a: 0,
            b: 1000,
            window: FaultWindow::new(secs(10), secs(30)),
        }]);
        assert_eq!(plan.shards, vec![ShardOutage {
            shard: 2,
            at: secs(30),
            takeover: SimDuration::from_secs(5),
        }]);
        assert_eq!(plan.kills, vec![KillBurst { at: secs(60), deployment: Some(3), count: 2 }]);
        assert_eq!(plan.storms, vec![ColdStartStorm {
            window: FaultWindow::new(secs(60), secs(90)),
            factor: 4.0,
        }]);
    }

    #[test]
    fn parse_accepts_ms_and_fractional_times() {
        let plan = FaultPlan::parse("drop@500ms-2.5s:p=1").unwrap();
        assert_eq!(plan.net[0].window.from, SimTime::ZERO + SimDuration::from_millis(500));
        assert_eq!(plan.net[0].window.until, SimTime::ZERO + SimDuration::from_millis(2500));
    }

    #[test]
    fn parse_rejects_malformed_clauses() {
        assert!(FaultPlan::parse("drop:p=0.5").is_err()); // no window
        assert!(FaultPlan::parse("drop@10s:p=0.5").is_err()); // missing end
        assert!(FaultPlan::parse("drop@20s-10s:p=0.5").is_err()); // reversed
        assert!(FaultPlan::parse("drop@0s-1s:p=1.5").is_err()); // bad prob
        assert!(FaultPlan::parse("delay@0s-1s:p=0.5").is_err()); // missing ms
        assert!(FaultPlan::parse("part@0s-1s:a=1").is_err()); // missing b
        assert!(FaultPlan::parse("shard@0s:shard=1").is_err()); // missing down
        assert!(FaultPlan::parse("storm@0s-1s:x=-2").is_err()); // bad factor
        assert!(FaultPlan::parse("quake@0s-1s").is_err()); // unknown kind
    }

    #[test]
    fn shifted_translates_every_component() {
        let plan = FaultPlan::parse(
            "drop@1s-2s:p=0.5; part@3s-4s:a=0,b=1; shard@5s:shard=0,down=1s; \
             kill@6s:count=1; storm@7s-8s:x=2",
        )
        .unwrap();
        let by = SimDuration::from_secs(10);
        let s = plan.shifted(by);
        assert_eq!(s.net[0].window, FaultWindow::new(secs(11), secs(12)));
        assert_eq!(s.partitions[0].window, FaultWindow::new(secs(13), secs(14)));
        assert_eq!(s.shards[0].at, secs(15));
        assert_eq!(s.kills[0].at, secs(16));
        assert_eq!(s.storms[0].window, FaultWindow::new(secs(17), secs(18)));
        assert!(!s.is_empty());
    }
}
