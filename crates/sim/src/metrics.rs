//! Measurement instruments: latency recorders, per-second timelines, and
//! gauge series.
//!
//! These are the instruments the experiment harness reads to regenerate the
//! paper's figures: throughput-over-time curves (Fig. 8, 15), latency CDFs
//! (Fig. 10), active-NameNode counts (Fig. 8's secondary axis), and the
//! per-second cost series behind Fig. 8(c) and Fig. 9.

use crate::time::{SimDuration, SimTime};

/// Sub-bucket resolution of the latency histogram: 2^7 = 128 log-spaced
/// buckets per octave, giving a worst-case relative quantile error of
/// 1/256 ≈ 0.39% (the spec budget is 1%).
const SUB_BITS: u32 = 7;

/// Biased exponent of the smallest distinguishable latency (2⁻⁴⁰ s ≈ 1 ps);
/// everything smaller — including zero — collapses into bucket 0.
const MIN_BIASED: u64 = 983;

/// Histogram index of a non-negative latency in seconds. Exploits the IEEE
/// 754 layout: the top bits of a positive double are `biased_exponent ||
/// mantissa`, so a shift yields a log-spaced bucket index directly.
fn bucket_index(seconds: f64) -> usize {
    debug_assert!(seconds >= 0.0, "latencies are non-negative");
    let raw = (seconds.to_bits() >> (52 - SUB_BITS)) as i64;
    let origin = (MIN_BIASED << SUB_BITS) as i64;
    usize::try_from((raw - origin).max(0)).expect("bucket index fits usize")
}

/// Representative latency (seconds) of a bucket: the geometric middle of its
/// `[low, low·(1 + 2⁻⁷))` span, so any sample in the bucket is within
/// 2⁻⁸ ≈ 0.39% of the value reported for it.
fn bucket_value(index: usize) -> f64 {
    let raw = index as u64 + (MIN_BIASED << SUB_BITS);
    let low = f64::from_bits(raw << (52 - SUB_BITS));
    low * (1.0 + 1.0 / (1u64 << (SUB_BITS + 1)) as f64)
}

/// Records latency samples and answers distribution queries from a
/// streaming, HDR-style log-bucketed histogram.
///
/// Recording is O(1): one array increment plus exact running count, sum,
/// min, and max. Quantile queries walk the bucket array (`&self`, no sort,
/// no cached state), so records and queries interleave freely. `count`,
/// `mean`, and `max` are exact; `percentile` and `cdf` are accurate to
/// 1/256 ≈ 0.39% relative error (`p = 0` and `p = 1` return the exact min
/// and max).
///
/// # Examples
///
/// ```
/// use lambda_sim::{LatencyRecorder, SimDuration};
///
/// let mut rec = LatencyRecorder::new();
/// for ms in [1u64, 2, 3, 4, 100] {
///     rec.record(SimDuration::from_millis(ms));
/// }
/// assert_eq!(rec.count(), 5);
/// assert_eq!(rec.mean().as_millis_f64(), 22.0);
/// let p50 = rec.percentile(0.5).as_millis_f64();
/// assert!((p50 - 3.0).abs() / 3.0 < 0.01);
/// assert_eq!(rec.percentile(1.0).as_millis_f64(), 100.0);
/// ```
#[derive(Debug, Clone)]
pub struct LatencyRecorder {
    /// Bucket occupancy counts, grown lazily to the largest index seen.
    buckets: Vec<u64>,
    count: u64,
    sum: f64, // seconds
    min_seen: f64,
    max_seen: f64,
}

impl Default for LatencyRecorder {
    fn default() -> Self {
        LatencyRecorder {
            buckets: Vec::new(),
            count: 0,
            sum: 0.0,
            min_seen: f64::INFINITY,
            max_seen: f64::NEG_INFINITY,
        }
    }
}

impl LatencyRecorder {
    /// Creates an empty recorder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample. O(1); never invalidates concurrent query state.
    pub fn record(&mut self, latency: SimDuration) {
        let seconds = latency.as_secs_f64();
        let idx = bucket_index(seconds);
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += seconds;
        self.min_seen = self.min_seen.min(seconds);
        self.max_seen = self.max_seen.max(seconds);
    }

    /// Number of samples recorded (exact).
    #[must_use]
    pub fn count(&self) -> usize {
        usize::try_from(self.count).expect("sample count fits usize")
    }

    /// Whether no samples have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Arithmetic mean (exact, from the running sum), or zero when empty.
    #[must_use]
    pub fn mean(&self) -> SimDuration {
        if self.count == 0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_secs_f64(self.sum / self.count as f64)
    }

    /// The latency at nearest-rank `rank` (1-based), from the histogram.
    fn value_at_rank(&self, rank: u64) -> f64 {
        debug_assert!(rank >= 1 && rank <= self.count);
        // The extreme ranks are tracked exactly; everything between them is
        // answered from the bucket walk to within the error bound.
        if rank == 1 {
            return self.min_seen;
        }
        if rank == self.count {
            return self.max_seen;
        }
        let mut cumulative = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if cumulative >= rank {
                return bucket_value(idx).clamp(self.min_seen, self.max_seen);
            }
        }
        self.max_seen
    }

    /// The `p`-quantile (`p` in `[0, 1]`) by nearest rank; zero when empty.
    /// `p = 0` and `p = 1` are the exact min and max; interior quantiles
    /// carry at most 0.39% relative error. O(buckets), `&self`.
    #[must_use]
    pub fn percentile(&self, p: f64) -> SimDuration {
        if self.count == 0 {
            return SimDuration::ZERO;
        }
        let p = p.clamp(0.0, 1.0);
        let rank = ((p * self.count as f64).ceil() as u64).clamp(1, self.count);
        SimDuration::from_secs_f64(self.value_at_rank(rank))
    }

    /// Maximum sample (exact), or zero when empty.
    #[must_use]
    pub fn max(&self) -> SimDuration {
        if self.count == 0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_secs_f64(self.max_seen)
    }

    /// An empirical CDF with `points` evenly spaced probability levels:
    /// `(latency, cumulative_fraction)` pairs suitable for plotting Fig. 10.
    /// One interleaved walk over the buckets serves every level:
    /// O(buckets + points), `&self`.
    #[must_use]
    pub fn cdf(&self, points: usize) -> Vec<(SimDuration, f64)> {
        if self.count == 0 || points == 0 {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(points);
        let mut cumulative = 0u64;
        let mut idx = 0usize;
        for i in 1..=points {
            let frac = i as f64 / points as f64;
            let rank = ((frac * self.count as f64).ceil() as u64).clamp(1, self.count);
            // Ranks are non-decreasing in `i`, so the bucket cursor only
            // ever moves forward.
            while cumulative < rank {
                cumulative += self.buckets[idx];
                idx += 1;
            }
            let value = if rank == 1 {
                self.min_seen
            } else if rank == self.count {
                self.max_seen
            } else {
                bucket_value(idx - 1).clamp(self.min_seen, self.max_seen)
            };
            out.push((SimDuration::from_secs_f64(value), frac));
        }
        out
    }

    /// Merges another recorder's histogram into this one (bucket-wise; the
    /// result is identical to having recorded both sample streams here).
    pub fn merge(&mut self, other: &LatencyRecorder) {
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min_seen = self.min_seen.min(other.min_seen);
        self.max_seen = self.max_seen.max(other.max_seen);
    }
}

/// A per-bucket accumulator over simulated time (e.g. ops completed per
/// second, dollars charged per second).
///
/// # Examples
///
/// ```
/// use lambda_sim::{SimDuration, SimTime, Timeline};
///
/// let mut ops = Timeline::new(SimDuration::from_secs(1));
/// ops.add(SimTime::from_secs(0) + SimDuration::from_millis(300), 1.0);
/// ops.add(SimTime::from_secs(2), 5.0);
/// assert_eq!(ops.buckets(), vec![1.0, 0.0, 5.0]);
/// assert_eq!(ops.total(), 6.0);
/// ```
#[derive(Debug, Clone)]
pub struct Timeline {
    bucket: SimDuration,
    values: Vec<f64>,
}

impl Timeline {
    /// Creates a timeline with the given bucket width.
    ///
    /// # Panics
    ///
    /// Panics if `bucket` is zero.
    #[must_use]
    pub fn new(bucket: SimDuration) -> Self {
        assert!(!bucket.is_zero(), "timeline bucket must be positive");
        Timeline { bucket, values: Vec::new() }
    }

    /// Bucket width.
    #[must_use]
    pub fn bucket_width(&self) -> SimDuration {
        self.bucket
    }

    /// Adds `value` to the bucket containing instant `at`.
    pub fn add(&mut self, at: SimTime, value: f64) {
        let idx = (at.as_nanos() / self.bucket.as_nanos()) as usize;
        if idx >= self.values.len() {
            self.values.resize(idx + 1, 0.0);
        }
        self.values[idx] += value;
    }

    /// The accumulated buckets, from `t = 0`.
    #[must_use]
    pub fn buckets(&self) -> Vec<f64> {
        self.values.clone()
    }

    /// Borrowed view of the buckets.
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.values
    }

    /// Sum over all buckets.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Running (prefix-sum) series: cumulative totals at each bucket end.
    #[must_use]
    pub fn cumulative(&self) -> Vec<f64> {
        self.values
            .iter()
            .scan(0.0, |acc, v| {
                *acc += v;
                Some(*acc)
            })
            .collect()
    }

    /// Maximum bucket value, or zero when empty.
    #[must_use]
    pub fn peak(&self) -> f64 {
        self.values.iter().copied().fold(0.0, f64::max)
    }

    /// Mean bucket value over the populated range, or zero when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.total() / self.values.len() as f64
        }
    }

    /// Merges another timeline's buckets into this one (element-wise sum;
    /// identical to having accumulated both series here). Per-shard
    /// timelines merge through this after a sharded run.
    ///
    /// # Panics
    ///
    /// Panics if the bucket widths differ — summing misaligned buckets
    /// would silently smear time.
    pub fn merge(&mut self, other: &Timeline) {
        assert_eq!(
            self.bucket, other.bucket,
            "cannot merge timelines with different bucket widths"
        );
        if other.values.len() > self.values.len() {
            self.values.resize(other.values.len(), 0.0);
        }
        for (mine, theirs) in self.values.iter_mut().zip(&other.values) {
            *mine += theirs;
        }
    }

    /// Peak value of the moving sum over `window` consecutive buckets
    /// (peak *sustained* rate; zero when fewer than `window` buckets exist).
    #[must_use]
    pub fn peak_sustained(&self, window: usize) -> f64 {
        if window == 0 || self.values.len() < window {
            return 0.0;
        }
        let mut sum: f64 = self.values[..window].iter().sum();
        let mut best = sum;
        for i in window..self.values.len() {
            sum += self.values[i] - self.values[i - window];
            best = best.max(sum);
        }
        best / window as f64
    }
}

/// A sampled gauge: `(time, value)` observations of an instantaneous
/// quantity such as the number of active NameNodes.
#[derive(Debug, Clone, Default)]
pub struct GaugeSeries {
    points: Vec<(SimTime, f64)>,
}

impl GaugeSeries {
    /// Creates an empty series.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an observation. Observations must be appended in
    /// non-decreasing time order (the simulator guarantees this naturally).
    pub fn observe(&mut self, at: SimTime, value: f64) {
        debug_assert!(
            self.points.last().is_none_or(|(t, _)| *t <= at),
            "gauge observed out of order"
        );
        self.points.push((at, value));
    }

    /// All observations.
    #[must_use]
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// The most recent value at or before `at` (step interpolation), or
    /// `None` before the first observation.
    #[must_use]
    pub fn value_at(&self, at: SimTime) -> Option<f64> {
        let idx = self.points.partition_point(|(t, _)| *t <= at);
        idx.checked_sub(1).map(|i| self.points[i].1)
    }

    /// Maximum observed value, or zero when empty.
    #[must_use]
    pub fn peak(&self) -> f64 {
        self.points.iter().map(|(_, v)| *v).fold(0.0, f64::max)
    }

    /// Time-weighted average over the observed span, or zero when fewer than
    /// two observations exist.
    #[must_use]
    pub fn time_weighted_mean(&self) -> f64 {
        if self.points.len() < 2 {
            return self.points.first().map_or(0.0, |(_, v)| *v);
        }
        let mut area = 0.0;
        for pair in self.points.windows(2) {
            let (t0, v0) = pair[0];
            let (t1, _) = pair[1];
            area += v0 * (t1 - t0).as_secs_f64();
        }
        let span = (self.points[self.points.len() - 1].0 - self.points[0].0).as_secs_f64();
        if span == 0.0 {
            self.points[0].1
        } else {
            area / span
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Relative error of the histogram answer vs the exact value.
    fn rel_err(approx: f64, exact: f64) -> f64 {
        if exact == 0.0 {
            approx.abs()
        } else {
            (approx - exact).abs() / exact
        }
    }

    #[test]
    fn percentiles_match_nearest_rank_within_error_bound() {
        let mut rec = LatencyRecorder::new();
        for ms in 1..=100u64 {
            rec.record(SimDuration::from_millis(ms));
        }
        // Interior quantiles carry the log-bucket error (≤ 0.39%, budget 1%).
        assert!(rel_err(rec.percentile(0.50).as_millis_f64(), 50.0) < 0.01);
        assert!(rel_err(rec.percentile(0.99).as_millis_f64(), 99.0) < 0.01);
        // The extremes are exact.
        assert_eq!(rec.percentile(1.0).as_millis_f64(), 100.0);
        assert_eq!(rec.percentile(0.0).as_millis_f64(), 1.0);
        assert_eq!(rec.max().as_millis_f64(), 100.0);
    }

    #[test]
    fn quantiles_stay_within_one_percent_across_magnitudes() {
        // Samples spanning 7 decades (1µs .. 10s), recorded in a scrambled
        // order; every nearest-rank quantile must agree with a sorted
        // reference within the 1% budget.
        let mut exact: Vec<f64> = (0..5_000u64)
            .map(|i| 1e-6 * (10f64).powf(i as f64 * 7.0 / 5_000.0))
            .collect();
        let mut rec = LatencyRecorder::new();
        for i in 0..exact.len() {
            let j = (i * 2_654_435_761) % exact.len(); // scrambled insert order
            rec.record(SimDuration::from_secs_f64(exact[j]));
        }
        exact.sort_by(f64::total_cmp);
        for p in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999] {
            let rank = ((p * exact.len() as f64).ceil() as usize).clamp(1, exact.len());
            let reference = exact[rank - 1];
            let answer = rec.percentile(p).as_secs_f64();
            assert!(
                rel_err(answer, reference) < 0.01,
                "p{p}: histogram {answer} vs exact {reference}"
            );
        }
    }

    #[test]
    fn empty_recorder_answers_zero() {
        let rec = LatencyRecorder::new();
        assert!(rec.is_empty());
        assert_eq!(rec.mean(), SimDuration::ZERO);
        assert_eq!(rec.percentile(0.5), SimDuration::ZERO);
        assert_eq!(rec.max(), SimDuration::ZERO);
        assert!(rec.cdf(10).is_empty());
    }

    #[test]
    fn zero_latencies_are_representable() {
        let mut rec = LatencyRecorder::new();
        rec.record(SimDuration::ZERO);
        rec.record(SimDuration::ZERO);
        assert_eq!(rec.percentile(0.5), SimDuration::ZERO);
        assert_eq!(rec.max(), SimDuration::ZERO);
        assert_eq!(rec.mean(), SimDuration::ZERO);
    }

    #[test]
    fn cdf_is_monotone() {
        let mut rec = LatencyRecorder::new();
        for ms in [5u64, 1, 9, 3, 7, 2, 8, 4, 6, 10] {
            rec.record(SimDuration::from_millis(ms));
        }
        let cdf = rec.cdf(10);
        assert_eq!(cdf.len(), 10);
        for pair in cdf.windows(2) {
            assert!(pair[0].0 <= pair[1].0);
            assert!(pair[0].1 < pair[1].1);
        }
        assert_eq!(cdf[9].0.as_millis_f64(), 10.0);
        assert_eq!(cdf[9].1, 1.0);
    }

    #[test]
    fn cdf_agrees_with_percentile_at_every_level() {
        let mut rec = LatencyRecorder::new();
        for us in (1..2_000u64).map(|i| i * 37 % 50_000 + 1) {
            rec.record(SimDuration::from_micros(us));
        }
        let points = 40;
        let cdf = rec.cdf(points);
        for (i, (latency, frac)) in cdf.iter().enumerate() {
            assert_eq!(*frac, (i + 1) as f64 / points as f64);
            assert_eq!(*latency, rec.percentile(*frac), "level {frac}");
        }
    }

    #[test]
    fn interleaved_records_and_queries_stay_consistent() {
        // Regression test for the streaming rewrite: the old recorder
        // re-sorted its sample vector on every query after a record, making
        // record/query interleavings O(n log n) each. The histogram must
        // answer queries mid-stream, cheaply, and without perturbing later
        // answers.
        let mut rec = LatencyRecorder::new();
        for ms in 1..=50u64 {
            rec.record(SimDuration::from_millis(ms));
        }
        let mid = rec.percentile(0.5).as_millis_f64();
        assert!(rel_err(mid, 25.0) < 0.01, "p50 of 1..=50 was {mid}");
        // Queries are &self and leave no cached state: ask again, same answer.
        assert_eq!(rec.percentile(0.5).as_millis_f64(), mid);
        let _ = rec.cdf(10);
        for ms in 51..=100u64 {
            rec.record(SimDuration::from_millis(ms));
        }
        let full = rec.percentile(0.5).as_millis_f64();
        assert!(rel_err(full, 50.0) < 0.01, "p50 of 1..=100 was {full}");
        assert_eq!(rec.count(), 100);
        assert_eq!(rec.max().as_millis_f64(), 100.0);
    }

    #[test]
    fn merge_combines_samples() {
        let mut a = LatencyRecorder::new();
        let mut b = LatencyRecorder::new();
        a.record(SimDuration::from_millis(1));
        b.record(SimDuration::from_millis(3));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.mean().as_millis_f64(), 2.0);
    }

    #[test]
    fn merge_equals_recording_both_streams() {
        let mut merged = LatencyRecorder::new();
        let mut separate = LatencyRecorder::new();
        let mut other = LatencyRecorder::new();
        for i in 0..500u64 {
            let d = SimDuration::from_micros(i * 13 % 9_000 + 1);
            if i % 3 == 0 {
                other.record(d);
            } else {
                merged.record(d);
            }
            separate.record(d);
        }
        merged.merge(&other);
        assert_eq!(merged.count(), separate.count());
        assert_eq!(merged.max(), separate.max());
        for p in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(merged.percentile(p), separate.percentile(p));
        }
    }

    #[test]
    fn timeline_merge_equals_accumulating_both_series() {
        let mut merged = Timeline::new(SimDuration::from_secs(1));
        let mut other = Timeline::new(SimDuration::from_secs(1));
        let mut reference = Timeline::new(SimDuration::from_secs(1));
        for (sec, v) in [(0u64, 1.0), (1, 2.0), (4, 3.0), (2, 0.5)] {
            if sec % 2 == 0 {
                other.add(SimTime::from_secs(sec), v);
            } else {
                merged.add(SimTime::from_secs(sec), v);
            }
            reference.add(SimTime::from_secs(sec), v);
        }
        merged.merge(&other);
        assert_eq!(merged.buckets(), reference.buckets());
        assert_eq!(merged.total(), reference.total());
    }

    #[test]
    #[should_panic(expected = "different bucket widths")]
    fn timeline_merge_rejects_mismatched_widths() {
        let mut a = Timeline::new(SimDuration::from_secs(1));
        let b = Timeline::new(SimDuration::from_secs(10));
        a.merge(&b);
    }

    #[test]
    fn timeline_buckets_and_cumulative() {
        let mut t = Timeline::new(SimDuration::from_secs(1));
        t.add(SimTime::from_nanos(500_000_000), 2.0);
        t.add(SimTime::from_secs(1), 3.0);
        t.add(SimTime::from_secs(3), 1.0);
        assert_eq!(t.buckets(), vec![2.0, 3.0, 0.0, 1.0]);
        assert_eq!(t.cumulative(), vec![2.0, 5.0, 5.0, 6.0]);
        assert_eq!(t.peak(), 3.0);
        assert_eq!(t.mean(), 1.5);
    }

    #[test]
    fn peak_sustained_window() {
        let mut t = Timeline::new(SimDuration::from_secs(1));
        for (sec, v) in [(0u64, 1.0), (1, 10.0), (2, 10.0), (3, 1.0)] {
            t.add(SimTime::from_secs(sec), v);
        }
        assert_eq!(t.peak_sustained(2), 10.0);
        assert_eq!(t.peak_sustained(4), 5.5);
        assert_eq!(t.peak_sustained(0), 0.0);
        assert_eq!(t.peak_sustained(10), 0.0);
    }

    #[test]
    fn gauge_step_interpolation() {
        let mut g = GaugeSeries::new();
        g.observe(SimTime::from_secs(1), 10.0);
        g.observe(SimTime::from_secs(3), 20.0);
        assert_eq!(g.value_at(SimTime::ZERO), None);
        assert_eq!(g.value_at(SimTime::from_secs(1)), Some(10.0));
        assert_eq!(g.value_at(SimTime::from_secs(2)), Some(10.0));
        assert_eq!(g.value_at(SimTime::from_secs(5)), Some(20.0));
        assert_eq!(g.peak(), 20.0);
    }

    #[test]
    fn gauge_time_weighted_mean() {
        let mut g = GaugeSeries::new();
        g.observe(SimTime::from_secs(0), 0.0);
        g.observe(SimTime::from_secs(1), 10.0);
        g.observe(SimTime::from_secs(3), 0.0);
        // 0 for 1s, then 10 for 2s over a 3s span => 20/3.
        assert!((g.time_weighted_mean() - 20.0 / 3.0).abs() < 1e-9);
    }
}
