//! Measurement instruments: latency recorders, per-second timelines, and
//! gauge series.
//!
//! These are the instruments the experiment harness reads to regenerate the
//! paper's figures: throughput-over-time curves (Fig. 8, 15), latency CDFs
//! (Fig. 10), active-NameNode counts (Fig. 8's secondary axis), and the
//! per-second cost series behind Fig. 8(c) and Fig. 9.

use crate::time::{SimDuration, SimTime};

/// Records individual latency samples and answers distribution queries.
///
/// Samples are stored exactly (8 bytes each); percentile queries sort a
/// cached copy lazily.
///
/// # Examples
///
/// ```
/// use lambda_sim::{LatencyRecorder, SimDuration};
///
/// let mut rec = LatencyRecorder::new();
/// for ms in [1u64, 2, 3, 4, 100] {
///     rec.record(SimDuration::from_millis(ms));
/// }
/// assert_eq!(rec.count(), 5);
/// assert_eq!(rec.mean().as_millis_f64(), 22.0);
/// assert_eq!(rec.percentile(0.5).as_millis_f64(), 3.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct LatencyRecorder {
    samples: Vec<f64>, // seconds
    sorted: bool,
}

impl LatencyRecorder {
    /// Creates an empty recorder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, latency: SimDuration) {
        self.samples.push(latency.as_secs_f64());
        self.sorted = false;
    }

    /// Number of samples recorded.
    #[must_use]
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean, or zero when empty.
    #[must_use]
    pub fn mean(&self) -> SimDuration {
        if self.samples.is_empty() {
            return SimDuration::ZERO;
        }
        let total: f64 = self.samples.iter().sum();
        SimDuration::from_secs_f64(total / self.samples.len() as f64)
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples.sort_by(|a, b| a.total_cmp(b));
            self.sorted = true;
        }
    }

    /// The `p`-quantile (`p` in `[0, 1]`), by nearest-rank on the sorted
    /// samples; zero when empty.
    #[must_use]
    pub fn percentile(&mut self, p: f64) -> SimDuration {
        if self.samples.is_empty() {
            return SimDuration::ZERO;
        }
        self.ensure_sorted();
        let p = p.clamp(0.0, 1.0);
        let rank = ((p * self.samples.len() as f64).ceil() as usize).clamp(1, self.samples.len());
        SimDuration::from_secs_f64(self.samples[rank - 1])
    }

    /// Maximum sample, or zero when empty.
    #[must_use]
    pub fn max(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.samples.iter().copied().fold(0.0, f64::max))
    }

    /// An empirical CDF with `points` evenly spaced probability levels:
    /// `(latency, cumulative_fraction)` pairs suitable for plotting Fig. 10.
    #[must_use]
    pub fn cdf(&mut self, points: usize) -> Vec<(SimDuration, f64)> {
        if self.samples.is_empty() || points == 0 {
            return Vec::new();
        }
        self.ensure_sorted();
        let n = self.samples.len();
        (1..=points)
            .map(|i| {
                let frac = i as f64 / points as f64;
                let rank = ((frac * n as f64).ceil() as usize).clamp(1, n);
                (SimDuration::from_secs_f64(self.samples[rank - 1]), frac)
            })
            .collect()
    }

    /// Merges another recorder's samples into this one.
    pub fn merge(&mut self, other: &LatencyRecorder) {
        self.samples.extend_from_slice(&other.samples);
        self.sorted = false;
    }
}

/// A per-bucket accumulator over simulated time (e.g. ops completed per
/// second, dollars charged per second).
///
/// # Examples
///
/// ```
/// use lambda_sim::{SimDuration, SimTime, Timeline};
///
/// let mut ops = Timeline::new(SimDuration::from_secs(1));
/// ops.add(SimTime::from_secs(0) + SimDuration::from_millis(300), 1.0);
/// ops.add(SimTime::from_secs(2), 5.0);
/// assert_eq!(ops.buckets(), vec![1.0, 0.0, 5.0]);
/// assert_eq!(ops.total(), 6.0);
/// ```
#[derive(Debug, Clone)]
pub struct Timeline {
    bucket: SimDuration,
    values: Vec<f64>,
}

impl Timeline {
    /// Creates a timeline with the given bucket width.
    ///
    /// # Panics
    ///
    /// Panics if `bucket` is zero.
    #[must_use]
    pub fn new(bucket: SimDuration) -> Self {
        assert!(!bucket.is_zero(), "timeline bucket must be positive");
        Timeline { bucket, values: Vec::new() }
    }

    /// Bucket width.
    #[must_use]
    pub fn bucket_width(&self) -> SimDuration {
        self.bucket
    }

    /// Adds `value` to the bucket containing instant `at`.
    pub fn add(&mut self, at: SimTime, value: f64) {
        let idx = (at.as_nanos() / self.bucket.as_nanos()) as usize;
        if idx >= self.values.len() {
            self.values.resize(idx + 1, 0.0);
        }
        self.values[idx] += value;
    }

    /// The accumulated buckets, from `t = 0`.
    #[must_use]
    pub fn buckets(&self) -> Vec<f64> {
        self.values.clone()
    }

    /// Borrowed view of the buckets.
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.values
    }

    /// Sum over all buckets.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Running (prefix-sum) series: cumulative totals at each bucket end.
    #[must_use]
    pub fn cumulative(&self) -> Vec<f64> {
        self.values
            .iter()
            .scan(0.0, |acc, v| {
                *acc += v;
                Some(*acc)
            })
            .collect()
    }

    /// Maximum bucket value, or zero when empty.
    #[must_use]
    pub fn peak(&self) -> f64 {
        self.values.iter().copied().fold(0.0, f64::max)
    }

    /// Mean bucket value over the populated range, or zero when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.total() / self.values.len() as f64
        }
    }

    /// Peak value of the moving sum over `window` consecutive buckets
    /// (peak *sustained* rate; zero when fewer than `window` buckets exist).
    #[must_use]
    pub fn peak_sustained(&self, window: usize) -> f64 {
        if window == 0 || self.values.len() < window {
            return 0.0;
        }
        let mut sum: f64 = self.values[..window].iter().sum();
        let mut best = sum;
        for i in window..self.values.len() {
            sum += self.values[i] - self.values[i - window];
            best = best.max(sum);
        }
        best / window as f64
    }
}

/// A sampled gauge: `(time, value)` observations of an instantaneous
/// quantity such as the number of active NameNodes.
#[derive(Debug, Clone, Default)]
pub struct GaugeSeries {
    points: Vec<(SimTime, f64)>,
}

impl GaugeSeries {
    /// Creates an empty series.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an observation. Observations must be appended in
    /// non-decreasing time order (the simulator guarantees this naturally).
    pub fn observe(&mut self, at: SimTime, value: f64) {
        debug_assert!(
            self.points.last().is_none_or(|(t, _)| *t <= at),
            "gauge observed out of order"
        );
        self.points.push((at, value));
    }

    /// All observations.
    #[must_use]
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// The most recent value at or before `at` (step interpolation), or
    /// `None` before the first observation.
    #[must_use]
    pub fn value_at(&self, at: SimTime) -> Option<f64> {
        let idx = self.points.partition_point(|(t, _)| *t <= at);
        idx.checked_sub(1).map(|i| self.points[i].1)
    }

    /// Maximum observed value, or zero when empty.
    #[must_use]
    pub fn peak(&self) -> f64 {
        self.points.iter().map(|(_, v)| *v).fold(0.0, f64::max)
    }

    /// Time-weighted average over the observed span, or zero when fewer than
    /// two observations exist.
    #[must_use]
    pub fn time_weighted_mean(&self) -> f64 {
        if self.points.len() < 2 {
            return self.points.first().map_or(0.0, |(_, v)| *v);
        }
        let mut area = 0.0;
        for pair in self.points.windows(2) {
            let (t0, v0) = pair[0];
            let (t1, _) = pair[1];
            area += v0 * (t1 - t0).as_secs_f64();
        }
        let span = (self.points[self.points.len() - 1].0 - self.points[0].0).as_secs_f64();
        if span == 0.0 {
            self.points[0].1
        } else {
            area / span
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank() {
        let mut rec = LatencyRecorder::new();
        for ms in 1..=100u64 {
            rec.record(SimDuration::from_millis(ms));
        }
        assert_eq!(rec.percentile(0.50).as_millis_f64(), 50.0);
        assert_eq!(rec.percentile(0.99).as_millis_f64(), 99.0);
        assert_eq!(rec.percentile(1.0).as_millis_f64(), 100.0);
        assert_eq!(rec.percentile(0.0).as_millis_f64(), 1.0);
        assert_eq!(rec.max().as_millis_f64(), 100.0);
    }

    #[test]
    fn empty_recorder_answers_zero() {
        let mut rec = LatencyRecorder::new();
        assert!(rec.is_empty());
        assert_eq!(rec.mean(), SimDuration::ZERO);
        assert_eq!(rec.percentile(0.5), SimDuration::ZERO);
        assert!(rec.cdf(10).is_empty());
    }

    #[test]
    fn cdf_is_monotone() {
        let mut rec = LatencyRecorder::new();
        for ms in [5u64, 1, 9, 3, 7, 2, 8, 4, 6, 10] {
            rec.record(SimDuration::from_millis(ms));
        }
        let cdf = rec.cdf(10);
        assert_eq!(cdf.len(), 10);
        for pair in cdf.windows(2) {
            assert!(pair[0].0 <= pair[1].0);
            assert!(pair[0].1 < pair[1].1);
        }
        assert_eq!(cdf[9].0.as_millis_f64(), 10.0);
        assert_eq!(cdf[9].1, 1.0);
    }

    #[test]
    fn merge_combines_samples() {
        let mut a = LatencyRecorder::new();
        let mut b = LatencyRecorder::new();
        a.record(SimDuration::from_millis(1));
        b.record(SimDuration::from_millis(3));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.mean().as_millis_f64(), 2.0);
    }

    #[test]
    fn timeline_buckets_and_cumulative() {
        let mut t = Timeline::new(SimDuration::from_secs(1));
        t.add(SimTime::from_nanos(500_000_000), 2.0);
        t.add(SimTime::from_secs(1), 3.0);
        t.add(SimTime::from_secs(3), 1.0);
        assert_eq!(t.buckets(), vec![2.0, 3.0, 0.0, 1.0]);
        assert_eq!(t.cumulative(), vec![2.0, 5.0, 5.0, 6.0]);
        assert_eq!(t.peak(), 3.0);
        assert_eq!(t.mean(), 1.5);
    }

    #[test]
    fn peak_sustained_window() {
        let mut t = Timeline::new(SimDuration::from_secs(1));
        for (sec, v) in [(0u64, 1.0), (1, 10.0), (2, 10.0), (3, 1.0)] {
            t.add(SimTime::from_secs(sec), v);
        }
        assert_eq!(t.peak_sustained(2), 10.0);
        assert_eq!(t.peak_sustained(4), 5.5);
        assert_eq!(t.peak_sustained(0), 0.0);
        assert_eq!(t.peak_sustained(10), 0.0);
    }

    #[test]
    fn gauge_step_interpolation() {
        let mut g = GaugeSeries::new();
        g.observe(SimTime::from_secs(1), 10.0);
        g.observe(SimTime::from_secs(3), 20.0);
        assert_eq!(g.value_at(SimTime::ZERO), None);
        assert_eq!(g.value_at(SimTime::from_secs(1)), Some(10.0));
        assert_eq!(g.value_at(SimTime::from_secs(2)), Some(10.0));
        assert_eq!(g.value_at(SimTime::from_secs(5)), Some(20.0));
        assert_eq!(g.peak(), 20.0);
    }

    #[test]
    fn gauge_time_weighted_mean() {
        let mut g = GaugeSeries::new();
        g.observe(SimTime::from_secs(0), 0.0);
        g.observe(SimTime::from_secs(1), 10.0);
        g.observe(SimTime::from_secs(3), 0.0);
        // 0 for 1s, then 10 for 2s over a 3s span => 20/3.
        assert!((g.time_weighted_mean() - 20.0 / 3.0).abs() < 1e-9);
    }
}
