//! # lambda-sim
//!
//! Deterministic discrete-event simulation (DES) substrate for the
//! [λFS (ASPLOS '23)](https://doi.org/10.1145/3623278.3624765) reproduction.
//!
//! The original system runs across AWS: EC2 client VMs, an OpenWhisk
//! cluster, a MySQL Cluster NDB deployment, and ZooKeeper. This crate
//! replaces that distributed environment with a single-threaded,
//! reproducible virtual-time engine on which the *real* protocol
//! implementations (metadata caching, coherence, auto-scaling, transactions)
//! execute under a calibrated performance model.
//!
//! ## What lives here
//!
//! * [`Sim`] — the event engine: virtual clock, FIFO-stable event queue,
//!   seeded RNG ([`SimRng`]).
//! * [`Station`] — multi-server FIFO queueing stations modeling CPUs and
//!   storage shards; saturation and queueing delay emerge from these.
//! * [`LatencyRecorder`], [`Timeline`], [`GaugeSeries`] — the instruments
//!   behind every figure in the reproduced evaluation.
//! * [`CostMeter`], [`LambdaPricing`], [`VmPricing`] — the two pricing
//!   models of §5.2.5 / Fig. 9.
//! * [`params`] — every shared calibration constant, in one auditable
//!   place.
//!
//! ## Example
//!
//! ```
//! use lambda_sim::{Sim, SimDuration, Station};
//! use std::cell::Cell;
//! use std::rc::Rc;
//!
//! let mut sim = Sim::new(42);
//! let cpu = Station::new("namenode-cpu", 4);
//! let served = Rc::new(Cell::new(0u64));
//!
//! for _ in 0..100 {
//!     let served = Rc::clone(&served);
//!     let service = SimDuration::from_micros(sim.rng().gen_range(100..200));
//!     Station::submit(&cpu, &mut sim, service, move |_| {
//!         served.set(served.get() + 1);
//!     });
//! }
//! sim.run();
//! assert_eq!(served.get(), 100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
mod cost;
mod engine;
pub mod fault;
mod metrics;
pub mod params;
mod rng;
pub mod shard;
mod station;
mod sync;
mod time;
mod wheel;

pub use cost::{CostMeter, LambdaPricing, VmPricing};
pub use engine::{every, Event, Sim};
pub use fault::{
    ColdStartStorm, FaultInjector, FaultPlan, FaultWindow, KillBurst, NetDecision, NetFault,
    NetFaultKind, Partition, ShardOutage,
};
pub use metrics::{GaugeSeries, LatencyRecorder, Timeline};
pub use rng::{Dist, SimRng};
pub use shard::{domain_seed, run_sharded, ShardConfig, ShardWorld};
pub use station::{Station, StationRef, StationStats};
pub use sync::{Envelope, ShardLink};
pub use time::{SimDuration, SimTime};
