//! Platform implementation: deployments, instances, routing, billing.
//!
//! # Hot-path layout
//!
//! This is the overhauled control plane (the pre-overhaul version lives in
//! [`crate::baseline`] and must stay observably identical — see
//! `tests/platform_differential.rs`):
//!
//! * **Slab instance table.** Instances live in `slots: Vec<Option<..>>`
//!   recycled through a freelist; `id_to_slot` maps the stable, public
//!   [`InstanceId`] (still allocated 1, 2, 3, … exactly as before) to its
//!   current slot in O(1). `live_ids` keeps the live ids sorted ascending so
//!   every place the old `BTreeMap` iteration order was observable — billing
//!   flush (floating-point summation order!), eviction scans, diagnostics —
//!   walks instances in the identical order.
//! * **Per-deployment ready heaps.** Routing an HTTP request no longer scans
//!   the deployment's instances: a lazy min-heap of `(active_http, id)` keys
//!   is maintained on every slot-count change, and stale entries are popped
//!   on inspection. The first entry that matches the instance's *current*
//!   state is exactly the `min_by_key((active_http, id))` the old scan chose.
//! * **Per-deployment idle lists.** Warm instances with no in-flight work
//!   sit on an intrusive doubly-linked list ordered by `last_activity`
//!   (insertion at the tail keeps it sorted because simulation time is
//!   monotone), so a reclamation scan touches only the idle prefix instead
//!   of the whole table. The scan *cadence* deliberately stays on the
//!   periodic `every()` tick: moving each instance onto its own timing-wheel
//!   timer would reclaim at different instants and change the seeded figure
//!   outputs.
//! * **Pooled invocation records.** Dispatch used to box a wrapper closure
//!   per request; now the caller's [`Responder`] is parked in a slab of
//!   invocation records and the function receives a pooled responder — two
//!   words plus an `Rc` bump, no allocation — that completes or abandons the
//!   record by index.
//! * **Config snapshot.** The per-request constants (gateway overhead
//!   distribution, pricing, TTL) are copied into a `Copy` snapshot at
//!   construction so the invoke path never clones config.

use std::cell::{Cell, RefCell};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::fmt;
use std::mem;
use std::rc::{Rc, Weak};

use lambda_sim::params::{FaasParams, NetParams};
use lambda_sim::{
    CostMeter, Dist, GaugeSeries, LambdaPricing, Sim, SimDuration, SimTime, Station, StationRef,
};

/// Sentinel slot index for "not linked" (idle list) / "not live" (id map).
const NIL: u32 = u32::MAX;

/// Identifies a function deployment registered with the platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DeploymentId(u32);

impl DeploymentId {
    /// The raw deployment index (used by partitioners).
    #[must_use]
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// Builds a deployment id from its raw index.
    #[must_use]
    pub const fn from_raw(raw: u32) -> Self {
        DeploymentId(raw)
    }
}

impl fmt::Display for DeploymentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deployment#{}", self.0)
    }
}

/// Identifies one running (or starting) function instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InstanceId(u64);

impl InstanceId {
    pub(crate) const fn from_raw(raw: u64) -> Self {
        InstanceId(raw)
    }

    pub(crate) const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for InstanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "instance#{}", self.0)
    }
}

/// Where a pooled responder delivers its response: the platform core, which
/// owns the parked invocation record. Object-safe so `Responder` need not be
/// generic over the function type.
trait CompletionSink<Resp> {
    /// Deliver `resp` for the invocation parked in `slot`.
    fn complete(&self, sim: &mut Sim, slot: u32, resp: Resp);
    /// Free the record without completing (the function dropped the
    /// responder; the caller's wait leaks, as with a real crash).
    fn abandon(&self, slot: u32);
}

/// A boxed caller-supplied completion closure.
type CompletionFn<Resp> = Box<dyn FnOnce(&mut Sim, Resp)>;

enum ResponderInner<Resp> {
    /// A caller-supplied completion closure.
    Fn(CompletionFn<Resp>),
    /// A platform-pooled invocation record (no per-dispatch allocation).
    Pooled { sink: Rc<dyn CompletionSink<Resp>>, slot: u32 },
    /// Already sent (or abandoned).
    Consumed,
}

/// The completion callback handed to [`Function::on_request`]; calling
/// [`Responder::send`] delivers the response (unless the instance has died
/// in the meantime) and releases the request's concurrency slot. Dropping a
/// responder without sending leaks the caller's wait (the client-side
/// timeout handles that, as it does for real crashes).
pub struct Responder<Resp> {
    inner: ResponderInner<Resp>,
}

impl<Resp> Responder<Resp> {
    /// Wraps a completion closure into a responder.
    pub fn new(f: impl FnOnce(&mut Sim, Resp) + 'static) -> Self {
        Responder { inner: ResponderInner::Fn(Box::new(f)) }
    }

    fn pooled(sink: Rc<dyn CompletionSink<Resp>>, slot: u32) -> Self {
        Responder { inner: ResponderInner::Pooled { sink, slot } }
    }

    /// Delivers the response. Consumes the responder; each responder must
    /// be sent at most once.
    pub fn send(mut self, sim: &mut Sim, resp: Resp) {
        match mem::replace(&mut self.inner, ResponderInner::Consumed) {
            ResponderInner::Fn(f) => f(sim, resp),
            ResponderInner::Pooled { sink, slot } => sink.complete(sim, slot, resp),
            ResponderInner::Consumed => {}
        }
    }
}

impl<Resp> Drop for Responder<Resp> {
    fn drop(&mut self) {
        if let ResponderInner::Pooled { sink, slot } =
            mem::replace(&mut self.inner, ResponderInner::Consumed)
        {
            sink.abandon(slot);
        }
    }
}

impl<Resp> fmt::Debug for Responder<Resp> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match &self.inner {
            ResponderInner::Fn(_) => "fn",
            ResponderInner::Pooled { .. } => "pooled",
            ResponderInner::Consumed => "consumed",
        };
        f.debug_struct("Responder").field("kind", &kind).finish()
    }
}

/// User code executed inside function instances (the NameNode, in λFS).
///
/// Implementations must not call back into the platform from their
/// constructor (the factory); platform interaction belongs in `on_start`
/// and later.
pub trait Function: 'static {
    /// Request payload type.
    type Req: 'static;
    /// Response payload type.
    type Resp: 'static;

    /// Called once when the instance finishes cold-starting.
    fn on_start(&mut self, sim: &mut Sim, ctx: &InstanceCtx);

    /// Called for each request routed to this instance (HTTP or TCP).
    ///
    /// The implementation owns `respond` and must call it exactly once for
    /// the request to complete; dropping it leaks the caller's wait (the
    /// client-side timeout handles that, as it does for real crashes).
    fn on_request(&mut self, sim: &mut Sim, ctx: &InstanceCtx, req: Self::Req, respond: Responder<Self::Resp>);

    /// Called on graceful termination (idle reclamation). **Not** called
    /// when the instance is killed — a crash runs no cleanup.
    fn on_terminate(&mut self, sim: &mut Sim, ctx: &InstanceCtx, graceful: bool);
}

/// The environment an instance runs in.
#[derive(Debug, Clone)]
pub struct InstanceCtx {
    /// This instance's id.
    pub instance: InstanceId,
    /// The owning deployment.
    pub deployment: DeploymentId,
    /// The instance's CPU: one queueing station with `vcpus` servers.
    pub cpu: StationRef,
    /// vCPUs allocated to the instance.
    pub vcpus: u32,
    /// Memory allocated to the instance, in GB.
    pub mem_gb: f64,
    pub(crate) alive: Rc<Cell<bool>>,
}

impl InstanceCtx {
    /// Whether the instance is still alive. Periodic tasks owned by the
    /// function must check this and stop when it turns false.
    #[must_use]
    pub fn is_alive(&self) -> bool {
        self.alive.get()
    }
}

/// Per-deployment resource configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionConfig {
    /// vCPUs per instance (λFS default: 5–6.25 vCPU NameNodes).
    pub vcpus: u32,
    /// Memory per instance in GB (λFS used 6–30 GB).
    pub mem_gb: f64,
    /// `ConcurrencyLevel`: concurrent HTTP requests one instance may serve
    /// (the paper's OpenWhisk extension, §3.4). TCP requests are not
    /// gated by this — they bypass the platform entirely.
    pub concurrency: u32,
    /// Upper bound on instances of this deployment (`u32::MAX` = platform
    /// limits only). Fig. 14's "limited"/"disabled" auto-scaling ablations
    /// set this to 2–3 / 1.
    pub max_instances: u32,
    /// Lower bound kept warm: idle reclamation never shrinks the
    /// deployment below this. This is the "provisioned concurrency"
    /// mitigation for warm-function reclamation that the paper leaves as
    /// future work (§4 "Porting λFS to Commercial FaaS Platforms").
    pub min_instances: u32,
}

impl Default for FunctionConfig {
    fn default() -> Self {
        FunctionConfig {
            vcpus: 6,
            mem_gb: 6.0,
            concurrency: 4,
            max_instances: u32::MAX,
            min_instances: 0,
        }
    }
}

/// Platform-wide configuration.
#[derive(Debug, Clone)]
pub struct PlatformConfig {
    /// Total vCPUs the platform may allocate across all instances (the
    /// evaluation's fairness cap; nearly unbounded in a public cloud).
    pub cluster_vcpus: u32,
    /// Cold start, reclamation, and scan-interval behavior.
    pub faas: FaasParams,
    /// Network latency model (gateway overhead).
    pub net: NetParams,
    /// Pay-per-use prices.
    pub pricing: LambdaPricing,
    /// Queued HTTP invocations older than this are dropped (the client
    /// will have timed out and resubmitted anyway).
    pub request_ttl: SimDuration,
}

impl Default for PlatformConfig {
    fn default() -> Self {
        PlatformConfig {
            cluster_vcpus: 512,
            faas: FaasParams::default(),
            net: NetParams::default(),
            pricing: LambdaPricing::default(),
            request_ttl: SimDuration::from_secs(10),
        }
    }
}

/// Cumulative platform counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlatformStats {
    /// HTTP invocations accepted at the gateway.
    pub http_invocations: u64,
    /// Direct TCP deliveries.
    pub tcp_deliveries: u64,
    /// Instances cold-started.
    pub cold_starts: u64,
    /// Idle instances reclaimed (graceful scale-in).
    pub reclaims: u64,
    /// Instances forcefully killed (fault injection).
    pub kills: u64,
    /// Queued invocations dropped after exceeding the request TTL.
    pub expired_requests: u64,
    /// Warm instances of other deployments terminated to make room for a
    /// deployment that had queued work but no instance (capacity-pressure
    /// eviction).
    pub evictions: u64,
}

/// The `Copy` subset of [`PlatformConfig`] read on every request, hoisted
/// out so the hot path never touches (or clones from) the full config.
#[derive(Clone, Copy)]
struct ConfigSnapshot {
    cluster_vcpus: u32,
    pricing: LambdaPricing,
    request_ttl: SimDuration,
    http_overhead: Dist,
    cold_start: Dist,
    idle_after: SimDuration,
    scan_every: SimDuration,
}

impl ConfigSnapshot {
    fn of(cfg: &PlatformConfig) -> Self {
        ConfigSnapshot {
            cluster_vcpus: cfg.cluster_vcpus,
            pricing: cfg.pricing,
            request_ttl: cfg.request_ttl,
            http_overhead: cfg.net.http_overhead,
            cold_start: cfg.faas.cold_start,
            idle_after: cfg.faas.idle_reclaim_after,
            scan_every: cfg.faas.reclaim_scan_every,
        }
    }
}

struct Queued<F: Function> {
    req: F::Req,
    respond: Responder<F::Resp>,
    enqueued: SimTime,
}

struct DeploymentState<F: Function> {
    name: Rc<str>,
    config: FunctionConfig,
    factory: Box<dyn Fn(&InstanceCtx) -> F>,
    /// Starting + warm instances, in creation order.
    instances: Vec<InstanceId>,
    queue: VecDeque<Queued<F>>,
    /// Instances currently cold-starting (O(1) scale-out governor).
    starting: u32,
    /// Lazy min-heap of `(active_http, instance id)` over possibly-ready
    /// warm instances; stale entries are discarded when inspected.
    ready: BinaryHeap<Reverse<(u32, u64)>>,
    /// Intrusive list (slot indices) of warm instances with no in-flight
    /// work, ordered by `last_activity` ascending: head is the coldest.
    idle_head: u32,
    idle_tail: u32,
}

struct InstanceState<F: Function> {
    ctx: Rc<InstanceCtx>,
    /// `None` while cold-starting or while a call into the function is on
    /// the stack (taken out to allow re-entrancy).
    function: Option<F>,
    warm: bool,
    active_http: u32,
    active_total: u32,
    active_since: Option<SimTime>,
    last_activity: SimTime,
    /// When the cold start began; protects young instances from
    /// capacity-pressure eviction.
    created: SimTime,
    idle_prev: u32,
    idle_next: u32,
    in_idle: bool,
}

/// A dispatched-but-uncompleted request parked in the invocation slab.
struct Invocation<F: Function> {
    instance: InstanceId,
    is_http: bool,
    respond: Responder<F::Resp>,
}

struct Inner<F: Function> {
    snap: ConfigSnapshot,
    deployments: Vec<DeploymentState<F>>,
    /// Slab of instance states; `free_slots` recycles vacancies.
    slots: Vec<Option<InstanceState<F>>>,
    free_slots: Vec<u32>,
    /// Raw instance id → slot (`NIL` once dead). Ids are sequential, so
    /// this grows by one u32 per instance ever created.
    id_to_slot: Vec<u32>,
    /// Live instance ids, ascending — the replacement for the old
    /// `BTreeMap` iteration order everywhere that order is observable.
    live_ids: Vec<InstanceId>,
    /// Invocation-record slab + freelist: dispatch/completion recycle
    /// records instead of boxing a wrapper closure per request.
    invocations: Vec<Option<Invocation<F>>>,
    free_invocations: Vec<u32>,
    next_instance: u64,
    used_vcpus: u32,
    peak_vcpus: u32,
    pay_meter: CostMeter,
    prov_meter: CostMeter,
    gauge: GaugeSeries,
    stats: PlatformStats,
    maintenance_running: bool,
    maintenance_stopped: bool,
    victims_scratch: Vec<InstanceId>,
    remaining_scratch: Vec<usize>,
    /// Cold-start latency multiplier (fault injection). Exactly `1.0`
    /// outside storm windows, in which case the sampled delay is used
    /// untouched — so an idle injector cannot perturb the event trace.
    cold_start_factor: f64,
}

impl<F: Function> Inner<F> {
    fn slot_of(&self, id: InstanceId) -> Option<u32> {
        match self.id_to_slot.get(id.raw() as usize).copied() {
            Some(slot) if slot != NIL => Some(slot),
            _ => None,
        }
    }

    fn state(&self, slot: u32) -> &InstanceState<F> {
        self.slots[slot as usize].as_ref().expect("live slot")
    }

    fn state_mut(&mut self, slot: u32) -> &mut InstanceState<F> {
        self.slots[slot as usize].as_mut().expect("live slot")
    }

    fn alloc_slot(&mut self, state: InstanceState<F>) -> u32 {
        match self.free_slots.pop() {
            Some(slot) => {
                self.slots[slot as usize] = Some(state);
                slot
            }
            None => {
                self.slots.push(Some(state));
                (self.slots.len() - 1) as u32
            }
        }
    }

    fn alloc_invocation(&mut self, inv: Invocation<F>) -> u32 {
        match self.free_invocations.pop() {
            Some(slot) => {
                self.invocations[slot as usize] = Some(inv);
                slot
            }
            None => {
                self.invocations.push(Some(inv));
                (self.invocations.len() - 1) as u32
            }
        }
    }

    /// Adds a ready-heap entry for the instance's current state if it can
    /// accept another HTTP request.
    fn push_ready(&mut self, slot: u32) {
        let st = self.state(slot);
        let dep = st.ctx.deployment.raw() as usize;
        if st.warm && st.active_http < self.deployments[dep].config.concurrency {
            let key = Reverse((st.active_http, st.ctx.instance.raw()));
            self.deployments[dep].ready.push(key);
        }
    }

    /// Appends `slot` to its deployment's idle list. `last_activity` was
    /// just set to the current simulation time, which is ≥ every entry
    /// already on the list, so tail insertion keeps the list sorted.
    fn idle_push_back(&mut self, slot: u32) {
        let dep_idx;
        {
            let st = self.state_mut(slot);
            debug_assert!(!st.in_idle);
            st.in_idle = true;
            st.idle_next = NIL;
            dep_idx = st.ctx.deployment.raw() as usize;
        }
        let tail = self.deployments[dep_idx].idle_tail;
        self.state_mut(slot).idle_prev = tail;
        if tail != NIL {
            self.state_mut(tail).idle_next = slot;
        } else {
            self.deployments[dep_idx].idle_head = slot;
        }
        self.deployments[dep_idx].idle_tail = slot;
    }

    fn idle_unlink(&mut self, slot: u32) {
        let (prev, next, dep_idx);
        {
            let st = self.state_mut(slot);
            if !st.in_idle {
                return;
            }
            st.in_idle = false;
            prev = st.idle_prev;
            next = st.idle_next;
            st.idle_prev = NIL;
            st.idle_next = NIL;
            dep_idx = st.ctx.deployment.raw() as usize;
        }
        if prev != NIL {
            self.state_mut(prev).idle_next = next;
        } else {
            self.deployments[dep_idx].idle_head = next;
        }
        if next != NIL {
            self.state_mut(next).idle_prev = prev;
        } else {
            self.deployments[dep_idx].idle_tail = prev;
        }
    }

    /// Removes an instance from every index (slab, id map, live list, idle
    /// list, deployment roster) and returns its state. The caller applies
    /// the removal-specific accounting and **must drop the returned state
    /// outside the `RefCell` borrow**: the function inside may hold pooled
    /// responders whose `Drop` re-enters the platform.
    fn detach(&mut self, slot: u32) -> InstanceState<F> {
        self.idle_unlink(slot);
        let state = self.slots[slot as usize].take().expect("live slot");
        self.free_slots.push(slot);
        let id = state.ctx.instance;
        self.id_to_slot[id.raw() as usize] = NIL;
        if let Ok(pos) = self.live_ids.binary_search(&id) {
            self.live_ids.remove(pos);
        }
        state.ctx.alive.set(false);
        self.used_vcpus = self.used_vcpus.saturating_sub(state.ctx.vcpus);
        let dep = state.ctx.deployment.raw() as usize;
        self.deployments[dep].instances.retain(|i| *i != id);
        if !state.warm {
            self.deployments[dep].starting -= 1;
        }
        state
    }
}

/// The shared platform state plus a self-reference so pooled responders
/// (which hold `Rc<dyn CompletionSink>` pointing here) can rebuild a
/// [`Platform`] handle when they complete.
struct Core<F: Function> {
    weak: Weak<Core<F>>,
    inner: RefCell<Inner<F>>,
}

impl<F: Function> Core<F> {
    fn platform(&self) -> Platform<F> {
        Platform { core: self.weak.upgrade().expect("platform core alive") }
    }
}

impl<F: Function> CompletionSink<F::Resp> for Core<F> {
    fn complete(&self, sim: &mut Sim, slot: u32, resp: F::Resp) {
        let inv = {
            let mut inner = self.inner.borrow_mut();
            let inv = inner.invocations[slot as usize].take();
            if inv.is_some() {
                inner.free_invocations.push(slot);
            }
            inv
        };
        let Some(inv) = inv else { return };
        let this = self.platform();
        if this.finish_request(sim, inv.instance, inv.is_http) {
            inv.respond.send(sim, resp);
        }
    }

    fn abandon(&self, slot: u32) {
        let inv = {
            let mut inner = self.inner.borrow_mut();
            let inv = inner.invocations[slot as usize].take();
            if inv.is_some() {
                inner.free_invocations.push(slot);
            }
            inv
        };
        // Dropped here, outside the borrow: the parked responder may itself
        // be pooled (a function can forward its responder into another
        // invocation), and its Drop re-enters `abandon`.
        drop(inv);
    }
}

/// A shared handle to the serverless platform hosting instances of `F`.
///
/// See the crate-level docs for the role this plays in the reproduced
/// system and the crate tests for end-to-end usage.
pub struct Platform<F: Function> {
    core: Rc<Core<F>>,
}

impl<F: Function> Clone for Platform<F> {
    fn clone(&self) -> Self {
        Platform { core: Rc::clone(&self.core) }
    }
}

impl<F: Function> fmt::Debug for Platform<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.core.inner.borrow();
        f.debug_struct("Platform")
            .field("deployments", &inner.deployments.len())
            .field("instances", &inner.live_ids.len())
            .field("used_vcpus", &inner.used_vcpus)
            .finish()
    }
}

impl<F: Function> Platform<F> {
    /// Creates a platform with no deployments.
    #[must_use]
    pub fn new(cfg: &PlatformConfig) -> Self {
        let core = Rc::new_cyclic(|weak| Core {
            weak: weak.clone(),
            inner: RefCell::new(Inner {
                snap: ConfigSnapshot::of(cfg),
                deployments: Vec::new(),
                slots: Vec::new(),
                free_slots: Vec::new(),
                id_to_slot: Vec::new(),
                live_ids: Vec::new(),
                invocations: Vec::new(),
                free_invocations: Vec::new(),
                next_instance: 0,
                used_vcpus: 0,
                peak_vcpus: 0,
                pay_meter: CostMeter::new(),
                prov_meter: CostMeter::new(),
                gauge: GaugeSeries::new(),
                stats: PlatformStats::default(),
                maintenance_running: false,
                maintenance_stopped: false,
                victims_scratch: Vec::new(),
                remaining_scratch: Vec::new(),
                cold_start_factor: 1.0,
            }),
        });
        Platform { core }
    }

    /// Registers a uniquely named function deployment; `factory` builds
    /// the function body for each new instance.
    pub fn register_deployment(
        &self,
        name: impl Into<String>,
        config: FunctionConfig,
        factory: Box<dyn Fn(&InstanceCtx) -> F>,
    ) -> DeploymentId {
        let mut inner = self.core.inner.borrow_mut();
        let id = DeploymentId(inner.deployments.len() as u32);
        inner.deployments.push(DeploymentState {
            name: Rc::from(name.into()),
            config,
            factory,
            instances: Vec::new(),
            queue: VecDeque::new(),
            starting: 0,
            ready: BinaryHeap::new(),
            idle_head: NIL,
            idle_tail: NIL,
        });
        id
    }

    /// Number of registered deployments.
    #[must_use]
    pub fn deployment_count(&self) -> usize {
        self.core.inner.borrow().deployments.len()
    }

    /// The name a deployment was registered under. Cheap: a shared handle,
    /// not a fresh `String`.
    #[must_use]
    pub fn deployment_name(&self, deployment: DeploymentId) -> Rc<str> {
        Rc::clone(&self.core.inner.borrow().deployments[deployment.0 as usize].name)
    }

    /// Cumulative statistics.
    #[must_use]
    pub fn stats(&self) -> PlatformStats {
        self.core.inner.borrow().stats
    }

    /// Highest vCPU allocation observed.
    #[must_use]
    pub fn peak_vcpus_used(&self) -> u32 {
        self.core.inner.borrow().peak_vcpus
    }

    /// vCPUs currently allocated.
    #[must_use]
    pub fn vcpus_used(&self) -> u32 {
        self.core.inner.borrow().used_vcpus
    }

    /// Total pay-per-use (AWS-Lambda-model) cost so far.
    #[must_use]
    pub fn pay_per_use_cost(&self) -> f64 {
        self.core.inner.borrow().pay_meter.total()
    }

    /// Total cost under the "simplified" model (instances billed while
    /// provisioned; Fig. 9's `λFS (Simplified)` curve). Only accumulates
    /// while maintenance is running (it is sampled by the billing tick).
    #[must_use]
    pub fn provisioned_cost(&self) -> f64 {
        self.core.inner.borrow().prov_meter.total()
    }

    /// Snapshot of the pay-per-use cost meter (per-second series).
    #[must_use]
    pub fn pay_meter(&self) -> CostMeter {
        self.core.inner.borrow().pay_meter.clone()
    }

    /// Snapshot of the provisioned-cost meter.
    #[must_use]
    pub fn prov_meter(&self) -> CostMeter {
        self.core.inner.borrow().prov_meter.clone()
    }

    /// Time series of provisioned (starting + warm) instance counts.
    #[must_use]
    pub fn instance_gauge(&self) -> GaugeSeries {
        self.core.inner.borrow().gauge.clone()
    }

    /// Warm instances of `deployment`, in creation order.
    #[must_use]
    pub fn warm_instances(&self, deployment: DeploymentId) -> Vec<InstanceId> {
        let mut out = Vec::new();
        self.warm_instances_into(deployment, &mut out);
        out
    }

    /// Allocation-free variant of [`Platform::warm_instances`]: clears
    /// `out` and fills it with the warm instances in creation order.
    pub fn warm_instances_into(&self, deployment: DeploymentId, out: &mut Vec<InstanceId>) {
        out.clear();
        let inner = self.core.inner.borrow();
        out.extend(
            inner.deployments[deployment.0 as usize]
                .instances
                .iter()
                .copied()
                .filter(|id| inner.slot_of(*id).is_some_and(|slot| inner.state(slot).warm)),
        );
    }

    /// The earliest-created warm instance of `deployment`, if any — the
    /// O(1)-ish replacement for `warm_instances(d).first()` (it stops at
    /// the first warm instance instead of materializing the whole list).
    #[must_use]
    pub fn first_warm_instance(&self, deployment: DeploymentId) -> Option<InstanceId> {
        let inner = self.core.inner.borrow();
        inner.deployments[deployment.0 as usize]
            .instances
            .iter()
            .copied()
            .find(|id| inner.slot_of(*id).is_some_and(|slot| inner.state(slot).warm))
    }

    /// Total provisioned instances (starting + warm) across deployments.
    #[must_use]
    pub fn total_instances(&self) -> usize {
        self.core.inner.borrow().live_ids.len()
    }

    /// Per-instance CPU station statistics (diagnostics): `(instance,
    /// servers, busy, queue, stats)`.
    #[must_use]
    pub fn instance_cpu_stats(
        &self,
    ) -> Vec<(InstanceId, u32, u32, usize, lambda_sim::StationStats)> {
        let mut out = Vec::new();
        self.instance_cpu_stats_into(&mut out);
        out
    }

    /// Allocation-free variant of [`Platform::instance_cpu_stats`]: clears
    /// `out` and fills it in ascending instance-id order.
    pub fn instance_cpu_stats_into(
        &self,
        out: &mut Vec<(InstanceId, u32, u32, usize, lambda_sim::StationStats)>,
    ) {
        out.clear();
        let inner = self.core.inner.borrow();
        out.extend(inner.live_ids.iter().map(|id| {
            let st = inner.state(inner.slot_of(*id).expect("live id"));
            let cpu = st.ctx.cpu.borrow();
            (*id, cpu.servers(), cpu.busy(), cpu.queue_len(), cpu.stats())
        }));
    }

    /// Per-instance request-slot occupancy (diagnostics): `(instance,
    /// deployment, active_http, active_total, warm)`.
    #[must_use]
    pub fn instance_slots(&self) -> Vec<(InstanceId, DeploymentId, u32, u32, bool)> {
        let mut out = Vec::new();
        self.instance_slots_into(&mut out);
        out
    }

    /// Allocation-free variant of [`Platform::instance_slots`]: clears
    /// `out` and fills it in ascending instance-id order.
    pub fn instance_slots_into(
        &self,
        out: &mut Vec<(InstanceId, DeploymentId, u32, u32, bool)>,
    ) {
        out.clear();
        let inner = self.core.inner.borrow();
        out.extend(inner.live_ids.iter().map(|id| {
            let st = inner.state(inner.slot_of(*id).expect("live id"));
            (*id, st.ctx.deployment, st.active_http, st.active_total, st.warm)
        }));
    }

    /// HTTP load (active requests + queue depth) of a deployment.
    #[must_use]
    pub fn deployment_load(&self, deployment: DeploymentId) -> usize {
        let inner = self.core.inner.borrow();
        let dep = &inner.deployments[deployment.0 as usize];
        let active: u32 = dep
            .instances
            .iter()
            .filter_map(|id| inner.slot_of(*id))
            .map(|slot| inner.state(slot).active_http)
            .sum();
        active as usize + dep.queue.len()
    }

    /// Starts the periodic reclamation + billing ticks. Idempotent. The
    /// ticks run until [`Platform::stop_maintenance`]; drive the simulation
    /// with `run_until`/`run_for` while they are armed.
    pub fn run_maintenance(&self, sim: &mut Sim) {
        {
            let mut inner = self.core.inner.borrow_mut();
            if inner.maintenance_running {
                return;
            }
            inner.maintenance_running = true;
            inner.maintenance_stopped = false;
        }
        let scan = self.core.inner.borrow().snap.scan_every;
        let this = self.clone();
        lambda_sim::every(sim, sim.now() + scan, scan, move |sim| {
            if this.core.inner.borrow().maintenance_stopped {
                return false;
            }
            this.reclaim_idle(sim);
            true
        });
        let this = self.clone();
        let tick = SimDuration::from_secs(1);
        lambda_sim::every(sim, sim.now() + tick, tick, move |sim| {
            if this.core.inner.borrow().maintenance_stopped {
                return false;
            }
            this.billing_tick(sim, tick);
            // Rescue pass: a deployment whose queued work could not scale
            // out earlier (e.g. every eviction victim was inside its
            // grace period) gets another chance as victims age.
            let deployments = this.core.inner.borrow().deployments.len();
            for d in 0..deployments {
                let id = DeploymentId(d as u32);
                if this.core.inner.borrow().deployments[d].queue.is_empty() {
                    continue;
                }
                this.drain_queue(sim, id);
                this.maybe_scale_out(sim, id);
            }
            true
        });
    }

    /// Stops the maintenance ticks at their next firing.
    pub fn stop_maintenance(&self) {
        let mut inner = self.core.inner.borrow_mut();
        inner.maintenance_running = false;
        inner.maintenance_stopped = true;
    }

    /// Submits an HTTP invocation through the API gateway. This is the
    /// path that can trigger auto-scaling.
    pub fn invoke_http(
        &self,
        sim: &mut Sim,
        deployment: DeploymentId,
        req: F::Req,
        respond: Responder<F::Resp>,
    ) {
        let (overhead, pricing) = {
            let mut inner = self.core.inner.borrow_mut();
            inner.stats.http_invocations += 1;
            (inner.snap.http_overhead, inner.snap.pricing)
        };
        let now = sim.now();
        self.core.inner.borrow_mut().pay_meter.charge_lambda_request(now, &pricing);
        let delay = sim.rng().sample_duration(&overhead);
        let this = self.clone();
        sim.schedule(delay, move |sim| this.route_http(sim, deployment, req, respond));
    }

    fn route_http(
        &self,
        sim: &mut Sim,
        deployment: DeploymentId,
        req: F::Req,
        respond: Responder<F::Resp>,
    ) {
        // Always enqueue, then drain: arrivals must not overtake requests
        // already waiting (FIFO fairness — and a bypassed queue would only
        // drain on the next HTTP completion, which may never come on a
        // TCP-dominated deployment).
        {
            let mut inner = self.core.inner.borrow_mut();
            let enqueued = sim.now();
            inner.deployments[deployment.0 as usize]
                .queue
                .push_back(Queued { req, respond, enqueued });
        }
        self.drain_queue(sim, deployment);
        self.maybe_scale_out(sim, deployment);
    }

    /// If the queue still has waiters after draining, every warm slot
    /// is busy: scale out when capacity allows — but governed: never
    /// start more instances than the backlog justifies, counting the
    /// concurrency the instances already cold-starting will add. An
    /// ungoverned invoker spawns one container per queued request and
    /// can exhaust the cluster cap before every deployment has its
    /// first instance.
    fn maybe_scale_out(&self, sim: &mut Sim, deployment: DeploymentId) {
        let (wants_cold, has_capacity, starving) = {
            let inner = self.core.inner.borrow();
            let dep = &inner.deployments[deployment.0 as usize];
            let queue_len = dep.queue.len() as u32;
            if queue_len == 0 {
                (false, false, false)
            } else {
                let dep_count = dep.instances.len() as u32;
                let wants = dep_count < dep.config.max_instances
                    && queue_len > dep.starting * dep.config.concurrency.max(1);
                let capacity =
                    inner.used_vcpus + dep.config.vcpus <= inner.snap.cluster_vcpus;
                (wants, capacity, dep_count == 0)
            }
        };
        if wants_cold && has_capacity {
            self.begin_cold_start(sim, deployment);
        } else if wants_cold && starving && self.evict_for(sim, deployment) {
            // Room was freed by terminating another deployment's warm
            // instance; re-check the cap (instance sizes may differ).
            let fits = {
                let inner = self.core.inner.borrow();
                let dep = &inner.deployments[deployment.0 as usize];
                inner.used_vcpus + dep.config.vcpus <= inner.snap.cluster_vcpus
            };
            if fits {
                self.begin_cold_start(sim, deployment);
            }
        }
    }

    /// Capacity-pressure eviction (OpenWhisk-style): `deployment` has
    /// queued work and no instance at all, but the cluster is at its vCPU
    /// cap. Terminate the least-recently-active warm instance of another
    /// deployment — preferring deployments that hold several instances —
    /// so no deployment starves forever on a cluster smaller than the
    /// deployment count. Instances younger than a grace period are
    /// protected, which bounds the churn rate when many starved
    /// deployments must time-share too few slots: each slot changes hands
    /// at most once per grace period instead of on every request.
    ///
    /// Cold path (only runs when a deployment is starving at the cap), so
    /// it keeps the straightforward full scan — over `live_ids`, which
    /// matches the old `BTreeMap` iteration order exactly.
    fn evict_for(&self, sim: &mut Sim, deployment: DeploymentId) -> bool {
        const EVICTION_GRACE: SimDuration = SimDuration::from_millis(2_000);
        let victim = {
            let inner = self.core.inner.borrow();
            let now = sim.now();
            inner
                .live_ids
                .iter()
                .map(|id| (*id, inner.state(inner.slot_of(*id).expect("live id"))))
                .filter(|(_, st)| {
                    st.warm
                        && st.ctx.deployment != deployment
                        && st.active_http == 0
                        && now.saturating_since(st.created) >= EVICTION_GRACE
                })
                .max_by_key(|(id, st)| {
                    let dep_size =
                        inner.deployments[st.ctx.deployment.0 as usize].instances.len();
                    (dep_size, std::cmp::Reverse(st.last_activity), std::cmp::Reverse(*id))
                })
                .map(|(id, _)| id)
        };
        let Some(victim) = victim else { return false };
        let removed = {
            let mut inner = self.core.inner.borrow_mut();
            let Some(slot) = inner.slot_of(victim) else { return false };
            let state = inner.detach(slot);
            if let Some(since) = state.active_since {
                let (pricing, now) = (inner.snap.pricing, sim.now());
                inner.pay_meter.charge_lambda_execution(
                    now,
                    &pricing,
                    now.saturating_since(since),
                    state.ctx.mem_gb,
                );
            }
            inner.stats.evictions += 1;
            let count = inner.live_ids.len() as f64;
            let now = sim.now();
            inner.gauge.observe(now, count);
            state
        };
        let InstanceState { mut function, ctx, .. } = removed;
        if let Some(f) = function.as_mut() {
            f.on_terminate(sim, &ctx, true);
        }
        true
    }

    /// The warm instance of `deployment` with a free HTTP slot and the
    /// least load, if any: the first ready-heap entry that still matches
    /// its instance's current `(active_http, id)` — stale entries are
    /// popped on the way. Matching entries were pushed while eligible, so
    /// a match is exactly the old scan's `min_by_key((active_http, id))`.
    fn pick_free_instance(&self, deployment: DeploymentId) -> Option<InstanceId> {
        let mut guard = self.core.inner.borrow_mut();
        let inner = &mut *guard;
        let d = deployment.0 as usize;
        let conc = inner.deployments[d].config.concurrency;
        loop {
            let Reverse((h, raw)) = *inner.deployments[d].ready.peek()?;
            let valid = match inner.slot_of(InstanceId(raw)) {
                Some(slot) => {
                    let st = inner.state(slot);
                    st.warm && st.active_http == h && h < conc
                }
                None => false,
            };
            if valid {
                return Some(InstanceId(raw));
            }
            inner.deployments[d].ready.pop();
        }
    }

    fn begin_cold_start(&self, sim: &mut Sim, deployment: DeploymentId) {
        let (instance, cold_start, factor) = {
            let mut guard = self.core.inner.borrow_mut();
            let inner = &mut *guard;
            inner.next_instance += 1;
            let id = InstanceId(inner.next_instance);
            let dep = &mut inner.deployments[deployment.0 as usize];
            let config = dep.config.clone();
            dep.instances.push(id);
            dep.starting += 1;
            let ctx = Rc::new(InstanceCtx {
                instance: id,
                deployment,
                cpu: Station::new(format!("{}-{}", dep.name, id.0), config.vcpus.max(1)),
                vcpus: config.vcpus,
                mem_gb: config.mem_gb,
                alive: Rc::new(Cell::new(true)),
            });
            let state = InstanceState {
                ctx,
                function: None,
                warm: false,
                active_http: 0,
                active_total: 0,
                active_since: None,
                last_activity: sim.now(),
                created: sim.now(),
                idle_prev: NIL,
                idle_next: NIL,
                in_idle: false,
            };
            let slot = inner.alloc_slot(state);
            let raw = id.raw() as usize;
            if inner.id_to_slot.len() <= raw {
                inner.id_to_slot.resize(raw + 1, NIL);
            }
            inner.id_to_slot[raw] = slot;
            inner.live_ids.push(id); // new id is the max: stays sorted
            inner.used_vcpus += config.vcpus;
            inner.peak_vcpus = inner.peak_vcpus.max(inner.used_vcpus);
            inner.stats.cold_starts += 1;
            let count = inner.live_ids.len() as f64;
            let now = sim.now();
            inner.gauge.observe(now, count);
            (id, inner.snap.cold_start, inner.cold_start_factor)
        };
        let mut delay = sim.rng().sample_duration(&cold_start);
        if factor != 1.0 {
            // Cold-start storm: stretch the sampled delay. The sample above
            // is drawn unconditionally so a storm never shifts the RNG
            // stream relative to a storm-free run.
            delay = delay.mul_f64(factor);
        }
        let this = self.clone();
        sim.schedule(delay, move |sim| this.finish_cold_start(sim, deployment, instance));
    }

    fn finish_cold_start(&self, sim: &mut Sim, deployment: DeploymentId, instance: InstanceId) {
        let built = {
            let inner = self.core.inner.borrow();
            let Some(slot) = inner.slot_of(instance) else {
                return; // killed while starting
            };
            let dep = &inner.deployments[deployment.0 as usize];
            let ctx = Rc::clone(&inner.state(slot).ctx);
            let function = (dep.factory)(&ctx);
            (function, ctx)
        };
        let (mut function, ctx) = built;
        function.on_start(sim, &ctx);
        let leftover = {
            let mut guard = self.core.inner.borrow_mut();
            let inner = &mut *guard;
            match inner.slot_of(instance) {
                Some(slot) => {
                    {
                        let st = inner.state_mut(slot);
                        st.function = Some(function);
                        st.warm = true;
                        st.last_activity = sim.now();
                    }
                    inner.deployments[deployment.0 as usize].starting -= 1;
                    inner.idle_push_back(slot); // just warmed: no in-flight work
                    inner.push_ready(slot);
                    None
                }
                None => Some(function), // killed during on_start
            }
        };
        if leftover.is_some() {
            drop(leftover); // outside the borrow
            return;
        }
        self.drain_queue(sim, deployment);
    }

    fn drain_queue(&self, sim: &mut Sim, deployment: DeploymentId) {
        // Expired requests are popped under the borrow but dropped outside
        // it (their responders may be pooled and re-enter on Drop). The
        // vec allocates only when something actually expired.
        let mut expired: Vec<Queued<F>> = Vec::new();
        loop {
            let has_work = {
                let mut inner = self.core.inner.borrow_mut();
                let ttl = inner.snap.request_ttl;
                let now = sim.now();
                let dep = &mut inner.deployments[deployment.0 as usize];
                // Drop expired invocations first.
                let mut n = 0;
                while dep
                    .queue
                    .front()
                    .is_some_and(|q| now.saturating_since(q.enqueued) > ttl)
                {
                    expired.push(dep.queue.pop_front().expect("front exists"));
                    n += 1;
                }
                inner.stats.expired_requests += n;
                !inner.deployments[deployment.0 as usize].queue.is_empty()
            };
            expired.clear();
            if !has_work {
                return;
            }
            let Some(instance) = self.pick_free_instance(deployment) else { return };
            let queued = {
                let mut inner = self.core.inner.borrow_mut();
                inner.deployments[deployment.0 as usize].queue.pop_front()
            };
            let Some(queued) = queued else { return };
            self.start_request(sim, instance, queued.req, queued.respond, true);
        }
    }

    /// Delivers a request directly to a warm instance over an established
    /// TCP connection, bypassing the gateway. Returns `false` (delivering
    /// nothing) if the instance is dead or not yet warm — the caller's
    /// connection is broken.
    pub fn deliver_tcp(
        &self,
        sim: &mut Sim,
        instance: InstanceId,
        req: F::Req,
        respond: Responder<F::Resp>,
    ) -> bool {
        let ok = {
            let inner = self.core.inner.borrow();
            inner.slot_of(instance).is_some_and(|slot| inner.state(slot).warm)
        };
        if !ok {
            return false;
        }
        self.core.inner.borrow_mut().stats.tcp_deliveries += 1;
        self.start_request(sim, instance, req, respond, false);
        true
    }

    fn start_request(
        &self,
        sim: &mut Sim,
        instance: InstanceId,
        req: F::Req,
        respond: Responder<F::Resp>,
        is_http: bool,
    ) {
        let mut respond = Some(respond);
        let prepared = {
            let mut guard = self.core.inner.borrow_mut();
            let inner = &mut *guard;
            match inner.slot_of(instance) {
                None => None,
                Some(slot) => {
                    {
                        let st = inner.state_mut(slot);
                        if is_http {
                            st.active_http += 1;
                        }
                        st.active_total += 1;
                        if st.active_total == 1 {
                            st.active_since = Some(sim.now());
                        }
                        st.last_activity = sim.now();
                    }
                    inner.idle_unlink(slot); // no longer idle (no-op if it wasn't)
                    if is_http {
                        inner.push_ready(slot); // re-key under the new active_http
                    }
                    match inner.state_mut(slot).function.take() {
                        Some(function) => {
                            let ctx = Rc::clone(&inner.state(slot).ctx);
                            let inv = Invocation {
                                instance,
                                is_http,
                                respond: respond.take().expect("unconsumed"),
                            };
                            let inv_slot = inner.alloc_invocation(inv);
                            Some((function, ctx, inv_slot))
                        }
                        None => None,
                    }
                }
            }
        };
        let Some((mut function, ctx, inv_slot)) = prepared else {
            // Instance dead (drop the request; the client times out), or the
            // function is mid-call (re-entrant dispatch) — the latter cannot
            // happen because dispatch always returns the function before
            // yielding to the event loop. `respond`/`req` drop here, outside
            // the borrow.
            return;
        };
        let sink: Rc<dyn CompletionSink<F::Resp>> = Rc::clone(&self.core) as _;
        let wrapped = Responder::pooled(sink, inv_slot);
        function.on_request(sim, &ctx, req, wrapped);
        let leftover = {
            let mut inner = self.core.inner.borrow_mut();
            match inner.slot_of(instance) {
                Some(slot) => {
                    inner.state_mut(slot).function = Some(function);
                    None
                }
                // Killed during the call; the function is dropped below,
                // outside the borrow.
                None => Some(function),
            }
        };
        drop(leftover);
    }

    /// Releases a request slot. Returns whether the instance is still
    /// alive (dead instances' responses are suppressed).
    fn finish_request(&self, sim: &mut Sim, instance: InstanceId, is_http: bool) -> bool {
        let deployment = {
            let mut guard = self.core.inner.borrow_mut();
            let inner = &mut *guard;
            let pricing = inner.snap.pricing;
            let Some(slot) = inner.slot_of(instance) else { return false };
            let (charge, deployment, now_idle);
            {
                let st = inner.state_mut(slot);
                if is_http {
                    st.active_http = st.active_http.saturating_sub(1);
                }
                st.active_total = st.active_total.saturating_sub(1);
                st.last_activity = sim.now();
                charge = if st.active_total == 0 {
                    st.active_since
                        .take()
                        .map(|since| (sim.now().saturating_since(since), st.ctx.mem_gb))
                } else {
                    None
                };
                deployment = st.ctx.deployment;
                now_idle = st.warm && st.active_total == 0;
            }
            if now_idle {
                inner.idle_push_back(slot);
            }
            if is_http {
                inner.push_ready(slot); // a slot freed up: re-key
            }
            if let Some((active, mem)) = charge {
                let now = sim.now();
                inner.pay_meter.charge_lambda_execution(now, &pricing, active, mem);
            }
            Some(deployment)
        };
        match deployment {
            Some(dep) => {
                if is_http {
                    self.drain_queue(sim, dep);
                }
                true
            }
            None => false,
        }
    }

    /// Forcefully kills an instance (fault injection, §5.6). No graceful
    /// cleanup runs: in-flight responses are dropped and the function's
    /// coordinator session is left to expire on its own.
    pub fn kill_instance(&self, sim: &mut Sim, instance: InstanceId) {
        let removed = {
            let mut guard = self.core.inner.borrow_mut();
            let inner = &mut *guard;
            let Some(slot) = inner.slot_of(instance) else { return };
            let state = inner.detach(slot);
            let pricing = inner.snap.pricing;
            if let Some(since) = state.active_since {
                let now = sim.now();
                inner.pay_meter.charge_lambda_execution(
                    now,
                    &pricing,
                    now.saturating_since(since),
                    state.ctx.mem_gb,
                );
            }
            inner.stats.kills += 1;
            let count = inner.live_ids.len() as f64;
            let now = sim.now();
            inner.gauge.observe(now, count);
            state
        };
        // The killed function may hold pooled responders whose Drop
        // re-enters the platform: drop it outside the borrow.
        drop(removed);
    }

    /// Kills up to `count` warm instances at once (correlated failure /
    /// fault injection), in ascending instance-id order. `deployment`
    /// restricts the burst to one deployment; `None` strikes across all of
    /// them. Returns how many instances were actually killed.
    pub fn kill_warm_burst(
        &self,
        sim: &mut Sim,
        deployment: Option<DeploymentId>,
        count: u32,
    ) -> u32 {
        let victims: Vec<InstanceId> = {
            let inner = self.core.inner.borrow();
            inner
                .live_ids
                .iter()
                .filter(|id| {
                    let slot = inner.slot_of(**id).expect("live id has a slot");
                    let st = inner.state(slot);
                    st.warm && deployment.is_none_or(|d| st.ctx.deployment == d)
                })
                .take(count as usize)
                .copied()
                .collect()
        };
        for &id in &victims {
            self.kill_instance(sim, id);
        }
        victims.len() as u32
    }

    /// Sets the cold-start latency multiplier (fault injection). `1.0`
    /// restores normal behavior.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive and finite.
    pub fn set_cold_start_factor(&self, factor: f64) {
        assert!(factor.is_finite() && factor > 0.0, "cold-start factor must be positive");
        self.core.inner.borrow_mut().cold_start_factor = factor;
    }

    /// Schedules a cold-start storm: from `from` to `until` every cold
    /// start takes `factor`× its sampled latency.
    pub fn cold_start_storm(&self, sim: &mut Sim, from: SimTime, until: SimTime, factor: f64) {
        assert!(factor.is_finite() && factor > 0.0, "cold-start factor must be positive");
        let this = self.clone();
        sim.schedule_at(from, move |_sim| this.set_cold_start_factor(factor));
        let this = self.clone();
        sim.schedule_at(until, move |_sim| this.set_cold_start_factor(1.0));
    }

    /// Number of dispatched-but-uncompleted invocations parked in the
    /// platform (auditor aid: must be zero after a run drains).
    #[must_use]
    pub fn pending_invocations(&self) -> usize {
        self.core.inner.borrow().invocations.iter().filter(|i| i.is_some()).count()
    }

    /// Number of HTTP requests still queued at deployment gateways
    /// (auditor aid: must be zero after a run drains).
    #[must_use]
    pub fn queued_requests(&self) -> usize {
        self.core.inner.borrow().deployments.iter().map(|d| d.queue.len()).sum()
    }

    /// Instance-slab occupancy as `(total slots, free slots)` — a killed
    /// instance's slot must return to the freelist and be reused by the
    /// next cold start.
    #[must_use]
    pub fn instance_slab(&self) -> (usize, usize) {
        let inner = self.core.inner.borrow();
        (inner.slots.len(), inner.free_slots.len())
    }

    /// Scale-in: terminate warm instances idle past the threshold, never
    /// shrinking a deployment below its floor. Walks only the per-
    /// deployment idle lists (candidates), then replays the old full-scan
    /// selection exactly: candidates sorted ascending by id, floors applied
    /// in that order, victims terminated one by one.
    fn reclaim_idle(&self, sim: &mut Sim) {
        let victims = {
            let mut guard = self.core.inner.borrow_mut();
            let inner = &mut *guard;
            let mut victims = mem::take(&mut inner.victims_scratch);
            victims.clear();
            let idle_after = inner.snap.idle_after;
            let now = sim.now();
            // Candidates: the idle-past-threshold prefix of each list
            // (sorted by last_activity, so the walk stops at the first
            // still-fresh instance).
            for d in 0..inner.deployments.len() {
                let mut slot = inner.deployments[d].idle_head;
                while slot != NIL {
                    let st = inner.state(slot);
                    if now.saturating_since(st.last_activity) < idle_after {
                        break;
                    }
                    victims.push(st.ctx.instance);
                    slot = st.idle_next;
                }
            }
            victims.sort_unstable();
            // Per-deployment floors, applied in ascending-id order as the
            // old whole-table scan did.
            let mut remaining = mem::take(&mut inner.remaining_scratch);
            remaining.clear();
            remaining.extend(inner.deployments.iter().map(|d| d.instances.len()));
            victims.retain(|id| {
                let slot = inner.slot_of(*id).expect("idle candidate is live");
                let dep = inner.state(slot).ctx.deployment.0 as usize;
                let floor = inner.deployments[dep].config.min_instances as usize;
                if remaining[dep] > floor {
                    remaining[dep] -= 1;
                    true
                } else {
                    false
                }
            });
            inner.remaining_scratch = remaining;
            victims
        };
        for &instance in &victims {
            let removed = {
                let mut guard = self.core.inner.borrow_mut();
                let inner = &mut *guard;
                let Some(slot) = inner.slot_of(instance) else { continue };
                let state = inner.detach(slot);
                inner.stats.reclaims += 1;
                let count = inner.live_ids.len() as f64;
                let now = sim.now();
                inner.gauge.observe(now, count);
                state
            };
            let InstanceState { mut function, ctx, .. } = removed;
            if let Some(f) = function.as_mut() {
                f.on_terminate(sim, &ctx, true);
            }
        }
        let mut victims = victims;
        victims.clear();
        self.core.inner.borrow_mut().victims_scratch = victims;
    }

    fn billing_tick(&self, sim: &mut Sim, tick: SimDuration) {
        let mut guard = self.core.inner.borrow_mut();
        let inner = &mut *guard;
        let pricing = inner.snap.pricing;
        let now = sim.now();
        // Provisioned model: every live instance pays for the whole tick.
        // Both sums run in ascending-id order — the old `BTreeMap` order —
        // because floating-point accumulation order is observable.
        let mut provisioned_gb = 0.0f64;
        for id in &inner.live_ids {
            let slot = inner.id_to_slot[id.raw() as usize];
            provisioned_gb += inner.slots[slot as usize].as_ref().expect("live slot").ctx.mem_gb;
        }
        if provisioned_gb > 0.0 {
            inner.prov_meter.charge_lambda_execution(now, &pricing, tick, provisioned_gb);
        }
        // Pay-per-use model: flush open active intervals so the per-second
        // cost series stays smooth.
        let mut flush = 0.0f64;
        for i in 0..inner.live_ids.len() {
            let slot = inner.id_to_slot[inner.live_ids[i].raw() as usize];
            let state = inner.slots[slot as usize].as_mut().expect("live slot");
            if let Some(since) = state.active_since {
                let span = now.saturating_since(since);
                flush += pricing.execution_cost(span, state.ctx.mem_gb);
                state.active_since = Some(now);
            }
        }
        if flush > 0.0 {
            inner.pay_meter.charge(now, flush);
        }
    }
}
