//! # lambda-faas
//!
//! A serverless-platform emulator — the reproduction's stand-in for the
//! Apache OpenWhisk deployment that hosts λFS's NameNodes (paper §4), with
//! the extensions the paper made to it (per-instance HTTP concurrency
//! control) and the behaviors its evaluation depends on:
//!
//! * **Deployments** of a user-supplied [`Function`] type, each with its own
//!   resource configuration and auto-scaling bounds;
//! * an **API gateway / invoker** path: HTTP invocations pay the gateway
//!   overhead, are routed to a warm instance with a free concurrency slot,
//!   or trigger a **cold start** when capacity allows (this is the
//!   platform-side half of λFS's agile auto-scaling policy, §3.4);
//! * **direct TCP delivery** to a specific warm instance — the fast path of
//!   λFS's hybrid RPC (§3.2) — which deliberately bypasses the gateway and
//!   therefore never triggers scale-out;
//! * **idle reclamation** (scale-in), **forceful kills** (fault injection,
//!   §5.6), a **cluster vCPU cap** (the evaluation's fairness control), and
//!   **pay-per-use + provisioned billing** (§5.2.5, Fig. 9).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
mod platform;

pub use platform::{
    DeploymentId, Function, FunctionConfig, InstanceCtx, InstanceId, Platform, PlatformConfig,
    PlatformStats, Responder,
};

#[cfg(test)]
mod tests {
    use super::*;
    use lambda_sim::{Sim, SimDuration, SimTime, Station};
    use std::cell::RefCell;
    use std::rc::Rc;

    /// A trivial function: replies `req + 1` after `work` CPU time.
    struct Echo {
        work: SimDuration,
        started: Rc<RefCell<u32>>,
        terminated: Rc<RefCell<Vec<bool>>>,
    }

    impl Function for Echo {
        type Req = u64;
        type Resp = u64;

        fn on_start(&mut self, _sim: &mut Sim, _ctx: &InstanceCtx) {
            *self.started.borrow_mut() += 1;
        }

        fn on_request(
            &mut self,
            sim: &mut Sim,
            ctx: &InstanceCtx,
            req: u64,
            respond: Responder<u64>,
        ) {
            Station::submit(&ctx.cpu, sim, self.work, move |sim| respond.send(sim, req + 1));
        }

        fn on_terminate(&mut self, _sim: &mut Sim, _ctx: &InstanceCtx, graceful: bool) {
            self.terminated.borrow_mut().push(graceful);
        }
    }

    struct Harness {
        platform: Platform<Echo>,
        deployment: DeploymentId,
        started: Rc<RefCell<u32>>,
        terminated: Rc<RefCell<Vec<bool>>>,
    }

    fn harness(cluster_vcpus: u32, concurrency: u32, max_instances: u32) -> Harness {
        let cfg = PlatformConfig { cluster_vcpus, ..PlatformConfig::default() };
        let platform = Platform::new(&cfg);
        let started = Rc::new(RefCell::new(0));
        let terminated = Rc::new(RefCell::new(Vec::new()));
        let (s2, t2) = (Rc::clone(&started), Rc::clone(&terminated));
        let deployment = platform.register_deployment(
            "echo",
            FunctionConfig { vcpus: 4, mem_gb: 6.0, concurrency, max_instances, min_instances: 0 },
            Box::new(move |_ctx| Echo {
                work: SimDuration::from_millis(1),
                started: Rc::clone(&s2),
                terminated: Rc::clone(&t2),
            }),
        );
        Harness { platform, deployment, started, terminated }
    }

    #[test]
    fn http_invocation_cold_starts_and_responds() {
        let mut sim = Sim::new(1);
        let h = harness(64, 4, u32::MAX);
        let got = Rc::new(RefCell::new(None));
        let out = Rc::clone(&got);
        h.platform.invoke_http(&mut sim, h.deployment, 41, Responder::new(move |sim, resp| {
            *out.borrow_mut() = Some((sim.now(), resp));
        }));
        sim.run();
        let (at, resp) = got.borrow().expect("response arrived");
        assert_eq!(resp, 42);
        // Gateway overhead + cold start + 1ms work: comfortably > 0.6s.
        assert!(at > SimTime::from_nanos(600_000_000), "responded at {at}");
        assert_eq!(*h.started.borrow(), 1);
        assert_eq!(h.platform.stats().cold_starts, 1);
        assert_eq!(h.platform.warm_instances(h.deployment).len(), 1);
    }

    #[test]
    fn warm_instances_are_reused_not_restarted() {
        let mut sim = Sim::new(2);
        let h = harness(64, 4, u32::MAX);
        let count = Rc::new(RefCell::new(0u32));
        for _ in 0..10 {
            let c = Rc::clone(&count);
            h.platform.invoke_http(&mut sim, h.deployment, 1, Responder::new(move |_s, _r| {
                *c.borrow_mut() += 1;
            }));
            sim.run();
        }
        assert_eq!(*count.borrow(), 10);
        // Sequential requests fit in one instance's concurrency.
        assert_eq!(h.platform.stats().cold_starts, 1);
    }

    #[test]
    fn load_beyond_concurrency_scales_out() {
        let mut sim = Sim::new(3);
        let h = harness(64, 1, u32::MAX);
        let count = Rc::new(RefCell::new(0u32));
        // 8 concurrent requests, concurrency 1 -> up to 8 instances, but
        // capped by vCPUs: 64/4 = 16, so all 8 can start.
        for _ in 0..8 {
            let c = Rc::clone(&count);
            h.platform.invoke_http(&mut sim, h.deployment, 1, Responder::new(move |_s, _r| {
                *c.borrow_mut() += 1;
            }));
        }
        sim.run();
        assert_eq!(*count.borrow(), 8);
        assert!(h.platform.stats().cold_starts >= 2, "no scale-out happened");
        assert!(h.platform.stats().cold_starts <= 8);
    }

    #[test]
    fn vcpu_cap_limits_scale_out_and_queues_requests() {
        let mut sim = Sim::new(4);
        // Cap allows exactly 2 instances of 4 vCPUs.
        let h = harness(8, 1, u32::MAX);
        let count = Rc::new(RefCell::new(0u32));
        for _ in 0..6 {
            let c = Rc::clone(&count);
            h.platform.invoke_http(&mut sim, h.deployment, 1, Responder::new(move |_s, _r| {
                *c.borrow_mut() += 1;
            }));
        }
        sim.run();
        assert_eq!(*count.borrow(), 6, "queued requests must still complete");
        assert_eq!(h.platform.stats().cold_starts, 2);
        assert!(h.platform.peak_vcpus_used() <= 8);
    }

    #[test]
    fn max_instances_bounds_autoscaling() {
        let mut sim = Sim::new(5);
        let h = harness(64, 1, 1); // auto-scaling disabled: 1 instance
        for _ in 0..5 {
            h.platform.invoke_http(&mut sim, h.deployment, 1, Responder::new(|_s, _r| {}));
        }
        sim.run();
        assert_eq!(h.platform.stats().cold_starts, 1);
    }

    #[test]
    fn idle_instances_are_reclaimed_gracefully() {
        let mut sim = Sim::new(6);
        let h = harness(64, 4, u32::MAX);
        h.platform.invoke_http(&mut sim, h.deployment, 1, Responder::new(|_s, _r| {}));
        sim.run();
        assert_eq!(h.platform.warm_instances(h.deployment).len(), 1);
        // Default idle reclaim is 30s; run well past it.
        h.platform.run_maintenance(&mut sim);
        sim.run_until(SimTime::from_secs(120));
        assert!(h.platform.warm_instances(h.deployment).is_empty(), "instance not reclaimed");
        assert_eq!(*h.terminated.borrow(), vec![true]);
        assert_eq!(h.platform.stats().reclaims, 1);
    }

    #[test]
    fn tcp_delivery_bypasses_gateway_and_keeps_instances_warm() {
        let mut sim = Sim::new(7);
        let h = harness(64, 4, u32::MAX);
        h.platform.invoke_http(&mut sim, h.deployment, 1, Responder::new(|_s, _r| {}));
        sim.run();
        let instance = h.platform.warm_instances(h.deployment)[0];
        let http_invocations = h.platform.stats().http_invocations;
        let got = Rc::new(RefCell::new(None));
        let out = Rc::clone(&got);
        let t0 = sim.now();
        assert!(h.platform.deliver_tcp(&mut sim, instance, 10, Responder::new(move |sim, resp| {
            *out.borrow_mut() = Some((sim.now(), resp));
        })));
        sim.run();
        let (at, resp) = got.borrow().expect("tcp response");
        assert_eq!(resp, 11);
        // No gateway overhead: just ~1ms of work.
        assert!(at.saturating_since(t0) < SimDuration::from_millis(5));
        assert_eq!(h.platform.stats().http_invocations, http_invocations);
    }

    #[test]
    fn killed_instances_drop_in_flight_responses() {
        let mut sim = Sim::new(8);
        let h = harness(64, 4, u32::MAX);
        h.platform.invoke_http(&mut sim, h.deployment, 1, Responder::new(|_s, _r| {}));
        sim.run();
        let instance = h.platform.warm_instances(h.deployment)[0];
        let responded = Rc::new(RefCell::new(false));
        let out = Rc::clone(&responded);
        assert!(h.platform.deliver_tcp(&mut sim, instance, 5, Responder::new(move |_s, _r| {
            *out.borrow_mut() = true;
        })));
        // Kill before the 1ms of work completes.
        h.platform.kill_instance(&mut sim, instance);
        sim.run();
        assert!(!*responded.borrow(), "dead instance responded");
        // A crash is not graceful termination: no on_terminate callback.
        assert!(h.terminated.borrow().is_empty());
        assert_eq!(h.platform.stats().kills, 1);
        // Delivery to the dead instance is refused thereafter.
        assert!(!h.platform.deliver_tcp(&mut sim, instance, 6, Responder::new(|_s, _r| {})));
    }

    #[test]
    fn kill_during_cold_start_discards_the_starting_instance() {
        let mut sim = Sim::new(16);
        let h = harness(64, 4, u32::MAX);
        let responded = Rc::new(RefCell::new(false));
        let out = Rc::clone(&responded);
        h.platform.invoke_http(&mut sim, h.deployment, 1, Responder::new(move |_s, _r| {
            *out.borrow_mut() = true;
        }));
        // Past the gateway overhead (the cold start has begun) but well
        // before the ~600ms cold start completes.
        sim.run_until(SimTime::from_nanos(100_000_000));
        let starting: Vec<_> =
            h.platform.instance_slots().into_iter().filter(|(_, _, _, _, warm)| !warm).collect();
        assert_eq!(starting.len(), 1, "one instance should be mid-cold-start");
        h.platform.kill_instance(&mut sim, starting[0].0);
        sim.run();
        // `finish_cold_start` found the slot gone: the factory never ran,
        // `on_start` never fired, and the request is still queued.
        assert_eq!(*h.started.borrow(), 0);
        assert_eq!(h.platform.stats().kills, 1);
        assert!(h.platform.warm_instances(h.deployment).is_empty());
        assert_eq!(h.platform.queued_requests(), 1);
        assert_eq!(h.platform.instance_slab(), (1, 1), "slot must return to the freelist");
        assert!(!*responded.borrow());
        // The maintenance rescue pass restarts capacity and drains the
        // queued request — the platform-side half of timeout recovery.
        h.platform.run_maintenance(&mut sim);
        sim.run_until(SimTime::from_secs(10));
        h.platform.stop_maintenance();
        assert!(*responded.borrow(), "queued request never completed after the kill");
        assert_eq!(*h.started.borrow(), 1);
        assert_eq!(h.platform.queued_requests(), 0);
        assert_eq!(h.platform.instance_slab(), (1, 0), "replacement must reuse the freed slot");
    }

    /// A function that kills its own instance from `on_start` — the
    /// narrowest window in the cold-start path.
    struct KillSelf {
        platform: Rc<RefCell<Option<Platform<KillSelf>>>>,
        started: Rc<RefCell<u32>>,
    }

    impl Function for KillSelf {
        type Req = u64;
        type Resp = u64;

        fn on_start(&mut self, sim: &mut Sim, ctx: &InstanceCtx) {
            *self.started.borrow_mut() += 1;
            let p = self.platform.borrow().clone().expect("platform installed");
            p.kill_instance(sim, ctx.instance);
        }

        fn on_request(
            &mut self,
            sim: &mut Sim,
            _ctx: &InstanceCtx,
            req: u64,
            respond: Responder<u64>,
        ) {
            respond.send(sim, req);
        }

        fn on_terminate(&mut self, _sim: &mut Sim, _ctx: &InstanceCtx, _graceful: bool) {
            unreachable!("killed instances never terminate gracefully");
        }
    }

    #[test]
    fn kill_during_on_start_drops_the_leftover_function() {
        let mut sim = Sim::new(17);
        let cfg = PlatformConfig { cluster_vcpus: 64, ..PlatformConfig::default() };
        let platform = Platform::new(&cfg);
        let handle: Rc<RefCell<Option<Platform<KillSelf>>>> = Rc::new(RefCell::new(None));
        let started = Rc::new(RefCell::new(0));
        let (h2, s2) = (Rc::clone(&handle), Rc::clone(&started));
        let deployment = platform.register_deployment(
            "suicidal",
            FunctionConfig { vcpus: 4, mem_gb: 6.0, concurrency: 4, max_instances: 1, min_instances: 0 },
            Box::new(move |_ctx| KillSelf { platform: Rc::clone(&h2), started: Rc::clone(&s2) }),
        );
        *handle.borrow_mut() = Some(platform.clone());
        let responded = Rc::new(RefCell::new(false));
        let out = Rc::clone(&responded);
        platform.invoke_http(&mut sim, deployment, 1, Responder::new(move |_s, _r| {
            *out.borrow_mut() = true;
        }));
        sim.run();
        // `on_start` ran, the kill landed inside it, and `finish_cold_start`
        // dropped the leftover function without installing it.
        assert_eq!(*started.borrow(), 1);
        assert_eq!(platform.stats().kills, 1);
        assert!(platform.warm_instances(deployment).is_empty());
        assert_eq!(platform.instance_slab(), (1, 1));
        assert!(!*responded.borrow(), "request to a never-warm instance cannot complete");
        *handle.borrow_mut() = None; // break the Rc cycle
    }

    #[test]
    fn kill_mid_call_frees_parked_responders_and_recovers() {
        let mut sim = Sim::new(18);
        let h = harness(64, 4, u32::MAX);
        h.platform.invoke_http(&mut sim, h.deployment, 1, Responder::new(|_s, _r| {}));
        sim.run();
        let instance = h.platform.warm_instances(h.deployment)[0];
        // Three in-flight TCP calls park three pooled responders.
        let responded = Rc::new(RefCell::new(0u32));
        for i in 0..3 {
            let out = Rc::clone(&responded);
            assert!(h.platform.deliver_tcp(&mut sim, instance, i, Responder::new(move |_s, _r| {
                *out.borrow_mut() += 1;
            })));
        }
        assert_eq!(h.platform.pending_invocations(), 3);
        h.platform.kill_instance(&mut sim, instance);
        assert_eq!(h.platform.instance_slab(), (1, 1));
        sim.run();
        assert_eq!(*responded.borrow(), 0, "dead instance must not respond");
        // Each in-flight responder hit the dead instance and abandoned its
        // invocation record — none may leak.
        assert_eq!(h.platform.pending_invocations(), 0);
        assert_eq!(h.platform.stats().kills, 1);
        // The caller's timeout path retries over HTTP: the platform cold
        // starts a replacement in the freed slot and serves it.
        let recovered = Rc::new(RefCell::new(false));
        let out = Rc::clone(&recovered);
        h.platform.invoke_http(&mut sim, h.deployment, 9, Responder::new(move |_s, _r| {
            *out.borrow_mut() = true;
        }));
        sim.run();
        assert!(*recovered.borrow());
        assert_eq!(h.platform.instance_slab(), (1, 0), "replacement reused the freed slot");
        assert_eq!(*h.started.borrow(), 2);
    }

    #[test]
    fn kill_warm_burst_respects_deployment_filter_and_count() {
        let mut sim = Sim::new(19);
        let (platform, deps) = multi_harness(64, 2);
        // Warm 3 instances on deployment 0 and 1 on deployment 1.
        for _ in 0..3 {
            platform.invoke_http(&mut sim, deps[0], 1, Responder::new(|_s, _r| {}));
        }
        platform.invoke_http(&mut sim, deps[1], 1, Responder::new(|_s, _r| {}));
        sim.run();
        assert_eq!(platform.warm_instances(deps[0]).len(), 3);
        assert_eq!(platform.warm_instances(deps[1]).len(), 1);
        // Burst of 2 pinned to deployment 0.
        assert_eq!(platform.kill_warm_burst(&mut sim, Some(deps[0]), 2), 2);
        assert_eq!(platform.warm_instances(deps[0]).len(), 1);
        assert_eq!(platform.warm_instances(deps[1]).len(), 1);
        // Unpinned burst larger than the fleet kills what's there.
        assert_eq!(platform.kill_warm_burst(&mut sim, None, 10), 2);
        assert_eq!(platform.warm_instances(deps[0]).len(), 0);
        assert_eq!(platform.warm_instances(deps[1]).len(), 0);
        assert_eq!(platform.stats().kills, 4);
    }

    #[test]
    fn cold_start_storm_stretches_cold_starts_inside_the_window() {
        // Same seed, same schedule; the storm run must cold-start strictly
        // later, and a run whose storm window never overlaps must be
        // identical to a storm-free run (the sample is drawn either way).
        let warm_at = |storm: Option<(u64, u64, f64)>| -> SimTime {
            let mut sim = Sim::new(33);
            let h = harness(64, 4, u32::MAX);
            if let Some((from, until, factor)) = storm {
                h.platform.cold_start_storm(
                    &mut sim,
                    SimTime::from_secs(from),
                    SimTime::from_secs(until),
                    factor,
                );
            }
            let done = Rc::new(RefCell::new(None));
            let out = Rc::clone(&done);
            h.platform.invoke_http(&mut sim, h.deployment, 1, Responder::new(move |sim, _r| {
                *out.borrow_mut() = Some(sim.now());
            }));
            sim.run();
            let at = done.borrow().expect("request completed");
            at
        };
        let baseline = warm_at(None);
        let stormed = warm_at(Some((0, 30, 5.0)));
        let missed = warm_at(Some((100, 130, 5.0)));
        assert_eq!(missed, baseline, "a non-overlapping storm must not perturb the run");
        assert!(
            stormed > baseline,
            "storm did not stretch the cold start: {stormed} vs {baseline}"
        );
    }

    #[test]
    fn billing_pay_per_use_is_cheaper_than_provisioned() {
        let mut sim = Sim::new(9);
        let h = harness(64, 4, u32::MAX);
        h.platform.run_maintenance(&mut sim);
        h.platform.invoke_http(&mut sim, h.deployment, 1, Responder::new(|_s, _r| {}));
        sim.run_until(SimTime::from_secs(20));
        let pay = h.platform.pay_per_use_cost();
        let prov = h.platform.provisioned_cost();
        assert!(pay > 0.0);
        assert!(prov > pay, "provisioned {prov} <= pay-per-use {pay}");
    }

    #[test]
    fn min_instances_floor_survives_reclamation() {
        let mut sim = Sim::new(11);
        let cfg = PlatformConfig { cluster_vcpus: 64, ..PlatformConfig::default() };
        let platform = Platform::new(&cfg);
        let started = Rc::new(RefCell::new(0));
        let terminated = Rc::new(RefCell::new(Vec::new()));
        let (s2, t2) = (Rc::clone(&started), Rc::clone(&terminated));
        let deployment = platform.register_deployment(
            "floored",
            FunctionConfig {
                vcpus: 4,
                mem_gb: 6.0,
                concurrency: 1,
                max_instances: u32::MAX,
                min_instances: 2,
            },
            Box::new(move |_ctx| Echo {
                work: SimDuration::from_millis(1),
                started: Rc::clone(&s2),
                terminated: Rc::clone(&t2),
            }),
        );
        platform.run_maintenance(&mut sim);
        // Scale out to 4 instances with a burst of concurrent requests.
        for _ in 0..4 {
            platform.invoke_http(&mut sim, deployment, 1, Responder::new(|_s, _r| {}));
        }
        sim.run_until(SimTime::from_secs(5));
        assert!(platform.warm_instances(deployment).len() >= 3);
        // Long idle: reclamation shrinks to the floor, not to zero.
        sim.run_until(SimTime::from_secs(180));
        assert_eq!(
            platform.warm_instances(deployment).len(),
            2,
            "idle reclamation must respect min_instances"
        );
    }

    /// Registers `n` Echo deployments on one platform.
    fn multi_harness(cluster_vcpus: u32, n: usize) -> (Platform<Echo>, Vec<DeploymentId>) {
        let cfg = PlatformConfig { cluster_vcpus, ..PlatformConfig::default() };
        let platform = Platform::new(&cfg);
        let deployments = (0..n)
            .map(|i| {
                let started = Rc::new(RefCell::new(0));
                let terminated = Rc::new(RefCell::new(Vec::new()));
                platform.register_deployment(
                    format!("echo{i}"),
                    FunctionConfig {
                        vcpus: 4,
                        mem_gb: 6.0,
                        concurrency: 1,
                        max_instances: u32::MAX,
                        min_instances: 0,
                    },
                    Box::new(move |_ctx| Echo {
                        work: SimDuration::from_millis(1),
                        started: Rc::clone(&started),
                        terminated: Rc::clone(&terminated),
                    }),
                )
            })
            .collect();
        (platform, deployments)
    }

    #[test]
    fn starved_deployment_evicts_an_idle_instance_under_pressure() {
        let mut sim = Sim::new(12);
        // Room for exactly one 4-vCPU instance; two deployments.
        let (platform, deps) = multi_harness(4, 2);
        let count = Rc::new(RefCell::new(0u32));
        let c = Rc::clone(&count);
        platform.invoke_http(&mut sim, deps[0], 1, Responder::new(move |_s, _r| {
            *c.borrow_mut() += 1;
        }));
        sim.run();
        assert_eq!(platform.warm_instances(deps[0]).len(), 1);
        // Let the instance age past the eviction grace, then hit the
        // other deployment: it must evict deployment 0's idle instance
        // rather than queue until the request TTL.
        sim.run_until(sim.now() + SimDuration::from_secs(5));
        let c = Rc::clone(&count);
        let t0 = sim.now();
        platform.invoke_http(&mut sim, deps[1], 2, Responder::new(move |_s, _r| {
            *c.borrow_mut() += 1;
        }));
        sim.run();
        assert_eq!(*count.borrow(), 2, "second deployment's request must complete");
        assert_eq!(platform.stats().evictions, 1);
        assert!(platform.warm_instances(deps[0]).is_empty());
        assert_eq!(platform.warm_instances(deps[1]).len(), 1);
        // Served after one eviction + cold start, not after a TTL expiry.
        assert!(sim.now().saturating_since(t0) < SimDuration::from_secs(5));
        assert!(platform.peak_vcpus_used() <= 4);
    }

    #[test]
    fn eviction_grace_prevents_slot_ping_pong() {
        let mut sim = Sim::new(13);
        let (platform, deps) = multi_harness(4, 2);
        // Warm deployment 0 and age it past the grace.
        platform.invoke_http(&mut sim, deps[0], 1, Responder::new(|_s, _r| {}));
        sim.run();
        sim.run_until(sim.now() + SimDuration::from_secs(5));
        // Deployment 1 takes the slot by eviction; deployment 0's
        // immediate retaliation finds only a too-young instance and must
        // wait instead of evicting right back.
        platform.invoke_http(&mut sim, deps[1], 2, Responder::new(|_s, _r| {}));
        sim.run();
        assert_eq!(platform.stats().evictions, 1);
        platform.invoke_http(&mut sim, deps[0], 3, Responder::new(|_s, _r| {}));
        let before = sim.now();
        sim.run_until(before + SimDuration::from_millis(500));
        assert_eq!(
            platform.stats().evictions,
            1,
            "young instance must be protected by the grace period"
        );
    }

    #[test]
    fn eviction_is_reserved_for_instanceless_deployments() {
        let mut sim = Sim::new(14);
        let (platform, deps) = multi_harness(8, 2);
        // Both deployments own one instance each: the cluster is full.
        for (i, &d) in deps.iter().enumerate() {
            platform.invoke_http(&mut sim, d, i as u64, Responder::new(|_s, _r| {}));
            sim.run();
        }
        sim.run_until(sim.now() + SimDuration::from_secs(5));
        // Concurrent burst on deployment 0 wants a second instance, but a
        // deployment that already has one never evicts others.
        for _ in 0..6 {
            platform.invoke_http(&mut sim, deps[0], 9, Responder::new(|_s, _r| {}));
        }
        sim.run();
        assert_eq!(platform.stats().evictions, 0);
        assert_eq!(platform.warm_instances(deps[1]).len(), 1);
    }

    /// Randomized starvation-freedom: five deployments time-share a
    /// cluster with room for only two instances. Every invocation — at
    /// pseudo-random arrival times spread far enough apart for eviction
    /// grace to elapse — must complete; none may expire at its TTL. The
    /// maintenance rescue pass covers arrivals whose eviction attempt
    /// found only grace-protected victims.
    #[test]
    fn no_deployment_starves_on_a_tiny_cluster() {
        let mut sim = Sim::new(15);
        let (platform, deps) = multi_harness(8, 5);
        platform.run_maintenance(&mut sim);
        let completed = Rc::new(RefCell::new(0u32));
        // A fixed pseudo-random schedule (splitmix-style constants) of 30
        // invocations over ~150 s across the five deployments.
        let mut x: u64 = 0x9E37_79B9_7F4A_7C15;
        let mut at = SimTime::ZERO;
        let mut sent = 0;
        for _ in 0..30 {
            x ^= x >> 30;
            x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x ^= x >> 27;
            let dep = deps[(x % 5) as usize];
            at += SimDuration::from_millis(2_000 + (x >> 32) % 8_000);
            let c = Rc::clone(&completed);
            let p2 = platform.clone();
            sim.schedule_at(at, move |sim| {
                p2.invoke_http(sim, dep, 1, Responder::new(move |_s, _r| {
                    *c.borrow_mut() += 1;
                }));
            });
            sent += 1;
        }
        sim.run_until(at + SimDuration::from_secs(60));
        platform.stop_maintenance();
        assert_eq!(*completed.borrow(), sent, "an invocation starved");
        assert_eq!(platform.stats().expired_requests, 0);
        assert!(platform.stats().evictions > 0, "time-sharing never happened");
        assert!(platform.peak_vcpus_used() <= 8);
    }

    #[test]
    fn instance_gauge_tracks_scale_out_and_in() {
        let mut sim = Sim::new(10);
        let h = harness(64, 1, u32::MAX);
        h.platform.run_maintenance(&mut sim);
        for _ in 0..4 {
            h.platform.invoke_http(&mut sim, h.deployment, 1, Responder::new(|_s, _r| {}));
        }
        sim.run_until(SimTime::from_secs(120));
        let gauge = h.platform.instance_gauge();
        assert!(gauge.peak() >= 2.0);
        // After reclamation the gauge returns to zero.
        assert_eq!(gauge.points().last().map(|(_, v)| *v), Some(0.0));
    }
}
