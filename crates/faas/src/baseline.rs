//! The pre-overhaul platform, retained verbatim for differential testing
//! and as the `bench_faas` comparison baseline: a `BTreeMap` instance
//! table, full-table scans for routing/reclamation/billing, a boxed
//! wrapper closure per dispatched request, and per-invocation config
//! clones. Behavior is the contract: `tests/platform_differential.rs`
//! drives this and [`crate::Platform`] with identical schedules and
//! requires identical observables.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::rc::Rc;

use lambda_sim::{CostMeter, GaugeSeries, Sim, SimDuration, SimTime, Station};

use crate::platform::{
    DeploymentId, Function, FunctionConfig, InstanceCtx, InstanceId, PlatformConfig,
    PlatformStats, Responder,
};

struct Queued<F: Function> {
    req: F::Req,
    respond: Responder<F::Resp>,
    enqueued: SimTime,
}

struct DeploymentState<F: Function> {
    name: String,
    config: FunctionConfig,
    factory: Box<dyn Fn(&InstanceCtx) -> F>,
    /// Starting + warm instances, in creation order.
    instances: Vec<InstanceId>,
    queue: VecDeque<Queued<F>>,
}

struct InstanceState<F: Function> {
    ctx: InstanceCtx,
    /// `None` while cold-starting or while a call into the function is on
    /// the stack (taken out to allow re-entrancy).
    function: Option<F>,
    warm: bool,
    active_http: u32,
    active_total: u32,
    active_since: Option<SimTime>,
    last_activity: SimTime,
    /// When the cold start began; protects young instances from
    /// capacity-pressure eviction.
    created: SimTime,
}

struct Inner<F: Function> {
    cfg: PlatformConfig,
    deployments: Vec<DeploymentState<F>>,
    instances: BTreeMap<InstanceId, InstanceState<F>>,
    next_instance: u64,
    used_vcpus: u32,
    peak_vcpus: u32,
    pay_meter: CostMeter,
    prov_meter: CostMeter,
    gauge: GaugeSeries,
    stats: PlatformStats,
    maintenance_running: bool,
    maintenance_stopped: bool,
}

/// A shared handle to the serverless platform hosting instances of `F`.
///
/// See the crate-level docs for the role this plays in the reproduced
/// system and the crate tests for end-to-end usage.
pub struct Platform<F: Function> {
    inner: Rc<RefCell<Inner<F>>>,
}

impl<F: Function> Clone for Platform<F> {
    fn clone(&self) -> Self {
        Platform { inner: Rc::clone(&self.inner) }
    }
}

impl<F: Function> fmt::Debug for Platform<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("Platform")
            .field("deployments", &inner.deployments.len())
            .field("instances", &inner.instances.len())
            .field("used_vcpus", &inner.used_vcpus)
            .finish()
    }
}

impl<F: Function> Platform<F> {
    /// Creates a platform with no deployments.
    #[must_use]
    pub fn new(cfg: &PlatformConfig) -> Self {
        Platform {
            inner: Rc::new(RefCell::new(Inner {
                cfg: cfg.clone(),
                deployments: Vec::new(),
                instances: BTreeMap::new(),
                next_instance: 0,
                used_vcpus: 0,
                peak_vcpus: 0,
                pay_meter: CostMeter::new(),
                prov_meter: CostMeter::new(),
                gauge: GaugeSeries::new(),
                stats: PlatformStats::default(),
                maintenance_running: false,
                maintenance_stopped: false,
            })),
        }
    }

    /// Registers a uniquely named function deployment; `factory` builds
    /// the function body for each new instance.
    pub fn register_deployment(
        &self,
        name: impl Into<String>,
        config: FunctionConfig,
        factory: Box<dyn Fn(&InstanceCtx) -> F>,
    ) -> DeploymentId {
        let mut inner = self.inner.borrow_mut();
        let id = DeploymentId::from_raw(inner.deployments.len() as u32);
        inner.deployments.push(DeploymentState {
            name: name.into(),
            config,
            factory,
            instances: Vec::new(),
            queue: VecDeque::new(),
        });
        id
    }

    /// Number of registered deployments.
    #[must_use]
    pub fn deployment_count(&self) -> usize {
        self.inner.borrow().deployments.len()
    }

    /// The name a deployment was registered under.
    #[must_use]
    pub fn deployment_name(&self, deployment: DeploymentId) -> String {
        self.inner.borrow().deployments[deployment.raw() as usize].name.clone()
    }

    /// Cumulative statistics.
    #[must_use]
    pub fn stats(&self) -> PlatformStats {
        self.inner.borrow().stats
    }

    /// Highest vCPU allocation observed.
    #[must_use]
    pub fn peak_vcpus_used(&self) -> u32 {
        self.inner.borrow().peak_vcpus
    }

    /// vCPUs currently allocated.
    #[must_use]
    pub fn vcpus_used(&self) -> u32 {
        self.inner.borrow().used_vcpus
    }

    /// Total pay-per-use (AWS-Lambda-model) cost so far.
    #[must_use]
    pub fn pay_per_use_cost(&self) -> f64 {
        self.inner.borrow().pay_meter.total()
    }

    /// Total cost under the "simplified" model (instances billed while
    /// provisioned; Fig. 9's `λFS (Simplified)` curve). Only accumulates
    /// while maintenance is running (it is sampled by the billing tick).
    #[must_use]
    pub fn provisioned_cost(&self) -> f64 {
        self.inner.borrow().prov_meter.total()
    }

    /// Snapshot of the pay-per-use cost meter (per-second series).
    #[must_use]
    pub fn pay_meter(&self) -> CostMeter {
        self.inner.borrow().pay_meter.clone()
    }

    /// Snapshot of the provisioned-cost meter.
    #[must_use]
    pub fn prov_meter(&self) -> CostMeter {
        self.inner.borrow().prov_meter.clone()
    }

    /// Time series of provisioned (starting + warm) instance counts.
    #[must_use]
    pub fn instance_gauge(&self) -> GaugeSeries {
        self.inner.borrow().gauge.clone()
    }

    /// Warm instances of `deployment`, in creation order.
    #[must_use]
    pub fn warm_instances(&self, deployment: DeploymentId) -> Vec<InstanceId> {
        let inner = self.inner.borrow();
        inner.deployments[deployment.raw() as usize]
            .instances
            .iter()
            .copied()
            .filter(|id| inner.instances.get(id).is_some_and(|i| i.warm))
            .collect()
    }

    /// Total provisioned instances (starting + warm) across deployments.
    #[must_use]
    pub fn total_instances(&self) -> usize {
        self.inner.borrow().instances.len()
    }

    /// Per-instance CPU station statistics (diagnostics): `(instance,
    /// servers, busy, queue, stats)`.
    #[must_use]
    pub fn instance_cpu_stats(
        &self,
    ) -> Vec<(InstanceId, u32, u32, usize, lambda_sim::StationStats)> {
        let inner = self.inner.borrow();
        inner
            .instances
            .iter()
            .map(|(id, st)| {
                let cpu = st.ctx.cpu.borrow();
                (*id, cpu.servers(), cpu.busy(), cpu.queue_len(), cpu.stats())
            })
            .collect()
    }

    /// Per-instance request-slot occupancy (diagnostics): `(instance,
    /// deployment, active_http, active_total, warm)`.
    #[must_use]
    pub fn instance_slots(&self) -> Vec<(InstanceId, DeploymentId, u32, u32, bool)> {
        let inner = self.inner.borrow();
        inner
            .instances
            .iter()
            .map(|(id, st)| (*id, st.ctx.deployment, st.active_http, st.active_total, st.warm))
            .collect()
    }

    /// HTTP load (active requests + queue depth) of a deployment.
    #[must_use]
    pub fn deployment_load(&self, deployment: DeploymentId) -> usize {
        let inner = self.inner.borrow();
        let dep = &inner.deployments[deployment.raw() as usize];
        let active: u32 = dep
            .instances
            .iter()
            .filter_map(|id| inner.instances.get(id))
            .map(|i| i.active_http)
            .sum();
        active as usize + dep.queue.len()
    }

    /// Starts the periodic reclamation + billing ticks. Idempotent. The
    /// ticks run until [`Platform::stop_maintenance`]; drive the simulation
    /// with `run_until`/`run_for` while they are armed.
    pub fn run_maintenance(&self, sim: &mut Sim) {
        {
            let mut inner = self.inner.borrow_mut();
            if inner.maintenance_running {
                return;
            }
            inner.maintenance_running = true;
            inner.maintenance_stopped = false;
        }
        let scan = self.inner.borrow().cfg.faas.reclaim_scan_every;
        let this = self.clone();
        lambda_sim::every(sim, sim.now() + scan, scan, move |sim| {
            if this.inner.borrow().maintenance_stopped {
                return false;
            }
            this.reclaim_idle(sim);
            true
        });
        let this = self.clone();
        let tick = SimDuration::from_secs(1);
        lambda_sim::every(sim, sim.now() + tick, tick, move |sim| {
            if this.inner.borrow().maintenance_stopped {
                return false;
            }
            this.billing_tick(sim, tick);
            // Rescue pass: a deployment whose queued work could not scale
            // out earlier (e.g. every eviction victim was inside its
            // grace period) gets another chance as victims age.
            let deployments = this.inner.borrow().deployments.len();
            for d in 0..deployments {
                let id = DeploymentId::from_raw(d as u32);
                if this.inner.borrow().deployments[d].queue.is_empty() {
                    continue;
                }
                this.drain_queue(sim, id);
                this.maybe_scale_out(sim, id);
            }
            true
        });
    }

    /// Stops the maintenance ticks at their next firing.
    pub fn stop_maintenance(&self) {
        let mut inner = self.inner.borrow_mut();
        inner.maintenance_running = false;
        inner.maintenance_stopped = true;
    }

    /// Submits an HTTP invocation through the API gateway. This is the
    /// path that can trigger auto-scaling.
    pub fn invoke_http(
        &self,
        sim: &mut Sim,
        deployment: DeploymentId,
        req: F::Req,
        respond: Responder<F::Resp>,
    ) {
        let (overhead, pricing) = {
            let mut inner = self.inner.borrow_mut();
            inner.stats.http_invocations += 1;
            (inner.cfg.net.http_overhead, inner.cfg.pricing)
        };
        let now = sim.now();
        self.inner.borrow_mut().pay_meter.charge_lambda_request(now, &pricing);
        let delay = sim.rng().sample_duration(&overhead);
        let this = self.clone();
        sim.schedule(delay, move |sim| this.route_http(sim, deployment, req, respond));
    }

    fn route_http(
        &self,
        sim: &mut Sim,
        deployment: DeploymentId,
        req: F::Req,
        respond: Responder<F::Resp>,
    ) {
        // Always enqueue, then drain: arrivals must not overtake requests
        // already waiting (FIFO fairness — and a bypassed queue would only
        // drain on the next HTTP completion, which may never come on a
        // TCP-dominated deployment).
        {
            let mut inner = self.inner.borrow_mut();
            let enqueued = sim.now();
            inner.deployments[deployment.raw() as usize]
                .queue
                .push_back(Queued { req, respond, enqueued });
        }
        self.drain_queue(sim, deployment);
        self.maybe_scale_out(sim, deployment);
    }

    /// If the queue still has waiters after draining, every warm slot
    /// is busy: scale out when capacity allows — but governed: never
    /// start more instances than the backlog justifies, counting the
    /// concurrency the instances already cold-starting will add. An
    /// ungoverned invoker spawns one container per queued request and
    /// can exhaust the cluster cap before every deployment has its
    /// first instance.
    fn maybe_scale_out(&self, sim: &mut Sim, deployment: DeploymentId) {
        let (wants_cold, has_capacity, starving) = {
            let inner = self.inner.borrow();
            let dep = &inner.deployments[deployment.raw() as usize];
            let queue_len = dep.queue.len() as u32;
            if queue_len == 0 {
                (false, false, false)
            } else {
                let starting = dep
                    .instances
                    .iter()
                    .filter(|id| inner.instances.get(id).is_some_and(|st| !st.warm))
                    .count() as u32;
                let dep_count = dep.instances.len() as u32;
                let wants = dep_count < dep.config.max_instances
                    && queue_len > starting * dep.config.concurrency.max(1);
                let capacity =
                    inner.used_vcpus + dep.config.vcpus <= inner.cfg.cluster_vcpus;
                (wants, capacity, dep_count == 0)
            }
        };
        if wants_cold && has_capacity {
            self.begin_cold_start(sim, deployment);
        } else if wants_cold && starving && self.evict_for(sim, deployment) {
            // Room was freed by terminating another deployment's warm
            // instance; re-check the cap (instance sizes may differ).
            let fits = {
                let inner = self.inner.borrow();
                let dep = &inner.deployments[deployment.raw() as usize];
                inner.used_vcpus + dep.config.vcpus <= inner.cfg.cluster_vcpus
            };
            if fits {
                self.begin_cold_start(sim, deployment);
            }
        }
    }

    /// Capacity-pressure eviction (OpenWhisk-style): `deployment` has
    /// queued work and no instance at all, but the cluster is at its vCPU
    /// cap. Terminate the least-recently-active warm instance of another
    /// deployment — preferring deployments that hold several instances —
    /// so no deployment starves forever on a cluster smaller than the
    /// deployment count. Instances younger than a grace period are
    /// protected, which bounds the churn rate when many starved
    /// deployments must time-share too few slots: each slot changes hands
    /// at most once per grace period instead of on every request.
    fn evict_for(&self, sim: &mut Sim, deployment: DeploymentId) -> bool {
        const EVICTION_GRACE: SimDuration = SimDuration::from_millis(2_000);
        let victim = {
            let inner = self.inner.borrow();
            let now = sim.now();
            inner
                .instances
                .iter()
                .filter(|(_, st)| {
                    st.warm
                        && st.ctx.deployment != deployment
                        && st.active_http == 0
                        && now.saturating_since(st.created) >= EVICTION_GRACE
                })
                .max_by_key(|(id, st)| {
                    let dep_size =
                        inner.deployments[st.ctx.deployment.raw() as usize].instances.len();
                    (dep_size, std::cmp::Reverse(st.last_activity), std::cmp::Reverse(**id))
                })
                .map(|(id, _)| *id)
        };
        let Some(victim) = victim else { return false };
        let removed = {
            let mut inner = self.inner.borrow_mut();
            let Some(state) = inner.instances.remove(&victim) else { return false };
            state.ctx.alive.set(false);
            if let Some(since) = state.active_since {
                let (pricing, now) = (inner.cfg.pricing, sim.now());
                inner.pay_meter.charge_lambda_execution(
                    now,
                    &pricing,
                    now.saturating_since(since),
                    state.ctx.mem_gb,
                );
            }
            inner.used_vcpus = inner.used_vcpus.saturating_sub(state.ctx.vcpus);
            let dep = state.ctx.deployment.raw() as usize;
            inner.deployments[dep].instances.retain(|id| *id != victim);
            inner.stats.evictions += 1;
            let count = inner.instances.len() as f64;
            let now = sim.now();
            inner.gauge.observe(now, count);
            state
        };
        let InstanceState { mut function, ctx, .. } = removed;
        if let Some(f) = function.as_mut() {
            f.on_terminate(sim, &ctx, true);
        }
        true
    }

    /// The warm instance of `deployment` with a free HTTP slot and the
    /// least load, if any.
    fn pick_free_instance(&self, deployment: DeploymentId) -> Option<InstanceId> {
        let inner = self.inner.borrow();
        let dep = &inner.deployments[deployment.raw() as usize];
        dep.instances
            .iter()
            .copied()
            .filter_map(|id| inner.instances.get(&id).map(|st| (id, st)))
            .filter(|(_, st)| st.warm && st.active_http < dep.config.concurrency)
            .min_by_key(|(id, st)| (st.active_http, *id))
            .map(|(id, _)| id)
    }

    fn begin_cold_start(&self, sim: &mut Sim, deployment: DeploymentId) {
        let (instance, cold_start) = {
            let mut inner = self.inner.borrow_mut();
            inner.next_instance += 1;
            let id = InstanceId::from_raw(inner.next_instance);
            let dep = &mut inner.deployments[deployment.raw() as usize];
            let config = dep.config.clone();
            dep.instances.push(id);
            let ctx = InstanceCtx {
                instance: id,
                deployment,
                cpu: Station::new(format!("{}-{}", dep.name, id.raw()), config.vcpus.max(1)),
                vcpus: config.vcpus,
                mem_gb: config.mem_gb,
                alive: Rc::new(Cell::new(true)),
            };
            inner.instances.insert(
                id,
                InstanceState {
                    ctx,
                    function: None,
                    warm: false,
                    active_http: 0,
                    active_total: 0,
                    active_since: None,
                    last_activity: sim.now(),
                    created: sim.now(),
                },
            );
            inner.used_vcpus += config.vcpus;
            inner.peak_vcpus = inner.peak_vcpus.max(inner.used_vcpus);
            inner.stats.cold_starts += 1;
            let count = inner.instances.len() as f64;
            let now = sim.now();
            inner.gauge.observe(now, count);
            (id, inner.cfg.faas.cold_start)
        };
        let delay = sim.rng().sample_duration(&cold_start);
        let this = self.clone();
        sim.schedule(delay, move |sim| this.finish_cold_start(sim, deployment, instance));
    }

    fn finish_cold_start(&self, sim: &mut Sim, deployment: DeploymentId, instance: InstanceId) {
        let built = {
            let inner = self.inner.borrow();
            if !inner.instances.contains_key(&instance) {
                return; // killed while starting
            }
            let dep = &inner.deployments[deployment.raw() as usize];
            let ctx = inner.instances[&instance].ctx.clone();
            let function = (dep.factory)(&ctx);
            Some((function, ctx))
        };
        let Some((mut function, ctx)) = built else { return };
        function.on_start(sim, &ctx);
        {
            let mut inner = self.inner.borrow_mut();
            let Some(state) = inner.instances.get_mut(&instance) else { return };
            state.function = Some(function);
            state.warm = true;
            state.last_activity = sim.now();
        }
        self.drain_queue(sim, deployment);
    }

    fn drain_queue(&self, sim: &mut Sim, deployment: DeploymentId) {
        loop {
            let next = {
                let mut inner = self.inner.borrow_mut();
                let ttl = inner.cfg.request_ttl;
                let now = sim.now();
                let dep = &mut inner.deployments[deployment.raw() as usize];
                // Drop expired invocations first.
                let mut expired = 0;
                while dep
                    .queue
                    .front()
                    .is_some_and(|q| now.saturating_since(q.enqueued) > ttl)
                {
                    dep.queue.pop_front();
                    expired += 1;
                }
                inner.stats.expired_requests += expired;
                if inner.deployments[deployment.raw() as usize].queue.is_empty() {
                    None
                } else {
                    Some(())
                }
            };
            if next.is_none() {
                return;
            }
            let Some(instance) = self.pick_free_instance(deployment) else { return };
            let queued = {
                let mut inner = self.inner.borrow_mut();
                inner.deployments[deployment.raw() as usize].queue.pop_front()
            };
            let Some(queued) = queued else { return };
            self.start_request(sim, instance, queued.req, queued.respond, true);
        }
    }

    /// Delivers a request directly to a warm instance over an established
    /// TCP connection, bypassing the gateway. Returns `false` (delivering
    /// nothing) if the instance is dead or not yet warm — the caller's
    /// connection is broken.
    pub fn deliver_tcp(
        &self,
        sim: &mut Sim,
        instance: InstanceId,
        req: F::Req,
        respond: Responder<F::Resp>,
    ) -> bool {
        let ok = {
            let inner = self.inner.borrow();
            inner.instances.get(&instance).is_some_and(|i| i.warm)
        };
        if !ok {
            return false;
        }
        self.inner.borrow_mut().stats.tcp_deliveries += 1;
        self.start_request(sim, instance, req, respond, false);
        true
    }

    fn start_request(
        &self,
        sim: &mut Sim,
        instance: InstanceId,
        req: F::Req,
        respond: Responder<F::Resp>,
        is_http: bool,
    ) {
        let prepared = {
            let mut inner = self.inner.borrow_mut();
            match inner.instances.get_mut(&instance) {
                None => None,
                Some(state) => {
                    if is_http {
                        state.active_http += 1;
                    }
                    state.active_total += 1;
                    if state.active_total == 1 {
                        state.active_since = Some(sim.now());
                    }
                    state.last_activity = sim.now();
                    state.function.take().map(|f| (f, state.ctx.clone()))
                }
            }
        };
        let Some((mut function, ctx)) = prepared else {
            // Instance dead (drop the request; the client times out), or the
            // function is mid-call (re-entrant dispatch) — the latter cannot
            // happen because dispatch always returns the function before
            // yielding to the event loop.
            return;
        };
        let this = self.clone();
        let wrapped: Responder<F::Resp> = Responder::new(move |sim, resp| {
            if this.finish_request(sim, instance, is_http) {
                respond.send(sim, resp);
            }
        });
        function.on_request(sim, &ctx, req, wrapped);
        let mut inner = self.inner.borrow_mut();
        if let Some(state) = inner.instances.get_mut(&instance) {
            state.function = Some(function);
        }
        // else: killed during the call; the function is dropped here.
    }

    /// Releases a request slot. Returns whether the instance is still
    /// alive (dead instances' responses are suppressed).
    fn finish_request(&self, sim: &mut Sim, instance: InstanceId, is_http: bool) -> bool {
        let deployment = {
            let mut inner = self.inner.borrow_mut();
            let pricing = inner.cfg.pricing;
            let Some(state) = inner.instances.get_mut(&instance) else { return false };
            if is_http {
                state.active_http = state.active_http.saturating_sub(1);
            }
            state.active_total = state.active_total.saturating_sub(1);
            state.last_activity = sim.now();
            let mut charge = None;
            if state.active_total == 0 {
                if let Some(since) = state.active_since.take() {
                    charge = Some((sim.now().saturating_since(since), state.ctx.mem_gb));
                }
            }
            let deployment = state.ctx.deployment;
            if let Some((active, mem)) = charge {
                let now = sim.now();
                inner.pay_meter.charge_lambda_execution(now, &pricing, active, mem);
            }
            Some(deployment)
        };
        match deployment {
            Some(dep) => {
                if is_http {
                    self.drain_queue(sim, dep);
                }
                true
            }
            None => false,
        }
    }

    /// Forcefully kills an instance (fault injection, §5.6). No graceful
    /// cleanup runs: in-flight responses are dropped and the function's
    /// coordinator session is left to expire on its own.
    pub fn kill_instance(&self, sim: &mut Sim, instance: InstanceId) {
        let mut inner = self.inner.borrow_mut();
        let Some(state) = inner.instances.remove(&instance) else { return };
        let pricing = inner.cfg.pricing;
        state.ctx.alive.set(false);
        if let Some(since) = state.active_since {
            let now = sim.now();
            inner.pay_meter.charge_lambda_execution(
                now,
                &pricing,
                now.saturating_since(since),
                state.ctx.mem_gb,
            );
        }
        inner.used_vcpus = inner.used_vcpus.saturating_sub(state.ctx.vcpus);
        let dep = state.ctx.deployment.raw() as usize;
        inner.deployments[dep].instances.retain(|id| *id != instance);
        inner.stats.kills += 1;
        let count = inner.instances.len() as f64;
        let now = sim.now();
        inner.gauge.observe(now, count);
    }

    fn reclaim_idle(&self, sim: &mut Sim) {
        let victims: Vec<InstanceId> = {
            let inner = self.inner.borrow();
            let idle_after = inner.cfg.faas.idle_reclaim_after;
            // Candidates, grouped so per-deployment floors can be applied.
            let mut remaining: Vec<usize> =
                inner.deployments.iter().map(|d| d.instances.len()).collect();
            inner
                .instances
                .iter()
                .filter(|(_, st)| {
                    st.warm
                        && st.active_total == 0
                        && sim.now().saturating_since(st.last_activity) >= idle_after
                })
                .filter_map(|(id, st)| {
                    let dep = st.ctx.deployment.raw() as usize;
                    let floor = inner.deployments[dep].config.min_instances as usize;
                    if remaining[dep] > floor {
                        remaining[dep] -= 1;
                        Some(*id)
                    } else {
                        None
                    }
                })
                .collect()
        };
        for instance in victims {
            let removed = {
                let mut inner = self.inner.borrow_mut();
                let Some(state) = inner.instances.remove(&instance) else { continue };
                state.ctx.alive.set(false);
                inner.used_vcpus = inner.used_vcpus.saturating_sub(state.ctx.vcpus);
                let dep = state.ctx.deployment.raw() as usize;
                inner.deployments[dep].instances.retain(|id| *id != instance);
                inner.stats.reclaims += 1;
                let count = inner.instances.len() as f64;
                let now = sim.now();
                inner.gauge.observe(now, count);
                state
            };
            let InstanceState { mut function, ctx, .. } = removed;
            if let Some(f) = function.as_mut() {
                f.on_terminate(sim, &ctx, true);
            }
        }
    }

    fn billing_tick(&self, sim: &mut Sim, tick: SimDuration) {
        let mut inner = self.inner.borrow_mut();
        let pricing = inner.cfg.pricing;
        let now = sim.now();
        // Provisioned model: every live instance pays for the whole tick.
        let provisioned_gb: f64 = inner.instances.values().map(|st| st.ctx.mem_gb).sum();
        if provisioned_gb > 0.0 {
            inner.prov_meter.charge_lambda_execution(now, &pricing, tick, provisioned_gb);
        }
        // Pay-per-use model: flush open active intervals so the per-second
        // cost series stays smooth.
        let mut flush = 0.0f64;
        for state in inner.instances.values_mut() {
            if let Some(since) = state.active_since {
                let span = now.saturating_since(since);
                flush += pricing.execution_cost(span, state.ctx.mem_gb);
                state.active_since = Some(now);
            }
        }
        if flush > 0.0 {
            inner.pay_meter.charge(now, flush);
        }
    }
}
