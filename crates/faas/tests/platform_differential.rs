//! Differential property test: the slab/ready-heap [`Platform`] against
//! the retained pre-overhaul implementation ([`lambda_faas::baseline`]).
//!
//! Identical seeded schedules — HTTP invocations through the gateway,
//! direct TCP deliveries, fault-injection kills, short advances, and
//! idle gaps long enough for the reclamation scan to fire — must produce
//! identical observables: completion timestamps and payloads, platform
//! counters, warm-instance sets, per-instance slot occupancy, the
//! instance-count gauge point-for-point, and both billing meters to the
//! last bit (floating-point summation order is part of the contract).
//! The overhaul changed the representation (slab slots, lazy ready
//! heaps, intrusive idle lists, pooled invocation records); it must not
//! have changed a single observable.

use std::cell::RefCell;
use std::rc::Rc;

use lambda_faas::{
    DeploymentId, Function, FunctionConfig, InstanceCtx, InstanceId, PlatformConfig,
    PlatformStats, Responder,
};
use lambda_sim::params::FaasParams;
use lambda_sim::{Dist, Sim, SimDuration, SimTime, Station};
use proptest::prelude::*;

/// One platform operation. Deployment and instance picks are small
/// indices resolved against each platform's *own* current state, so a
/// divergence in earlier state surfaces as a divergence in observables.
#[derive(Debug, Clone)]
enum Op {
    /// Gateway invocation (the auto-scaling path).
    InvokeHttp { dep: u8, req: u64 },
    /// Direct delivery to the `pick`-th warm instance, if any.
    DeliverTcp { dep: u8, pick: u8, req: u64 },
    /// Fault injection: kill the `pick`-th warm instance, if any.
    Kill { dep: u8, pick: u8 },
    /// Let the simulation run a little.
    Advance { millis: u16 },
    /// Let the simulation run past the idle-reclamation horizon.
    AdvanceIdle,
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => (0..2u8, any::<u64>()).prop_map(|(dep, req)| Op::InvokeHttp { dep, req }),
        4 => (0..2u8, any::<u8>(), any::<u64>())
            .prop_map(|(dep, pick, req)| Op::DeliverTcp { dep, pick, req }),
        1 => (0..2u8, any::<u8>()).prop_map(|(dep, pick)| Op::Kill { dep, pick }),
        4 => (1..400u16).prop_map(|millis| Op::Advance { millis }),
        1 => Just(Op::AdvanceIdle),
    ]
}

/// A small CPU-bound echo function, identical for both platforms.
struct Worker;

impl Function for Worker {
    type Req = u64;
    type Resp = u64;

    fn on_start(&mut self, _sim: &mut Sim, _ctx: &InstanceCtx) {}

    fn on_request(&mut self, sim: &mut Sim, ctx: &InstanceCtx, req: u64, respond: Responder<u64>) {
        let work = SimDuration::from_millis(2);
        Station::submit(&ctx.cpu, sim, work, move |sim| respond.send(sim, req.wrapping_add(1)));
    }

    fn on_terminate(&mut self, _sim: &mut Sim, _ctx: &InstanceCtx, _graceful: bool) {}
}

/// A tight cluster so schedules hit scale-out limits, queueing, TTL
/// expiry, and capacity-pressure eviction, with reclamation reachable
/// inside short advances.
fn config() -> PlatformConfig {
    PlatformConfig {
        cluster_vcpus: 12,
        faas: FaasParams {
            cold_start: Dist::uniform(0.1, 0.3),
            idle_reclaim_after: SimDuration::from_secs(2),
            reclaim_scan_every: SimDuration::from_millis(500),
        },
        request_ttl: SimDuration::from_secs(3),
        ..PlatformConfig::default()
    }
}

fn function_config(min_instances: u32) -> FunctionConfig {
    FunctionConfig { vcpus: 4, mem_gb: 6.0, concurrency: 2, max_instances: 8, min_instances }
}

/// Everything observable about one run.
#[derive(Debug, PartialEq)]
struct Observed {
    completions: Vec<(SimTime, u64)>,
    stats: PlatformStats,
    warm: Vec<Vec<InstanceId>>,
    slots: Vec<(InstanceId, DeploymentId, u32, u32, bool)>,
    loads: Vec<usize>,
    total_instances: usize,
    vcpus_used: u32,
    peak_vcpus: u32,
    pay_total: f64,
    prov_total: f64,
    gauge: Vec<(SimTime, f64)>,
    names: Vec<String>,
}

/// Drives one platform implementation through `ops`. A macro rather than
/// a generic: the two `Platform` types share an API by construction, not
/// by trait.
macro_rules! drive {
    ($platform_ty:ty, $ops:expr, $seed:expr) => {{
        let mut sim = Sim::new($seed);
        let platform = <$platform_ty>::new(&config());
        let deps: Vec<DeploymentId> = (0..2u32)
            .map(|d| {
                platform.register_deployment(
                    if d == 0 { "alpha" } else { "beta" },
                    function_config(d), // dep 0: no floor; dep 1: floor 1
                    Box::new(|_ctx| Worker),
                )
            })
            .collect();
        platform.run_maintenance(&mut sim);
        let completions: Rc<RefCell<Vec<(SimTime, u64)>>> = Rc::new(RefCell::new(Vec::new()));
        for op in $ops {
            match *op {
                Op::InvokeHttp { dep, req } => {
                    let sink = Rc::clone(&completions);
                    platform.invoke_http(
                        &mut sim,
                        deps[dep as usize],
                        req,
                        Responder::new(move |sim, resp| {
                            sink.borrow_mut().push((sim.now(), resp));
                        }),
                    );
                }
                Op::DeliverTcp { dep, pick, req } => {
                    let warm = platform.warm_instances(deps[dep as usize]);
                    if let Some(&instance) = warm.get(pick as usize % warm.len().max(1)) {
                        let sink = Rc::clone(&completions);
                        platform.deliver_tcp(
                            &mut sim,
                            instance,
                            req,
                            Responder::new(move |sim, resp| {
                                sink.borrow_mut().push((sim.now(), resp));
                            }),
                        );
                    }
                }
                Op::Kill { dep, pick } => {
                    let warm = platform.warm_instances(deps[dep as usize]);
                    if let Some(&instance) = warm.get(pick as usize % warm.len().max(1)) {
                        platform.kill_instance(&mut sim, instance);
                    }
                }
                Op::Advance { millis } => {
                    let deadline = sim.now() + SimDuration::from_millis(u64::from(millis));
                    sim.run_until(deadline);
                }
                Op::AdvanceIdle => {
                    let deadline = sim.now() + SimDuration::from_secs(3);
                    sim.run_until(deadline);
                }
            }
        }
        // Drain in-flight work, then freeze.
        let deadline = sim.now() + SimDuration::from_secs(5);
        sim.run_until(deadline);
        platform.stop_maintenance();
        let observed = Observed {
            completions: completions.borrow().clone(),
            stats: platform.stats(),
            warm: deps.iter().map(|d| platform.warm_instances(*d)).collect(),
            slots: platform.instance_slots(),
            loads: deps.iter().map(|d| platform.deployment_load(*d)).collect(),
            total_instances: platform.total_instances(),
            vcpus_used: platform.vcpus_used(),
            peak_vcpus: platform.peak_vcpus_used(),
            pay_total: platform.pay_per_use_cost(),
            prov_total: platform.provisioned_cost(),
            gauge: platform.instance_gauge().points().to_vec(),
            names: deps.iter().map(|d| platform.deployment_name(*d).to_string()).collect(),
        };
        observed
    }};
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Same seed, same schedule ⇒ bit-identical observables.
    #[test]
    fn platform_matches_baseline(
        seed in 0u64..1024,
        ops in prop::collection::vec(op(), 1..32),
    ) {
        let new = drive!(lambda_faas::Platform<Worker>, ops.iter(), seed);
        let old = drive!(lambda_faas::baseline::Platform<Worker>, ops.iter(), seed);
        prop_assert_eq!(&new.completions, &old.completions);
        prop_assert_eq!(new.stats, old.stats);
        prop_assert_eq!(&new.warm, &old.warm);
        prop_assert_eq!(&new.slots, &old.slots);
        prop_assert_eq!(&new.loads, &old.loads);
        prop_assert_eq!(new.total_instances, old.total_instances);
        prop_assert_eq!(new.vcpus_used, old.vcpus_used);
        prop_assert_eq!(new.peak_vcpus, old.peak_vcpus);
        // Billing is compared for exact equality: the slab keeps the old
        // BTreeMap's ascending-id summation order precisely so that
        // floating-point results stay bit-identical.
        prop_assert_eq!(new.pay_total.to_bits(), old.pay_total.to_bits());
        prop_assert_eq!(new.prov_total.to_bits(), old.prov_total.to_bits());
        prop_assert_eq!(&new.gauge, &old.gauge);
        prop_assert_eq!(&new.names, &old.names);
    }
}

/// Pins reclamation victim selection:
///
/// 1. only instances idle past the threshold are reclaimed — a recently
///    touched (MRU) instance survives a scan that takes the LRU ones;
/// 2. when a `min_instances` floor limits the cull, the budget is spent
///    in ascending instance-id order, so the oldest idle instances go
///    first and the newest survives.
mod reclamation_order {
    use super::*;

    fn idle_platform(
        min_instances: u32,
    ) -> (Sim, lambda_faas::Platform<Worker>, DeploymentId, Vec<InstanceId>) {
        let mut sim = Sim::new(11);
        let platform: lambda_faas::Platform<Worker> = lambda_faas::Platform::new(&config());
        let dep = platform.register_deployment(
            "pool",
            FunctionConfig {
                vcpus: 2,
                mem_gb: 2.0,
                concurrency: 1,
                max_instances: 8,
                min_instances,
            },
            Box::new(|_ctx| Worker),
        );
        // Three concurrent invocations at concurrency 1 cold-start three
        // instances; run until all are warm and idle.
        for req in 0..3 {
            platform.invoke_http(&mut sim, dep, req, Responder::new(|_, _| {}));
        }
        sim.run();
        let warm = platform.warm_instances(dep);
        assert_eq!(warm.len(), 3, "three instances warmed");
        (sim, platform, dep, warm)
    }

    #[test]
    fn lru_idle_reclaimed_first_mru_survives() {
        let (mut sim, platform, dep, warm) = idle_platform(0);
        platform.run_maintenance(&mut sim);
        // Keep the *last* instance busy-ish: touch it right before the
        // others cross the idle threshold.
        let touch_at = sim.now() + SimDuration::from_millis(1900);
        sim.run_until(touch_at);
        assert!(platform.deliver_tcp(&mut sim, warm[2], 9, Responder::new(|_, _| {})));
        // Next scans: instances 0 and 1 are idle ≥ 2 s and go; the
        // touched one is fresh and stays.
        let check_at = sim.now() + SimDuration::from_millis(700);
        sim.run_until(check_at);
        assert_eq!(platform.stats().reclaims, 2, "the two LRU-idle instances are gone");
        assert_eq!(platform.warm_instances(dep), vec![warm[2]], "the MRU instance survives");
        // Eventually the survivor idles out too.
        let done_at = sim.now() + SimDuration::from_secs(4);
        sim.run_until(done_at);
        platform.stop_maintenance();
        assert_eq!(platform.stats().reclaims, 3);
        assert!(platform.warm_instances(dep).is_empty());
    }

    #[test]
    fn floor_budget_is_spent_in_ascending_id_order() {
        let (mut sim, platform, dep, warm) = idle_platform(1);
        platform.run_maintenance(&mut sim);
        // All three idle out together; the floor of one keeps a single
        // instance, and the cull consumes ids in ascending order — the
        // newest (highest-id) instance is the survivor.
        let deadline = sim.now() + SimDuration::from_secs(4);
        sim.run_until(deadline);
        platform.stop_maintenance();
        assert_eq!(platform.stats().reclaims, 2);
        assert_eq!(platform.warm_instances(dep), vec![warm[2]]);
    }
}
