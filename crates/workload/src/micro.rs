//! Micro-benchmarks (paper §5.3): per-operation scaling tests.
//!
//! Each client executes a fixed number of operations of one type
//! (3 072 in the paper) in a closed loop against an existing directory
//! tree; the reported number is the achieved throughput. The same driver
//! runs both scaling dimensions:
//!
//! * **client-driven scaling** (Fig. 11): vCPUs fixed, client count swept
//!   8 → 1 024;
//! * **resource scaling** (Fig. 12): client count fixed per problem size,
//!   vCPUs swept 16 → 512.

use std::cell::RefCell;
use std::rc::Rc;

use lambda_fs::DfsService;
use lambda_namespace::{interned, DfsPath, FsOp, OpClass};
use lambda_sim::{Sim, SimDuration, SimRng, SimTime};

/// Configuration for one micro-benchmark run.
#[derive(Debug, Clone)]
pub struct MicroConfig {
    /// The operation type under test.
    pub op: OpClass,
    /// Operations per client (3 072 in the paper).
    pub ops_per_client: usize,
    /// Pre-created directories in the target tree.
    pub dirs: usize,
    /// Pre-created files per directory.
    pub files_per_dir: usize,
    /// Hard wall-clock cap on the run (simulated time).
    pub deadline: SimDuration,
    /// Seed of the generator's own RNG stream (same offered targets for
    /// every system at a given seed).
    pub gen_seed: u64,
    /// Unmeasured warm-up operations per client, issued before the timed
    /// phase (scaled-down runs would otherwise be dominated by cold-cache
    /// misses that the paper's much longer runs amortize away).
    pub warmup_ops_per_client: usize,
}

impl Default for MicroConfig {
    fn default() -> Self {
        MicroConfig {
            op: OpClass::Read,
            ops_per_client: 3072,
            dirs: 128,
            files_per_dir: 32,
            deadline: SimDuration::from_secs(3600),
            gen_seed: 0x5EED,
            warmup_ops_per_client: 256,
        }
    }
}

/// Result of one micro-benchmark run.
#[derive(Debug, Clone, Copy)]
pub struct MicroRun {
    /// Operations completed (success or terminal failure).
    pub completed: u64,
    /// Operations that ultimately succeeded.
    pub succeeded: u64,
    /// Makespan: first submission to last completion.
    pub makespan: SimDuration,
    /// Achieved throughput in ops/sec over the makespan.
    pub throughput: f64,
}

struct MicroDriver<S: DfsService + 'static> {
    svc: Rc<S>,
    cfg: MicroConfig,
    dirs: Vec<DfsPath>,
    files: Vec<DfsPath>,
    remaining: RefCell<Vec<usize>>,
    completed: RefCell<u64>,
    succeeded: RefCell<u64>,
    last_completion: RefCell<SimTime>,
    next_name: RefCell<u64>,
    /// Reused name-rendering buffer (see the same field on the Spotify
    /// driver): fresh names are handed out interned, no `format!` per op.
    name_scratch: RefCell<String>,
    rng: RefCell<SimRng>,
}

impl<S: DfsService + 'static> MicroDriver<S> {
    fn fresh_name(&self, kind: char, client: usize) -> &'static str {
        use std::fmt::Write as _;
        let n = {
            let mut n = self.next_name.borrow_mut();
            *n += 1;
            *n
        };
        let mut buf = self.name_scratch.borrow_mut();
        buf.clear();
        write!(buf, "{kind}{client}_{n:08}").expect("write to String");
        interned(&buf)
    }

    fn next_op(self: &Rc<Self>, _sim: &mut Sim, client: usize) -> FsOp {
        let mut rng = self.rng.borrow_mut();
        match self.cfg.op {
            OpClass::Read => {
                FsOp::ReadFile(self.files[rng.pick_index(self.files.len())].clone())
            }
            OpClass::Stat => FsOp::Stat(self.files[rng.pick_index(self.files.len())].clone()),
            OpClass::Ls => FsOp::Ls(self.dirs[rng.pick_index(self.dirs.len())].clone()),
            OpClass::Create => {
                let dir = self.dirs[rng.pick_index(self.dirs.len())].clone();
                FsOp::CreateFile(dir.join(self.fresh_name('c', client)).expect("valid"))
            }
            OpClass::Mkdir => {
                let dir = self.dirs[rng.pick_index(self.dirs.len())].clone();
                FsOp::Mkdir(dir.join(self.fresh_name('d', client)).expect("valid"))
            }
            // Micro-benchmarks cover the five §5.3 operations; mv/delete
            // fall back to stat to keep the driver total-op invariant.
            OpClass::Delete | OpClass::Mv => {
                FsOp::Stat(self.files[rng.pick_index(self.files.len())].clone())
            }
        }
    }

    fn issue(self: &Rc<Self>, sim: &mut Sim, client: usize) {
        {
            let mut remaining = self.remaining.borrow_mut();
            if remaining[client] == 0 {
                return;
            }
            remaining[client] -= 1;
        }
        let op = self.next_op(sim, client);
        let this = Rc::clone(self);
        self.svc.submit_op(
            sim,
            client,
            op,
            Box::new(move |sim, result| {
                *this.completed.borrow_mut() += 1;
                if result.is_ok() {
                    *this.succeeded.borrow_mut() += 1;
                }
                *this.last_completion.borrow_mut() = sim.now();
                this.issue(sim, client);
            }),
        );
    }
}

/// Runs the micro-benchmark against a started service, returning the
/// achieved-throughput record.
pub fn run_micro<S: DfsService + 'static>(sim: &mut Sim, svc: Rc<S>, cfg: MicroConfig) -> MicroRun {
    // A multi-rooted tree: directories are spread over eight top-level
    // parents so directory-keyed operations (ls, stat-dir) partition
    // across deployments like a real (nested) namespace, instead of all
    // hashing to the root's owner.
    let roots = 8usize;
    let mut dirs = Vec::with_capacity(cfg.dirs);
    for r in 0..roots {
        let root: DfsPath = format!("/bench{r}").parse().expect("valid");
        let share = cfg.dirs / roots + usize::from(r < cfg.dirs % roots);
        dirs.extend(svc.bootstrap_tree(&root, share, cfg.files_per_dir));
    }
    // One rendering per distinct file name (see `run_spotify`).
    let file_names: Vec<&'static str> =
        (0..cfg.files_per_dir).map(|f| interned(&format!("file{f:05}"))).collect();
    let files: Vec<DfsPath> = dirs
        .iter()
        .flat_map(|d| file_names.iter().map(move |name| d.join(name).expect("valid")))
        .collect();
    let clients = svc.client_count().max(1);
    let warmup = cfg.warmup_ops_per_client;
    let driver = Rc::new(MicroDriver {
        svc,
        dirs,
        files,
        remaining: RefCell::new(vec![warmup; clients]),
        completed: RefCell::new(0),
        succeeded: RefCell::new(0),
        last_completion: RefCell::new(sim.now()),
        next_name: RefCell::new(0),
        name_scratch: RefCell::new(String::new()),
        rng: RefCell::new(SimRng::new(cfg.gen_seed)),
        cfg,
    });
    // Unmeasured warm-up phase.
    if warmup > 0 {
        for client in 0..clients {
            driver.issue(sim, client);
        }
        let total = (warmup * clients) as u64;
        let deadline = sim.now() + driver.cfg.deadline;
        while *driver.completed.borrow() < total && sim.now() < deadline {
            if !sim.step() {
                break;
            }
        }
    }
    // Timed phase.
    {
        let mut d = driver.remaining.borrow_mut();
        *d = vec![driver.cfg.ops_per_client; clients];
        *driver.completed.borrow_mut() = 0;
        *driver.succeeded.borrow_mut() = 0;
    }
    let started = sim.now();
    *driver.last_completion.borrow_mut() = started;
    for client in 0..clients {
        driver.issue(sim, client);
    }
    let total = (driver.cfg.ops_per_client * clients) as u64;
    let deadline = started + driver.cfg.deadline;
    while *driver.completed.borrow() < total && sim.now() < deadline {
        if !sim.step() {
            break;
        }
    }
    let completed = *driver.completed.borrow();
    let succeeded = *driver.succeeded.borrow();
    let makespan = driver.last_completion.borrow().saturating_since(started);
    let throughput = if makespan.is_zero() {
        0.0
    } else {
        completed as f64 / makespan.as_secs_f64()
    };
    MicroRun { completed, succeeded, makespan, throughput }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_papers_parameters() {
        let cfg = MicroConfig::default();
        assert_eq!(cfg.ops_per_client, 3072);
        assert_eq!(cfg.op, OpClass::Read);
    }
}
