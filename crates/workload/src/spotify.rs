//! The industrial ("Spotify") workload — paper §5.2.
//!
//! The paper's benchmark was generated from statistics of Spotify's
//! 1600-node HDFS cluster (the trace itself is proprietary; the published
//! operation mix in Table 2 and the §5.2.1 burst process are what we
//! reproduce):
//!
//! * operation mix: 69.22 % read, 17 % stat, 9.01 % ls, 2.7 % create,
//!   1.3 % mv, 0.75 % delete, 0.02 % mkdir (95.23 % reads overall);
//! * every 15 s the target throughput Δ is redrawn from a Pareto
//!   distribution with shape α = 2 and scale `x_t` (the base throughput),
//!   producing bursts of up to 7× the base;
//! * each client sustains Δ/n ops/sec; work not completed in a second
//!   **rolls over** (so a system that falls behind accumulates backlog —
//!   exactly how HopsFS "spent the duration of the workload attempting to
//!   catch up").

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use lambda_fs::DfsService;
use lambda_namespace::{interned, DfsPath, FsOp, OpClass};
use lambda_sim::{every, Dist, Sim, SimDuration, SimRng, SimTime, Timeline};

/// The Table 2 operation mix as cumulative thresholds over a unit draw.
const MIX: [(OpClass, f64); 7] = [
    (OpClass::Read, 0.6922),
    (OpClass::Stat, 0.8622),
    (OpClass::Ls, 0.9523),
    (OpClass::Create, 0.9793),
    (OpClass::Mv, 0.9923),
    (OpClass::Delete, 0.9998),
    (OpClass::Mkdir, 1.0),
];

/// Configuration for one industrial-workload run.
#[derive(Debug, Clone)]
pub struct SpotifyConfig {
    /// Base throughput `x_t` in ops/sec (25 000 and 50 000 in §5.2).
    pub base_throughput: f64,
    /// Burst cap as a multiple of the base (the paper observed up to 7×).
    pub burst_cap: f64,
    /// Throughput-resample interval (15 s in the paper).
    pub resample_every: SimDuration,
    /// Workload duration (5 minutes in the paper).
    pub duration: SimDuration,
    /// Pre-created directories.
    pub dirs: usize,
    /// Pre-created files per directory.
    pub files_per_dir: usize,
    /// Maximum in-flight operations per client. hammer-bench clients are
    /// single-threaded issuers — one outstanding operation each, with the
    /// 1 024 clients providing the concurrency — so excess generated work
    /// queues as backlog (the paper's rollover).
    pub max_outstanding_per_client: usize,
    /// How long after generation stops to wait for the backlog to drain.
    pub drain_grace: SimDuration,
    /// Seed of the workload generator's own RNG stream, kept separate
    /// from the system's stream so every system sees the *same* offered
    /// load at a given seed.
    pub gen_seed: u64,
    /// Fraction of read-class operations targeting the hot 20 % of
    /// directories. Real MDS traces are heavily skewed ([35, 46] in the
    /// paper); 0.8 approximates an 80/20 concentration. Set to 0.2 for a
    /// uniform workload.
    pub read_hot_fraction: f64,
}

impl Default for SpotifyConfig {
    fn default() -> Self {
        SpotifyConfig {
            base_throughput: 25_000.0,
            burst_cap: 7.0,
            resample_every: SimDuration::from_secs(15),
            duration: SimDuration::from_secs(300),
            dirs: 2048,
            files_per_dir: 48,
            max_outstanding_per_client: 1,
            drain_grace: SimDuration::from_secs(60),
            gen_seed: 0x5EED,
            read_hot_fraction: 0.8,
        }
    }
}

impl SpotifyConfig {
    /// A scaled-down configuration for tests and quick runs: everything
    /// shrunk by `factor` (≥ 1).
    #[must_use]
    pub fn scaled_down(mut self, factor: f64) -> Self {
        let factor = factor.max(1.0);
        self.base_throughput /= factor;
        self.duration = self.duration.mul_f64(1.0 / factor);
        self.dirs = ((self.dirs as f64 / factor) as usize).max(8);
        self
    }
}

/// Driver-side record of one run.
#[derive(Debug, Clone)]
pub struct SpotifyRun {
    /// Offered load per second (the workload curve the system must chase).
    pub offered: Timeline,
    /// Operations generated.
    pub generated: u64,
    /// The per-interval throughput targets drawn from the Pareto process.
    pub targets: Vec<f64>,
}

struct ClientState {
    tokens: f64,
    outstanding: usize,
    backlog: VecDeque<FsOp>,
}

struct Driver<S: DfsService + 'static> {
    svc: Rc<S>,
    cfg: SpotifyConfig,
    dirs: Vec<DfsPath>,
    clients: RefCell<Vec<ClientState>>,
    /// Files created during the run, available for mv/delete.
    created_pool: RefCell<Vec<DfsPath>>,
    /// Bootstrap files for read/stat targets.
    files: Vec<DfsPath>,
    next_name: RefCell<u64>,
    /// Reused buffer for rendering fresh file/dir names; the rendered name
    /// is handed out interned, so the hot generation loop allocates only
    /// the one unavoidable interner copy per *distinct* name.
    name_scratch: RefCell<String>,
    rate_per_client: RefCell<f64>,
    offered: RefCell<Timeline>,
    generated: RefCell<u64>,
    targets: RefCell<Vec<f64>>,
    stop_generation_at: SimTime,
    /// Op-mix draws (diverges across systems as completions feed the
    /// mv/delete pool — statistically identical mixes).
    rng: RefCell<SimRng>,
    /// Burst-process draws, kept on their own stream so the offered-load
    /// *targets* are bit-identical across systems at one seed.
    target_rng: RefCell<SimRng>,
}

impl<S: DfsService + 'static> Driver<S> {
    /// A uniformly random directory (write targets).
    fn pick_dir(&self, _sim: &mut Sim) -> DfsPath {
        let idx = self.rng.borrow_mut().pick_index(self.dirs.len());
        self.dirs[idx].clone()
    }

    /// A read-target directory: hot 20 % with probability
    /// `read_hot_fraction`.
    fn pick_read_dir_index(&self) -> usize {
        let mut rng = self.rng.borrow_mut();
        let hot = (self.dirs.len() / 5).max(1);
        if rng.gen_bool(self.cfg.read_hot_fraction) {
            rng.pick_index(hot)
        } else {
            rng.pick_index(self.dirs.len())
        }
    }

    fn pick_read_dir(&self, _sim: &mut Sim) -> DfsPath {
        self.dirs[self.pick_read_dir_index()].clone()
    }

    /// A read-target file, skewed like [`Driver::pick_read_dir`].
    fn pick_file(&self, _sim: &mut Sim) -> DfsPath {
        let dir = self.pick_read_dir_index();
        let within = self.rng.borrow_mut().pick_index(self.cfg.files_per_dir.max(1));
        self.files[dir * self.cfg.files_per_dir + within].clone()
    }

    fn fresh_name(&self, prefix: &str) -> &'static str {
        use std::fmt::Write as _;
        let n = {
            let mut n = self.next_name.borrow_mut();
            *n += 1;
            *n
        };
        let mut buf = self.name_scratch.borrow_mut();
        buf.clear();
        write!(buf, "{prefix}{n:08}").expect("write to String");
        interned(&buf)
    }

    fn generate_op(self: &Rc<Self>, sim: &mut Sim) -> FsOp {
        let draw = self.rng.borrow_mut().gen_unit();
        let class = MIX
            .iter()
            .find(|(_, threshold)| draw < *threshold)
            .map(|(c, _)| *c)
            .unwrap_or(OpClass::Read);
        match class {
            OpClass::Read => FsOp::ReadFile(self.pick_file(sim)),
            OpClass::Stat => {
                // "stat file/dir": mostly files, some directories.
                let file = self.rng.borrow_mut().gen_bool(0.8);
                if file {
                    FsOp::Stat(self.pick_file(sim))
                } else {
                    FsOp::Stat(self.pick_read_dir(sim))
                }
            }
            OpClass::Ls => FsOp::Ls(self.pick_read_dir(sim)),
            OpClass::Create => {
                let dir = self.pick_dir(sim);
                let name = self.fresh_name("w");
                FsOp::CreateFile(dir.join(name).expect("valid name"))
            }
            OpClass::Mkdir => {
                let dir = self.pick_dir(sim);
                let name = self.fresh_name("d");
                FsOp::Mkdir(dir.join(name).expect("valid name"))
            }
            OpClass::Mv => {
                // Prefer files this run created (keeps the bootstrap
                // working set stable for the read mix).
                let src = self.created_pool.borrow_mut().pop();
                match src {
                    Some(src) => {
                        let dst_dir = self.pick_dir(sim);
                        let name = self.fresh_name("m");
                        FsOp::Mv(src, dst_dir.join(name).expect("valid name"))
                    }
                    None => FsOp::Stat(self.pick_file(sim)), // degenerate: nothing to move
                }
            }
            OpClass::Delete => {
                let victim = self.created_pool.borrow_mut().pop();
                match victim {
                    Some(victim) => FsOp::Delete(victim),
                    None => FsOp::Stat(self.pick_file(sim)),
                }
            }
        }
    }

    /// Issues queued work up to the outstanding cap for `client`.
    fn pump(self: &Rc<Self>, sim: &mut Sim, client: usize) {
        loop {
            let op = {
                let mut clients = self.clients.borrow_mut();
                let st = &mut clients[client];
                if st.outstanding >= self.cfg.max_outstanding_per_client {
                    return;
                }
                match st.backlog.pop_front() {
                    Some(op) => {
                        st.outstanding += 1;
                        op
                    }
                    None => return,
                }
            };
            let this = Rc::clone(self);
            let op_for_pool = op.clone();
            self.svc.submit_op(
                sim,
                client,
                op,
                Box::new(move |sim, result| {
                    if result.is_ok() {
                        // Successful creations/moves feed the mv/delete pool.
                        match &op_for_pool {
                            FsOp::CreateFile(p) => this.created_pool.borrow_mut().push(p.clone()),
                            FsOp::Mv(_, dst) => this.created_pool.borrow_mut().push(dst.clone()),
                            _ => {}
                        }
                    }
                    this.clients.borrow_mut()[client].outstanding -= 1;
                    this.pump(sim, client);
                }),
            );
        }
    }
}

/// Runs the industrial workload against `svc` (which must already be
/// started), returning the driver-side record. The service's own
/// [`RunMetrics`](lambda_fs::RunMetrics) hold the measured side.
pub fn run_spotify<S: DfsService + 'static>(
    sim: &mut Sim,
    svc: Rc<S>,
    cfg: SpotifyConfig,
) -> SpotifyRun {
    let dirs = svc.bootstrap_tree(&DfsPath::root(), cfg.dirs, cfg.files_per_dir);
    // Render each per-directory file name once, not once per directory:
    // joining an already-interned name is a symbol-table hit, so building
    // the `dirs × files_per_dir` target list does no string formatting.
    let file_names: Vec<&'static str> =
        (0..cfg.files_per_dir).map(|f| interned(&format!("file{f:05}"))).collect();
    let files: Vec<DfsPath> = dirs
        .iter()
        .flat_map(|d| file_names.iter().map(move |name| d.join(name).expect("valid")))
        .collect();
    let n_clients = svc.client_count().max(1);
    let driver = Rc::new(Driver {
        svc,
        dirs,
        files,
        clients: RefCell::new(
            (0..n_clients)
                .map(|_| ClientState { tokens: 0.0, outstanding: 0, backlog: VecDeque::new() })
                .collect(),
        ),
        created_pool: RefCell::new(Vec::new()),
        next_name: RefCell::new(0),
        name_scratch: RefCell::new(String::new()),
        rate_per_client: RefCell::new(cfg.base_throughput / n_clients as f64),
        offered: RefCell::new(Timeline::new(SimDuration::from_secs(1))),
        generated: RefCell::new(0),
        targets: RefCell::new(Vec::new()),
        stop_generation_at: sim.now() + cfg.duration,
        rng: RefCell::new(SimRng::new(cfg.gen_seed)),
        target_rng: RefCell::new(SimRng::new(cfg.gen_seed ^ 0x007A_46E7)),
        cfg,
    });

    // Throughput resampling: Δ ~ bounded Pareto(α=2, x_t, cap·x_t).
    let pareto = Dist::ParetoBounded {
        alpha: 2.0,
        x_m: driver.cfg.base_throughput,
        cap: driver.cfg.base_throughput * driver.cfg.burst_cap,
    };
    {
        let driver = Rc::clone(&driver);
        every(sim, sim.now(), driver.cfg.resample_every, move |sim| {
            if sim.now() >= driver.stop_generation_at {
                return false;
            }
            let _ = &sim;
            let delta = driver.target_rng.borrow_mut().sample(&pareto);
            driver.targets.borrow_mut().push(delta);
            *driver.rate_per_client.borrow_mut() =
                delta / driver.clients.borrow().len() as f64;
            true
        });
    }
    // Generation tick: 10 Hz token refill per client, with rollover.
    {
        let driver = Rc::clone(&driver);
        every(sim, sim.now(), SimDuration::from_millis(100), move |sim| {
            if sim.now() >= driver.stop_generation_at {
                return false;
            }
            let rate = *driver.rate_per_client.borrow();
            let n = driver.clients.borrow().len();
            for client in 0..n {
                let to_issue = {
                    let mut clients = driver.clients.borrow_mut();
                    let st = &mut clients[client];
                    st.tokens += rate / 10.0;
                    let whole = st.tokens.floor() as u64;
                    st.tokens -= whole as f64;
                    whole
                };
                if to_issue == 0 {
                    continue;
                }
                *driver.generated.borrow_mut() += to_issue;
                driver.offered.borrow_mut().add(sim.now(), to_issue as f64);
                for _ in 0..to_issue {
                    let op = driver.generate_op(sim);
                    // Spread arrivals uniformly over the tick: open-loop
                    // load is a point process, not a slug of simultaneous
                    // submissions at each tick boundary.
                    let offset_ns =
                        driver.rng.borrow_mut().gen_range(0..100_000_000u64);
                    let driver2 = Rc::clone(&driver);
                    sim.schedule(SimDuration::from_nanos(offset_ns), move |sim| {
                        driver2.clients.borrow_mut()[client].backlog.push_back(op);
                        driver2.pump(sim, client);
                    });
                }
            }
            true
        });
    }
    // Run generation plus drain grace.
    let deadline = driver.stop_generation_at + driver.cfg.drain_grace;
    sim.run_until(deadline);
    let run = SpotifyRun {
        offered: driver.offered.borrow().clone(),
        generated: *driver.generated.borrow(),
        targets: driver.targets.borrow().clone(),
    };
    run
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_a_valid_cdf() {
        let mut prev = 0.0;
        for (_, threshold) in MIX {
            assert!(threshold > prev);
            prev = threshold;
        }
        assert!((MIX.last().unwrap().1 - 1.0).abs() < 1e-12);
        // 95.23% reads, per Table 2.
        assert!((MIX[2].1 - 0.9523).abs() < 1e-12);
    }

    #[test]
    fn scaled_down_shrinks_sanely() {
        let cfg = SpotifyConfig::default().scaled_down(10.0);
        assert!((cfg.base_throughput - 2500.0).abs() < 1e-9);
        assert_eq!(cfg.duration, SimDuration::from_secs(30));
        assert!(cfg.dirs >= 8);
    }
}
