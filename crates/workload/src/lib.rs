//! # lambda-workload
//!
//! The workload generators and drivers of the λFS evaluation:
//!
//! * [`run_spotify`] — the §5.2 industrial workload: the Table 2
//!   operation mix under a Pareto(α = 2) burst process with rollover;
//! * [`run_micro`] — the §5.3 per-operation micro-benchmarks behind the
//!   client-driven and resource scaling figures;
//! * [`run_tree_test`] — IndexFS's `tree-test` (§5.7), fixed- and
//!   variable-sized.
//!
//! All drivers speak to systems through
//! [`DfsService`](lambda_fs::DfsService) (or the local
//! [`TreeService`] for the §5.7 pair), so every system sees byte-identical
//! load.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod micro;
mod spotify;
mod treetest;

pub use micro::{run_micro, MicroConfig, MicroRun};
pub use spotify::{run_spotify, SpotifyConfig, SpotifyRun};
pub use treetest::{run_tree_test, TreeService, TreeTestConfig, TreeTestRun};

#[cfg(test)]
mod tests {
    use super::*;
    use lambda_baselines::{HopsFs, HopsFsConfig, IndexFs, IndexFsConfig};
    use lambda_fs::{DfsService, LambdaFs, LambdaFsConfig};
    use lambda_namespace::OpClass;
    use lambda_sim::Sim;
    use std::rc::Rc;

    #[test]
    fn spotify_drives_lambda_fs_to_its_target() {
        let mut sim = Sim::new(101);
        let fs = LambdaFs::build(
            &mut sim,
            LambdaFsConfig { deployments: 4, clients: 16, client_vms: 2, ..Default::default() },
        );
        fs.start(&mut sim);
        fs.prewarm(&mut sim);
        let fs = Rc::new(fs);
        let cfg = SpotifyConfig {
            base_throughput: 500.0,
            duration: lambda_sim::SimDuration::from_secs(20),
            dirs: 16,
            files_per_dir: 16,
            ..Default::default()
        };
        let run = run_spotify(&mut sim, Rc::clone(&fs), cfg);
        assert!(run.generated > 8_000, "generated only {}", run.generated);
        let m = fs.run_metrics();
        let m = m.borrow();
        // The system kept up: nearly everything completed.
        assert!(
            m.completed as f64 >= 0.97 * run.generated as f64,
            "completed {} of {}",
            m.completed,
            run.generated
        );
        // The mix hit every class.
        assert!(m.latency.contains_key(&OpClass::Read));
        assert!(m.latency.contains_key(&OpClass::Create));
        fs.stop(&mut sim);
        assert!(fs.check_consistency().is_empty());
    }

    #[test]
    fn spotify_targets_follow_the_pareto_process() {
        let mut sim = Sim::new(102);
        let fs = HopsFs::build(&mut sim, HopsFsConfig::vanilla(64, 16));
        fs.start(&mut sim);
        let fs = Rc::new(fs);
        let cfg = SpotifyConfig {
            base_throughput: 400.0,
            duration: lambda_sim::SimDuration::from_secs(60),
            dirs: 16,
            files_per_dir: 8,
            ..Default::default()
        };
        let run = run_spotify(&mut sim, Rc::clone(&fs), cfg);
        assert_eq!(run.targets.len(), 4); // one per 15s interval
        for t in &run.targets {
            assert!(*t >= 400.0 && *t <= 2800.0, "target {t} outside [x_t, 7x_t]");
        }
        fs.stop(&mut sim);
    }

    #[test]
    fn micro_closed_loop_completes_every_op() {
        let mut sim = Sim::new(103);
        let fs = LambdaFs::build(
            &mut sim,
            LambdaFsConfig { deployments: 4, clients: 8, client_vms: 2, ..Default::default() },
        );
        fs.start(&mut sim);
        fs.prewarm(&mut sim);
        let fs = Rc::new(fs);
        let run = run_micro(
            &mut sim,
            Rc::clone(&fs),
            MicroConfig {
                op: OpClass::Read,
                ops_per_client: 100,
                dirs: 8,
                files_per_dir: 8,
                ..Default::default()
            },
        );
        assert_eq!(run.completed, 800);
        assert_eq!(run.succeeded, 800);
        assert!(run.throughput > 0.0);
        fs.stop(&mut sim);
    }

    #[test]
    fn micro_create_throughput_is_below_read_throughput() {
        // The §5.3 shape: writes are store-bound, reads are cache-bound.
        fn tp(op: OpClass) -> f64 {
            let mut sim = Sim::new(104);
            let fs = LambdaFs::build(
                &mut sim,
                LambdaFsConfig { deployments: 4, clients: 16, client_vms: 2, ..Default::default() },
            );
            fs.start(&mut sim);
            fs.prewarm(&mut sim);
            let fs = Rc::new(fs);
            let run = run_micro(
                &mut sim,
                Rc::clone(&fs),
                MicroConfig {
                    op,
                    ops_per_client: 150,
                    dirs: 8,
                    files_per_dir: 16,
                    ..Default::default()
                },
            );
            fs.stop(&mut sim);
            run.throughput
        }
        let read = tp(OpClass::Read);
        let create = tp(OpClass::Create);
        assert!(
            read > 1.5 * create,
            "reads ({read:.0}/s) should outpace creates ({create:.0}/s)"
        );
    }

    #[test]
    fn tree_test_reads_find_all_written_nodes() {
        let mut sim = Sim::new(105);
        let fs =
            Rc::new(IndexFs::build(&mut sim, IndexFsConfig { clients: 4, ..Default::default() }));
        let cfg = TreeTestConfig { ops_per_client: 200, ..TreeTestConfig::variable() };
        let run = run_tree_test(&mut sim, Rc::clone(&fs), cfg);
        assert_eq!(run.read_hits, 800, "some getattrs missed");
        assert!(run.write_throughput > 0.0);
        assert!(run.read_throughput > 0.0);
        assert!(run.aggregate_throughput > 0.0);
    }
}
