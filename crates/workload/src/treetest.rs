//! IndexFS's `tree-test` benchmark, as used in §5.7 / Fig. 16: each
//! client performs a batch of `mknod` writes followed by the same number
//! of random `getattr` reads over the written nodes.
//!
//! Two variants:
//!
//! * **variable-sized**: 10 000 writes + 10 000 reads *per client* (total
//!   grows with the client count);
//! * **fixed-sized**: 1 M writes + 1 M reads *total*, split across
//!   clients.

use std::cell::RefCell;
use std::rc::Rc;

use lambda_baselines::{IndexFs, LambdaIndexFs, TreeDone, TreeOp};
use lambda_fs::RunMetrics;
use lambda_namespace::DfsPath;
use lambda_sim::{Sim, SimDuration};

/// A service drivable by tree-test (local trait so both §5.7 systems fit
/// one driver).
pub trait TreeService {
    /// Submits one tree-test operation.
    fn submit_tree(&self, sim: &mut Sim, client: usize, op: TreeOp, done: TreeDone);
    /// Number of clients.
    fn tree_clients(&self) -> usize;
    /// The metrics the service records into.
    fn tree_metrics(&self) -> Rc<RefCell<RunMetrics>>;
}

impl TreeService for IndexFs {
    fn submit_tree(&self, sim: &mut Sim, client: usize, op: TreeOp, done: TreeDone) {
        self.submit(sim, client, op, done);
    }
    fn tree_clients(&self) -> usize {
        self.client_count()
    }
    fn tree_metrics(&self) -> Rc<RefCell<RunMetrics>> {
        self.metrics()
    }
}

impl TreeService for LambdaIndexFs {
    fn submit_tree(&self, sim: &mut Sim, client: usize, op: TreeOp, done: TreeDone) {
        self.submit(sim, client, op, done);
    }
    fn tree_clients(&self) -> usize {
        self.client_count()
    }
    fn tree_metrics(&self) -> Rc<RefCell<RunMetrics>> {
        self.metrics()
    }
}

/// Configuration for a tree-test run.
#[derive(Debug, Clone, Copy)]
pub struct TreeTestConfig {
    /// Writes (and then reads) per client.
    pub ops_per_client: usize,
    /// Directories per client over which its files are spread.
    pub dirs_per_client: usize,
    /// Per-client concurrent requests.
    pub outstanding: usize,
    /// Hard cap on simulated duration.
    pub deadline: SimDuration,
}

impl TreeTestConfig {
    /// The variable-sized workload: 10 000 writes + reads per client.
    #[must_use]
    pub fn variable() -> Self {
        TreeTestConfig {
            ops_per_client: 10_000,
            dirs_per_client: 8,
            outstanding: 4,
            deadline: SimDuration::from_secs(3600),
        }
    }

    /// The fixed-sized workload: 1 M writes + reads total.
    #[must_use]
    pub fn fixed(total_ops: usize, clients: usize) -> Self {
        TreeTestConfig {
            ops_per_client: (total_ops / clients.max(1)).max(1),
            ..Self::variable()
        }
    }
}

/// Result of one tree-test run.
#[derive(Debug, Clone, Copy)]
pub struct TreeTestRun {
    /// Write (mknod) throughput, ops/sec.
    pub write_throughput: f64,
    /// Read (getattr) throughput, ops/sec.
    pub read_throughput: f64,
    /// Aggregate throughput over the whole run.
    pub aggregate_throughput: f64,
    /// Reads that found their target (sanity: must equal reads issued).
    pub read_hits: u64,
}

struct Phase {
    remaining: Vec<usize>,
    completed: u64,
    total: u64,
    hits: u64,
}

/// Runs the two-phase tree-test (writes then random reads).
pub fn run_tree_test<S: TreeService + 'static>(
    sim: &mut Sim,
    svc: Rc<S>,
    cfg: TreeTestConfig,
) -> TreeTestRun {
    let clients = svc.tree_clients().max(1);
    let path_of = |client: usize, i: usize, dirs: usize| -> DfsPath {
        let dir = i % dirs;
        format!("/c{client}_d{dir}/f{i:06}").parse().expect("valid path")
    };

    // Phase 1: writes, closed loop with `outstanding` workers per client.
    let phase = Rc::new(RefCell::new(Phase {
        remaining: vec![cfg.ops_per_client; clients],
        completed: 0,
        total: (cfg.ops_per_client * clients) as u64,
        hits: 0,
    }));
    fn drive_write<S: TreeService + 'static>(
        sim: &mut Sim,
        svc: &Rc<S>,
        phase: &Rc<RefCell<Phase>>,
        cfg: TreeTestConfig,
        client: usize,
        path_of: &Rc<dyn Fn(usize, usize, usize) -> DfsPath>,
    ) {
        let i = {
            let mut p = phase.borrow_mut();
            if p.remaining[client] == 0 {
                return;
            }
            p.remaining[client] -= 1;
            cfg.ops_per_client - p.remaining[client] - 1
        };
        let path = path_of(client, i, cfg.dirs_per_client);
        let svc2 = Rc::clone(svc);
        let phase2 = Rc::clone(phase);
        let path_of2 = Rc::clone(path_of);
        svc.submit_tree(
            sim,
            client,
            TreeOp::Mknod(path),
            Box::new(move |sim, _ok| {
                phase2.borrow_mut().completed += 1;
                drive_write(sim, &svc2, &phase2, cfg, client, &path_of2);
            }),
        );
    }
    let path_of: Rc<dyn Fn(usize, usize, usize) -> DfsPath> = Rc::new(path_of);
    let write_started = sim.now();
    for client in 0..clients {
        for _ in 0..cfg.outstanding {
            drive_write(sim, &svc, &phase, cfg, client, &path_of);
        }
    }
    let deadline = sim.now() + cfg.deadline;
    while phase.borrow().completed < phase.borrow().total && sim.now() < deadline {
        if !sim.step() {
            break;
        }
    }
    let write_span = sim.now().saturating_since(write_started);
    let writes_done = phase.borrow().completed;

    // Phase 2: random reads over the written nodes.
    {
        let mut p = phase.borrow_mut();
        p.remaining = vec![cfg.ops_per_client; clients];
        p.completed = 0;
        p.hits = 0;
    }
    fn drive_read<S: TreeService + 'static>(
        sim: &mut Sim,
        svc: &Rc<S>,
        phase: &Rc<RefCell<Phase>>,
        cfg: TreeTestConfig,
        client: usize,
        path_of: &Rc<dyn Fn(usize, usize, usize) -> DfsPath>,
    ) {
        {
            let mut p = phase.borrow_mut();
            if p.remaining[client] == 0 {
                return;
            }
            p.remaining[client] -= 1;
        }
        let i = sim.rng().pick_index(cfg.ops_per_client);
        let path = path_of(client, i, cfg.dirs_per_client);
        let svc2 = Rc::clone(svc);
        let phase2 = Rc::clone(phase);
        let path_of2 = Rc::clone(path_of);
        svc.submit_tree(
            sim,
            client,
            TreeOp::Getattr(path),
            Box::new(move |sim, found| {
                let mut p = phase2.borrow_mut();
                p.completed += 1;
                if found {
                    p.hits += 1;
                }
                drop(p);
                drive_read(sim, &svc2, &phase2, cfg, client, &path_of2);
            }),
        );
    }
    let read_started = sim.now();
    for client in 0..clients {
        for _ in 0..cfg.outstanding {
            drive_read(sim, &svc, &phase, cfg, client, &path_of);
        }
    }
    let deadline = sim.now() + cfg.deadline;
    while phase.borrow().completed < phase.borrow().total && sim.now() < deadline {
        if !sim.step() {
            break;
        }
    }
    let read_span = sim.now().saturating_since(read_started);
    let reads_done = phase.borrow().completed;
    let hits = phase.borrow().hits;

    let tp = |ops: u64, span: lambda_sim::SimDuration| {
        if span.is_zero() {
            0.0
        } else {
            ops as f64 / span.as_secs_f64()
        }
    };
    let total_span = sim.now().saturating_since(write_started);
    TreeTestRun {
        write_throughput: tp(writes_done, write_span),
        read_throughput: tp(reads_done, read_span),
        aggregate_throughput: tp(writes_done + reads_done, total_span),
        read_hits: hits,
    }
}
