//! The serverless NameNode: the λFS function body (paper §2
//! "Terminology": one NameNode runs per function instance).
//!
//! On cold start a NameNode opens a Coordinator session, joins its
//! deployment's membership group, wires its coherence endpoint, and starts
//! its heartbeat and DataNode-discovery loops. Per request it runs the
//! shared [`OpEngine`], serving reads from its metadata-cache trie when
//! possible and running the coherence protocol before any write persists.
//!
//! NameNodes also keep a small **result cache** keyed by client request id
//! (§3.2): when a client resubmits a request after a timeout, the NameNode
//! returns the cached result instead of re-executing the operation — this
//! is what makes client retries safe for non-idempotent operations such as
//! `create`.

use std::cell::{Cell, RefCell};
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;

use lambda_coord::{Coordinator, SessionId};
use lambda_faas::{DeploymentId, Function, InstanceCtx, Platform, Responder};
use lambda_namespace::{DataNodeId, MetadataCache, MetadataSchema, Partitioner};
use lambda_sim::{every, Sim, SimDuration, Station};
use lambda_store::Db;

use crate::coherence::{deployment_group, CoordCoherence};
use crate::config::LambdaFsConfig;
use crate::fsops::{OpEngine, Offloader, SubtreeSettings};
use crate::messages::{CoherenceMsg, NnRequest, NnResponse, RequestId, SubtreeBatch};
use crate::subtree::SubtreeExecutor;

/// How many recent results a NameNode retains for retry deduplication.
const RESULT_CACHE_CAPACITY: usize = 4096;

/// Shared services a NameNode needs; cheap to clone per instance.
///
/// The platform and deployment list are late-bound (filled after the
/// deployments are registered) because the factory that builds NameNodes
/// is itself registered with the platform.
#[derive(Clone)]
pub struct NnServices {
    /// The persistent metadata store.
    pub db: Db,
    /// Table handles.
    pub schema: MetadataSchema,
    /// The Coordinator.
    pub coord: Coordinator<CoherenceMsg>,
    /// The namespace partitioner.
    pub partitioner: Rc<Partitioner>,
    /// System configuration.
    pub config: Rc<LambdaFsConfig>,
    /// The hosting platform (late-bound).
    pub platform: Rc<RefCell<Option<Platform<NameNode>>>>,
    /// All NameNode deployments, by partition index (late-bound).
    pub deployments: Rc<RefCell<Vec<DeploymentId>>>,
    /// Every cache ever created by a NameNode of this system (for
    /// aggregate hit-ratio reporting; includes dead instances' caches).
    pub cache_registry: Rc<RefCell<Vec<Rc<RefCell<MetadataCache>>>>>,
}

impl std::fmt::Debug for NnServices {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NnServices").finish_non_exhaustive()
    }
}

struct NnState {
    session: Option<SessionId>,
    engine: Option<OpEngine>,
    coherence: Option<CoordCoherence>,
    results: HashMap<RequestId, NnResponse>,
    result_order: VecDeque<RequestId>,
}

/// One serverless NameNode (the λFS function body).
pub struct NameNode {
    services: NnServices,
    deployment_index: u32,
    state: Rc<RefCell<NnState>>,
}

impl std::fmt::Debug for NameNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NameNode").field("deployment", &self.deployment_index).finish()
    }
}

impl NameNode {
    /// Builds the function body for an instance of deployment
    /// `deployment_index`. Called by the platform's factory; does not
    /// touch the platform.
    #[must_use]
    pub fn new(services: NnServices, deployment_index: u32) -> Self {
        NameNode {
            services,
            deployment_index,
            state: Rc::new(RefCell::new(NnState {
                session: None,
                engine: None,
                coherence: None,
                results: HashMap::new(),
                result_order: VecDeque::new(),
            })),
        }
    }

    /// This instance's Coordinator session, once started.
    #[must_use]
    pub fn session(&self) -> Option<SessionId> {
        self.state.borrow().session
    }

    fn remember_result(state: &Rc<RefCell<NnState>>, id: RequestId, resp: NnResponse) {
        let mut st = state.borrow_mut();
        if st.results.insert(id, resp).is_none() {
            st.result_order.push_back(id);
            if st.result_order.len() > RESULT_CACHE_CAPACITY {
                if let Some(old) = st.result_order.pop_front() {
                    st.results.remove(&old);
                }
            }
        }
    }

    fn handle_op(
        &self,
        sim: &mut Sim,
        ctx: &InstanceCtx,
        id: RequestId,
        op: lambda_namespace::FsOp,
        owned: bool,
        respond: Responder<NnResponse>,
    ) {
        // Retry deduplication (§3.2): a resubmitted request is answered
        // from the result cache without re-executing.
        if let Some(cached) = self.state.borrow().results.get(&id).cloned() {
            sim.schedule(SimDuration::ZERO, move |sim| respond.send(sim, cached));
            return;
        }
        let engine = self.state.borrow().engine.clone();
        let Some(engine) = engine else {
            // Not fully started (should not happen: the platform only
            // routes to warm instances). Drop; the client retries.
            return;
        };
        let state = Rc::clone(&self.state);
        let instance = ctx.instance;
        let deployment = self.deployment_index;
        engine.execute(
            sim,
            op,
            owned,
            Box::new(move |sim, result| {
                let resp = NnResponse::Op { id, result, served_by: instance, deployment };
                Self::remember_result(&state, id, resp.clone());
                respond.send(sim, resp);
            }),
        );
    }

    fn handle_offload(
        &self,
        sim: &mut Sim,
        batch_id: u64,
        batch: SubtreeBatch,
        respond: Responder<NnResponse>,
    ) {
        let engine = self.state.borrow().engine.clone();
        let Some(engine) = engine else { return };
        let executor = SubtreeExecutor::new(engine);
        executor.run_batch_local(
            sim,
            batch,
            Box::new(move |sim| respond.send(sim, NnResponse::OffloadDone { batch_id })),
        );
    }
}

impl Function for NameNode {
    type Req = NnRequest;
    type Resp = NnResponse;

    fn on_start(&mut self, sim: &mut Sim, ctx: &InstanceCtx) {
        let services = self.services.clone();
        let config = Rc::clone(&services.config);
        let session = services.coord.create_session(sim);
        services.coord.join_group(sim, session, &deployment_group(self.deployment_index));

        // The metadata cache and coherence endpoint.
        let cache = Rc::new(RefCell::new(MetadataCache::with_listing_capacity(
            config.cache_capacity,
            config.listing_cache_capacity,
        )));
        services.cache_registry.borrow_mut().push(Rc::clone(&cache));
        let coherence = CoordCoherence::new(
            services.coord.clone(),
            session,
            Rc::clone(&services.partitioner),
            Rc::clone(&cache),
        );
        // Incoming INV/ACK traffic.
        let inbox_coherence = coherence.clone();
        services.coord.register_inbox(
            session,
            Box::new(move |sim, msg| inbox_coherence.handle(sim, msg)),
        );
        // Membership watches feed death notifications into open rounds.
        for d in 0..services.partitioner.deployments() {
            let watch_coherence = coherence.clone();
            services.coord.watch_group(
                &deployment_group(d),
                Rc::new(move |sim, event| {
                    if let lambda_coord::GroupEvent::Left(member) = event {
                        watch_coherence.on_member_left(sim, member);
                    }
                }),
            );
        }
        // Heartbeats keep the session alive while the instance lives; a
        // crash stops them and the session expires (crash detection).
        let hb_coord = services.coord.clone();
        let hb_ctx = ctx.clone();
        every(sim, sim.now() + SimDuration::from_secs(1), SimDuration::from_secs(1), move |sim| {
            if !hb_ctx.is_alive() {
                return false;
            }
            hb_coord.heartbeat(sim, session);
            true
        });
        // Leader-elected maintenance: the longest-lived NameNode sweeps
        // subtree-lock flags abandoned by crashed holders ("the easy
        // removal of locks held by crashed NameNodes", §3.6). Every
        // NameNode is a candidate; the Coordinator's election picks one.
        services.coord.join_group(sim, session, "nn-all");
        let sweep_coord = services.coord.clone();
        let sweep_db = services.db.clone();
        let sweep_schema = services.schema.clone();
        let sweep_ctx = ctx.clone();
        every(
            sim,
            sim.now() + SimDuration::from_secs(20),
            SimDuration::from_secs(20),
            move |sim| {
                if !sweep_ctx.is_alive() {
                    return false;
                }
                if sweep_coord.leader("nn-all") != Some(session) {
                    return true;
                }
                if sweep_db.table_len(sweep_schema.subtree_locks) == 0 {
                    return true;
                }
                let db = sweep_db.clone();
                let schema = sweep_schema.clone();
                let coord = sweep_coord.clone();
                sweep_db.scan_with(
                    sim,
                    sweep_schema.subtree_locks,
                    ..,
                    Vec::new,
                    move |dead: &mut Vec<_>, &root, row| {
                        if !coord.is_alive(SessionId::from_raw(row.holder)) {
                            dead.push(root);
                        }
                    },
                    move |sim, dead| {
                        for root in dead {
                            let txn = db.begin();
                            let key = db.lock_key(schema.subtree_locks, &root);
                            let db2 = db.clone();
                            let schema2 = schema.clone();
                            db.lock(
                                sim,
                                txn,
                                vec![key],
                                lambda_store::LockMode::Exclusive,
                                move |sim, r| {
                                    if r.is_err() {
                                        db2.abort(sim, txn);
                                        return;
                                    }
                                    let _ = db2.remove(txn, schema2.subtree_locks, root);
                                    db2.commit(sim, txn, |_sim, _r| {});
                                },
                            );
                        }
                    },
                );
                true
            },
        );
        // Periodic DataNode discovery through the store (§1: maintenance
        // via the persistent store).
        let dn_db = services.db.clone();
        let dn_schema = services.schema.clone();
        let dn_count = config.datanodes;
        let dn_ctx = ctx.clone();
        every(
            sim,
            sim.now() + SimDuration::from_secs(30),
            SimDuration::from_secs(30),
            move |sim| {
                if !dn_ctx.is_alive() {
                    return false;
                }
                let ids: Vec<DataNodeId> = (1..=u64::from(dn_count)).collect();
                dn_db.read_committed(sim, dn_schema.datanodes, ids, |_sim, _rows| {});
                true
            },
        );

        let offloader = NnOffloader {
            platform: Rc::clone(&services.platform),
            deployments: Rc::clone(&services.deployments),
            own: self.deployment_index,
            next: Cell::new(self.deployment_index as usize + 1),
        };
        let coord_for_alive = services.coord.clone();
        let engine = OpEngine {
            db: services.db.clone(),
            schema: services.schema.clone(),
            cpu: Rc::clone(&ctx.cpu),
            cpu_params: config.cpu.clone(),
            cache: Some(Rc::clone(&cache)),
            coherence: config
                .coherence_enabled
                .then(|| Rc::new(coherence.clone()) as Rc<dyn crate::fsops::CoherenceHook>),
            subtree: SubtreeSettings {
                batch_size: config.subtree_batch_size,
                parallelism: config.subtree_parallelism,
                offloader: config.subtree_offload.then(|| Rc::new(offloader) as Rc<dyn Offloader>),
                holder_tag: session.raw(),
                holder_alive: Some(Rc::new(move |tag| {
                    coord_for_alive.is_alive(SessionId::from_raw(tag))
                })),
            },
        };
        let mut st = self.state.borrow_mut();
        st.session = Some(session);
        st.coherence = Some(coherence);
        st.engine = Some(engine);
    }

    fn on_request(
        &mut self,
        sim: &mut Sim,
        ctx: &InstanceCtx,
        req: NnRequest,
        respond: Responder<NnResponse>,
    ) {
        match req {
            NnRequest::Op { id, op, via_http, client_vm: _, owned } => {
                if via_http {
                    // HTTP (de)serialization burns extra NameNode CPU.
                    let handling =
                        sim.rng().sample_duration(&self.services.config.cpu.http_handling);
                    let this = self.clone_handle();
                    let ctx = ctx.clone();
                    Station::submit(&ctx.cpu.clone(), sim, handling, move |sim| {
                        this.handle_op(sim, &ctx, id, op, owned, respond);
                    });
                } else {
                    self.handle_op(sim, ctx, id, op, owned, respond);
                }
            }
            NnRequest::Offload { batch_id, batch } => {
                self.handle_offload(sim, batch_id, batch, respond);
            }
        }
    }

    fn on_terminate(&mut self, sim: &mut Sim, _ctx: &InstanceCtx, graceful: bool) {
        if graceful {
            if let Some(session) = self.state.borrow().session {
                self.services.coord.close_session(sim, session);
            }
        }
        // A crash closes nothing: the session expires on its own and the
        // Coordinator's watches clean up (paper §3.6).
    }
}

impl NameNode {
    /// A cheap handle to the same NameNode state, for continuations.
    fn clone_handle(&self) -> NameNode {
        NameNode {
            services: self.services.clone(),
            deployment_index: self.deployment_index,
            state: Rc::clone(&self.state),
        }
    }
}

/// Offloads subtree batches to warm instances of other deployments,
/// round-robin (Appendix D's serverless offloading).
struct NnOffloader {
    platform: Rc<RefCell<Option<Platform<NameNode>>>>,
    deployments: Rc<RefCell<Vec<DeploymentId>>>,
    own: u32,
    next: Cell<usize>,
}

impl Offloader for NnOffloader {
    fn offload(
        &self,
        sim: &mut Sim,
        batch: SubtreeBatch,
        done: Box<dyn FnOnce(&mut Sim)>,
    ) -> bool {
        let Some(platform) = self.platform.borrow().clone() else { return false };
        let deployments = self.deployments.borrow();
        if deployments.len() < 2 {
            return false;
        }
        let done = Rc::new(RefCell::new(Some(done)));
        let start = self.next.get();
        for k in 0..deployments.len() {
            let idx = (start + k) % deployments.len();
            if idx == self.own as usize {
                continue;
            }
            let Some(instance) = platform.first_warm_instance(deployments[idx]) else {
                continue;
            };
            self.next.set(idx + 1);
            let done2 = Rc::clone(&done);
            let accepted = platform.deliver_tcp(
                sim,
                instance,
                NnRequest::Offload { batch_id: 0, batch: batch.clone() },
                Responder::new(move |sim, _resp| {
                    if let Some(d) = done2.borrow_mut().take() {
                        d(sim);
                    }
                }),
            );
            if accepted {
                return true;
            }
        }
        false
    }
}
