//! The uniform driver interface every metadata service implements.
//!
//! The workload generators (industrial workload, micro-benchmarks,
//! tree-test) drive λFS and every baseline through this one trait, so any
//! throughput/latency difference between systems comes from the systems
//! themselves, never from the driver.

use std::cell::RefCell;
use std::rc::Rc;

use lambda_namespace::{DfsPath, FsOp};
use lambda_sim::Sim;

use crate::fsops::OpDone;
use crate::metrics::RunMetrics;

/// A drivable DFS metadata service.
pub trait DfsService {
    /// Short system name for reports ("lambda-fs", "hopsfs", …).
    fn service_name(&self) -> &'static str;

    /// Submits `op` as client `client`; the implementation owns retries
    /// and calls `done` exactly once with the final result.
    fn submit_op(&self, sim: &mut Sim, client: usize, op: FsOp, done: OpDone);

    /// Number of simulated client processes.
    fn client_count(&self) -> usize;

    /// The client-observed metrics this service records into.
    fn run_metrics(&self) -> Rc<RefCell<RunMetrics>>;

    /// Bulk-loads the benchmark's pre-existing directory tree (§5.3:
    /// "all operations target random files and directories across an
    /// existing directory tree") before the workload starts. Returns the
    /// created directory paths.
    fn bootstrap_tree(&self, root: &DfsPath, dirs: usize, files_per_dir: usize) -> Vec<DfsPath>;

    /// Bulk-loads a single file (parents must exist). Pre-run loading
    /// only, like [`DfsService::bootstrap_tree`].
    fn bootstrap_file(&self, path: &DfsPath);
}
