//! Wire types: client↔NameNode RPC payloads and the coherence-protocol
//! messages exchanged through the Coordinator.

use lambda_coord::SessionId;
use lambda_faas::InstanceId;
use lambda_namespace::{DfsPath, FsOp, InodeId, OpResult};

/// Identifies one client process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClientId(pub u32);

impl std::fmt::Display for ClientId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "client#{}", self.0)
    }
}

/// Uniquely identifies one client-issued operation across retries, so a
/// NameNode can serve a resubmitted request from its result cache instead
/// of re-executing it (§3.2: "NameNodes temporarily cache results returned
/// to clients …").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RequestId {
    /// The issuing client.
    pub client: ClientId,
    /// The client's operation sequence number.
    pub seq: u64,
}

/// One item of subtree work: an inode plus its `children`-index key.
/// `Copy`: the name is interned ([`lambda_namespace::interned`]), so batch
/// cloning for offload fan-out is a memcpy instead of per-item `String`
/// allocations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SubtreeItem {
    /// The inode id.
    pub id: InodeId,
    /// Its parent directory id.
    pub parent: InodeId,
    /// Its name within the parent (interned).
    pub name: &'static str,
}

/// The kind of work in an offloaded subtree batch (Appendix D).
#[derive(Debug, Clone, PartialEq)]
pub enum SubtreeBatchKind {
    /// Phase 2: write-lock and release each inode (quiesce).
    Quiesce,
    /// Phase 3 of a recursive delete: remove the rows.
    DeleteRows,
}

/// A batch of subtree sub-operations, executable locally or on a helper
/// NameNode.
#[derive(Debug, Clone, PartialEq)]
pub struct SubtreeBatch {
    /// What to do with the items.
    pub kind: SubtreeBatchKind,
    /// The items, leaf-first (so partial execution keeps the tree
    /// well-formed).
    pub items: Vec<SubtreeItem>,
}

/// A request delivered to a NameNode (via HTTP invocation or TCP).
#[derive(Debug, Clone, PartialEq)]
pub enum NnRequest {
    /// A client metadata operation.
    Op {
        /// Retry-stable request identity.
        id: RequestId,
        /// The operation.
        op: FsOp,
        /// Whether this arrived through the API gateway (HTTP) rather
        /// than a direct TCP connection.
        via_http: bool,
        /// The client's VM (for TCP connection registration).
        client_vm: u32,
        /// Whether the client believes this NameNode's deployment owns
        /// the metadata (false when anti-thrashing routed the request to a
        /// foreign deployment, which must then skip caching).
        owned: bool,
    },
    /// A subtree batch offloaded by a leader NameNode (Appendix D).
    Offload {
        /// Batch identity (for the leader's bookkeeping).
        batch_id: u64,
        /// The work.
        batch: SubtreeBatch,
    },
}

/// A NameNode's reply.
#[derive(Debug, Clone, PartialEq)]
pub enum NnResponse {
    /// Reply to [`NnRequest::Op`].
    Op {
        /// Echoed request identity.
        id: RequestId,
        /// The operation's result.
        result: OpResult,
        /// Which instance served it (lets the client register the TCP
        /// connection the NameNode established back to it, §3.2 step 3).
        served_by: InstanceId,
        /// The serving instance's deployment index (so anti-thrashing
        /// responses from foreign deployments are filed correctly).
        deployment: u32,
    },
    /// Reply to [`NnRequest::Offload`].
    OffloadDone {
        /// Echoed batch identity.
        batch_id: u64,
    },
}

/// Coherence-protocol traffic, delivered by the Coordinator (§3.5,
/// Algorithm 1 and Appendix D's subtree variant).
#[derive(Debug, Clone, PartialEq)]
pub enum CoherenceMsg {
    /// Invalidate cached metadata, then ACK.
    Inv {
        /// The leader's protocol-round identity.
        round: u64,
        /// The leader's session (ACK destination).
        from: SessionId,
        /// Individual inodes to invalidate.
        inodes: Vec<InodeId>,
        /// Directories whose cached listings must be dropped wholesale.
        listings: Vec<InodeId>,
        /// In-place listing deltas `(dir, child, present-after-write)`;
        /// child names are interned, so cloning an INV for each broadcast
        /// recipient copies plain words.
        listing_updates: Vec<(InodeId, &'static str, bool)>,
        /// Subtree prefix invalidation (Appendix D), if any.
        prefix: Option<DfsPath>,
    },
    /// Acknowledgement of an `Inv`.
    Ack {
        /// The round being acknowledged.
        round: u64,
        /// The acknowledging session.
        from: SessionId,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_ids_are_copyable_map_keys() {
        let a = RequestId { client: ClientId(1), seq: 9 };
        let b = a;
        assert_eq!(a, b);
        let mut set = std::collections::HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
    }

    #[test]
    fn subtree_batches_carry_leaf_first_items() {
        let batch = SubtreeBatch {
            kind: SubtreeBatchKind::DeleteRows,
            items: vec![
                SubtreeItem { id: 9, parent: 3, name: "leaf".into() },
                SubtreeItem { id: 3, parent: 1, name: "mid".into() },
            ],
        };
        assert_eq!(batch.items.len(), 2);
        assert_eq!(batch.kind, SubtreeBatchKind::DeleteRows);
    }
}
