//! Client-observed run metrics: the numbers every reproduced figure is
//! built from.

use std::collections::BTreeMap;

use lambda_namespace::OpClass;
use lambda_sim::{LatencyRecorder, SimDuration, SimTime, Timeline};

/// Aggregated client-side measurements for one run.
#[derive(Debug, Clone)]
pub struct RunMetrics {
    /// End-to-end latency per operation class (Fig. 10's CDFs).
    pub latency: BTreeMap<OpClass, LatencyRecorder>,
    /// Operations completed per second (the Fig. 8/15 curves).
    pub throughput: Timeline,
    /// Operations submitted.
    pub issued: u64,
    /// Operations completed successfully.
    pub completed: u64,
    /// Operations that failed with a non-retryable error.
    pub failed: u64,
    /// Operations whose every attempt timed out on the wire.
    pub timeouts: u64,
    /// Operations the service kept answering with transient errors until
    /// the retry budget ran out ([`lambda_namespace::FsError::RetriesExhausted`]).
    pub retries_exhausted: u64,
    /// Retry attempts (timeouts + transient failures).
    pub retries: u64,
    /// Retries refused by the client's retry-budget circuit breaker (a
    /// partitioned client sheds load instead of storming the service).
    pub load_sheds: u64,
    /// Requests issued over HTTP (the FaaS-visible, auto-scaling path).
    pub http_rpcs: u64,
    /// Requests issued over TCP (the fast path).
    pub tcp_rpcs: u64,
    /// Straggler-mitigation resubmissions (Appendix B).
    pub straggler_resubmits: u64,
    /// Times a client entered anti-thrashing mode (Appendix C).
    pub anti_thrash_entries: u64,
    /// Requests routed through another client's TCP server (connection
    /// sharing, Fig. 4).
    pub connection_shares: u64,
    /// HTTP RPCs caused by the probabilistic replacement knob.
    pub http_replaced: u64,
    /// HTTP RPCs caused by having no TCP connection to the target.
    pub http_no_connection: u64,
    /// Per-second series of no-connection HTTP fallbacks (diagnostics).
    pub no_conn_timeline: Timeline,
    /// Resident heap bytes per stored inode, measured by a bench with the
    /// counting allocator active (0.0 = not measured this run). A gauge,
    /// not a counter: [`RunMetrics::merge`] keeps the maximum.
    pub bytes_per_inode: f64,
    /// Resident heap bytes per simulated client (0.0 = not measured).
    /// Same gauge semantics as [`RunMetrics::bytes_per_inode`].
    pub bytes_per_client: f64,
}

impl Default for RunMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl RunMetrics {
    /// Creates empty metrics with one-second throughput buckets.
    #[must_use]
    pub fn new() -> Self {
        RunMetrics {
            latency: BTreeMap::new(),
            throughput: Timeline::new(SimDuration::from_secs(1)),
            issued: 0,
            completed: 0,
            failed: 0,
            timeouts: 0,
            retries_exhausted: 0,
            retries: 0,
            load_sheds: 0,
            http_rpcs: 0,
            tcp_rpcs: 0,
            straggler_resubmits: 0,
            anti_thrash_entries: 0,
            connection_shares: 0,
            http_replaced: 0,
            http_no_connection: 0,
            no_conn_timeline: Timeline::new(SimDuration::from_secs(10)),
            bytes_per_inode: 0.0,
            bytes_per_client: 0.0,
        }
    }

    /// Records a successful completion.
    pub fn record_success(&mut self, at: SimTime, class: OpClass, latency: SimDuration) {
        self.completed += 1;
        self.throughput.add(at, 1.0);
        self.latency.entry(class).or_default().record(latency);
    }

    /// Records a terminal failure.
    pub fn record_failure(&mut self, timed_out: bool) {
        if timed_out {
            self.timeouts += 1;
        } else {
            self.failed += 1;
        }
    }

    /// Records a terminal failure classified by error kind: timeouts,
    /// retry-budget exhaustion, and genuine errors are tallied apart.
    pub fn record_error(&mut self, error: &lambda_namespace::FsError) {
        use lambda_namespace::FsError;
        match error {
            FsError::Timeout => self.timeouts += 1,
            FsError::RetriesExhausted => self.retries_exhausted += 1,
            _ => self.failed += 1,
        }
    }

    /// Every operation that reached a terminal state. Conservation — the
    /// auditor's billing check — demands this equals [`RunMetrics::issued`]
    /// once the run has drained.
    #[must_use]
    pub fn accounted(&self) -> u64 {
        self.completed + self.failed + self.timeouts + self.retries_exhausted
    }

    /// Mean latency across all classes, or zero when empty.
    #[must_use]
    pub fn mean_latency(&self) -> SimDuration {
        let (mut total, mut n) = (0.0f64, 0usize);
        for rec in self.latency.values() {
            total += rec.mean().as_secs_f64() * rec.count() as f64;
            n += rec.count();
        }
        if n == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_secs_f64(total / n as f64)
        }
    }

    /// Mean throughput over the populated run, in ops/sec.
    #[must_use]
    pub fn mean_throughput(&self) -> f64 {
        self.throughput.mean()
    }

    /// Peak per-second throughput.
    #[must_use]
    pub fn peak_throughput(&self) -> f64 {
        self.throughput.peak()
    }

    /// Peak throughput sustained over `window_secs` consecutive seconds.
    #[must_use]
    pub fn peak_sustained_throughput(&self, window_secs: usize) -> f64 {
        self.throughput.peak_sustained(window_secs)
    }

    /// The latency recorder for one class, if any completions occurred.
    #[must_use]
    pub fn class_latency(&self, class: OpClass) -> Option<&LatencyRecorder> {
        self.latency.get(&class)
    }

    /// Folds another run's measurements into this one: per-class latency
    /// recorders and timelines are merged, counters are summed.
    ///
    /// This is how a sharded run (`lambda_core::shard`) reduces per-domain
    /// metrics into the run-wide figures — the result is identical to
    /// having recorded every observation into a single `RunMetrics`, and
    /// because it only depends on the per-domain contents (which are
    /// thread-count-invariant), so is the merged whole.
    pub fn merge(&mut self, other: &RunMetrics) {
        for (class, rec) in &other.latency {
            self.latency.entry(*class).or_default().merge(rec);
        }
        self.throughput.merge(&other.throughput);
        self.no_conn_timeline.merge(&other.no_conn_timeline);
        self.issued += other.issued;
        self.completed += other.completed;
        self.failed += other.failed;
        self.timeouts += other.timeouts;
        self.retries_exhausted += other.retries_exhausted;
        self.retries += other.retries;
        self.load_sheds += other.load_sheds;
        self.http_rpcs += other.http_rpcs;
        self.tcp_rpcs += other.tcp_rpcs;
        self.straggler_resubmits += other.straggler_resubmits;
        self.anti_thrash_entries += other.anti_thrash_entries;
        self.connection_shares += other.connection_shares;
        self.http_replaced += other.http_replaced;
        self.http_no_connection += other.http_no_connection;
        // Gauges, not counters: per-entity footprints are properties of a
        // measurement, so a merged run reports the worst domain's figure.
        self.bytes_per_inode = self.bytes_per_inode.max(other.bytes_per_inode);
        self.bytes_per_client = self.bytes_per_client.max(other.bytes_per_client);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_aggregate_by_class() {
        let mut m = RunMetrics::new();
        m.record_success(SimTime::from_secs(1), OpClass::Read, SimDuration::from_millis(1));
        m.record_success(SimTime::from_secs(1), OpClass::Read, SimDuration::from_millis(3));
        m.record_success(SimTime::from_secs(2), OpClass::Create, SimDuration::from_millis(10));
        assert_eq!(m.completed, 3);
        assert_eq!(m.class_latency(OpClass::Read).unwrap().count(), 2);
        assert_eq!(m.mean_latency(), SimDuration::from_millis_f64(14.0 / 3.0));
        assert_eq!(m.throughput.buckets(), vec![0.0, 2.0, 1.0]);
        assert_eq!(m.peak_throughput(), 2.0);
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let mut left = RunMetrics::new();
        let mut right = RunMetrics::new();
        let mut whole = RunMetrics::new();
        let obs = [
            (1u64, OpClass::Read, 2u64),
            (1, OpClass::Create, 9),
            (3, OpClass::Read, 4),
            (4, OpClass::Mkdir, 7),
        ];
        for (i, (sec, class, ms)) in obs.into_iter().enumerate() {
            let at = SimTime::from_secs(sec);
            let lat = SimDuration::from_millis(ms);
            let half = if i % 2 == 0 { &mut left } else { &mut right };
            half.record_success(at, class, lat);
            half.issued += 1;
            whole.record_success(at, class, lat);
            whole.issued += 1;
        }
        left.retries += 2;
        right.http_rpcs += 5;
        whole.retries += 2;
        whole.http_rpcs += 5;

        let mut merged = RunMetrics::new();
        merged.merge(&left);
        merged.merge(&right);
        assert_eq!(merged.issued, whole.issued);
        assert_eq!(merged.completed, whole.completed);
        assert_eq!(merged.retries, 2);
        assert_eq!(merged.http_rpcs, 5);
        assert_eq!(merged.accounted(), whole.accounted());
        assert_eq!(merged.mean_latency(), whole.mean_latency());
        assert_eq!(merged.throughput.buckets(), whole.throughput.buckets());
        for class in [OpClass::Read, OpClass::Create, OpClass::Mkdir] {
            assert_eq!(
                merged.class_latency(class).map(|r| (r.count(), r.mean(), r.max())),
                whole.class_latency(class).map(|r| (r.count(), r.mean(), r.max())),
                "{class:?}"
            );
        }
    }

    #[test]
    fn merge_into_empty_copies_everything() {
        let mut src = RunMetrics::new();
        src.record_success(SimTime::from_secs(2), OpClass::Read, SimDuration::from_millis(1));
        src.record_failure(true);
        src.issued = 2;
        let mut dst = RunMetrics::new();
        dst.merge(&src);
        assert_eq!(dst.issued, 2);
        assert_eq!(dst.completed, 1);
        assert_eq!(dst.timeouts, 1);
        assert_eq!(dst.peak_throughput(), 1.0);
    }

    #[test]
    fn byte_gauges_merge_as_maxima() {
        let mut a = RunMetrics::new();
        a.bytes_per_inode = 120.0;
        a.bytes_per_client = 48.0;
        let mut b = RunMetrics::new();
        b.bytes_per_inode = 90.0;
        b.bytes_per_client = 64.0;
        a.merge(&b);
        assert_eq!(a.bytes_per_inode, 120.0);
        assert_eq!(a.bytes_per_client, 64.0);
    }

    #[test]
    fn failures_split_timeouts_from_errors() {
        let mut m = RunMetrics::new();
        m.record_failure(true);
        m.record_failure(false);
        assert_eq!(m.timeouts, 1);
        assert_eq!(m.failed, 1);
        assert_eq!(m.completed, 0);
        assert_eq!(m.mean_latency(), SimDuration::ZERO);
    }
}
