//! Subtree operations (recursive `delete` and `mv`) — the three-phase
//! HopsFS protocol augmented with λFS's subtree coherence and serverless
//! offloading (paper §3.5 "subtree coherence protocol" and Appendix D).
//!
//! Phases:
//!
//! 1. **Lock**: persist a subtree-lock flag on the subtree root after
//!    checking that no overlapping subtree operation is active (subtree
//!    isolation). Stale flags left by crashed holders are reclaimed using
//!    the Coordinator's liveness oracle.
//! 2. **Quiesce + collect**: walk the subtree through the children index,
//!    building the in-memory item list, then take-and-release write locks
//!    on every INode in batches (charged against the store — this is what
//!    makes Table 3's latency scale with directory size). Batches run with
//!    bounded parallelism and are offloaded to helper NameNodes when an
//!    [`Offloader`](crate::fsops::Offloader) is available.
//! 3. **Execute**: a single **prefix invalidation** replaces per-INode
//!    coherence rounds; then the actual mutation runs — for `mv`, one
//!    transaction relinking the subtree root; for `delete`, leaf-first
//!    batched row removals (so a crash mid-way never orphans an inode).
//!
//! Cleanup removes the subtree-lock flag even on failure paths.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use lambda_namespace::{DfsPath, FsError, InodeId, OpOutcome, SubtreeLockRow};
use lambda_sim::{Sim, SimDuration};
use lambda_store::{LockMode, NameKey};

use crate::fsops::{InvalidationSet, OpDone, OpEngine};
use crate::messages::{SubtreeBatch, SubtreeBatchKind, SubtreeItem};

/// Continuation fired when a batch (or batch set) completes.
type BatchDone = Box<dyn FnOnce(&mut Sim)>;
/// Continuation receiving the collected subtree items.
type CollectDone = Box<dyn FnOnce(&mut Sim, Vec<SubtreeItem>)>;

/// Executes subtree operations on top of an [`OpEngine`].
#[derive(Clone)]
pub struct SubtreeExecutor {
    engine: OpEngine,
}

impl SubtreeExecutor {
    /// Wraps an engine.
    #[must_use]
    pub fn new(engine: OpEngine) -> Self {
        SubtreeExecutor { engine }
    }

    /// Recursive delete of the directory at `path`.
    pub fn delete(&self, sim: &mut Sim, path: DfsPath, done: OpDone) {
        let this = self.clone();
        self.with_subtree_lock(sim, path.clone(), "delete", move |sim, root_id, finish| {
            let this2 = this.clone();
            let path2 = path.clone();
            this.collect_subtree(sim, root_id, move |sim, mut items| {
                // Leaf-first: reverse the BFS (parents-before-children)
                // order so partial execution keeps the tree well-formed.
                items.reverse();
                let count = items.len() as u64;
                let quiesce = make_batches(&items, this2.engine.subtree.batch_size, SubtreeBatchKind::Quiesce);
                let this3 = this2.clone();
                let path3 = path2.clone();
                this2.run_batches(sim, quiesce, move |sim| {
                    // Subtree coherence: one prefix INV for the whole tree
                    // (instead of thousands of per-INode rounds).
                    let parent_path = path3.parent().expect("subtree root is not /");
                    let inv = InvalidationSet {
                        inodes: vec![root_id],
                        listings: vec![root_id],
                        listing_updates: Vec::new(),
                        prefix: Some(path3.clone()),
                        paths: vec![path3.clone(), parent_path],
                    };
                    let this4 = this3.clone();
                    let path4 = path3.clone();
                    this3.engine.with_coherence(sim, inv, move |sim| {
                        let deletes = make_batches(
                            &items,
                            this4.engine.subtree.batch_size,
                            SubtreeBatchKind::DeleteRows,
                        );
                        let this5 = this4.clone();
                        this4.run_batches(sim, deletes, move |sim| {
                            // Finally remove the (now empty) root itself,
                            // without a second coherence round.
                            let mut engine = this5.engine.clone();
                            engine.coherence = None;
                            let root_now = engine.db.peek(engine.schema.inodes, &root_id);
                            match root_now {
                                None => finish(
                                    sim,
                                    Err(FsError::Retryable("subtree root vanished".into())),
                                ),
                                Some(root) => {
                                    engine.delete_root_for_subtree(
                                        sim,
                                        path4.clone(),
                                        root,
                                        Box::new(move |sim, r| match r {
                                            Ok(_) => {
                                                finish(sim, Ok(OpOutcome::Deleted(count + 1)));
                                            }
                                            Err(e) => finish(sim, Err(e)),
                                        }),
                                    );
                                }
                            }
                        });
                    });
                });
            });
        }, done);
    }

    /// Recursive move of the directory at `src` to `dst`.
    pub fn mv(&self, sim: &mut Sim, src: DfsPath, dst: DfsPath, done: OpDone) {
        let this = self.clone();
        let dst2 = dst.clone();
        self.with_subtree_lock(sim, src.clone(), "mv", move |sim, root_id, finish| {
            let this2 = this.clone();
            let src2 = src.clone();
            let dst3 = dst2.clone();
            this.collect_subtree(sim, root_id, move |sim, items| {
                let count = items.len() as u64;
                let quiesce =
                    make_batches(&items, this2.engine.subtree.batch_size, SubtreeBatchKind::Quiesce);
                let this3 = this2.clone();
                this2.run_batches(sim, quiesce, move |sim| {
                    let src_parent = src2.parent().expect("subtree root is not /");
                    let dst_parent = dst3.parent().unwrap_or_else(DfsPath::root);
                    let inv = InvalidationSet {
                        inodes: vec![root_id],
                        listings: vec![root_id],
                        listing_updates: Vec::new(),
                        prefix: Some(src2.clone()),
                        paths: vec![src2.clone(), dst3.clone(), src_parent, dst_parent],
                    };
                    let this4 = this3.clone();
                    let (src3, dst4) = (src2.clone(), dst3.clone());
                    this3.engine.with_coherence(sim, inv, move |sim| {
                        // The actual relink is a single small transaction:
                        // descendants key off the root's id and need no
                        // rewriting.
                        let mut engine = this4.engine.clone();
                        engine.coherence = None;
                        let root_now = engine.db.peek(engine.schema.inodes, &root_id);
                        match root_now {
                            None => finish(
                                sim,
                                Err(FsError::Retryable("subtree root vanished".into())),
                            ),
                            Some(root) => engine.mv_single(
                                sim,
                                src3,
                                dst4,
                                root,
                                false,
                                Box::new(move |sim, r| match r {
                                    Ok(_) => finish(sim, Ok(OpOutcome::Moved(count + 1))),
                                    Err(e) => finish(sim, Err(e)),
                                }),
                            ),
                        }
                    });
                });
            });
        }, done);
    }

    // ------------------------------------------------------------------
    // Phase 1: the subtree lock
    // ------------------------------------------------------------------

    /// Resolves the subtree root, takes the persistent subtree-lock flag,
    /// runs `body`, and guarantees the flag is released before `done`
    /// fires. `body` receives a `finish` continuation it must call exactly
    /// once.
    fn with_subtree_lock<B>(
        &self,
        sim: &mut Sim,
        path: DfsPath,
        op_name: &'static str,
        body: B,
        done: OpDone,
    ) where
        B: FnOnce(&mut Sim, InodeId, OpDone) + 'static,
    {
        let this = self.clone();
        self.engine.resolve_chain(sim, path.clone(), false, move |sim, chain| {
            let chain = match chain {
                Err(e) => return done(sim, Err(e)),
                Ok(c) => c,
            };
            let root = chain.last().expect("non-empty").clone();
            if !root.is_dir() {
                return done(sim, Err(FsError::NotADirectory(path.to_string())));
            }
            let engine = this.engine.clone();
            let txn = engine.db.begin();
            let lock_key = engine.db.lock_key(engine.schema.subtree_locks, &root.id);
            let this2 = this.clone();
            let path2 = path.clone();
            engine.db.lock(sim, txn, vec![lock_key], LockMode::Exclusive, move |sim, res| {
                if res.is_err() {
                    this2.engine.db.abort(sim, txn);
                    return done(sim, Err(FsError::Retryable("subtree lock wait".into())));
                }
                // Subtree isolation: no overlapping active subtree op.
                let mut overlap = None;
                this2.engine.db.peek_range_with(
                    this2.engine.schema.subtree_locks,
                    ..,
                    |locked_root, row| {
                        if overlap.is_none()
                            && row
                                .path
                                .parse::<DfsPath>()
                                .map(|p| p.starts_with(&path2) || path2.starts_with(&p))
                                .unwrap_or(false)
                        {
                            overlap = Some((*locked_root, *row));
                        }
                    },
                );
                if let Some((locked_root, row)) = overlap {
                    let holder_alive = this2
                        .engine
                        .subtree
                        .holder_alive
                        .as_ref()
                        .is_none_or(|alive| alive(row.holder));
                    if holder_alive {
                        this2.engine.db.abort(sim, txn);
                        return done(sim, Err(FsError::SubtreeLocked(row.path.to_string())));
                    }
                    // Stale flag from a crashed NameNode: reclaim it
                    // (paper §3.6 — the Coordinator detects crashes,
                    // "enabling the easy removal of locks held by crashed
                    // NameNodes").
                    let _ = this2.engine.db.remove(txn, this2.engine.schema.subtree_locks, locked_root);
                }
                let row = SubtreeLockRow {
                    holder: this2.engine.subtree.holder_tag,
                    acquired_nanos: sim.now().as_nanos(),
                    path: path2.as_str(),
                    op: op_name,
                };
                if this2.engine.db.upsert(txn, this2.engine.schema.subtree_locks, root.id, row).is_err() {
                    this2.engine.db.abort(sim, txn);
                    return done(sim, Err(FsError::Retryable("subtree flag write".into())));
                }
                let this3 = this2.clone();
                this2.engine.db.commit(sim, txn, move |sim, r| {
                    if r.is_err() {
                        return done(sim, Err(FsError::Retryable("subtree flag commit".into())));
                    }
                    // Wrap `done` so the flag is always released first.
                    let this4 = this3.clone();
                    let finish: OpDone = Box::new(move |sim, result| {
                        this4.release_subtree_lock(sim, root.id, move |sim: &mut Sim| {
                            done(sim, result);
                        });
                    });
                    body(sim, root.id, finish);
                });
            });
        });
    }

    fn release_subtree_lock<F>(&self, sim: &mut Sim, root_id: InodeId, done: F)
    where
        F: FnOnce(&mut Sim) + 'static,
    {
        let engine = self.engine.clone();
        let txn = engine.db.begin();
        let key = engine.db.lock_key(engine.schema.subtree_locks, &root_id);
        let engine2 = engine.clone();
        engine.db.lock(sim, txn, vec![key], LockMode::Exclusive, move |sim, res| {
            if res.is_err() {
                engine2.db.abort(sim, txn);
                return done(sim);
            }
            let _ = engine2.db.remove(txn, engine2.schema.subtree_locks, root_id);
            engine2.db.commit(sim, txn, move |sim, _r| done(sim));
        });
    }

    // ------------------------------------------------------------------
    // Phase 2: collection and quiesce
    // ------------------------------------------------------------------

    /// Walks the subtree (excluding the root) through charged children
    /// scans, BFS order. Directories are expanded breadth-first.
    fn collect_subtree<F>(&self, sim: &mut Sim, root: InodeId, done: F)
    where
        F: FnOnce(&mut Sim, Vec<SubtreeItem>) + 'static,
    {
        let mut queue = VecDeque::new();
        queue.push_back(root);
        self.collect_step(sim, queue, Vec::new(), Box::new(done));
    }

    fn collect_step(
        &self,
        sim: &mut Sim,
        mut queue: VecDeque<InodeId>,
        acc: Vec<SubtreeItem>,
        done: CollectDone,
    ) {
        let Some(dir) = queue.pop_front() else {
            if std::env::var_os("LFS_SUBTREE_TRACE").is_some() {
                eprintln!("[subtree] t={} collected {} items", sim.now(), acc.len());
            }
            return done(sim, acc);
        };
        let this = self.clone();
        let walker = self.clone();
        self.engine.db.scan_with(
            sim,
            self.engine.schema.children,
            (dir, NameKey::MIN)..(dir + 1, NameKey::MIN),
            move || (queue, acc),
            move |(queue, acc), &(parent, name), &id| {
                let is_dir = walker
                    .engine
                    .db
                    .peek(walker.engine.schema.inodes, &id)
                    .is_some_and(|i| i.is_dir());
                if is_dir {
                    queue.push_back(id);
                }
                acc.push(SubtreeItem { id, parent, name: name.as_str() });
            },
            move |sim, (queue, acc)| {
                this.collect_step(sim, queue, acc, done);
            },
        );
    }

    /// Runs batches with the configured parallelism, offloading when
    /// possible; `done` fires when all complete.
    fn run_batches<F>(&self, sim: &mut Sim, batches: Vec<SubtreeBatch>, done: F)
    where
        F: FnOnce(&mut Sim) + 'static,
    {
        if batches.is_empty() {
            sim.schedule(SimDuration::ZERO, done);
            return;
        }
        struct Pool {
            queue: VecDeque<SubtreeBatch>,
            in_flight: usize,
            done: Option<BatchDone>,
        }
        let pool = Rc::new(RefCell::new(Pool {
            queue: batches.into(),
            in_flight: 0,
            done: Some(Box::new(done)),
        }));
        let parallelism = self.engine.subtree.parallelism.max(1);
        enum Next {
            Run(SubtreeBatch),
            Done(BatchDone),
            Wait,
        }
        fn pump(this: &SubtreeExecutor, sim: &mut Sim, pool: &Rc<RefCell<Pool>>, parallelism: usize) {
            loop {
                let next = {
                    let mut p = pool.borrow_mut();
                    if p.in_flight >= parallelism {
                        Next::Wait
                    } else if let Some(batch) = p.queue.pop_front() {
                        p.in_flight += 1;
                        Next::Run(batch)
                    } else if p.in_flight == 0 {
                        match p.done.take() {
                            Some(d) => Next::Done(d),
                            None => Next::Wait,
                        }
                    } else {
                        Next::Wait
                    }
                };
                match next {
                    Next::Wait => return,
                    Next::Done(d) => {
                        d(sim);
                        return;
                    }
                    Next::Run(batch) => {
                        let this2 = this.clone();
                        let pool2 = Rc::clone(pool);
                        this.run_one_batch(
                            sim,
                            batch,
                            Box::new(move |sim| {
                                pool2.borrow_mut().in_flight -= 1;
                                pump(&this2, sim, &pool2, parallelism);
                            }),
                        );
                    }
                }
            }
        }
        if std::env::var_os("LFS_SUBTREE_TRACE").is_some() {
            eprintln!(
                "[subtree] t={} run_batches: {} batches, parallelism {}",
                sim.now(),
                pool.borrow().queue.len(),
                parallelism
            );
        }
        pump(self, sim, &pool, parallelism);
    }

    /// Executes one batch: offloaded if a helper accepts it, locally
    /// otherwise.
    pub(crate) fn run_one_batch(
        &self,
        sim: &mut Sim,
        batch: SubtreeBatch,
        done: Box<dyn FnOnce(&mut Sim)>,
    ) {
        if let Some(offloader) = self.engine.subtree.offloader.clone() {
            let this = self.clone();
            let local_copy = batch.clone();
            // Guard against a helper dying mid-batch: if the offload never
            // completes, re-run locally (batches are idempotent).
            let fired = Rc::new(std::cell::Cell::new(false));
            let fired2 = Rc::clone(&fired);
            let done = Rc::new(RefCell::new(Some(done)));
            let done2 = Rc::clone(&done);
            let wrapped: Box<dyn FnOnce(&mut Sim)> = Box::new(move |sim| {
                fired2.set(true);
                if let Some(d) = done2.borrow_mut().take() {
                    d(sim);
                }
            });
            if offloader.offload(sim, batch, wrapped) {
                let this2 = this.clone();
                sim.schedule(SimDuration::from_secs(10), move |sim| {
                    if !fired.get() {
                        if let Some(d) = done.borrow_mut().take() {
                            this2.run_batch_local(sim, local_copy, d);
                        }
                    }
                });
                return;
            }
            // Offload refused: run locally with the original callback.
            let d = done.borrow_mut().take().expect("unused");
            self.run_batch_local(sim, local_copy, d);
            return;
        }
        self.run_batch_local(sim, batch, done);
    }

    /// Executes one batch against the local engine's store handle.
    pub(crate) fn run_batch_local(
        &self,
        sim: &mut Sim,
        batch: SubtreeBatch,
        done: Box<dyn FnOnce(&mut Sim)>,
    ) {
        match batch.kind {
            SubtreeBatchKind::Quiesce => {
                self.engine.db.charge_quiesce(sim, batch.items.len() as u64, done);
            }
            SubtreeBatchKind::DeleteRows => {
                let engine = self.engine.clone();
                let txn = engine.db.begin();
                let mut keys = Vec::with_capacity(batch.items.len() * 2);
                // Item names are interned, so each probe key is two moves.
                for item in &batch.items {
                    keys.push(engine.db.lock_key(engine.schema.inodes, &item.id));
                    let child_key = (item.parent, NameKey::new(item.name));
                    keys.push(engine.db.lock_key(engine.schema.children, &child_key));
                }
                keys.sort();
                keys.dedup();
                let engine2 = engine.clone();
                engine.db.lock(sim, txn, keys, LockMode::Exclusive, move |sim, res| {
                    if res.is_err() {
                        engine2.db.abort(sim, txn);
                        // Retried by the leader's timeout guard; charge
                        // nothing more here.
                        return done(sim);
                    }
                    for item in &batch.items {
                        let _ = engine2.db.remove(txn, engine2.schema.inodes, item.id);
                        let _ = engine2.db.remove(
                            txn,
                            engine2.schema.children,
                            (item.parent, NameKey::new(item.name)),
                        );
                    }
                    engine2.db.commit(sim, txn, move |sim, _r| done(sim));
                });
            }
        }
    }
}

impl OpEngine {
    /// Deletes the emptied subtree root (no coherence — the prefix INV
    /// already covered it).
    fn delete_root_for_subtree(&self, sim: &mut Sim, path: DfsPath, root: lambda_namespace::Inode, done: OpDone) {
        // delete_single is private to fsops; replicate the minimal txn
        // here via the same locking discipline.
        let mut keys = vec![
            self.db.lock_key(self.schema.inodes, &root.parent),
            self.db.lock_key(self.schema.inodes, &root.id),
            self.db.lock_key(self.schema.children, &(root.parent, root.name.key())),
        ];
        keys.sort();
        let txn = self.db.begin();
        let this = self.clone();
        self.db.lock(sim, txn, keys, LockMode::Exclusive, move |sim, res| {
            if res.is_err() {
                this.db.abort(sim, txn);
                return done(sim, Err(FsError::Retryable("subtree root delete lock".into())));
            }
            let parent_now = this.db.peek(this.schema.inodes, &root.parent);
            let Some(mut parent_now) = parent_now else {
                this.db.abort(sim, txn);
                return done(sim, Err(FsError::Retryable("subtree parent vanished".into())));
            };
            parent_now.mtime_nanos = sim.now().as_nanos();
            let writes = this
                .db
                .remove(txn, this.schema.children, (root.parent, root.name.key()))
                .map(|_| ())
                .and_then(|()| this.db.remove(txn, this.schema.inodes, root.id).map(|_| ()))
                .and_then(|()| this.db.upsert(txn, this.schema.inodes, root.parent, parent_now));
            if writes.is_err() {
                this.db.abort(sim, txn);
                return done(sim, Err(FsError::Retryable("subtree root delete".into())));
            }
            let this2 = this.clone();
            this.db.commit(sim, txn, move |sim, r| {
                if r.is_err() {
                    return done(sim, Err(FsError::Retryable("subtree root commit".into())));
                }
                if let Some(cache) = &this2.cache {
                    let mut cache = cache.borrow_mut();
                    cache.invalidate_prefix(&path);
                    cache.invalidate_inode(root.parent);
                    cache.invalidate_listing(root.parent);
                }
                done(sim, Ok(OpOutcome::Deleted(1)));
            });
        });
    }
}

/// Splits items into batches of `batch_size` with the given kind.
fn make_batches(items: &[SubtreeItem], batch_size: usize, kind: SubtreeBatchKind) -> Vec<SubtreeBatch> {
    items
        .chunks(batch_size.max(1))
        .map(|chunk| SubtreeBatch { kind: kind.clone(), items: chunk.to_vec() })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batching_covers_all_items() {
        let items: Vec<SubtreeItem> = (0..1000)
            .map(|i| SubtreeItem { id: i, parent: 0, name: lambda_namespace::interned(&format!("f{i}")) })
            .collect();
        let batches = make_batches(&items, 512, SubtreeBatchKind::Quiesce);
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[0].items.len(), 512);
        assert_eq!(batches[1].items.len(), 488);
        let total: usize = batches.iter().map(|b| b.items.len()).sum();
        assert_eq!(total, 1000);
    }

    #[test]
    fn zero_batch_size_is_clamped() {
        let items =
            vec![SubtreeItem { id: 1, parent: 0, name: "x".into() }];
        let batches = make_batches(&items, 0, SubtreeBatchKind::DeleteRows);
        assert_eq!(batches.len(), 1);
    }
}
