//! The λFS serverless cache-coherence protocol (§3.5, Algorithm 1).
//!
//! A writer ("leader") NameNode, already holding its exclusive store
//! locks, must ensure every other NameNode instance that might cache the
//! affected metadata has invalidated it before anything is persisted:
//!
//! 1. The leader computes the deployment set `D` — the deployments that
//!    can cache at least one affected piece of metadata (by the namespace
//!    partitioning, the deployments owning the affected paths; a subtree
//!    prefix INV targets every deployment, since descendants hash by
//!    their own parents).
//! 2. It snapshots the live members of those deployments through the
//!    Coordinator, sends each an INV, and waits for ACKs. **ACKs are not
//!    required from members that terminate mid-protocol** — membership
//!    watches remove dead sessions from every outstanding round.
//! 3. When the round drains, the write proceeds to persist and commit.
//!
//! Safety: an instance that joins after the snapshot starts with an empty
//! cache, and any cache *fill* takes shared store locks that block on the
//! leader's exclusive locks — so nobody can read-and-cache stale metadata
//! between INV and commit.

use std::cell::RefCell;
use std::collections::{BTreeSet, HashMap, HashSet};
use std::rc::Rc;

use lambda_coord::{Coordinator, SessionId};
use lambda_namespace::{MetadataCache, Partitioner};
use lambda_sim::{Sim, SimDuration};

use crate::fsops::{CoherenceHook, InvalidationSet};
use crate::messages::CoherenceMsg;

/// The Coordinator group name for a deployment's NameNode instances.
#[must_use]
pub fn deployment_group(deployment: u32) -> String {
    format!("nn-deployment-{deployment}")
}

/// Continuation fired when a coherence round drains.
type RoundDone = Box<dyn FnOnce(&mut Sim)>;

struct Round {
    waiting: HashSet<SessionId>,
    done: Option<RoundDone>,
}

struct CoherenceInner {
    next_round: u64,
    rounds: HashMap<u64, Round>,
    invs_sent: u64,
    acks_received: u64,
}

/// The per-NameNode coherence endpoint: issues INV rounds as a leader and
/// answers INVs as a follower.
#[derive(Clone)]
pub struct CoordCoherence {
    coord: Coordinator<CoherenceMsg>,
    session: SessionId,
    partitioner: Rc<Partitioner>,
    cache: Rc<RefCell<MetadataCache>>,
    inner: Rc<RefCell<CoherenceInner>>,
}

impl std::fmt::Debug for CoordCoherence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("CoordCoherence")
            .field("session", &self.session)
            .field("open_rounds", &inner.rounds.len())
            .finish()
    }
}

impl CoordCoherence {
    /// Creates the endpoint for a NameNode with the given session and
    /// local cache.
    #[must_use]
    pub fn new(
        coord: Coordinator<CoherenceMsg>,
        session: SessionId,
        partitioner: Rc<Partitioner>,
        cache: Rc<RefCell<MetadataCache>>,
    ) -> Self {
        CoordCoherence {
            coord,
            session,
            partitioner,
            cache,
            inner: Rc::new(RefCell::new(CoherenceInner {
                next_round: 0,
                rounds: HashMap::new(),
                invs_sent: 0,
                acks_received: 0,
            })),
        }
    }

    /// `(INVs sent, ACKs received)` so far — protocol-overhead reporting.
    #[must_use]
    pub fn stats(&self) -> (u64, u64) {
        let inner = self.inner.borrow();
        (inner.invs_sent, inner.acks_received)
    }

    /// Handles an incoming coherence message (wired to the NameNode's
    /// Coordinator inbox).
    pub fn handle(&self, sim: &mut Sim, msg: CoherenceMsg) {
        match msg {
            CoherenceMsg::Inv { round, from, inodes, listings, listing_updates, prefix } => {
                {
                    let mut cache = self.cache.borrow_mut();
                    for id in inodes {
                        cache.invalidate_inode(id);
                    }
                    for dir in listings {
                        cache.invalidate_listing(dir);
                    }
                    for (dir, name, present) in listing_updates {
                        cache.update_listing(dir, name, present);
                    }
                    if let Some(prefix) = prefix {
                        cache.invalidate_prefix(&prefix);
                    }
                }
                // ACK after invalidating (Algorithm 1, step 2).
                self.coord.send(
                    sim,
                    self.session,
                    from,
                    CoherenceMsg::Ack { round, from: self.session },
                );
            }
            CoherenceMsg::Ack { round, from } => self.on_ack(sim, round, from),
        }
    }

    fn on_ack(&self, sim: &mut Sim, round: u64, from: SessionId) {
        let fire = {
            let mut inner = self.inner.borrow_mut();
            inner.acks_received += 1;
            match inner.rounds.get_mut(&round) {
                Some(r) => {
                    r.waiting.remove(&from);
                    if r.waiting.is_empty() {
                        inner.rounds.remove(&round).and_then(|r| r.done)
                    } else {
                        None
                    }
                }
                None => None,
            }
        };
        if let Some(done) = fire {
            done(sim);
        }
    }

    /// Removes a dead member from every outstanding round (wired to the
    /// NameNode's membership watches). Completed rounds fire.
    pub fn on_member_left(&self, sim: &mut Sim, member: SessionId) {
        let fired: Vec<RoundDone> = {
            let mut inner = self.inner.borrow_mut();
            let completed: Vec<u64> = inner
                .rounds
                .iter_mut()
                .filter_map(|(id, r)| {
                    r.waiting.remove(&member);
                    r.waiting.is_empty().then_some(*id)
                })
                .collect();
            completed
                .into_iter()
                .filter_map(|id| inner.rounds.remove(&id).and_then(|r| r.done))
                .collect()
        };
        for done in fired {
            done(sim);
        }
    }
}

impl CoherenceHook for CoordCoherence {
    fn invalidate(&self, sim: &mut Sim, inv: InvalidationSet, done: Box<dyn FnOnce(&mut Sim)>) {
        // Step 1: the deployment set D.
        let deployments: BTreeSet<u32> = if inv.prefix.is_some() {
            (0..self.partitioner.deployments()).collect()
        } else {
            inv.paths.iter().map(|p| self.partitioner.deployment_for_path(p)).collect()
        };
        // Snapshot live members, excluding ourselves (the leader's own
        // cache is updated inline by the write path).
        let members: Vec<SessionId> = deployments
            .iter()
            .flat_map(|d| self.coord.members(&deployment_group(*d)))
            .filter(|m| *m != self.session)
            .collect();
        if members.is_empty() {
            sim.schedule(SimDuration::ZERO, done);
            return;
        }
        let round = {
            let mut inner = self.inner.borrow_mut();
            inner.next_round += 1;
            let id = inner.next_round;
            inner.rounds.insert(
                id,
                Round { waiting: members.iter().copied().collect(), done: Some(done) },
            );
            id
        };
        let mut delivered_none = true;
        for member in members {
            let sent = self.coord.send(
                sim,
                self.session,
                member,
                CoherenceMsg::Inv {
                    round,
                    from: self.session,
                    inodes: inv.inodes.clone(),
                    listings: inv.listings.clone(),
                    listing_updates: inv.listing_updates.clone(),
                    prefix: inv.prefix.clone(),
                },
            );
            let mut inner = self.inner.borrow_mut();
            if sent {
                inner.invs_sent += 1;
                delivered_none = false;
            } else {
                // Already dead: no ACK required.
                if let Some(r) = inner.rounds.get_mut(&round) {
                    r.waiting.remove(&member);
                }
            }
        }
        // All targets were dead: complete immediately.
        let fire = {
            let mut inner = self.inner.borrow_mut();
            let empty = inner.rounds.get(&round).is_some_and(|r| r.waiting.is_empty());
            if empty || delivered_none {
                inner.rounds.remove(&round).and_then(|r| r.done)
            } else {
                None
            }
        };
        if let Some(done) = fire {
            sim.schedule(SimDuration::ZERO, done);
        }
    }
}
