//! The agile auto-scaling model (paper §3.4, Fig. 6).
//!
//! λFS does not run its own scaling controller: it *reuses the FaaS
//! platform's* scale-out machinery and steers it with two knobs —
//!
//! * **fine-grained**: the probability that a client replaces a TCP RPC
//!   with an HTTP RPC (only HTTP RPCs are FaaS-visible and can trigger
//!   scale-out);
//! * **coarse-grained**: the per-instance `ConcurrencyLevel` (how many
//!   HTTP RPCs one instance absorbs before the platform provisions
//!   another).
//!
//! This module implements Fig. 6's closed-form model of the expected
//! scale, used for configuration reasoning and validated against the
//! emergent behavior of the full system in the integration tests.

use std::fmt;

use lambda_faas::{DeploymentId, Function, InstanceId, Platform};
use lambda_sim::{SimTime, StationStats};

/// Inputs to the Fig. 6 scale model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaleModel {
    /// Number of function deployments (`NumDeployments`).
    pub deployments: u32,
    /// HTTP-TCP replacement probability (`TcpHttpReplace%`).
    pub replace_prob: f64,
    /// Load level `α`: requests per second times mean request latency
    /// (i.e. offered concurrency, by Little's law).
    pub alpha: f64,
    /// Per-instance HTTP concurrency (`ConcurrencyLevel ≥ 1`).
    pub concurrency_level: u32,
    /// Cluster vCPUs available to the platform.
    pub cluster_vcpus: u32,
    /// vCPUs per NameNode.
    pub per_nn_vcpus: u32,
    /// Cluster RAM (GB) available to the platform.
    pub cluster_ram_gb: f64,
    /// RAM per NameNode (GB).
    pub per_nn_ram_gb: f64,
}

impl ScaleModel {
    /// `DesiredScale = NumDeployments + TcpHttpReplace% × α /
    /// ConcurrencyLevel` — the expected number of NameNodes, before the
    /// resource upper bound.
    #[must_use]
    pub fn desired_scale(&self) -> f64 {
        let cl = f64::from(self.concurrency_level.max(1));
        f64::from(self.deployments) + self.replace_prob * self.alpha / cl
    }

    /// The resource upper bound: `MIN(ClusterCPU / PerNameNodeCPU,
    /// ClusterRAM / PerNameNodeRAM)`.
    #[must_use]
    pub fn resource_bound(&self) -> f64 {
        let by_cpu = f64::from(self.cluster_vcpus) / f64::from(self.per_nn_vcpus.max(1));
        let by_ram = self.cluster_ram_gb / self.per_nn_ram_gb.max(1e-9);
        by_cpu.min(by_ram)
    }

    /// The expected steady-state NameNode count: the desired scale capped
    /// by resources, and never below one instance per deployment.
    #[must_use]
    pub fn expected_namenodes(&self) -> f64 {
        self.desired_scale().min(self.resource_bound()).max(f64::from(self.deployments))
    }
}

/// One observation of the platform's scale, taken by [`ScaleSampler`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaleSample {
    /// Simulation time of the observation.
    pub at: SimTime,
    /// Provisioned instances (starting + warm).
    pub instances: usize,
    /// Warm instances.
    pub warm: u32,
    /// In-flight HTTP requests across all instances.
    pub active_http: u32,
    /// Busy vCPUs across all instance CPU stations.
    pub busy_vcpus: u32,
}

/// An opt-in scale observer for validating the Fig. 6 model against the
/// emergent platform behavior. Not wired into [`crate::LambdaFs::start`] —
/// sampling is driver-controlled so default runs schedule no extra events.
///
/// The sampler keeps reusable scratch buffers and reads the platform
/// through the allocation-free `_into` diagnostics
/// ([`Platform::instance_slots_into`], [`Platform::instance_cpu_stats_into`],
/// [`Platform::warm_instances_into`]), so steady-state sampling allocates
/// only when a buffer grows past its high-water mark.
#[derive(Default)]
pub struct ScaleSampler {
    samples: Vec<ScaleSample>,
    slots_scratch: Vec<(InstanceId, DeploymentId, u32, u32, bool)>,
    cpu_scratch: Vec<(InstanceId, u32, u32, usize, StationStats)>,
    warm_scratch: Vec<InstanceId>,
}

impl fmt::Debug for ScaleSampler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ScaleSampler").field("samples", &self.samples.len()).finish()
    }
}

impl ScaleSampler {
    /// A sampler with no recorded observations.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation of `platform` at time `now` and returns it.
    pub fn sample<F: Function>(&mut self, now: SimTime, platform: &Platform<F>) -> ScaleSample {
        platform.instance_slots_into(&mut self.slots_scratch);
        platform.instance_cpu_stats_into(&mut self.cpu_scratch);
        let warm = self.slots_scratch.iter().filter(|(_, _, _, _, w)| *w).count() as u32;
        let active_http = self.slots_scratch.iter().map(|(_, _, http, _, _)| http).sum();
        let busy_vcpus = self.cpu_scratch.iter().map(|(_, _, busy, _, _)| busy).sum();
        let s = ScaleSample {
            at: now,
            instances: self.slots_scratch.len(),
            warm,
            active_http,
            busy_vcpus,
        };
        self.samples.push(s);
        s
    }

    /// Warm-instance count of one deployment (scratch-buffered; does not
    /// record a sample).
    pub fn warm_count<F: Function>(
        &mut self,
        platform: &Platform<F>,
        deployment: DeploymentId,
    ) -> usize {
        platform.warm_instances_into(deployment, &mut self.warm_scratch);
        self.warm_scratch.len()
    }

    /// All recorded observations, in sampling order.
    #[must_use]
    pub fn samples(&self) -> &[ScaleSample] {
        &self.samples
    }

    /// The largest observed warm-instance count (0 when never sampled).
    #[must_use]
    pub fn peak_warm(&self) -> u32 {
        self.samples.iter().map(|s| s.warm).max().unwrap_or(0)
    }

    /// Mean warm-instance count over the recorded samples (time-unweighted;
    /// callers wanting time-weighted scale should sample on a fixed tick).
    #[must_use]
    pub fn mean_warm(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let total: u64 = self.samples.iter().map(|s| u64::from(s.warm)).sum();
        total as f64 / self.samples.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> ScaleModel {
        ScaleModel {
            deployments: 10,
            replace_prob: 0.01,
            alpha: 4000.0,
            concurrency_level: 4,
            cluster_vcpus: 512,
            per_nn_vcpus: 5,
            cluster_ram_gb: 4096.0,
            per_nn_ram_gb: 6.0,
        }
    }

    #[test]
    fn desired_scale_matches_fig6_formula() {
        let m = base();
        // 10 + 0.01 * 4000 / 4 = 20.
        assert!((m.desired_scale() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn smaller_concurrency_scales_out_more() {
        let mut m = base();
        let loose = m.desired_scale();
        m.concurrency_level = 1;
        assert!(m.desired_scale() > loose, "ConcurrencyLevel→1 must increase scale");
    }

    #[test]
    fn replacement_probability_is_the_fine_grained_knob() {
        let mut m = base();
        m.replace_prob = 0.0;
        // Pure-TCP traffic never scales past the deployment floor.
        assert!((m.desired_scale() - 10.0).abs() < 1e-12);
        m.replace_prob = 0.02;
        assert!(m.desired_scale() > 10.0);
    }

    #[test]
    fn resource_bound_caps_the_scale() {
        let mut m = base();
        m.alpha = 1e9;
        // 512 / 5 = 102.4 NameNodes by CPU; RAM allows more.
        assert!((m.resource_bound() - 102.4).abs() < 1e-9);
        assert!((m.expected_namenodes() - 102.4).abs() < 1e-9);
    }

    #[test]
    fn ram_can_be_the_binding_constraint() {
        let mut m = base();
        m.cluster_ram_gb = 60.0; // only 10 NameNodes by RAM
        assert!((m.resource_bound() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn floor_is_one_instance_per_deployment() {
        let mut m = base();
        m.alpha = 0.0;
        assert!((m.expected_namenodes() - 10.0).abs() < 1e-12);
    }

    mod sampler {
        use super::super::*;
        use lambda_faas::{
            FunctionConfig, InstanceCtx, PlatformConfig, Responder,
        };
        use lambda_sim::{Sim, SimDuration, Station};

        struct Echo;

        impl Function for Echo {
            type Req = u64;
            type Resp = u64;

            fn on_start(&mut self, _sim: &mut Sim, _ctx: &InstanceCtx) {}

            fn on_request(
                &mut self,
                sim: &mut Sim,
                ctx: &InstanceCtx,
                req: u64,
                respond: Responder<u64>,
            ) {
                let work = SimDuration::from_millis(1);
                Station::submit(&ctx.cpu, sim, work, move |sim| respond.send(sim, req));
            }

            fn on_terminate(&mut self, _sim: &mut Sim, _ctx: &InstanceCtx, _graceful: bool) {}
        }

        fn platform() -> (Platform<Echo>, DeploymentId) {
            let platform = Platform::new(&PlatformConfig::default());
            let dep = platform.register_deployment(
                "echo",
                FunctionConfig {
                    vcpus: 4,
                    mem_gb: 6.0,
                    concurrency: 2,
                    max_instances: u32::MAX,
                    min_instances: 0,
                },
                Box::new(|_ctx| Echo),
            );
            (platform, dep)
        }

        #[test]
        fn sampler_tracks_scale_out() {
            let mut sim = Sim::new(7);
            let (platform, dep) = platform();
            let mut sampler = ScaleSampler::new();

            let cold = sampler.sample(sim.now(), &platform);
            assert_eq!(cold.instances, 0);
            assert_eq!(cold.warm, 0);
            assert_eq!(sampler.warm_count(&platform, dep), 0);

            // Five concurrent HTTP requests at concurrency 2 need three
            // instances; sample after the dust settles.
            for i in 0..5 {
                platform.invoke_http(&mut sim, dep, i, Responder::new(|_, _| {}));
            }
            sim.run();
            let warm = sampler.sample(sim.now(), &platform);
            assert_eq!(warm.instances, 3);
            assert_eq!(warm.warm, 3);
            assert_eq!(warm.active_http, 0, "all requests completed");
            assert_eq!(sampler.warm_count(&platform, dep), 3);

            assert_eq!(sampler.samples().len(), 2);
            assert_eq!(sampler.peak_warm(), 3);
            assert!((sampler.mean_warm() - 1.5).abs() < 1e-12);
        }

        #[test]
        fn sampling_reuses_scratch_capacity() {
            let mut sim = Sim::new(8);
            let (platform, dep) = platform();
            for i in 0..4 {
                platform.invoke_http(&mut sim, dep, i, Responder::new(|_, _| {}));
            }
            sim.run();

            let mut sampler = ScaleSampler::new();
            sampler.sample(sim.now(), &platform);
            let cap = (sampler.slots_scratch.capacity(), sampler.cpu_scratch.capacity());
            for _ in 0..16 {
                sampler.sample(sim.now(), &platform);
            }
            let after = (sampler.slots_scratch.capacity(), sampler.cpu_scratch.capacity());
            assert_eq!(cap, after, "steady-state samples must not regrow scratch");
        }
    }
}
