//! The agile auto-scaling model (paper §3.4, Fig. 6).
//!
//! λFS does not run its own scaling controller: it *reuses the FaaS
//! platform's* scale-out machinery and steers it with two knobs —
//!
//! * **fine-grained**: the probability that a client replaces a TCP RPC
//!   with an HTTP RPC (only HTTP RPCs are FaaS-visible and can trigger
//!   scale-out);
//! * **coarse-grained**: the per-instance `ConcurrencyLevel` (how many
//!   HTTP RPCs one instance absorbs before the platform provisions
//!   another).
//!
//! This module implements Fig. 6's closed-form model of the expected
//! scale, used for configuration reasoning and validated against the
//! emergent behavior of the full system in the integration tests.

/// Inputs to the Fig. 6 scale model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaleModel {
    /// Number of function deployments (`NumDeployments`).
    pub deployments: u32,
    /// HTTP-TCP replacement probability (`TcpHttpReplace%`).
    pub replace_prob: f64,
    /// Load level `α`: requests per second times mean request latency
    /// (i.e. offered concurrency, by Little's law).
    pub alpha: f64,
    /// Per-instance HTTP concurrency (`ConcurrencyLevel ≥ 1`).
    pub concurrency_level: u32,
    /// Cluster vCPUs available to the platform.
    pub cluster_vcpus: u32,
    /// vCPUs per NameNode.
    pub per_nn_vcpus: u32,
    /// Cluster RAM (GB) available to the platform.
    pub cluster_ram_gb: f64,
    /// RAM per NameNode (GB).
    pub per_nn_ram_gb: f64,
}

impl ScaleModel {
    /// `DesiredScale = NumDeployments + TcpHttpReplace% × α /
    /// ConcurrencyLevel` — the expected number of NameNodes, before the
    /// resource upper bound.
    #[must_use]
    pub fn desired_scale(&self) -> f64 {
        let cl = f64::from(self.concurrency_level.max(1));
        f64::from(self.deployments) + self.replace_prob * self.alpha / cl
    }

    /// The resource upper bound: `MIN(ClusterCPU / PerNameNodeCPU,
    /// ClusterRAM / PerNameNodeRAM)`.
    #[must_use]
    pub fn resource_bound(&self) -> f64 {
        let by_cpu = f64::from(self.cluster_vcpus) / f64::from(self.per_nn_vcpus.max(1));
        let by_ram = self.cluster_ram_gb / self.per_nn_ram_gb.max(1e-9);
        by_cpu.min(by_ram)
    }

    /// The expected steady-state NameNode count: the desired scale capped
    /// by resources, and never below one instance per deployment.
    #[must_use]
    pub fn expected_namenodes(&self) -> f64 {
        self.desired_scale().min(self.resource_bound()).max(f64::from(self.deployments))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> ScaleModel {
        ScaleModel {
            deployments: 10,
            replace_prob: 0.01,
            alpha: 4000.0,
            concurrency_level: 4,
            cluster_vcpus: 512,
            per_nn_vcpus: 5,
            cluster_ram_gb: 4096.0,
            per_nn_ram_gb: 6.0,
        }
    }

    #[test]
    fn desired_scale_matches_fig6_formula() {
        let m = base();
        // 10 + 0.01 * 4000 / 4 = 20.
        assert!((m.desired_scale() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn smaller_concurrency_scales_out_more() {
        let mut m = base();
        let loose = m.desired_scale();
        m.concurrency_level = 1;
        assert!(m.desired_scale() > loose, "ConcurrencyLevel→1 must increase scale");
    }

    #[test]
    fn replacement_probability_is_the_fine_grained_knob() {
        let mut m = base();
        m.replace_prob = 0.0;
        // Pure-TCP traffic never scales past the deployment floor.
        assert!((m.desired_scale() - 10.0).abs() < 1e-12);
        m.replace_prob = 0.02;
        assert!(m.desired_scale() > 10.0);
    }

    #[test]
    fn resource_bound_caps_the_scale() {
        let mut m = base();
        m.alpha = 1e9;
        // 512 / 5 = 102.4 NameNodes by CPU; RAM allows more.
        assert!((m.resource_bound() - 102.4).abs() < 1e-9);
        assert!((m.expected_namenodes() - 102.4).abs() < 1e-9);
    }

    #[test]
    fn ram_can_be_the_binding_constraint() {
        let mut m = base();
        m.cluster_ram_gb = 60.0; // only 10 NameNodes by RAM
        assert!((m.resource_bound() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn floor_is_one_instance_per_deployment() {
        let mut m = base();
        m.alpha = 0.0;
        assert!((m.expected_namenodes() - 10.0).abs() < 1e-12);
    }
}
