//! λFS system configuration.

use lambda_sim::params::{CpuParams, FaasParams, NetParams, StoreParams};
use lambda_sim::{LambdaPricing, SimDuration};

/// Complete configuration for a [`LambdaFs`](crate::LambdaFs) system.
///
/// Defaults reproduce the evaluation's common setup: 10 NameNode
/// deployments, 5-vCPU / 6 GB NameNodes, `ConcurrencyLevel` 4, 1 %
/// HTTP-TCP replacement, 512-vCPU cluster cap.
#[derive(Debug, Clone)]
pub struct LambdaFsConfig {
    /// Number of serverless NameNode deployments (`n` in §3.1). Fixed at
    /// registration time; determines the namespace partitioning.
    pub deployments: u32,
    /// vCPUs per NameNode instance.
    pub nn_vcpus: u32,
    /// Memory per NameNode instance (GB).
    pub nn_mem_gb: f64,
    /// `ConcurrencyLevel`: simultaneous HTTP requests per instance (§3.4,
    /// coarse-grained auto-scaling control).
    pub concurrency_level: u32,
    /// Maximum instances per deployment (`u32::MAX` = platform limits;
    /// Fig. 14's ablations lower this).
    pub max_instances_per_deployment: u32,
    /// Minimum instances kept warm per deployment — the
    /// provisioned-concurrency mitigation for warm-function reclamation
    /// that the paper leaves as future work. 0 = pure scale-to-zero.
    pub min_warm_per_deployment: u32,
    /// Cluster-wide vCPU cap for the FaaS platform (the evaluation's
    /// fairness control; 512 in most experiments).
    pub cluster_vcpus: u32,
    /// Metadata-cache capacity per NameNode, in inodes. The
    /// "reduced-cache λFS" run (§5.2.3) sets this below the working-set
    /// size.
    pub cache_capacity: usize,
    /// Directory-listing cache capacity per NameNode, in directories.
    pub listing_cache_capacity: usize,
    /// Probability that a client replaces a TCP RPC with an HTTP RPC
    /// (fine-grained auto-scaling control; §3.4 finds ≤ 1 % works best).
    pub http_replace_prob: f64,
    /// Client-side request timeout before resubmission.
    pub client_timeout: SimDuration,
    /// Maximum client retries before reporting [`FsError::Timeout`](lambda_namespace::FsError).
    pub max_retries: u32,
    /// Straggler-mitigation threshold: a request outliving `threshold ×`
    /// the client's moving-average latency is cancelled and resubmitted
    /// (Appendix B; default 10).
    pub straggler_threshold: f64,
    /// Minimum samples in the moving average before straggler mitigation
    /// and anti-thrashing activate.
    pub latency_window: usize,
    /// Anti-thrashing threshold `T` (Appendix C; 2–3 works best): a
    /// latency above `T ×` the moving average puts the client in
    /// TCP-only mode.
    pub anti_thrash_threshold: f64,
    /// Sub-operation batch size for subtree operations (Appendix D;
    /// default 512).
    pub subtree_batch_size: usize,
    /// Offload subtree batches to helper NameNodes (Appendix D's
    /// "serverless offloading").
    pub subtree_offload: bool,
    /// Maximum concurrent in-flight subtree batches per executor.
    pub subtree_parallelism: usize,
    /// Run the cache-coherence protocol on writes. Disabling this is an
    /// *unsafe ablation* used to measure the protocol's overhead.
    pub coherence_enabled: bool,
    /// Number of client VMs (TCP-server hosts); the evaluation used 8.
    pub client_vms: u32,
    /// Total client processes across the VMs.
    pub clients: u32,
    /// At most this many clients share one TCP server on a VM (§3.2:
    /// "users can optionally configure λFS to assign at-most n clients to
    /// each TCP server"); smaller values exercise connection sharing
    /// (Fig. 4).
    pub clients_per_tcp_server: u32,
    /// Coordinator session timeout (crash-detection latency).
    pub session_timeout: SimDuration,
    /// Which Coordinator implementation to run (§3.5: ZooKeeper, the
    /// evaluation's default, or MySQL Cluster NDB's event API — the
    /// latter needs no extra service but rides the metadata store).
    pub coordinator: lambda_coord::CoordinatorKind,
    /// NDB event-API flush epoch (only used with
    /// [`CoordinatorKind::Ndb`](lambda_coord::CoordinatorKind::Ndb)).
    pub ndb_event_epoch: SimDuration,
    /// Number of simulated DataNodes publishing reports.
    pub datanodes: u32,
    /// Interval between DataNode reports.
    pub datanode_report_every: SimDuration,
    /// Network latency model.
    pub net: NetParams,
    /// NameNode CPU service-time model.
    pub cpu: CpuParams,
    /// Persistent metadata store capacity model.
    pub store: StoreParams,
    /// FaaS platform behavior (cold starts, reclamation).
    pub faas: FaasParams,
    /// Pay-per-use prices.
    pub pricing: LambdaPricing,
    /// Store lock-wait timeout (aborts the waiter).
    pub lock_timeout: SimDuration,
    /// Store persistence model: `None` (default) runs the volatile
    /// in-memory backend with fixed-takeover crash semantics; `Some`
    /// selects the WAL-backed durable backend, whose shard crashes run
    /// deterministic WAL-replay recovery (see
    /// [`lambda_store::DurabilityConfig`]).
    pub durability: Option<lambda_store::DurabilityConfig>,
}

impl Default for LambdaFsConfig {
    fn default() -> Self {
        LambdaFsConfig {
            deployments: 10,
            nn_vcpus: 5,
            nn_mem_gb: 6.0,
            concurrency_level: 4,
            max_instances_per_deployment: u32::MAX,
            min_warm_per_deployment: 0,
            cluster_vcpus: 512,
            cache_capacity: 2_000_000,
            listing_cache_capacity: 100_000,
            http_replace_prob: 0.01,
            client_timeout: SimDuration::from_secs(5),
            max_retries: 6,
            straggler_threshold: 10.0,
            latency_window: 64,
            anti_thrash_threshold: 2.5,
            subtree_batch_size: 512,
            subtree_offload: true,
            subtree_parallelism: 4,
            coherence_enabled: true,
            client_vms: 8,
            clients: 64,
            clients_per_tcp_server: 128,
            session_timeout: SimDuration::from_secs(4),
            coordinator: lambda_coord::CoordinatorKind::ZooKeeper,
            ndb_event_epoch: SimDuration::from_nanos(10_000_000),
            datanodes: 8,
            datanode_report_every: SimDuration::from_secs(10),
            net: NetParams::default(),
            cpu: CpuParams::default(),
            store: StoreParams::default(),
            faas: FaasParams::default(),
            pricing: LambdaPricing::default(),
            lock_timeout: SimDuration::from_secs(5),
            durability: None,
        }
    }
}

impl LambdaFsConfig {
    /// Total vCPUs λFS would use if every deployment ran one instance.
    #[must_use]
    pub fn baseline_vcpus(&self) -> u32 {
        self.deployments * self.nn_vcpus
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_papers_setup() {
        let c = LambdaFsConfig::default();
        assert_eq!(c.cluster_vcpus, 512);
        assert!(c.http_replace_prob <= 0.01);
        assert_eq!(c.subtree_batch_size, 512);
        assert!((2.0..=3.0).contains(&c.anti_thrash_threshold));
        assert_eq!(c.straggler_threshold, 10.0);
    }
}
