//! The metadata-operation engine.
//!
//! [`OpEngine`] executes the seven DFS metadata operations against the
//! persistent store, optionally through a local [`MetadataCache`]
//! (λFS / HopsFS+Cache) and optionally guarded by a cache-coherence hook
//! (§3.5). The same engine drives:
//!
//! * λFS serverless NameNodes — cache + Coordinator-based coherence;
//! * HopsFS stateless NameNodes — no cache, no coherence (every operation
//!   hits the store, the behavior whose cost Figs. 8/11/12 expose);
//! * HopsFS+Cache — cache + fixed-membership coherence;
//! * the InfiniCache-style baseline — cache + coherence, but only ever
//!   invoked per-operation over HTTP.
//!
//! ## Locking discipline (deadlock-free by construction + timeout net)
//!
//! 1. Path resolution takes **shared** locks on the existing chain, in one
//!    sorted batch, and releases them at the end of the read (the
//!    single-batch resolution that HopsFS's INode-hint cache enables).
//! 2. Write operations then take **exclusive** locks on their write set in
//!    one sorted batch (never upgrading a held shared lock — resolution
//!    and write-set locking use separate transactions), re-validate under
//!    the locks, run the coherence hook, apply, and commit.
//! 3. Any residual cross-operation ordering violation is caught by the
//!    store's lock-wait timeout and surfaces as a retryable error, which
//!    the client library resubmits — exactly HopsFS's deadlock-victim
//!    behavior.

use std::cell::RefCell;
use std::rc::Rc;

use lambda_namespace::{
    DfsPath, FsError, FsOp, Inode, InodeId, InodeName, MetadataCache, MetadataSchema, OpOutcome,
    OpResult,
};
use lambda_sim::params::CpuParams;
use lambda_sim::{Sim, SimDuration, Station, StationRef};
use lambda_store::{Db, LockMode, NameKey, StoreError};

/// Completion callback for one operation.
pub type OpDone = Box<dyn FnOnce(&mut Sim, OpResult)>;

/// Everything a write must invalidate before it commits, plus the paths
/// that determine which deployments must be told (§3.5: `D` is the set of
/// deployments caching at least one piece of affected metadata).
#[derive(Debug, Clone, Default)]
pub struct InvalidationSet {
    /// Inodes whose cached copies must be dropped.
    pub inodes: Vec<InodeId>,
    /// Directories whose cached listings must be dropped wholesale
    /// (subtree operations; single-child changes use `listing_updates`).
    pub listings: Vec<InodeId>,
    /// In-place listing deltas `(dir, child name, present-after-write)` —
    /// an INV that names the changed child lets caches patch their
    /// listing instead of dropping it. Names are interned `&'static str`
    /// so fan-out clones never allocate.
    pub listing_updates: Vec<(InodeId, &'static str, bool)>,
    /// Subtree prefix invalidation (Appendix D), if any.
    pub prefix: Option<DfsPath>,
    /// Paths whose owning deployments must receive the INV.
    pub paths: Vec<DfsPath>,
}

impl InvalidationSet {
    /// Whether there is nothing to invalidate.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inodes.is_empty()
            && self.listings.is_empty()
            && self.listing_updates.is_empty()
            && self.prefix.is_none()
    }
}

/// The coherence protocol entry point a write calls **after** taking its
/// exclusive store locks and **before** persisting anything (§3.5,
/// Algorithm 1). `done` fires once every required ACK arrived.
pub trait CoherenceHook {
    /// Runs one invalidation round.
    fn invalidate(&self, sim: &mut Sim, inv: InvalidationSet, done: Box<dyn FnOnce(&mut Sim)>);
}

/// Subtree-operation settings (Appendix D).
#[derive(Clone)]
pub struct SubtreeSettings {
    /// Sub-operation batch size (default 512).
    pub batch_size: usize,
    /// Concurrent in-flight batches.
    pub parallelism: usize,
    /// Batch offloading to helper NameNodes ("serverless offloading"), if
    /// available.
    pub offloader: Option<Rc<dyn Offloader>>,
    /// Tag identifying this executor as a subtree-lock holder (λFS uses
    /// the NameNode's coordinator-session id).
    pub holder_tag: u64,
    /// Liveness oracle for subtree-lock holders: stale locks left by
    /// crashed NameNodes are reclaimed (paper §3.6). `None` = assume
    /// alive.
    pub holder_alive: Option<Rc<dyn Fn(u64) -> bool>>,
}

impl Default for SubtreeSettings {
    fn default() -> Self {
        SubtreeSettings {
            batch_size: 512,
            parallelism: 8,
            offloader: None,
            holder_tag: 0,
            holder_alive: None,
        }
    }
}

impl std::fmt::Debug for SubtreeSettings {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SubtreeSettings")
            .field("batch_size", &self.batch_size)
            .field("parallelism", &self.parallelism)
            .field("offload", &self.offloader.is_some())
            .finish()
    }
}

/// Ships a subtree batch to a helper NameNode (Appendix D's elastically
/// offloaded batched operations). Returns `false` if no helper is
/// available — the caller runs the batch locally.
pub trait Offloader {
    /// Attempts to offload; `done` fires when the helper reports
    /// completion.
    fn offload(
        &self,
        sim: &mut Sim,
        batch: crate::messages::SubtreeBatch,
        done: Box<dyn FnOnce(&mut Sim)>,
    ) -> bool;
}

/// The shared metadata-operation engine. Cloning is cheap; clones share
/// the cache and stats.
#[derive(Clone)]
pub struct OpEngine {
    /// The persistent metadata store.
    pub db: Db,
    /// Table handles.
    pub schema: MetadataSchema,
    /// The CPU this engine runs on (a NameNode instance's station).
    pub cpu: StationRef,
    /// CPU service-time model.
    pub cpu_params: CpuParams,
    /// The local metadata cache, if this service has one.
    pub cache: Option<Rc<RefCell<MetadataCache>>>,
    /// The coherence hook, if this service caches and shares metadata.
    pub coherence: Option<Rc<dyn CoherenceHook>>,
    /// Subtree-operation settings.
    pub subtree: SubtreeSettings,
}

impl std::fmt::Debug for OpEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OpEngine")
            .field("cached", &self.cache.is_some())
            .field("coherent", &self.coherence.is_some())
            .finish()
    }
}

/// Outcome of path resolution: the inode chain root→target.
type ChainResult = Result<Vec<Inode>, FsError>;

impl OpEngine {
    /// Builds an engine without cache or coherence (a stateless HopsFS
    /// NameNode).
    #[must_use]
    pub fn stateless(db: Db, schema: MetadataSchema, cpu: StationRef, cpu_params: CpuParams) -> Self {
        OpEngine {
            db,
            schema,
            cpu,
            cpu_params,
            cache: None,
            coherence: None,
            subtree: SubtreeSettings::default(),
        }
    }

    /// Executes `op`, charging NameNode CPU, store capacity, and (for
    /// writes) the coherence protocol. `allow_cache` is false when a
    /// foreign deployment serves the request under anti-thrashing
    /// (Appendix C) — it must not cache metadata it does not own.
    pub fn execute(&self, sim: &mut Sim, op: FsOp, allow_cache: bool, done: OpDone) {
        let overhead = sim.rng().sample_duration(&self.cpu_params.op_overhead);
        let this = self.clone();
        Station::submit(&self.cpu, sim, overhead, move |sim| {
            match op {
                FsOp::ReadFile(path) | FsOp::Stat(path) => {
                    this.execute_read(sim, path, allow_cache, done);
                }
                FsOp::Ls(path) => this.execute_ls(sim, path, allow_cache, done),
                FsOp::CreateFile(path) => this.execute_add(sim, path, false, allow_cache, done),
                FsOp::Mkdir(path) => this.execute_add(sim, path, true, allow_cache, done),
                FsOp::Delete(path) => this.execute_delete(sim, path, allow_cache, done),
                FsOp::Mv(src, dst) => this.execute_mv(sim, src, dst, allow_cache, done),
            }
        });
    }

    // ------------------------------------------------------------------
    // Resolution
    // ------------------------------------------------------------------

    /// Resolves `path` to its inode chain.
    ///
    /// Cache hit: zero store round trips (§3.3). Miss: one shared-locked
    /// batch read of the hinted chain (the INode-hint-cache single-batch
    /// resolution), after which the chain is cached (when permitted).
    pub fn resolve_chain<F>(&self, sim: &mut Sim, path: DfsPath, allow_cache: bool, done: F)
    where
        F: FnOnce(&mut Sim, ChainResult) + 'static,
    {
        if let Some(cache) = &self.cache {
            if let Some(chain) = cache.borrow_mut().lookup(&path) {
                // Serving from NameNode memory: a small CPU charge, no
                // store interaction.
                let hit = sim.rng().sample_duration(&self.cpu_params.read_hit);
                Station::submit(&self.cpu, sim, hit, move |sim| done(sim, Ok(chain)));
                return;
            }
        }
        // Miss: hint the ids (client INode-hint-cache model), then fetch
        // and validate the *uncached suffix* of the chain in one
        // shared-locked batch. The cached prefix (the root and hot
        // ancestor directories) is served from memory — a partial fill —
        // which keeps the store shard holding the root row from becoming
        // a hotspot.
        let Some(hinted) = self.schema.peek_chain_ids(&self.db, &path) else {
            done(sim, Err(FsError::NotFound(path.to_string())));
            return;
        };
        let prefix: Vec<Inode> = match (&self.cache, allow_cache) {
            (Some(cache), true) => {
                let prefix = cache.borrow_mut().lookup_prefix(&path);
                // The prefix is only usable if it agrees with the hints
                // (a concurrent mv may have relinked an ancestor).
                let agrees = prefix.iter().zip(hinted.iter()).all(|(c, &h)| c.id == h);
                if agrees {
                    prefix
                } else {
                    Vec::new()
                }
            }
            _ => Vec::new(),
        };
        let missing_ids: Vec<InodeId> = hinted[prefix.len()..].to_vec();
        debug_assert!(!missing_ids.is_empty(), "full hits are handled above");
        let txn = self.db.begin();
        let this = self.clone();
        self.db.read_locked(
            sim,
            txn,
            self.schema.inodes,
            missing_ids,
            LockMode::Shared,
            move |sim, rows| match rows {
                Err(e) => {
                    this.db.abort(sim, txn);
                    done(sim, Err(store_error(&e)));
                }
                Ok(rows) => {
                    let suffix: Option<Vec<Inode>> = rows.into_iter().collect();
                    let chain: Option<Vec<Inode>> = suffix.map(|suffix| {
                        let mut chain = prefix;
                        chain.extend(suffix);
                        chain
                    });
                    let valid =
                        chain.as_ref().is_some_and(|chain| chain_matches(chain, &path));
                    let this2 = this.clone();
                    this.db.commit(sim, txn, move |sim, r| {
                        if r.is_err() {
                            done(sim, Err(FsError::Retryable("commit failed".into())));
                            return;
                        }
                        match (chain, valid) {
                            (Some(chain), true) => {
                                if allow_cache {
                                    if let Some(cache) = &this2.cache {
                                        cache.borrow_mut().insert_chain(&path, &chain);
                                    }
                                }
                                done(sim, Ok(chain));
                            }
                            // The path changed between hint and lock
                            // (concurrent mv/delete): retry with fresh
                            // hints.
                            _ => done(sim, Err(FsError::Retryable("stale path hint".into()))),
                        }
                    });
                }
            },
        );
    }

    // ------------------------------------------------------------------
    // Reads
    // ------------------------------------------------------------------

    fn execute_read(&self, sim: &mut Sim, path: DfsPath, allow_cache: bool, done: OpDone) {
        self.resolve_chain(sim, path, allow_cache, move |sim, chain| match chain {
            Err(e) => done(sim, Err(e)),
            Ok(chain) => {
                let target = chain.last().expect("chain non-empty").clone();
                done(sim, Ok(OpOutcome::Meta(Box::new(target))));
            }
        });
    }

    fn execute_ls(&self, sim: &mut Sim, path: DfsPath, allow_cache: bool, done: OpDone) {
        let this = self.clone();
        self.resolve_chain(sim, path.clone(), allow_cache, move |sim, chain| {
            let chain = match chain {
                Err(e) => return done(sim, Err(e)),
                Ok(c) => c,
            };
            let target = chain.last().expect("non-empty").clone();
            if !target.is_dir() {
                // `ls` of a file lists the file itself.
                return done(sim, Ok(OpOutcome::Listing(vec![target.name.to_string()])));
            }
            if allow_cache {
                if let Some(cache) = &this.cache {
                    if let Some(names) = cache.borrow_mut().listing(target.id) {
                        let hit = sim.rng().sample_duration(&this.cpu_params.read_hit);
                        let cpu = Rc::clone(&this.cpu);
                        Station::submit(&cpu, sim, hit, move |sim| {
                            done(sim, Ok(OpOutcome::Listing(names)));
                        });
                        return;
                    }
                }
            }
            // Store path: validate the directory under a short shared
            // lock, release it, then scan read-committed. Holding the
            // lock across the scan would convoy writers behind large
            // listings; HDFS's relaxed (non-POSIX) semantics permit a
            // listing concurrent with inserts (§2: "POSIX semantics are
            // relaxed").
            let txn = this.db.begin();
            let this2 = this.clone();
            this.db.read_locked(
                sim,
                txn,
                this.schema.inodes,
                vec![target.id],
                LockMode::Shared,
                move |sim, rows| {
                    if rows.is_err() {
                        this2.db.abort(sim, txn);
                        return done(sim, Err(FsError::Retryable("ls lock timeout".into())));
                    }
                    let dir = target.id;
                    let this3 = this2.clone();
                    this2.db.commit(sim, txn, move |sim, r| {
                        if r.is_err() {
                            return done(sim, Err(FsError::Retryable("ls commit".into())));
                        }
                        let this4 = this3.clone();
                        this3.db.scan_with(
                            sim,
                            this3.schema.children,
                            (dir, NameKey::MIN)..(dir + 1, NameKey::MIN),
                            Vec::new,
                            |names: &mut Vec<String>, (_, name), _| {
                                names.push(name.as_str().to_string());
                            },
                            move |sim, names| {
                                if allow_cache {
                                    if let Some(cache) = &this4.cache {
                                        cache.borrow_mut().cache_listing(dir, names.clone());
                                    }
                                }
                                done(sim, Ok(OpOutcome::Listing(names)));
                            },
                        );
                    });
                },
            );
        });
    }

    // ------------------------------------------------------------------
    // Writes
    // ------------------------------------------------------------------

    /// `create file` / `mkdirs`.
    fn execute_add(&self, sim: &mut Sim, path: DfsPath, dir: bool, allow_cache: bool, done: OpDone) {
        let Some(parent_path) = path.parent() else {
            return done(sim, Err(FsError::AlreadyExists("/".into())));
        };
        let name = path.file_name().expect("non-root");
        let this = self.clone();
        self.check_subtree_locks(sim, path.clone(), move |sim, blocked| {
            if let Some(p) = blocked {
                return done(sim, Err(FsError::SubtreeLocked(p)));
            }
            let this2 = this.clone();
            this.resolve_chain(sim, parent_path.clone(), allow_cache, move |sim, chain| {
                let chain = match chain {
                    Err(e) => return done(sim, Err(e)),
                    Ok(c) => c,
                };
                let parent = chain.last().expect("non-empty").clone();
                if !parent.is_dir() {
                    return done(sim, Err(FsError::NotADirectory(parent_path.to_string())));
                }
                let new_id = this2.schema.next_id();
                // Exclusive write set: parent row, the (parent, name)
                // children slot, and the new inode row. The children key
                // tuple is built once and reused for the post-lock
                // revalidation probe below.
                let child_key = (parent.id, NameKey::new(name));
                let mut keys = vec![
                    this2.db.lock_key(this2.schema.inodes, &parent.id),
                    this2.db.lock_key(this2.schema.inodes, &new_id),
                    this2.db.lock_key(this2.schema.children, &child_key),
                ];
                keys.sort();
                let txn = this2.db.begin();
                let this3 = this2.clone();
                let path2 = path.clone();
                let parent_path2 = parent_path.clone();
                this2.db.lock(sim, txn, keys, LockMode::Exclusive, move |sim, res| {
                    if let Err(e) = res {
                        this3.db.abort(sim, txn);
                        return done(sim, Err(store_error(&e)));
                    }
                    // Re-validate under the exclusive locks.
                    let parent_now = this3.db.peek(this3.schema.inodes, &parent.id);
                    let slot = this3.db.peek(this3.schema.children, &child_key);
                    match (&parent_now, &slot) {
                        (None, _) => {
                            this3.db.abort(sim, txn);
                            return done(sim, Err(FsError::Retryable("parent vanished".into())));
                        }
                        (Some(p), _) if !p.is_dir() => {
                            this3.db.abort(sim, txn);
                            return done(
                                sim,
                                Err(FsError::NotADirectory(parent_path2.to_string())),
                            );
                        }
                        (_, Some(_)) => {
                            this3.db.abort(sim, txn);
                            return done(sim, Err(FsError::AlreadyExists(path2.to_string())));
                        }
                        _ => {}
                    }
                    let mut parent_now = parent_now.expect("checked");
                    // Structural change: the parent's *listing* gains a
                    // name. The parent inode row is rewritten too (mtime),
                    // but attribute-only updates deliberately do not
                    // invalidate cached ancestors: every create would
                    // otherwise invalidate its parent on every caching
                    // NameNode, collapsing the hit rates the paper's read
                    // latencies demonstrate. Cached mtimes are therefore
                    // at-most-briefly stale; namespace *structure* stays
                    // strongly consistent.
                    let inv = InvalidationSet {
                        inodes: Vec::new(),
                        listings: Vec::new(),
                        listing_updates: vec![(parent.id, name, true)],
                        prefix: None,
                        paths: vec![path2.clone(), parent_path2.clone()],
                    };
                    let this4 = this3.clone();
                    let name2 = name;
                    this3.with_coherence(sim, inv, move |sim| {
                        parent_now.mtime_nanos = sim.now().as_nanos();
                        let inode = if dir {
                            Inode::directory(new_id, parent.id, name2)
                        } else {
                            Inode::file(new_id, parent.id, name2)
                        };
                        let writes = this4
                            .db
                            .upsert(txn, this4.schema.inodes, parent.id, parent_now)
                            .and_then(|()| {
                                this4.db.upsert(txn, this4.schema.inodes, new_id, inode.clone())
                            })
                            .and_then(|()| {
                                this4.db.upsert(
                                    txn,
                                    this4.schema.children,
                                    (parent.id, NameKey::new(name2)),
                                    new_id,
                                )
                            });
                        if writes.is_err() {
                            this4.db.abort(sim, txn);
                            return done(sim, Err(FsError::Retryable("write failed".into())));
                        }
                        let this5 = this4.clone();
                        this4.db.commit(sim, txn, move |sim, r| {
                            if r.is_err() {
                                return done(sim, Err(FsError::Retryable("commit failed".into())));
                            }
                            if allow_cache {
                                if let Some(cache) = &this5.cache {
                                    let mut cache = cache.borrow_mut();
                                    let mut chain2 = chain.clone();
                                    chain2.push(inode.clone());
                                    cache.insert_chain(&path2, &chain2);
                                    cache.update_listing(parent.id, &inode.name, true);
                                }
                            }
                            done(sim, Ok(OpOutcome::Created(Box::new(inode))));
                        });
                    });
                });
            });
        });
    }

    /// `delete file/dir`. Non-empty directories take the subtree path
    /// (Appendix D), handled by the caller via [`OpEngine::classify_delete`].
    fn execute_delete(&self, sim: &mut Sim, path: DfsPath, allow_cache: bool, done: OpDone) {
        if path.is_root() {
            return done(sim, Err(FsError::Retryable("cannot delete root".into())));
        }
        let this = self.clone();
        self.check_subtree_locks(sim, path.clone(), move |sim, blocked| {
            if let Some(p) = blocked {
                return done(sim, Err(FsError::SubtreeLocked(p)));
            }
            let this2 = this.clone();
            this.resolve_chain(sim, path.clone(), allow_cache, move |sim, chain| {
                let chain = match chain {
                    Err(e) => return done(sim, Err(e)),
                    Ok(c) => c,
                };
                let target = chain.last().expect("non-empty").clone();
                if target.is_dir()
                    && this2.db.peek_count_range(
                        this2.schema.children,
                        (target.id, NameKey::MIN)..(target.id + 1, NameKey::MIN),
                    ) > 0
                {
                    // Non-empty directory: subtree operation.
                    let sub = crate::subtree::SubtreeExecutor::new(this2.clone());
                    return sub.delete(sim, path.clone(), done);
                }
                this2.delete_single(sim, path, target, allow_cache, done);
            });
        });
    }

    /// Deletes one file or empty directory under exclusive locks.
    fn delete_single(
        &self,
        sim: &mut Sim,
        path: DfsPath,
        target: Inode,
        allow_cache: bool,
        done: OpDone,
    ) {
        let parent_path = path.parent().expect("non-root");
        let name = target.name.as_str();
        let mut keys = vec![
            self.db.lock_key(self.schema.inodes, &target.parent),
            self.db.lock_key(self.schema.inodes, &target.id),
            self.db.lock_key(self.schema.children, &(target.parent, NameKey::new(name))),
        ];
        keys.sort();
        let txn = self.db.begin();
        let this = self.clone();
        self.db.lock(sim, txn, keys, LockMode::Exclusive, move |sim, res| {
            if let Err(e) = res {
                this.db.abort(sim, txn);
                return done(sim, Err(store_error(&e)));
            }
            // Re-validate: target still present, still leaf.
            let target_now = this.db.peek(this.schema.inodes, &target.id);
            let parent_now = this.db.peek(this.schema.inodes, &target.parent);
            let still_leaf = this.db.peek_count_range(
                this.schema.children,
                (target.id, NameKey::MIN)..(target.id + 1, NameKey::MIN),
            ) == 0;
            if target_now.is_none() || parent_now.is_none() || !still_leaf {
                this.db.abort(sim, txn);
                return done(sim, Err(FsError::Retryable("delete target changed".into())));
            }
            let inv = InvalidationSet {
                inodes: vec![target.id],
                listings: Vec::new(),
                listing_updates: vec![(target.parent, name, false)],
                prefix: None,
                paths: vec![path.clone(), parent_path.clone()],
            };
            let this2 = this.clone();
            this.with_coherence(sim, inv, move |sim| {
                let mut parent_now = parent_now.expect("checked");
                parent_now.mtime_nanos = sim.now().as_nanos();
                let writes = this2
                    .db
                    .remove(txn, this2.schema.children, (target.parent, NameKey::new(name)))
                    .map(|_| ())
                    .and_then(|()| this2.db.remove(txn, this2.schema.inodes, target.id).map(|_| ()))
                    .and_then(|()| {
                        this2.db.upsert(txn, this2.schema.inodes, target.parent, parent_now)
                    });
                if writes.is_err() {
                    this2.db.abort(sim, txn);
                    return done(sim, Err(FsError::Retryable("write failed".into())));
                }
                let this3 = this2.clone();
                this2.db.commit(sim, txn, move |sim, r| {
                    if r.is_err() {
                        return done(sim, Err(FsError::Retryable("commit failed".into())));
                    }
                    if allow_cache {
                        if let Some(cache) = &this3.cache {
                            let mut cache = cache.borrow_mut();
                            cache.invalidate_inode(target.id);
                            cache.update_listing(target.parent, &target.name, false);
                        }
                    }
                    done(sim, Ok(OpOutcome::Deleted(1)));
                });
            });
        });
    }

    /// `mv file/dir`. Directories take the subtree path.
    fn execute_mv(&self, sim: &mut Sim, src: DfsPath, dst: DfsPath, allow_cache: bool, done: OpDone) {
        if src.is_root() || dst.starts_with(&src) {
            return done(sim, Err(FsError::Retryable("invalid mv".into())));
        }
        let this = self.clone();
        self.check_subtree_locks(sim, src.clone(), move |sim, blocked| {
            if let Some(p) = blocked {
                return done(sim, Err(FsError::SubtreeLocked(p)));
            }
            let this2 = this.clone();
            let src2 = src.clone();
            let dst2 = dst.clone();
            this.resolve_chain(sim, src.clone(), allow_cache, move |sim, chain| {
                let chain = match chain {
                    Err(e) => return done(sim, Err(e)),
                    Ok(c) => c,
                };
                let target = chain.last().expect("non-empty").clone();
                if target.is_dir() {
                    let sub = crate::subtree::SubtreeExecutor::new(this2.clone());
                    return sub.mv(sim, src2, dst2, done);
                }
                this2.mv_single(sim, src2, dst2, target, allow_cache, done);
            });
        });
    }

    /// Moves one file under exclusive locks.
    pub(crate) fn mv_single(
        &self,
        sim: &mut Sim,
        src: DfsPath,
        dst: DfsPath,
        target: Inode,
        allow_cache: bool,
        done: OpDone,
    ) {
        let Some(dst_parent_path) = dst.parent() else {
            return done(sim, Err(FsError::AlreadyExists("/".into())));
        };
        let dst_name = dst.file_name().expect("non-root");
        let src_parent_path = src.parent().expect("non-root");
        let this = self.clone();
        self.resolve_chain(sim, dst_parent_path.clone(), allow_cache, move |sim, dchain| {
            let dchain = match dchain {
                Err(e) => return done(sim, Err(e)),
                Ok(c) => c,
            };
            let dst_parent = dchain.last().expect("non-empty").clone();
            if !dst_parent.is_dir() {
                return done(sim, Err(FsError::NotADirectory(dst_parent_path.to_string())));
            }
            let mut keys = vec![
                this.db.lock_key(this.schema.inodes, &target.parent),
                this.db.lock_key(this.schema.inodes, &target.id),
                this.db.lock_key(this.schema.children, &(target.parent, target.name.key())),
                this.db.lock_key(this.schema.children, &(dst_parent.id, NameKey::new(dst_name))),
            ];
            if dst_parent.id != target.parent {
                keys.push(this.db.lock_key(this.schema.inodes, &dst_parent.id));
            }
            keys.sort();
            keys.dedup();
            let txn = this.db.begin();
            let this2 = this.clone();
            this.db.lock(sim, txn, keys, LockMode::Exclusive, move |sim, res| {
                if let Err(e) = res {
                    this2.db.abort(sim, txn);
                    return done(sim, Err(store_error(&e)));
                }
                // Re-validate.
                let still_there = this2
                    .db
                    .peek(this2.schema.children, &(target.parent, target.name.key()))
                    == Some(target.id);
                let dst_free =
                    this2.db.peek(this2.schema.children, &(dst_parent.id, NameKey::new(dst_name))).is_none();
                let dst_parent_now = this2.db.peek(this2.schema.inodes, &dst_parent.id);
                if !still_there || dst_parent_now.as_ref().is_none_or(|p| !p.is_dir()) {
                    this2.db.abort(sim, txn);
                    return done(sim, Err(FsError::Retryable("mv source/dest changed".into())));
                }
                if !dst_free {
                    this2.db.abort(sim, txn);
                    return done(sim, Err(FsError::AlreadyExists(dst.to_string())));
                }
                let inv = InvalidationSet {
                    inodes: vec![target.id],
                    listings: Vec::new(),
                    listing_updates: vec![
                        (target.parent, lambda_namespace::interned(&target.name), false),
                        (dst_parent.id, dst_name, true),
                    ],
                    prefix: None,
                    paths: vec![
                        src.clone(),
                        dst.clone(),
                        src_parent_path.clone(),
                        dst_parent_path.clone(),
                    ],
                };
                let this3 = this2.clone();
                this2.with_coherence(sim, inv, move |sim| {
                    let mut moved = target.clone();
                    moved.parent = dst_parent.id;
                    moved.name = InodeName::new(dst_name);
                    moved.mtime_nanos = sim.now().as_nanos();
                    let writes = this3
                        .db
                        .remove(txn, this3.schema.children, (target.parent, target.name.key()))
                        .map(|_| ())
                        .and_then(|()| {
                            this3.db.upsert(
                                txn,
                                this3.schema.children,
                                (dst_parent.id, NameKey::new(dst_name)),
                                target.id,
                            )
                        })
                        .and_then(|()| {
                            this3.db.upsert(txn, this3.schema.inodes, target.id, moved.clone())
                        });
                    if writes.is_err() {
                        this3.db.abort(sim, txn);
                        return done(sim, Err(FsError::Retryable("write failed".into())));
                    }
                    let this4 = this3.clone();
                    this3.db.commit(sim, txn, move |sim, r| {
                        if r.is_err() {
                            return done(sim, Err(FsError::Retryable("commit failed".into())));
                        }
                        if allow_cache {
                            if let Some(cache) = &this4.cache {
                                let mut cache = cache.borrow_mut();
                                cache.invalidate_inode(target.id);
                                cache.update_listing(target.parent, &target.name, false);
                                cache.update_listing(dst_parent.id, dst_name, true);
                            }
                        }
                        done(sim, Ok(OpOutcome::Moved(1)));
                    });
                });
            });
        });
    }

    // ------------------------------------------------------------------
    // Shared machinery
    // ------------------------------------------------------------------

    /// Runs the coherence hook if configured, else proceeds immediately.
    pub(crate) fn with_coherence<F>(&self, sim: &mut Sim, inv: InvalidationSet, done: F)
    where
        F: FnOnce(&mut Sim) + 'static,
    {
        match &self.coherence {
            Some(hook) if !inv.is_empty() => hook.invalidate(sim, inv, Box::new(done)),
            _ => sim.schedule(SimDuration::ZERO, done),
        }
    }

    /// Rejects writes under an active overlapping subtree operation. The
    /// check is free when no subtree op is active (NameNodes keep an
    /// in-memory hint, modeled by the zero-length fast path) and one
    /// read-committed scan otherwise.
    pub(crate) fn check_subtree_locks<F>(&self, sim: &mut Sim, path: DfsPath, done: F)
    where
        F: FnOnce(&mut Sim, Option<String>) + 'static,
    {
        if self.db.table_len(self.schema.subtree_locks) == 0 {
            done(sim, None);
            return;
        }
        let this = self.clone();
        self.db.scan_with(
            sim,
            self.schema.subtree_locks,
            ..,
            || None,
            move |blocked: &mut Option<String>, _, row| {
                if blocked.is_some() {
                    return;
                }
                let Ok(locked) = row.path.parse::<DfsPath>() else { return };
                if path.starts_with(&locked) || locked.starts_with(&path) {
                    *blocked = Some(locked.to_string());
                }
            },
            move |sim, blocked| {
                let _ = &this;
                done(sim, blocked);
            },
        );
    }
}

/// Whether a fetched chain matches the path's names and parent links.
fn chain_matches(chain: &[Inode], path: &DfsPath) -> bool {
    if chain.len() != path.depth() + 1 {
        return false;
    }
    let mut prev_id = chain[0].id;
    if chain[0].id != lambda_namespace::ROOT_INODE_ID {
        return false;
    }
    for (inode, comp) in chain[1..].iter().zip(path.components()) {
        if inode.name != comp || inode.parent != prev_id {
            return false;
        }
        prev_id = inode.id;
    }
    // Every non-terminal component must be a directory.
    chain[..chain.len() - 1].iter().all(Inode::is_dir)
}

/// Maps store-level failures onto client-visible retryable errors.
fn store_error(e: &StoreError) -> FsError {
    FsError::Retryable(e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_matching_validates_names_parents_and_kinds() {
        let path: DfsPath = "/a/b".parse().unwrap();
        let good = vec![
            Inode::root(),
            Inode::directory(2, 1, "a"),
            Inode::file(3, 2, "b"),
        ];
        assert!(chain_matches(&good, &path));
        // Wrong name.
        let mut bad = good.clone();
        bad[2].name = "x".into();
        assert!(!chain_matches(&bad, &path));
        // Broken parent link.
        let mut bad = good.clone();
        bad[2].parent = 9;
        assert!(!chain_matches(&bad, &path));
        // Non-terminal file.
        let mut bad = good.clone();
        bad[1] = Inode::file(2, 1, "a");
        assert!(!chain_matches(&bad, &path));
        // Wrong length.
        assert!(!chain_matches(&good[..2], &path));
    }

    #[test]
    fn invalidation_set_emptiness() {
        assert!(InvalidationSet::default().is_empty());
        let inv = InvalidationSet { inodes: vec![1], ..Default::default() };
        assert!(!inv.is_empty());
        let inv = InvalidationSet {
            prefix: Some("/x".parse().unwrap()),
            ..Default::default()
        };
        assert!(!inv.is_empty());
    }
}
