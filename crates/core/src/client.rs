//! The λFS client library (paper §3.2, Appendices B and C).
//!
//! Clients submit metadata RPCs through a hybrid transport:
//!
//! * **TCP** whenever a connection to the owning deployment exists — one
//!   network hop, 1–2 ms end-to-end;
//! * **HTTP** through the FaaS API gateway otherwise — 8–20 ms, but
//!   FaaS-visible, so it is also the auto-scaling trigger. Each TCP RPC is
//!   probabilistically *replaced* by an HTTP RPC (≤ 1 %) so bursts keep
//!   scaling out (§3.4).
//!
//! The library also implements:
//!
//! * **connection registration**: a NameNode that serves a request
//!   "establishes a TCP connection back" — modeled by recording the
//!   serving instance against the client's TCP server;
//! * **connection sharing** (Fig. 4): a client with no connection of its
//!   own borrows one from another TCP server on its VM;
//! * **retries with exponential backoff + jitter** on timeout, avoiding
//!   the request storms of §3.2;
//! * **straggler mitigation** (Appendix B): requests outliving
//!   `threshold ×` the moving-average latency are resubmitted early;
//! * **anti-thrashing mode** (Appendix C): when latency blows past `T ×`
//!   the moving average — the thrashing signature — the client stops
//!   issuing HTTP invocations entirely, reusing any live TCP connection
//!   (even to a foreign deployment, which then serves without caching).

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;

use lambda_faas::{DeploymentId, InstanceId, Platform, Responder};
use lambda_namespace::{FsError, FsOp, Partitioner};
use lambda_sim::fault::{FaultInjector, NetDecision};
use lambda_sim::{Sim, SimDuration, SimTime};

use crate::config::LambdaFsConfig;
use crate::fsops::OpDone;
use crate::messages::{ClientId, NnRequest, NnResponse, RequestId};
use crate::metrics::RunMetrics;
use crate::namenode::NameNode;

/// Floor for the straggler-resubmission deadline (the paper observes 1–5 ms
/// TCP RPCs and resubmits at ≥ 50 ms with the default threshold of 10).
const STRAGGLER_FLOOR: SimDuration = SimDuration::from_millis(50);
/// Floor for entering anti-thrashing mode: thrash manifests as
/// cold-start-scale latencies, not single-digit-millisecond jitter.
const ANTI_THRASH_FLOOR_SECS: f64 = 0.025;
/// Base delay for exponential backoff after a timeout.
const BACKOFF_BASE: SimDuration = SimDuration::from_millis(20);
/// Fault-plane network addressing: client VMs use their VM index as the
/// endpoint id; NameNode deployment `d` is endpoint `NN_ENDPOINT_BASE + d`.
const NN_ENDPOINT_BASE: u32 = 1000;
/// Retry-budget circuit breaker (token bucket, one token per retry). The
/// capacity is deliberately generous: a healthy client retries a handful
/// of times per run and never notices the breaker; only a client cut off
/// by a network partition burns through it and starts shedding.
const RETRY_BUDGET_CAPACITY: f64 = 50.0;
/// Tokens regained per simulated second of calm.
const RETRY_BUDGET_REFILL_PER_SEC: f64 = 10.0;

#[derive(Debug, Default)]
struct TcpServer {
    /// deployment index → connected instances.
    connections: HashMap<u32, Vec<InstanceId>>,
    /// Round-robin cursor so a server spreads load over every connected
    /// instance of a deployment rather than funneling into the first.
    next: std::cell::Cell<usize>,
}

impl TcpServer {
    fn connection_to(&self, deployment: u32) -> Option<InstanceId> {
        let conns = self.connections.get(&deployment)?;
        if conns.is_empty() {
            return None;
        }
        let idx = self.next.get();
        self.next.set(idx.wrapping_add(1));
        Some(conns[idx % conns.len()])
    }

    fn any_connection(&self) -> Option<(u32, InstanceId)> {
        self.connections
            .iter()
            .filter(|(_, v)| !v.is_empty())
            .min_by_key(|(d, _)| **d)
            .map(|(d, v)| (*d, v[0]))
    }

    fn register(&mut self, deployment: u32, instance: InstanceId) {
        let conns = self.connections.entry(deployment).or_default();
        if !conns.contains(&instance) {
            conns.push(instance);
        }
    }

    fn remove(&mut self, deployment: u32, instance: InstanceId) {
        if let Some(conns) = self.connections.get_mut(&deployment) {
            conns.retain(|i| *i != instance);
        }
    }
}

#[derive(Debug)]
struct Vm {
    servers: Vec<TcpServer>,
}

#[derive(Debug)]
struct ClientState {
    id: ClientId,
    vm: usize,
    server: usize,
    next_seq: u64,
    /// Moving window of recent end-to-end latencies (seconds).
    window: VecDeque<f64>,
    anti_thrash: bool,
    /// Remaining retry-budget tokens (circuit breaker).
    retry_tokens: f64,
    /// When the token bucket was last refilled.
    last_refill: SimTime,
}

impl ClientState {
    fn avg_latency(&self) -> Option<f64> {
        if self.window.is_empty() {
            None
        } else {
            Some(self.window.iter().sum::<f64>() / self.window.len() as f64)
        }
    }

    /// Refills the retry budget for the calm since the last refill, then
    /// tries to spend one token. `false` means the budget is gone and the
    /// retry must be shed instead of sent.
    fn take_retry_token(&mut self, now: SimTime) -> bool {
        let calm = now.saturating_since(self.last_refill).as_secs_f64();
        self.last_refill = now;
        self.retry_tokens =
            (self.retry_tokens + calm * RETRY_BUDGET_REFILL_PER_SEC).min(RETRY_BUDGET_CAPACITY);
        if self.retry_tokens >= 1.0 {
            self.retry_tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

struct LibInner {
    config: Rc<LambdaFsConfig>,
    platform: Platform<NameNode>,
    deployments: Vec<DeploymentId>,
    partitioner: Rc<Partitioner>,
    vms: Vec<Vm>,
    clients: Vec<ClientState>,
    metrics: Rc<RefCell<RunMetrics>>,
    /// Network fault injector, when a fault plan is installed. `None`
    /// keeps every hop on the exact pre-fault-plane code path (and RNG
    /// stream), so fault-free runs replay bit-identically.
    injector: Option<FaultInjector>,
}

/// The client library handle; one instance serves all simulated clients.
#[derive(Clone)]
pub struct ClientLib {
    inner: Rc<RefCell<LibInner>>,
}

impl std::fmt::Debug for ClientLib {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("ClientLib")
            .field("clients", &inner.clients.len())
            .field("vms", &inner.vms.len())
            .finish()
    }
}

struct Attempt {
    op: FsOp,
    id: RequestId,
    client: usize,
    started: SimTime,
    tries: u32,
    completed: bool,
    done: Option<OpDone>,
}

impl ClientLib {
    /// Builds the library for `config.clients` clients spread over
    /// `config.client_vms` VMs.
    #[must_use]
    pub fn new(
        config: Rc<LambdaFsConfig>,
        platform: Platform<NameNode>,
        deployments: Vec<DeploymentId>,
        partitioner: Rc<Partitioner>,
        metrics: Rc<RefCell<RunMetrics>>,
    ) -> Self {
        let vm_count = config.client_vms.max(1) as usize;
        let per_server = config.clients_per_tcp_server.max(1) as usize;
        let clients: Vec<ClientState> = (0..config.clients.max(1))
            .map(|i| {
                let vm = i as usize % vm_count;
                let index_on_vm = i as usize / vm_count;
                ClientState {
                    id: ClientId(i),
                    vm,
                    server: index_on_vm / per_server,
                    next_seq: 0,
                    window: VecDeque::new(),
                    anti_thrash: false,
                    retry_tokens: RETRY_BUDGET_CAPACITY,
                    last_refill: SimTime::ZERO,
                }
            })
            .collect();
        let mut vms: Vec<Vm> = (0..vm_count).map(|_| Vm { servers: Vec::new() }).collect();
        for c in &clients {
            while vms[c.vm].servers.len() <= c.server {
                vms[c.vm].servers.push(TcpServer::default());
            }
        }
        ClientLib {
            inner: Rc::new(RefCell::new(LibInner {
                config,
                platform,
                deployments,
                partitioner,
                vms,
                clients,
            metrics,
                injector: None,
            })),
        }
    }

    /// Number of simulated clients.
    #[must_use]
    pub fn client_count(&self) -> usize {
        self.inner.borrow().clients.len()
    }

    /// Installs a network fault injector; every client↔NameNode hop
    /// consults it from now on. Without one (the default) the transport
    /// draws exactly the RNG stream it drew before the fault plane
    /// existed, so fault-free goldens stay byte-identical.
    pub fn install_fault_injector(&self, injector: FaultInjector) {
        self.inner.borrow_mut().injector = Some(injector);
    }

    /// Network-fault counters `(dropped, duplicated, delayed)` from the
    /// installed injector; zeros when none is installed.
    #[must_use]
    pub fn fault_stats(&self) -> (u64, u64, u64) {
        let inner = self.inner.borrow();
        inner
            .injector
            .as_ref()
            .map_or((0, 0, 0), |i| (i.dropped(), i.duplicated(), i.delayed()))
    }

    /// One fault-plane routing decision; `Deliver` (with zero RNG drawn)
    /// when no injector is installed.
    fn net_decide(&self, now: SimTime, src: u32, dst: u32) -> NetDecision {
        let mut inner = self.inner.borrow_mut();
        match inner.injector.as_mut() {
            Some(inj) => inj.decide(now, src, dst),
            None => NetDecision::Deliver,
        }
    }

    /// Submits `op` on behalf of client `client`, calling `done` with the
    /// final result after transparent retries.
    ///
    /// # Panics
    ///
    /// Panics if `client` is out of range.
    pub fn submit(&self, sim: &mut Sim, client: usize, op: FsOp, done: OpDone) {
        let id = {
            let mut inner = self.inner.borrow_mut();
            inner.metrics.borrow_mut().issued += 1;
            let state = &mut inner.clients[client];
            state.next_seq += 1;
            RequestId { client: state.id, seq: state.next_seq }
        };
        let attempt = Rc::new(RefCell::new(Attempt {
            op,
            id,
            client,
            started: sim.now(),
            tries: 0,
            completed: false,
            done: Some(done),
        }));
        self.try_send(sim, &attempt);
    }

    /// Routing decision + dispatch for one (re)try.
    fn try_send(&self, sim: &mut Sim, attempt: &Rc<RefCell<Attempt>>) {
        if attempt.borrow().completed {
            return;
        }
        enum Route {
            Tcp { deployment: u32, instance: InstanceId, owned: bool, shared: bool },
            Http { deployment: u32 },
        }
        let sim_now = sim.now();
        let (route, request, timeout, src) = {
            let target = {
                let inner = self.inner.borrow();
                let a = attempt.borrow();
                inner.partitioner.deployment_for_path(a.op.primary_path())
            };
            // Probabilistic HTTP replacement keeps auto-scaling alive
            // (§3.4); suspended in anti-thrashing mode (Appendix C).
            let replace = {
                let inner = self.inner.borrow();
                let anti_thrash = inner.clients[attempt.borrow().client].anti_thrash;
                let p = inner.config.http_replace_prob;
                drop(inner);
                !anti_thrash && sim.rng().gen_bool(p)
            };
            let inner = self.inner.borrow();
            let a = attempt.borrow();
            let state = &inner.clients[a.client];
            let vm = &inner.vms[state.vm];
            // 1) A connection from the client's own TCP server.
            let own = vm.servers[state.server].connection_to(target);
            // 2) Connection sharing: borrow from a sibling server (Fig. 4).
            let borrowed = own.is_none().then(|| {
                vm.servers
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != state.server)
                    .find_map(|(_, s)| s.connection_to(target))
            }).flatten();
            let conn = own.or(borrowed);
            let route = match conn {
                Some(instance) if !replace => Route::Tcp {
                    deployment: target,
                    instance,
                    owned: true,
                    shared: own.is_none(),
                },
                Some(_) /* replaced */ => {
                    inner.metrics.borrow_mut().http_replaced += 1;
                    Route::Http { deployment: target }
                }
                None if state.anti_thrash => {
                    // TCP-only mode: reuse *any* live connection rather
                    // than invoking HTTP (which would add containers).
                    match vm.servers.iter().find_map(TcpServer::any_connection) {
                        Some((dep, instance)) => Route::Tcp {
                            deployment: dep,
                            instance,
                            owned: dep == target,
                            shared: true,
                        },
                        None => {
                            let mut m = inner.metrics.borrow_mut();
                            m.http_no_connection += 1;
                            m.no_conn_timeline.add(sim_now, 1.0);
                            Route::Http { deployment: target } // bootstrap
                        }
                    }
                }
                None => {
                    let mut m = inner.metrics.borrow_mut();
                    m.http_no_connection += 1;
                    m.no_conn_timeline.add(sim_now, 1.0);
                    Route::Http { deployment: target }
                }
            };
            let via_http = matches!(route, Route::Http { .. });
            let request = NnRequest::Op {
                id: a.id,
                op: a.op.clone(),
                via_http,
                client_vm: state.vm as u32,
                owned: match &route {
                    Route::Tcp { owned, .. } => *owned,
                    Route::Http { .. } => true,
                },
            };
            // Straggler mitigation (Appendix B): resubmit early when the
            // request outlives threshold × the moving average. The moving
            // average tracks read-class latency, so early resubmission is
            // applied to read-class operations only — duplicating a slow
            // (store-bound) write wastes store capacity for no benefit.
            let is_read = !attempt.borrow().op.is_write();
            let straggler = if is_read {
                state.avg_latency().map(|avg| {
                    SimDuration::from_secs_f64(avg * inner.config.straggler_threshold)
                        .max(STRAGGLER_FLOOR)
                })
            } else {
                None
            };
            let full = inner.config.client_timeout;
            let timeout = straggler.map_or(full, |s| s.min(full));
            (route, request, timeout, state.vm as u32)
        };
        // Dispatch.
        let tries_at_send = attempt.borrow().tries;
        match route {
            Route::Tcp { deployment, instance, shared, .. } => {
                {
                    let inner = self.inner.borrow();
                    let mut m = inner.metrics.borrow_mut();
                    m.tcp_rpcs += 1;
                    if shared {
                        m.connection_shares += 1;
                    }
                }
                // One network hop to the NameNode, one back — charged
                // around the delivery. The hop is sampled *before* the
                // fault-plane decision so fault-free runs draw exactly the
                // pre-fault-plane RNG stream.
                let hop = {
                    let dist = self.inner.borrow().config.net.tcp_one_way;
                    sim.rng().sample_duration(&dist)
                };
                match self.net_decide(sim_now, src, NN_ENDPOINT_BASE + deployment) {
                    NetDecision::Drop => {} // lost; the retry timer recovers
                    NetDecision::Duplicate => {
                        self.send_tcp(sim, hop, deployment, instance, request.clone(), attempt, src);
                        self.send_tcp(sim, hop, deployment, instance, request, attempt, src);
                    }
                    NetDecision::Delay(extra) => {
                        self.send_tcp(sim, hop + extra, deployment, instance, request, attempt, src);
                    }
                    NetDecision::Deliver => {
                        self.send_tcp(sim, hop, deployment, instance, request, attempt, src);
                    }
                }
            }
            Route::Http { deployment } => {
                self.inner.borrow().metrics.borrow_mut().http_rpcs += 1;
                match self.net_decide(sim_now, src, NN_ENDPOINT_BASE + deployment) {
                    NetDecision::Drop => {} // the gateway never sees it
                    NetDecision::Duplicate => {
                        self.send_http(sim, deployment, request.clone(), attempt, src);
                        self.send_http(sim, deployment, request, attempt, src);
                    }
                    NetDecision::Delay(extra) => {
                        let this = self.clone();
                        let attempt2 = Rc::clone(attempt);
                        sim.schedule(extra, move |sim| {
                            this.send_http(sim, deployment, request, &attempt2, src);
                        });
                    }
                    NetDecision::Deliver => self.send_http(sim, deployment, request, attempt, src),
                }
            }
        }
        // Arm the (re)submission timer.
        let this = self.clone();
        let attempt2 = Rc::clone(attempt);
        let is_straggler_deadline = timeout < self.inner.borrow().config.client_timeout;
        sim.schedule(timeout, move |sim| {
            let should_retry = {
                let a = attempt2.borrow();
                !a.completed && a.tries == tries_at_send
            };
            if !should_retry {
                return;
            }
            let exhausted = {
                let inner = this.inner.borrow();
                let mut a = attempt2.borrow_mut();
                a.tries += 1;
                let mut m = inner.metrics.borrow_mut();
                m.retries += 1;
                if is_straggler_deadline {
                    m.straggler_resubmits += 1;
                }
                a.tries > inner.config.max_retries
            };
            if exhausted {
                // Every attempt died on the wire: a true timeout.
                this.complete(sim, &attempt2, Err(FsError::Timeout));
                return;
            }
            if !this.spend_retry_token(sim, &attempt2) {
                return; // breaker open: shed instead of storming
            }
            // Exponential backoff with jitter (anti-request-storm, §3.2).
            let tries = attempt2.borrow().tries;
            let factor = (1u64 << tries.min(6)) as f64 * sim.rng().gen_range(0.5..1.5);
            let delay = BACKOFF_BASE.mul_f64(factor);
            let this2 = this.clone();
            let attempt3 = Rc::clone(&attempt2);
            sim.schedule(delay, move |sim| this2.try_send(sim, &attempt3));
        });
    }

    /// Ships one TCP copy of `request`: request hop, delivery, and (fault
    /// plane permitting) the response hop back to `on_response`.
    #[allow(clippy::too_many_arguments)]
    fn send_tcp(
        &self,
        sim: &mut Sim,
        hop: SimDuration,
        deployment: u32,
        instance: InstanceId,
        request: NnRequest,
        attempt: &Rc<RefCell<Attempt>>,
        src: u32,
    ) {
        let this2 = self.clone();
        let attempt2 = Rc::clone(attempt);
        let attempt3 = Rc::clone(attempt);
        let platform = self.inner.borrow().platform.clone();
        sim.schedule(hop, move |sim| {
            let back = {
                let dist = this2.inner.borrow().config.net.tcp_one_way;
                sim.rng().sample_duration(&dist)
            };
            let this3 = this2.clone();
            let ok = platform.deliver_tcp(
                sim,
                instance,
                request,
                Responder::new(move |sim, resp: NnResponse| {
                    let decision =
                        this3.net_decide(sim.now(), NN_ENDPOINT_BASE + deployment, src);
                    if matches!(decision, NetDecision::Drop) {
                        return; // response lost; the retry timer recovers
                    }
                    let back = match decision {
                        NetDecision::Delay(extra) => back + extra,
                        _ => back,
                    };
                    if matches!(decision, NetDecision::Duplicate) {
                        let this4 = this3.clone();
                        let attempt4 = Rc::clone(&attempt3);
                        let resp2 = resp.clone();
                        sim.schedule(back, move |sim| {
                            this4.on_response(sim, &attempt4, resp2);
                        });
                    }
                    let this4 = this3.clone();
                    let attempt4 = Rc::clone(&attempt3);
                    sim.schedule(back, move |sim| {
                        this4.on_response(sim, &attempt4, resp);
                    });
                }),
            );
            if !ok {
                // Dead connection: forget it and reroute now
                // (§3.2's transparent TCP-failure handling).
                this2.remove_connection(deployment, instance);
                this2.try_send(sim, &attempt2);
            }
        });
    }

    /// Ships one HTTP copy of `request` through the FaaS gateway.
    fn send_http(
        &self,
        sim: &mut Sim,
        deployment: u32,
        request: NnRequest,
        attempt: &Rc<RefCell<Attempt>>,
        src: u32,
    ) {
        let (platform, dep_id) = {
            let inner = self.inner.borrow();
            (inner.platform.clone(), inner.deployments[deployment as usize])
        };
        let this = self.clone();
        let attempt2 = Rc::clone(attempt);
        platform.invoke_http(
            sim,
            dep_id,
            request,
            Responder::new(move |sim, resp| {
                match this.net_decide(sim.now(), NN_ENDPOINT_BASE + deployment, src) {
                    NetDecision::Drop => {} // response lost; the timer recovers
                    NetDecision::Delay(extra) => {
                        let this2 = this.clone();
                        let attempt3 = Rc::clone(&attempt2);
                        sim.schedule(extra, move |sim| this2.on_response(sim, &attempt3, resp));
                    }
                    NetDecision::Duplicate => {
                        this.on_response(sim, &attempt2, resp.clone());
                        this.on_response(sim, &attempt2, resp);
                    }
                    NetDecision::Deliver => this.on_response(sim, &attempt2, resp),
                }
            }),
        );
    }

    fn on_response(&self, sim: &mut Sim, attempt: &Rc<RefCell<Attempt>>, resp: NnResponse) {
        let NnResponse::Op { result, served_by, deployment, .. } = resp else {
            return; // offload replies never reach clients
        };
        // Register the NameNode's connection-back even for duplicate
        // responses — more routes is strictly better.
        {
            let client = attempt.borrow().client;
            let mut inner = self.inner.borrow_mut();
            let (vm, server) = {
                let st = &inner.clients[client];
                (st.vm, st.server)
            };
            inner.vms[vm].servers[server].register(deployment, served_by);
        }
        if attempt.borrow().completed {
            return; // duplicate (straggler resubmission raced the original)
        }
        match result {
            Err(FsError::Retryable(_)) | Err(FsError::SubtreeLocked(_)) => {
                let exhausted = {
                    let inner = self.inner.borrow();
                    let mut a = attempt.borrow_mut();
                    a.tries += 1;
                    inner.metrics.borrow_mut().retries += 1;
                    a.tries > inner.config.max_retries
                };
                if exhausted {
                    // The service answered every time, just never with a
                    // final result — not a timeout.
                    self.complete(sim, attempt, Err(FsError::RetriesExhausted));
                } else if !self.spend_retry_token(sim, attempt) {
                    // breaker open: shed instead of storming
                } else {
                    let tries = attempt.borrow().tries;
                    let factor = (1u64 << tries.min(6)) as f64 * sim.rng().gen_range(0.5..1.5);
                    let delay = BACKOFF_BASE.mul_f64(factor);
                    let this = self.clone();
                    let attempt2 = Rc::clone(attempt);
                    sim.schedule(delay, move |sim| this.try_send(sim, &attempt2));
                }
            }
            other => self.complete(sim, attempt, other),
        }
    }

    /// Charges the client's retry-budget circuit breaker for one retry.
    /// On an empty budget the attempt is completed with
    /// [`FsError::RetriesExhausted`] (and a load-shed is recorded) and
    /// `false` comes back — the caller must not resend.
    fn spend_retry_token(&self, sim: &mut Sim, attempt: &Rc<RefCell<Attempt>>) -> bool {
        let ok = {
            let mut inner = self.inner.borrow_mut();
            let client = attempt.borrow().client;
            let now = sim.now();
            let ok = inner.clients[client].take_retry_token(now);
            if !ok {
                inner.metrics.borrow_mut().load_sheds += 1;
            }
            ok
        };
        if !ok {
            self.complete(sim, attempt, Err(FsError::RetriesExhausted));
        }
        ok
    }

    fn complete(
        &self,
        sim: &mut Sim,
        attempt: &Rc<RefCell<Attempt>>,
        result: lambda_namespace::OpResult,
    ) {
        let done = {
            let mut a = attempt.borrow_mut();
            if a.completed {
                return;
            }
            a.completed = true;
            let latency = sim.now().saturating_since(a.started);
            let mut inner = self.inner.borrow_mut();
            let metrics = Rc::clone(&inner.metrics);
            match &result {
                Ok(_) => {
                    metrics.borrow_mut().record_success(sim.now(), a.op.class(), latency);
                }
                Err(e) => {
                    metrics.borrow_mut().record_error(e);
                }
            }
            // Moving-average window + anti-thrashing transitions
            // (Appendix C). Only read-class latencies feed the window:
            // writes are store-bound and 10-100× slower by design, so
            // mixing them in would flap anti-thrashing on every write.
            if !a.op.is_write() {
                let window_size = inner.config.latency_window;
                let thresh = inner.config.anti_thrash_threshold;
                let state = &mut inner.clients[a.client];
                let avg = state.avg_latency();
                let lat = latency.as_secs_f64();
                if let Some(avg) = avg {
                    if state.window.len() >= window_size / 2 {
                        if !state.anti_thrash
                            && lat > (thresh * avg).max(ANTI_THRASH_FLOOR_SECS)
                        {
                            state.anti_thrash = true;
                            metrics.borrow_mut().anti_thrash_entries += 1;
                        } else if state.anti_thrash && lat <= 1.2 * avg {
                            state.anti_thrash = false;
                        }
                    }
                }
                state.window.push_back(lat);
                if state.window.len() > window_size {
                    state.window.pop_front();
                }
            }
            a.done.take()
        };
        if let Some(done) = done {
            done(sim, result);
        }
    }

    /// Per-VM, per-server connection counts by deployment (diagnostics).
    #[must_use]
    pub fn connection_snapshot(&self) -> Vec<Vec<(u32, usize)>> {
        let inner = self.inner.borrow();
        inner
            .vms
            .iter()
            .flat_map(|vm| {
                vm.servers.iter().map(|s| {
                    let mut v: Vec<(u32, usize)> =
                        s.connections.iter().map(|(d, c)| (*d, c.len())).collect();
                    v.sort_unstable();
                    v
                })
            })
            .collect()
    }

    fn remove_connection(&self, deployment: u32, instance: InstanceId) {
        let mut inner = self.inner.borrow_mut();
        for vm in &mut inner.vms {
            for server in &mut vm.servers {
                server.remove(deployment, instance);
            }
        }
    }
}
