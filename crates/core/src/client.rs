//! The λFS client library (paper §3.2, Appendices B and C).
//!
//! Clients submit metadata RPCs through a hybrid transport:
//!
//! * **TCP** whenever a connection to the owning deployment exists — one
//!   network hop, 1–2 ms end-to-end;
//! * **HTTP** through the FaaS API gateway otherwise — 8–20 ms, but
//!   FaaS-visible, so it is also the auto-scaling trigger. Each TCP RPC is
//!   probabilistically *replaced* by an HTTP RPC (≤ 1 %) so bursts keep
//!   scaling out (§3.4).
//!
//! The library also implements:
//!
//! * **connection registration**: a NameNode that serves a request
//!   "establishes a TCP connection back" — modeled by recording the
//!   serving instance against the client's TCP server;
//! * **connection sharing** (Fig. 4): a client with no connection of its
//!   own borrows one from another TCP server on its VM;
//! * **retries with exponential backoff + jitter** on timeout, avoiding
//!   the request storms of §3.2;
//! * **straggler mitigation** (Appendix B): requests outliving
//!   `threshold ×` the moving-average latency are resubmitted early;
//! * **anti-thrashing mode** (Appendix C): when latency blows past `T ×`
//!   the moving average — the thrashing signature — the client stops
//!   issuing HTTP invocations entirely, reusing any live TCP connection
//!   (even to a foreign deployment, which then serves without caching).
//!
//! # Memory layout
//!
//! The library is sized for the `fig08d_million_scale` sweep: a million
//! simulated clients must fit comfortably. Per-client state is 40 bytes —
//! a client's VM and TCP-server indices are *derived* from its id (the
//! placement is a fixed formula) rather than stored, and the moving
//! latency window is a lazily boxed fixed ring instead of an eagerly
//! allocated `VecDeque`. In-flight requests live in a generation-tagged
//! slab: completion frees the record immediately (the old
//! `Rc<RefCell<Attempt>>` lived until its last retry timer fired), and the
//! timers hold a 12-byte `Copy` key instead of refcounted pointers.

use std::cell::RefCell;
use std::rc::Rc;

use lambda_faas::{DeploymentId, InstanceId, Platform, Responder};
use lambda_namespace::{FsError, FsOp, Partitioner};
use lambda_sim::fault::{FaultInjector, NetDecision};
use lambda_sim::{Sim, SimDuration, SimTime};

use crate::config::LambdaFsConfig;
use crate::fsops::OpDone;
use crate::messages::{ClientId, NnRequest, NnResponse, RequestId};
use crate::metrics::RunMetrics;
use crate::namenode::NameNode;

/// Floor for the straggler-resubmission deadline (the paper observes 1–5 ms
/// TCP RPCs and resubmits at ≥ 50 ms with the default threshold of 10).
const STRAGGLER_FLOOR: SimDuration = SimDuration::from_millis(50);
/// Floor for entering anti-thrashing mode: thrash manifests as
/// cold-start-scale latencies, not single-digit-millisecond jitter.
const ANTI_THRASH_FLOOR_SECS: f64 = 0.025;
/// Base delay for exponential backoff after a timeout.
const BACKOFF_BASE: SimDuration = SimDuration::from_millis(20);
/// Fault-plane network addressing: client VMs use their VM index as the
/// endpoint id; NameNode deployment `d` is endpoint `NN_ENDPOINT_BASE + d`.
const NN_ENDPOINT_BASE: u32 = 1000;
/// Retry-budget circuit breaker (token bucket, one token per retry). The
/// capacity is deliberately generous: a healthy client retries a handful
/// of times per run and never notices the breaker; only a client cut off
/// by a network partition burns through it and starts shedding.
const RETRY_BUDGET_CAPACITY: f64 = 50.0;
/// Tokens regained per simulated second of calm.
const RETRY_BUDGET_REFILL_PER_SEC: f64 = 10.0;

/// A client-VM TCP server's connection table (generic over the instance
/// id type only so unit tests can drive it with plain integers).
#[derive(Debug)]
struct TcpServer<I = InstanceId> {
    /// (deployment index, connected instances), sorted by deployment. A
    /// server sees a handful of deployments, so a sorted vec beats a
    /// `HashMap`'s table allocation at a million-client scale and makes
    /// "first connected deployment" a linear prefix scan.
    connections: Vec<(u32, Vec<I>)>,
    /// Round-robin cursor so a server spreads load over every connected
    /// instance of a deployment rather than funneling into the first.
    next: std::cell::Cell<usize>,
}

impl<I> Default for TcpServer<I> {
    fn default() -> Self {
        TcpServer { connections: Vec::new(), next: std::cell::Cell::new(0) }
    }
}

impl<I: Copy + Eq> TcpServer<I> {
    fn connection_to(&self, deployment: u32) -> Option<I> {
        let idx = self.connections.binary_search_by_key(&deployment, |(d, _)| *d).ok()?;
        let conns = &self.connections[idx].1;
        if conns.is_empty() {
            return None;
        }
        let cursor = self.next.get();
        self.next.set(cursor.wrapping_add(1));
        Some(conns[cursor % conns.len()])
    }

    /// The lowest-numbered deployment with a live connection (the sorted
    /// order makes "lowest" the first hit).
    fn any_connection(&self) -> Option<(u32, I)> {
        self.connections.iter().find(|(_, v)| !v.is_empty()).map(|(d, v)| (*d, v[0]))
    }

    fn register(&mut self, deployment: u32, instance: I) {
        let conns = match self.connections.binary_search_by_key(&deployment, |(d, _)| *d) {
            Ok(idx) => &mut self.connections[idx].1,
            Err(idx) => {
                self.connections.insert(idx, (deployment, Vec::new()));
                &mut self.connections[idx].1
            }
        };
        if !conns.contains(&instance) {
            conns.push(instance);
        }
    }

    fn remove(&mut self, deployment: u32, instance: I) {
        if let Ok(idx) = self.connections.binary_search_by_key(&deployment, |(d, _)| *d) {
            self.connections[idx].1.retain(|i| *i != instance);
        }
    }
}

#[derive(Debug)]
struct Vm {
    servers: Vec<TcpServer>,
}

/// Fixed-capacity ring of the most recent read latencies (seconds),
/// summing oldest-to-newest — float-for-float the order the `VecDeque` it
/// replaced summed in, so moving averages are bit-identical.
#[derive(Debug)]
struct LatencyWindow {
    buf: Box<[f64]>,
    /// Index of the oldest sample.
    head: u32,
    len: u32,
}

impl LatencyWindow {
    fn boxed(capacity: usize) -> Box<LatencyWindow> {
        Box::new(LatencyWindow { buf: vec![0.0; capacity].into_boxed_slice(), head: 0, len: 0 })
    }

    fn len(&self) -> usize {
        self.len as usize
    }

    /// Appends a sample, dropping the oldest once full — the
    /// `push_back` + `pop_front` discipline of the old deque.
    fn push(&mut self, v: f64) {
        let cap = self.buf.len();
        if (self.len as usize) < cap {
            let idx = (self.head as usize + self.len as usize) % cap;
            self.buf[idx] = v;
            self.len += 1;
        } else {
            self.buf[self.head as usize] = v;
            self.head = ((self.head as usize + 1) % cap) as u32;
        }
    }

    fn avg(&self) -> Option<f64> {
        if self.len == 0 {
            return None;
        }
        let cap = self.buf.len();
        let mut sum = 0.0;
        for k in 0..self.len as usize {
            sum += self.buf[(self.head as usize + k) % cap];
        }
        Some(sum / f64::from(self.len))
    }
}

/// Per-client resident state: 40 bytes. The client's id, VM, and TCP
/// server are all derived from its index (see [`LibInner::placement`]),
/// and the latency window is allocated only once the client completes its
/// first read.
#[derive(Debug)]
struct ClientState {
    next_seq: u64,
    /// Remaining retry-budget tokens (circuit breaker).
    retry_tokens: f64,
    /// When the token bucket was last refilled.
    last_refill: SimTime,
    /// Moving window of recent end-to-end latencies (seconds), lazily
    /// allocated at its fixed `latency_window` capacity.
    window: Option<Box<LatencyWindow>>,
    anti_thrash: bool,
}

impl ClientState {
    fn new() -> ClientState {
        ClientState {
            next_seq: 0,
            retry_tokens: RETRY_BUDGET_CAPACITY,
            last_refill: SimTime::ZERO,
            window: None,
            anti_thrash: false,
        }
    }

    fn avg_latency(&self) -> Option<f64> {
        self.window.as_ref().and_then(|w| w.avg())
    }

    fn window_len(&self) -> usize {
        self.window.as_ref().map_or(0, |w| w.len())
    }

    /// Refills the retry budget for the calm since the last refill, then
    /// tries to spend one token. `false` means the budget is gone and the
    /// retry must be shed instead of sent.
    fn take_retry_token(&mut self, now: SimTime) -> bool {
        let calm = now.saturating_since(self.last_refill).as_secs_f64();
        self.last_refill = now;
        self.retry_tokens =
            (self.retry_tokens + calm * RETRY_BUDGET_REFILL_PER_SEC).min(RETRY_BUDGET_CAPACITY);
        if self.retry_tokens >= 1.0 {
            self.retry_tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

/// One in-flight request record. Completion removes it from the slab, so
/// a record lives exactly as long as the request is outstanding — not
/// until the last retry timer referencing it fires.
struct Attempt {
    op: FsOp,
    id: RequestId,
    started: SimTime,
    tries: u32,
    done: Option<OpDone>,
}

/// `Copy` handle to a slab slot: stale once the slot's generation moves on
/// (i.e. the request completed), so timers and duplicate responses check
/// liveness with one compare. Carries the issuing client's index so
/// connection registration works even after completion — a duplicate
/// response's connection-back is still worth recording.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct AttemptKey {
    slot: u32,
    gen: u32,
    client: u32,
}

/// Generation-tagged slab of in-flight [`Attempt`]s (same idiom as the
/// FaaS platform's invocation-record slab).
#[derive(Default)]
struct AttemptSlab {
    slots: Vec<(u32, Option<Attempt>)>,
    free: Vec<u32>,
}

impl AttemptSlab {
    fn insert(&mut self, client: u32, rec: Attempt) -> AttemptKey {
        match self.free.pop() {
            Some(slot) => {
                let (gen, cell) = &mut self.slots[slot as usize];
                debug_assert!(cell.is_none());
                *cell = Some(rec);
                AttemptKey { slot, gen: *gen, client }
            }
            None => {
                let slot = u32::try_from(self.slots.len()).expect("attempt slab overflow");
                self.slots.push((0, Some(rec)));
                AttemptKey { slot, gen: 0, client }
            }
        }
    }

    fn get(&self, key: AttemptKey) -> Option<&Attempt> {
        let (gen, rec) = self.slots.get(key.slot as usize)?;
        if *gen != key.gen {
            return None;
        }
        rec.as_ref()
    }

    fn get_mut(&mut self, key: AttemptKey) -> Option<&mut Attempt> {
        let (gen, rec) = self.slots.get_mut(key.slot as usize)?;
        if *gen != key.gen {
            return None;
        }
        rec.as_mut()
    }

    /// Removes the record, bumping the slot's generation so every
    /// outstanding key to it goes stale.
    fn take(&mut self, key: AttemptKey) -> Option<Attempt> {
        let (gen, rec) = self.slots.get_mut(key.slot as usize)?;
        if *gen != key.gen {
            return None;
        }
        let rec = rec.take()?;
        *gen = gen.wrapping_add(1);
        self.free.push(key.slot);
        Some(rec)
    }

    fn live(&self) -> usize {
        self.slots.len() - self.free.len()
    }
}

struct LibInner {
    config: Rc<LambdaFsConfig>,
    platform: Platform<NameNode>,
    deployments: Vec<DeploymentId>,
    partitioner: Rc<Partitioner>,
    vms: Vec<Vm>,
    clients: Vec<ClientState>,
    /// Client-placement constants (see [`LibInner::placement`]).
    vm_count: usize,
    per_server: usize,
    attempts: AttemptSlab,
    metrics: Rc<RefCell<RunMetrics>>,
    /// Network fault injector, when a fault plan is installed. `None`
    /// keeps every hop on the exact pre-fault-plane code path (and RNG
    /// stream), so fault-free runs replay bit-identically.
    injector: Option<FaultInjector>,
}

impl LibInner {
    /// A client's `(vm, tcp server)` placement, derived from its index:
    /// clients round-robin over VMs, then fill each VM's servers
    /// `per_server` at a time. Storing these per client would be 16 dead
    /// bytes × a million clients.
    fn placement(&self, client: usize) -> (usize, usize) {
        let vm = client % self.vm_count;
        let index_on_vm = client / self.vm_count;
        (vm, index_on_vm / self.per_server)
    }
}

/// The client library handle; one instance serves all simulated clients.
#[derive(Clone)]
pub struct ClientLib {
    inner: Rc<RefCell<LibInner>>,
}

impl std::fmt::Debug for ClientLib {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("ClientLib")
            .field("clients", &inner.clients.len())
            .field("vms", &inner.vms.len())
            .field("in_flight", &inner.attempts.live())
            .finish()
    }
}

impl ClientLib {
    /// Builds the library for `config.clients` clients spread over
    /// `config.client_vms` VMs.
    #[must_use]
    pub fn new(
        config: Rc<LambdaFsConfig>,
        platform: Platform<NameNode>,
        deployments: Vec<DeploymentId>,
        partitioner: Rc<Partitioner>,
        metrics: Rc<RefCell<RunMetrics>>,
    ) -> Self {
        let vm_count = config.client_vms.max(1) as usize;
        let per_server = config.clients_per_tcp_server.max(1) as usize;
        let n = config.clients.max(1) as usize;
        let clients: Vec<ClientState> = (0..n).map(|_| ClientState::new()).collect();
        let mut vms: Vec<Vm> = (0..vm_count).map(|_| Vm { servers: Vec::new() }).collect();
        for i in 0..n {
            let vm = i % vm_count;
            let server = (i / vm_count) / per_server;
            while vms[vm].servers.len() <= server {
                vms[vm].servers.push(TcpServer::default());
            }
        }
        ClientLib {
            inner: Rc::new(RefCell::new(LibInner {
                config,
                platform,
                deployments,
                partitioner,
                vms,
                clients,
                vm_count,
                per_server,
                attempts: AttemptSlab::default(),
                metrics,
                injector: None,
            })),
        }
    }

    /// Number of simulated clients.
    #[must_use]
    pub fn client_count(&self) -> usize {
        self.inner.borrow().clients.len()
    }

    /// Installs a network fault injector; every client↔NameNode hop
    /// consults it from now on. Without one (the default) the transport
    /// draws exactly the RNG stream it drew before the fault plane
    /// existed, so fault-free goldens stay byte-identical.
    pub fn install_fault_injector(&self, injector: FaultInjector) {
        self.inner.borrow_mut().injector = Some(injector);
    }

    /// Network-fault counters `(dropped, duplicated, delayed)` from the
    /// installed injector; zeros when none is installed.
    #[must_use]
    pub fn fault_stats(&self) -> (u64, u64, u64) {
        let inner = self.inner.borrow();
        inner
            .injector
            .as_ref()
            .map_or((0, 0, 0), |i| (i.dropped(), i.duplicated(), i.delayed()))
    }

    /// One fault-plane routing decision; `Deliver` (with zero RNG drawn)
    /// when no injector is installed.
    fn net_decide(&self, now: SimTime, src: u32, dst: u32) -> NetDecision {
        let mut inner = self.inner.borrow_mut();
        match inner.injector.as_mut() {
            Some(inj) => inj.decide(now, src, dst),
            None => NetDecision::Deliver,
        }
    }

    /// Submits `op` on behalf of client `client`, calling `done` with the
    /// final result after transparent retries.
    ///
    /// # Panics
    ///
    /// Panics if `client` is out of range.
    pub fn submit(&self, sim: &mut Sim, client: usize, op: FsOp, done: OpDone) {
        let key = {
            let mut inner = self.inner.borrow_mut();
            inner.metrics.borrow_mut().issued += 1;
            let state = &mut inner.clients[client];
            state.next_seq += 1;
            let id = RequestId { client: ClientId(client as u32), seq: state.next_seq };
            let rec = Attempt { op, id, started: sim.now(), tries: 0, done: Some(done) };
            inner.attempts.insert(client as u32, rec)
        };
        self.try_send(sim, key);
    }

    /// Routing decision + dispatch for one (re)try.
    fn try_send(&self, sim: &mut Sim, key: AttemptKey) {
        enum Route {
            Tcp { deployment: u32, instance: InstanceId, owned: bool, shared: bool },
            Http { deployment: u32 },
        }
        let sim_now = sim.now();
        let client = key.client as usize;
        // Probabilistic HTTP replacement keeps auto-scaling alive (§3.4);
        // suspended in anti-thrashing mode (Appendix C).
        let replace = {
            let inner = self.inner.borrow();
            if inner.attempts.get(key).is_none() {
                return; // completed while a timer was in flight
            }
            let anti_thrash = inner.clients[client].anti_thrash;
            let p = inner.config.http_replace_prob;
            drop(inner);
            !anti_thrash && sim.rng().gen_bool(p)
        };
        let (route, request, timeout, src, tries_at_send) = {
            let inner = self.inner.borrow();
            let Some(a) = inner.attempts.get(key) else { return };
            let target = inner.partitioner.deployment_for_path(a.op.primary_path());
            let state = &inner.clients[client];
            let (vm_idx, server) = inner.placement(client);
            let vm = &inner.vms[vm_idx];
            // 1) A connection from the client's own TCP server.
            let own = vm.servers[server].connection_to(target);
            // 2) Connection sharing: borrow from a sibling server (Fig. 4).
            let borrowed = own.is_none().then(|| {
                vm.servers
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != server)
                    .find_map(|(_, s)| s.connection_to(target))
            }).flatten();
            let conn = own.or(borrowed);
            let route = match conn {
                Some(instance) if !replace => Route::Tcp {
                    deployment: target,
                    instance,
                    owned: true,
                    shared: own.is_none(),
                },
                Some(_) /* replaced */ => {
                    inner.metrics.borrow_mut().http_replaced += 1;
                    Route::Http { deployment: target }
                }
                None if state.anti_thrash => {
                    // TCP-only mode: reuse *any* live connection rather
                    // than invoking HTTP (which would add containers).
                    match vm.servers.iter().find_map(|s| s.any_connection()) {
                        Some((dep, instance)) => Route::Tcp {
                            deployment: dep,
                            instance,
                            owned: dep == target,
                            shared: true,
                        },
                        None => {
                            let mut m = inner.metrics.borrow_mut();
                            m.http_no_connection += 1;
                            m.no_conn_timeline.add(sim_now, 1.0);
                            Route::Http { deployment: target } // bootstrap
                        }
                    }
                }
                None => {
                    let mut m = inner.metrics.borrow_mut();
                    m.http_no_connection += 1;
                    m.no_conn_timeline.add(sim_now, 1.0);
                    Route::Http { deployment: target }
                }
            };
            let via_http = matches!(route, Route::Http { .. });
            let request = NnRequest::Op {
                id: a.id,
                op: a.op.clone(),
                via_http,
                client_vm: vm_idx as u32,
                owned: match &route {
                    Route::Tcp { owned, .. } => *owned,
                    Route::Http { .. } => true,
                },
            };
            // Straggler mitigation (Appendix B): resubmit early when the
            // request outlives threshold × the moving average. The moving
            // average tracks read-class latency, so early resubmission is
            // applied to read-class operations only — duplicating a slow
            // (store-bound) write wastes store capacity for no benefit.
            let is_read = !a.op.is_write();
            let straggler = if is_read {
                state.avg_latency().map(|avg| {
                    SimDuration::from_secs_f64(avg * inner.config.straggler_threshold)
                        .max(STRAGGLER_FLOOR)
                })
            } else {
                None
            };
            let full = inner.config.client_timeout;
            let timeout = straggler.map_or(full, |s| s.min(full));
            (route, request, timeout, vm_idx as u32, a.tries)
        };
        // Dispatch.
        match route {
            Route::Tcp { deployment, instance, shared, .. } => {
                {
                    let inner = self.inner.borrow();
                    let mut m = inner.metrics.borrow_mut();
                    m.tcp_rpcs += 1;
                    if shared {
                        m.connection_shares += 1;
                    }
                }
                // One network hop to the NameNode, one back — charged
                // around the delivery. The hop is sampled *before* the
                // fault-plane decision so fault-free runs draw exactly the
                // pre-fault-plane RNG stream.
                let hop = {
                    let dist = self.inner.borrow().config.net.tcp_one_way;
                    sim.rng().sample_duration(&dist)
                };
                match self.net_decide(sim_now, src, NN_ENDPOINT_BASE + deployment) {
                    NetDecision::Drop => {} // lost; the retry timer recovers
                    NetDecision::Duplicate => {
                        self.send_tcp(sim, hop, deployment, instance, request.clone(), key, src);
                        self.send_tcp(sim, hop, deployment, instance, request, key, src);
                    }
                    NetDecision::Delay(extra) => {
                        self.send_tcp(sim, hop + extra, deployment, instance, request, key, src);
                    }
                    NetDecision::Deliver => {
                        self.send_tcp(sim, hop, deployment, instance, request, key, src);
                    }
                }
            }
            Route::Http { deployment } => {
                self.inner.borrow().metrics.borrow_mut().http_rpcs += 1;
                match self.net_decide(sim_now, src, NN_ENDPOINT_BASE + deployment) {
                    NetDecision::Drop => {} // the gateway never sees it
                    NetDecision::Duplicate => {
                        self.send_http(sim, deployment, request.clone(), key, src);
                        self.send_http(sim, deployment, request, key, src);
                    }
                    NetDecision::Delay(extra) => {
                        let this = self.clone();
                        sim.schedule(extra, move |sim| {
                            this.send_http(sim, deployment, request, key, src);
                        });
                    }
                    NetDecision::Deliver => self.send_http(sim, deployment, request, key, src),
                }
            }
        }
        // Arm the (re)submission timer.
        let this = self.clone();
        let is_straggler_deadline = timeout < self.inner.borrow().config.client_timeout;
        sim.schedule(timeout, move |sim| {
            let should_retry = {
                let inner = this.inner.borrow();
                inner.attempts.get(key).is_some_and(|a| a.tries == tries_at_send)
            };
            if !should_retry {
                return;
            }
            let exhausted = {
                let mut inner = this.inner.borrow_mut();
                let max_retries = inner.config.max_retries;
                let metrics = Rc::clone(&inner.metrics);
                let a = inner.attempts.get_mut(key).expect("liveness checked above");
                a.tries += 1;
                let mut m = metrics.borrow_mut();
                m.retries += 1;
                if is_straggler_deadline {
                    m.straggler_resubmits += 1;
                }
                a.tries > max_retries
            };
            if exhausted {
                // Every attempt died on the wire: a true timeout.
                this.complete(sim, key, Err(FsError::Timeout));
                return;
            }
            if !this.spend_retry_token(sim, key) {
                return; // breaker open: shed instead of storming
            }
            // Exponential backoff with jitter (anti-request-storm, §3.2).
            let tries =
                this.inner.borrow().attempts.get(key).map_or(0, |a| a.tries);
            let factor = (1u64 << tries.min(6)) as f64 * sim.rng().gen_range(0.5..1.5);
            let delay = BACKOFF_BASE.mul_f64(factor);
            let this2 = this.clone();
            sim.schedule(delay, move |sim| this2.try_send(sim, key));
        });
    }

    /// Ships one TCP copy of `request`: request hop, delivery, and (fault
    /// plane permitting) the response hop back to `on_response`.
    #[allow(clippy::too_many_arguments)]
    fn send_tcp(
        &self,
        sim: &mut Sim,
        hop: SimDuration,
        deployment: u32,
        instance: InstanceId,
        request: NnRequest,
        key: AttemptKey,
        src: u32,
    ) {
        let this2 = self.clone();
        let platform = self.inner.borrow().platform.clone();
        sim.schedule(hop, move |sim| {
            let back = {
                let dist = this2.inner.borrow().config.net.tcp_one_way;
                sim.rng().sample_duration(&dist)
            };
            let this3 = this2.clone();
            let ok = platform.deliver_tcp(
                sim,
                instance,
                request,
                Responder::new(move |sim, resp: NnResponse| {
                    let decision =
                        this3.net_decide(sim.now(), NN_ENDPOINT_BASE + deployment, src);
                    if matches!(decision, NetDecision::Drop) {
                        return; // response lost; the retry timer recovers
                    }
                    let back = match decision {
                        NetDecision::Delay(extra) => back + extra,
                        _ => back,
                    };
                    if matches!(decision, NetDecision::Duplicate) {
                        let this4 = this3.clone();
                        let resp2 = resp.clone();
                        sim.schedule(back, move |sim| {
                            this4.on_response(sim, key, resp2);
                        });
                    }
                    let this4 = this3.clone();
                    sim.schedule(back, move |sim| {
                        this4.on_response(sim, key, resp);
                    });
                }),
            );
            if !ok {
                // Dead connection: forget it and reroute now
                // (§3.2's transparent TCP-failure handling).
                this2.remove_connection(deployment, instance);
                this2.try_send(sim, key);
            }
        });
    }

    /// Ships one HTTP copy of `request` through the FaaS gateway.
    fn send_http(
        &self,
        sim: &mut Sim,
        deployment: u32,
        request: NnRequest,
        key: AttemptKey,
        src: u32,
    ) {
        let (platform, dep_id) = {
            let inner = self.inner.borrow();
            (inner.platform.clone(), inner.deployments[deployment as usize])
        };
        let this = self.clone();
        platform.invoke_http(
            sim,
            dep_id,
            request,
            Responder::new(move |sim, resp| {
                match this.net_decide(sim.now(), NN_ENDPOINT_BASE + deployment, src) {
                    NetDecision::Drop => {} // response lost; the timer recovers
                    NetDecision::Delay(extra) => {
                        let this2 = this.clone();
                        sim.schedule(extra, move |sim| this2.on_response(sim, key, resp));
                    }
                    NetDecision::Duplicate => {
                        this.on_response(sim, key, resp.clone());
                        this.on_response(sim, key, resp);
                    }
                    NetDecision::Deliver => this.on_response(sim, key, resp),
                }
            }),
        );
    }

    fn on_response(&self, sim: &mut Sim, key: AttemptKey, resp: NnResponse) {
        let NnResponse::Op { result, served_by, deployment, .. } = resp else {
            return; // offload replies never reach clients
        };
        // Register the NameNode's connection-back even for duplicate
        // responses to a completed request — more routes is strictly
        // better (the key carries the client index precisely for this).
        {
            let mut inner = self.inner.borrow_mut();
            let (vm, server) = inner.placement(key.client as usize);
            inner.vms[vm].servers[server].register(deployment, served_by);
        }
        if self.inner.borrow().attempts.get(key).is_none() {
            return; // duplicate (straggler resubmission raced the original)
        }
        match result {
            Err(FsError::Retryable(_)) | Err(FsError::SubtreeLocked(_)) => {
                let exhausted = {
                    let mut inner = self.inner.borrow_mut();
                    let max_retries = inner.config.max_retries;
                    let metrics = Rc::clone(&inner.metrics);
                    let a = inner.attempts.get_mut(key).expect("liveness checked above");
                    a.tries += 1;
                    metrics.borrow_mut().retries += 1;
                    a.tries > max_retries
                };
                if exhausted {
                    // The service answered every time, just never with a
                    // final result — not a timeout.
                    self.complete(sim, key, Err(FsError::RetriesExhausted));
                } else if !self.spend_retry_token(sim, key) {
                    // breaker open: shed instead of storming
                } else {
                    let tries =
                        self.inner.borrow().attempts.get(key).map_or(0, |a| a.tries);
                    let factor = (1u64 << tries.min(6)) as f64 * sim.rng().gen_range(0.5..1.5);
                    let delay = BACKOFF_BASE.mul_f64(factor);
                    let this = self.clone();
                    sim.schedule(delay, move |sim| this.try_send(sim, key));
                }
            }
            other => self.complete(sim, key, other),
        }
    }

    /// Charges the client's retry-budget circuit breaker for one retry.
    /// On an empty budget the attempt is completed with
    /// [`FsError::RetriesExhausted`] (and a load-shed is recorded) and
    /// `false` comes back — the caller must not resend.
    fn spend_retry_token(&self, sim: &mut Sim, key: AttemptKey) -> bool {
        let ok = {
            let mut inner = self.inner.borrow_mut();
            let now = sim.now();
            let ok = inner.clients[key.client as usize].take_retry_token(now);
            if !ok {
                inner.metrics.borrow_mut().load_sheds += 1;
            }
            ok
        };
        if !ok {
            self.complete(sim, key, Err(FsError::RetriesExhausted));
        }
        ok
    }

    fn complete(&self, sim: &mut Sim, key: AttemptKey, result: lambda_namespace::OpResult) {
        let done = {
            let mut inner = self.inner.borrow_mut();
            // Taking the record frees the slot now and stales every
            // outstanding key (the old code's `completed` flag).
            let Some(mut a) = inner.attempts.take(key) else {
                return;
            };
            let latency = sim.now().saturating_since(a.started);
            let metrics = Rc::clone(&inner.metrics);
            match &result {
                Ok(_) => {
                    metrics.borrow_mut().record_success(sim.now(), a.op.class(), latency);
                }
                Err(e) => {
                    metrics.borrow_mut().record_error(e);
                }
            }
            // Moving-average window + anti-thrashing transitions
            // (Appendix C). Only read-class latencies feed the window:
            // writes are store-bound and 10-100× slower by design, so
            // mixing them in would flap anti-thrashing on every write.
            if !a.op.is_write() {
                let window_size = inner.config.latency_window;
                let thresh = inner.config.anti_thrash_threshold;
                let state = &mut inner.clients[key.client as usize];
                let avg = state.avg_latency();
                let lat = latency.as_secs_f64();
                if let Some(avg) = avg {
                    if state.window_len() >= window_size / 2 {
                        if !state.anti_thrash
                            && lat > (thresh * avg).max(ANTI_THRASH_FLOOR_SECS)
                        {
                            state.anti_thrash = true;
                            metrics.borrow_mut().anti_thrash_entries += 1;
                        } else if state.anti_thrash && lat <= 1.2 * avg {
                            state.anti_thrash = false;
                        }
                    }
                }
                if window_size > 0 {
                    state
                        .window
                        .get_or_insert_with(|| LatencyWindow::boxed(window_size))
                        .push(lat);
                }
            }
            a.done.take()
        };
        if let Some(done) = done {
            done(sim, result);
        }
    }

    /// Per-VM, per-server connection counts by deployment (diagnostics).
    #[must_use]
    pub fn connection_snapshot(&self) -> Vec<Vec<(u32, usize)>> {
        let inner = self.inner.borrow();
        inner
            .vms
            .iter()
            .flat_map(|vm| {
                vm.servers
                    .iter()
                    .map(|s| s.connections.iter().map(|(d, c)| (*d, c.len())).collect())
            })
            .collect()
    }

    fn remove_connection(&self, deployment: u32, instance: InstanceId) {
        let mut inner = self.inner.borrow_mut();
        for vm in &mut inner.vms {
            for server in &mut vm.servers {
                server.remove(deployment, instance);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn client_state_stays_compact() {
        // The fig08d sweep holds a million of these; placement fields and
        // an eager deque would double it.
        assert_eq!(std::mem::size_of::<ClientState>(), 40);
        assert_eq!(std::mem::size_of::<AttemptKey>(), 12);
    }

    #[test]
    fn latency_window_matches_deque_semantics() {
        use std::collections::VecDeque;
        let cap = 4;
        let mut ring = LatencyWindow::boxed(cap);
        let mut deque: VecDeque<f64> = VecDeque::new();
        for i in 0..11 {
            let v = f64::from(i) * 0.25 + 0.001;
            ring.push(v);
            deque.push_back(v);
            if deque.len() > cap {
                deque.pop_front();
            }
            assert_eq!(ring.len(), deque.len());
            let deque_avg = if deque.is_empty() {
                None
            } else {
                Some(deque.iter().sum::<f64>() / deque.len() as f64)
            };
            // Bit-identical, not approximately equal: the ring must sum in
            // the deque's oldest-first order.
            assert_eq!(ring.avg(), deque_avg);
        }
    }

    #[test]
    fn attempt_slab_recycles_slots_and_stales_keys() {
        let mut slab = AttemptSlab::default();
        let rec = || Attempt {
            op: FsOp::Stat("/x".parse().unwrap()),
            id: RequestId { client: ClientId(0), seq: 1 },
            started: SimTime::ZERO,
            tries: 0,
            done: None,
        };
        let k1 = slab.insert(0, rec());
        assert!(slab.get(k1).is_some());
        assert_eq!(slab.live(), 1);
        assert!(slab.take(k1).is_some());
        assert!(slab.get(k1).is_none(), "taken key must go stale");
        assert!(slab.take(k1).is_none(), "double-take must fail");
        let k2 = slab.insert(3, rec());
        assert_eq!(k2.slot, k1.slot, "slot must be recycled");
        assert_ne!(k2.gen, k1.gen, "generation must move on");
        assert!(slab.get(k1).is_none());
        assert!(slab.get(k2).is_some());
    }

    #[test]
    fn tcp_server_keeps_connections_sorted() {
        let mut s: TcpServer<u64> = TcpServer::default();
        s.register(7, 70);
        s.register(2, 20);
        s.register(5, 50);
        s.register(2, 21);
        s.register(2, 20); // duplicate: ignored
        let deps: Vec<u32> = s.connections.iter().map(|(d, _)| *d).collect();
        assert_eq!(deps, vec![2, 5, 7]);
        assert_eq!(s.any_connection(), Some((2, 20)));
        s.remove(2, 20);
        s.remove(2, 21);
        assert_eq!(s.any_connection(), Some((5, 50)), "empty entries are skipped");
        assert!(s.connection_to(2).is_none());
        assert!(s.connection_to(5).is_some());
    }
}
