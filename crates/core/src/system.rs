//! System assembly: one call builds the whole λFS stack inside a
//! simulation — store, Coordinator, FaaS platform, `n` NameNode
//! deployments, DataNode fleet, and the client library.

use std::cell::RefCell;
use std::rc::Rc;

use lambda_coord::Coordinator;
use lambda_faas::{DeploymentId, FunctionConfig, InstanceId, Platform, PlatformConfig};
use lambda_namespace::{DataNodeFleet, DfsPath, FsOp, MetadataSchema, Partitioner};
use lambda_sim::fault::{FaultInjector, FaultPlan};
use lambda_sim::{CostMeter, GaugeSeries, Sim};
use lambda_store::Db;

use crate::audit::AuditReport;
use crate::client::ClientLib;
use crate::config::LambdaFsConfig;
use crate::fsops::OpDone;
use crate::messages::CoherenceMsg;
use crate::metrics::RunMetrics;
use crate::namenode::{NameNode, NnServices};
use crate::service::DfsService;

/// A fully assembled λFS system.
///
/// # Examples
///
/// Building a small system and creating a file end-to-end:
///
/// ```
/// use lambda_fs::{LambdaFs, LambdaFsConfig};
/// use lambda_namespace::FsOp;
/// use lambda_sim::Sim;
/// use std::cell::Cell;
/// use std::rc::Rc;
///
/// let mut sim = Sim::new(7);
/// let config = LambdaFsConfig { deployments: 4, clients: 4, ..Default::default() };
/// let fs = LambdaFs::build(&mut sim, config);
/// fs.start(&mut sim);
///
/// let ok = Rc::new(Cell::new(false));
/// let flag = Rc::clone(&ok);
/// fs.submit(&mut sim, 0, FsOp::Mkdir("/data".parse().unwrap()), Box::new(move |_sim, r| {
///     r.unwrap();
///     flag.set(true);
/// }));
/// sim.run_for(lambda_sim::SimDuration::from_secs(30));
/// assert!(ok.get());
/// fs.stop(&mut sim);
/// ```
pub struct LambdaFs {
    cache_registry: Rc<RefCell<Vec<Rc<RefCell<lambda_namespace::MetadataCache>>>>>,
    config: Rc<LambdaFsConfig>,
    db: Db,
    schema: MetadataSchema,
    coord: Coordinator<CoherenceMsg>,
    platform: Platform<NameNode>,
    deployments: Vec<DeploymentId>,
    partitioner: Rc<Partitioner>,
    clients: ClientLib,
    fleet: DataNodeFleet,
    metrics: Rc<RefCell<RunMetrics>>,
}

impl std::fmt::Debug for LambdaFs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LambdaFs")
            .field("deployments", &self.deployments.len())
            .field("instances", &self.platform.total_instances())
            .finish()
    }
}

impl LambdaFs {
    /// Builds the system (no background activity yet; see
    /// [`LambdaFs::start`]).
    #[must_use]
    pub fn build(sim: &mut Sim, config: LambdaFsConfig) -> Self {
        let _ = &sim; // future: seed-forked sub-streams per component
        let config = Rc::new(config);
        let db = match &config.durability {
            None => Db::new(&config.store, config.lock_timeout),
            Some(d) => Db::new_durable(&config.store, config.lock_timeout, d.clone()),
        };
        let schema = MetadataSchema::install(&db);
        let coord: Coordinator<CoherenceMsg> = match config.coordinator {
            lambda_coord::CoordinatorKind::ZooKeeper => {
                Coordinator::new(&config.net, config.session_timeout)
            }
            lambda_coord::CoordinatorKind::Ndb => Coordinator::over_ndb(
                db.shards(),
                &config.store,
                config.ndb_event_epoch,
                config.session_timeout,
            ),
        };
        let partitioner = Rc::new(Partitioner::new(config.deployments));
        let platform: Platform<NameNode> = Platform::new(&PlatformConfig {
            cluster_vcpus: config.cluster_vcpus,
            faas: config.faas.clone(),
            net: config.net.clone(),
            pricing: config.pricing,
            request_ttl: config.client_timeout * 2,
        });
        let services = NnServices {
            db: db.clone(),
            schema: schema.clone(),
            coord: coord.clone(),
            partitioner: Rc::clone(&partitioner),
            config: Rc::clone(&config),
            platform: Rc::new(RefCell::new(None)),
            deployments: Rc::new(RefCell::new(Vec::new())),
            cache_registry: Rc::new(RefCell::new(Vec::new())),
        };
        let deployments: Vec<DeploymentId> = (0..config.deployments)
            .map(|d| {
                let services = services.clone();
                platform.register_deployment(
                    format!("namenode-{d}"),
                    FunctionConfig {
                        vcpus: config.nn_vcpus,
                        mem_gb: config.nn_mem_gb,
                        concurrency: config.concurrency_level,
                        max_instances: config.max_instances_per_deployment,
                        min_instances: config.min_warm_per_deployment,
                    },
                    Box::new(move |_ctx| NameNode::new(services.clone(), d)),
                )
            })
            .collect();
        // Close the late-bound loop: NameNodes can now reach the platform
        // (for subtree offloading).
        *services.platform.borrow_mut() = Some(platform.clone());
        *services.deployments.borrow_mut() = deployments.clone();

        let fleet =
            DataNodeFleet::new(&db, &schema, config.datanodes, config.datanode_report_every);
        let metrics = Rc::new(RefCell::new(RunMetrics::new()));
        let clients = ClientLib::new(
            Rc::clone(&config),
            platform.clone(),
            deployments.clone(),
            Rc::clone(&partitioner),
            Rc::clone(&metrics),
        );
        LambdaFs {
            cache_registry: Rc::clone(&services.cache_registry),
            config,
            db,
            schema,
            coord,
            platform,
            deployments,
            partitioner,
            clients,
            fleet,
            metrics,
        }
    }

    /// Starts background activity: platform maintenance (reclamation +
    /// billing) and DataNode reporting. Drive the simulation with
    /// `run_until`/`run_for` afterwards.
    pub fn start(&self, sim: &mut Sim) {
        self.platform.run_maintenance(sim);
        self.fleet.start(sim);
    }

    /// Stops background activity so the event queue can drain.
    pub fn stop(&self, _sim: &mut Sim) {
        self.platform.stop_maintenance();
        self.fleet.stop();
    }

    /// Issues one warm-up request per deployment (a `stat /` over HTTP),
    /// provisioning an initial instance in each — the evaluation's steady
    /// starting state.
    pub fn prewarm(&self, sim: &mut Sim) {
        for (i, _) in self.deployments.iter().enumerate() {
            // Submitting via a rotating client spreads the warm-up and
            // registers connections.
            let client = i % self.clients.client_count();
            self.submit(sim, client, FsOp::Stat(DfsPath::root()), Box::new(|_sim, _r| {}));
        }
    }

    /// Warms **every** deployment and registers a TCP connection on
    /// **every** client VM before the workload starts — the evaluation's
    /// warm steady state (Fig. 8(a) begins with 22 NameNodes already
    /// active, not a cold platform).
    ///
    /// `paths` should cover the namespace (e.g. the bootstrap
    /// directories): for each deployment the first owned path is stat'ed
    /// once from a client on each VM.
    pub fn prewarm_with(&self, sim: &mut Sim, paths: &[DfsPath]) {
        let vm_count = self.config.client_vms.max(1) as usize;
        // Directory paths all hash to the root's deployment (partitioning
        // keys on the parent), so probe both each path and a child of it.
        let mut candidates: Vec<DfsPath> = Vec::with_capacity(paths.len() * 2);
        for p in paths {
            candidates.push(p.clone());
            if let Ok(child) = p.join("file00000") {
                candidates.push(child);
            }
        }
        for d in 0..self.config.deployments {
            let Some(path) =
                candidates.iter().find(|p| self.partitioner.deployment_for_path(p) == d)
            else {
                continue;
            };
            for vm in 0..vm_count {
                // Client `vm` lives on VM `vm` (clients are striped over
                // VMs round-robin).
                let client = vm % self.clients.client_count();
                self.submit(sim, client, FsOp::Stat(path.clone()), Box::new(|_sim, _r| {}));
            }
        }
    }

    /// Submits `op` as client `client`; `done` receives the final result
    /// (after transparent retries).
    pub fn submit(&self, sim: &mut Sim, client: usize, op: FsOp, done: OpDone) {
        self.clients.submit(sim, client, op, done);
    }

    /// The persistent store (for bootstrap loading and verification).
    #[must_use]
    pub fn db(&self) -> &Db {
        &self.db
    }

    /// The store schema.
    #[must_use]
    pub fn schema(&self) -> &MetadataSchema {
        &self.schema
    }

    /// The FaaS platform (for fault injection and scale observation).
    #[must_use]
    pub fn platform(&self) -> &Platform<NameNode> {
        &self.platform
    }

    /// The system configuration.
    #[must_use]
    pub fn config(&self) -> &LambdaFsConfig {
        &self.config
    }

    /// The coordination service (liveness, membership, INV/ACK traffic).
    #[must_use]
    pub fn coordinator(&self) -> &Coordinator<CoherenceMsg> {
        &self.coord
    }

    /// The namespace partitioner.
    #[must_use]
    pub fn partitioner(&self) -> &Partitioner {
        &self.partitioner
    }

    /// Client-observed metrics.
    #[must_use]
    pub fn metrics(&self) -> Rc<RefCell<RunMetrics>> {
        Rc::clone(&self.metrics)
    }

    /// The client library (diagnostics).
    #[must_use]
    pub fn client_lib(&self) -> &ClientLib {
        &self.clients
    }

    /// Aggregate metadata-cache statistics over every NameNode this
    /// system ever ran (including reclaimed ones).
    #[must_use]
    pub fn cache_stats(&self) -> lambda_namespace::CacheStats {
        let mut total = lambda_namespace::CacheStats::default();
        for cache in self.cache_registry.borrow().iter() {
            let s = cache.borrow().stats();
            total.hits += s.hits;
            total.misses += s.misses;
            total.insertions += s.insertions;
            total.evictions += s.evictions;
            total.invalidations += s.invalidations;
            total.prefix_invalidations += s.prefix_invalidations;
            total.listing_hits += s.listing_hits;
            total.listing_misses += s.listing_misses;
        }
        total
    }

    /// Number of currently provisioned NameNodes.
    #[must_use]
    pub fn active_namenodes(&self) -> usize {
        self.platform.total_instances()
    }

    /// Time series of provisioned NameNode counts (Fig. 8's secondary
    /// axis).
    #[must_use]
    pub fn namenode_gauge(&self) -> GaugeSeries {
        self.platform.instance_gauge()
    }

    /// Pay-per-use cost meter (Fig. 9's λFS curve).
    #[must_use]
    pub fn pay_meter(&self) -> CostMeter {
        self.platform.pay_meter()
    }

    /// Provisioned-cost meter (Fig. 9's "λFS (Simplified)" curve).
    #[must_use]
    pub fn simplified_meter(&self) -> CostMeter {
        self.platform.prov_meter()
    }

    /// Kills one active NameNode of the given deployment index, if any —
    /// the §5.6 fault-injection primitive. Returns the victim.
    pub fn kill_one_namenode(&self, sim: &mut Sim, deployment: u32) -> Option<InstanceId> {
        let dep = *self.deployments.get(deployment as usize)?;
        let victim = self.platform.first_warm_instance(dep)?;
        self.platform.kill_instance(sim, victim);
        Some(victim)
    }

    /// Namespace well-formedness violations (empty = consistent).
    #[must_use]
    pub fn check_consistency(&self) -> Vec<String> {
        self.schema.check_consistency(&self.db)
    }

    /// Installs a deterministic fault plan: shard outages on the store,
    /// NameNode kill bursts and cold-start storms on the platform, and
    /// message-level network faults on every client↔NameNode hop.
    ///
    /// An empty plan is a strict no-op — no RNG is drawn, no event is
    /// scheduled — so a plan-free run replays bit-identically to builds
    /// without a fault plane. The same `(sim seed, plan)` pair always
    /// replays the same trace.
    pub fn install_fault_plan(&self, sim: &mut Sim, plan: &FaultPlan) {
        if plan.is_empty() {
            return;
        }
        self.db.schedule_outages(sim, &plan.shards);
        for burst in plan.kills.iter().copied() {
            let platform = self.platform.clone();
            let deployments = self.deployments.clone();
            sim.schedule_at(burst.at, move |sim| {
                let dep = burst.deployment.and_then(|d| deployments.get(d as usize).copied());
                if burst.deployment.is_some() && dep.is_none() {
                    return; // burst aimed at a deployment that doesn't exist
                }
                platform.kill_warm_burst(sim, dep, burst.count);
            });
        }
        for storm in &plan.storms {
            self.platform.cold_start_storm(sim, storm.window.from, storm.window.until, storm.factor);
        }
        if !plan.net.is_empty() || !plan.partitions.is_empty() {
            // The injector gets a forked seed so its draws never perturb
            // the main event stream mid-run.
            let seed: u64 = sim.rng().gen_range(0..u64::MAX);
            self.clients.install_fault_injector(FaultInjector::new(plan, seed));
        }
    }

    /// Audits the quiesced system: namespace↔store consistency, no leaked
    /// locks or transactions, no orphaned invocations, and op-count
    /// conservation (issued = completed + failed + timeouts +
    /// retries-exhausted). Run it after the event queue has drained; a
    /// mid-flight audit will report in-progress work as violations.
    #[must_use]
    pub fn audit(&self) -> AuditReport {
        let mut report = AuditReport::default();
        report.checks += 1;
        report.violations.extend(
            self.schema.check_consistency(&self.db).into_iter().map(|v| format!("namespace: {v}")),
        );
        let txns = self.db.active_txn_count();
        report.check(txns == 0, || format!("store: {txns} transactions never terminated"));
        let locked = self.db.locked_rows();
        report.check(locked == 0, || format!("store: {locked} row locks leaked"));
        let seqs = self.db.pending_seq_count();
        report.check(seqs == 0, || format!("store: {seqs} lock-wait sequences still parked"));
        let dv = self.db.durability_violations();
        report.check(dv.is_empty(), || {
            format!("durability: {} post-crash divergence(s): {}", dv.len(), dv.join("; "))
        });
        let invocations = self.platform.pending_invocations();
        report
            .check(invocations == 0, || format!("faas: {invocations} invocation records leaked"));
        let queued = self.platform.queued_requests();
        report.check(queued == 0, || format!("faas: {queued} requests still queued"));
        let m = self.metrics.borrow();
        let (issued, accounted) = (m.issued, m.accounted());
        report.check(accounted == issued, || {
            format!(
                "conservation: issued {issued} != accounted {accounted} \
                 (completed {} + failed {} + timeouts {} + retries-exhausted {})",
                m.completed, m.failed, m.timeouts, m.retries_exhausted
            )
        });
        report
    }
}

impl DfsService for LambdaFs {
    fn service_name(&self) -> &'static str {
        "lambda-fs"
    }

    fn submit_op(&self, sim: &mut Sim, client: usize, op: FsOp, done: OpDone) {
        self.submit(sim, client, op, done);
    }

    fn client_count(&self) -> usize {
        self.clients.client_count()
    }

    fn run_metrics(&self) -> Rc<RefCell<RunMetrics>> {
        self.metrics()
    }

    fn bootstrap_tree(&self, root: &DfsPath, dirs: usize, files_per_dir: usize) -> Vec<DfsPath> {
        self.schema.bootstrap_tree(&self.db, root, dirs, files_per_dir)
    }

    fn bootstrap_file(&self, path: &DfsPath) {
        self.schema.bootstrap_create(&self.db, path);
    }
}

