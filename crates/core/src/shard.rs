//! Sharded multi-cell λFS runs on the parallel DES.
//!
//! A *sharded cluster* partitions a λFS experiment into `D` independent
//! cells — each cell a complete [`LambdaFs`] system (clients, NameNode
//! deployments, store, coordinator) inside its own simulation domain — and
//! advances all cells concurrently with
//! [`run_sharded`](lambda_sim::shard::run_sharded)'s conservative
//! synchronization. Cells interact the only way federated metadata
//! services do in practice: over the network, here as timestamped
//! [`ClusterMsg`] request/reply traffic riding the cross-shard links with
//! at least one network-latency floor of delay
//! ([`NetParams::conservative_lookahead`](lambda_sim::params::NetParams::conservative_lookahead)).
//!
//! The headline property is inherited from the sharded engine: the report
//! of [`run_sharded_cluster`] — every per-domain trace, merged metric, and
//! audit — is bit-identical for every thread count at a fixed
//! `(seed, config)`, which `tests/shard_differential.rs` pins, chaos plans
//! included.

use std::cell::RefCell;
use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};
use std::rc::Rc;

use lambda_namespace::{interned, DfsPath, FsOp};
use lambda_sim::shard::{run_sharded, ShardConfig, ShardWorld};
use lambda_sim::{
    FaultPlan, LatencyRecorder, ShardLink, Sim, SimDuration, SimTime,
};

use crate::config::LambdaFsConfig;
use crate::metrics::RunMetrics;
use crate::service::DfsService;
use crate::system::LambdaFs;

/// Cross-cell traffic: a read-class operation forwarded to another cell,
/// and its answer.
#[derive(Debug, Clone)]
pub enum ClusterMsg {
    /// Execute `op` in the receiving cell on behalf of `origin`.
    Request {
        /// Origin-local request id, echoed in the reply.
        req: u64,
        /// Domain index of the requesting cell.
        origin: u32,
        /// The forwarded operation (read-class: targets bootstrap files,
        /// which every cell's namespace contains).
        op: FsOp,
    },
    /// The outcome of a forwarded operation.
    Reply {
        /// The id from the matching [`ClusterMsg::Request`].
        req: u64,
        /// Whether the serving cell completed the operation successfully.
        ok: bool,
    },
}

/// Configuration for one sharded-cluster run.
#[derive(Debug, Clone)]
pub struct ShardedClusterConfig {
    /// Number of cells (simulation domains). Fixed by the model: changing
    /// it changes the experiment, unlike `threads`.
    pub domains: usize,
    /// Worker threads; any value produces the same report.
    pub threads: usize,
    /// Per-cell λFS system configuration.
    pub fs: LambdaFsConfig,
    /// Pre-created directories per cell.
    pub dirs: usize,
    /// Pre-created files per directory.
    pub files_per_dir: usize,
    /// Operations each cell generates.
    pub ops_per_domain: u64,
    /// Per-cell offered load in ops/sec.
    pub rate: f64,
    /// Fraction of read-class operations forwarded to a random other cell
    /// as [`ClusterMsg::Request`] traffic.
    pub remote_fraction: f64,
    /// Grace period after generation stops, for backlog and replies to
    /// drain.
    pub drain: SimDuration,
    /// Deterministic fault plan installed identically in every cell
    /// (windows are in absolute virtual time, so they fire at the same
    /// instants regardless of thread count).
    pub fault_plan: FaultPlan,
}

impl Default for ShardedClusterConfig {
    fn default() -> Self {
        ShardedClusterConfig {
            domains: 4,
            threads: 1,
            fs: LambdaFsConfig {
                deployments: 2,
                clients: 8,
                client_vms: 2,
                cluster_vcpus: 64,
                datanodes: 2,
                ..LambdaFsConfig::default()
            },
            dirs: 16,
            files_per_dir: 4,
            ops_per_domain: 240,
            rate: 120.0,
            remote_fraction: 0.15,
            drain: SimDuration::from_secs(3),
            fault_plan: FaultPlan::default(),
        }
    }
}

impl ShardedClusterConfig {
    /// The run's virtual-time horizon: generation time plus drain grace.
    #[must_use]
    pub fn horizon(&self) -> SimTime {
        let generating = SimDuration::from_secs_f64(self.ops_per_domain as f64 / self.rate);
        SimTime::ZERO + generating + self.drain
    }
}

/// One cell's observable outcome.
#[derive(Debug, Clone)]
pub struct DomainReport {
    /// The cell's domain index.
    pub domain: usize,
    /// The cell's client-observed metrics.
    pub metrics: RunMetrics,
    /// Requests this cell forwarded to other cells.
    pub remote_issued: u64,
    /// Forwarded requests answered successfully.
    pub remote_completed: u64,
    /// Forwarded requests answered with an error.
    pub remote_failed: u64,
    /// Requests this cell served on behalf of other cells.
    pub remote_served: u64,
    /// End-to-end latency of forwarded requests (two link crossings plus
    /// the serving cell's processing).
    pub remote_latency: LatencyRecorder,
    /// Invariant violations from the cell's post-run audit (empty = clean).
    pub audit_violations: Vec<String>,
    /// Invariant checks the audit performed.
    pub audit_checks: u32,
    /// The cell clock at the end of the run.
    pub final_now: SimTime,
}

/// The whole cluster's outcome: per-cell reports plus the merged view.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// Per-cell reports, in domain order.
    pub domains: Vec<DomainReport>,
    /// Run-wide metrics, reduced with [`RunMetrics::merge`].
    pub merged: RunMetrics,
}

impl ClusterReport {
    /// `true` when every cell's audit passed.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.domains.iter().all(|d| d.audit_violations.is_empty())
    }

    /// Total cross-cell requests issued across the cluster.
    #[must_use]
    pub fn remote_issued(&self) -> u64 {
        self.domains.iter().map(|d| d.remote_issued).sum()
    }

    /// Total cross-cell requests that received a reply (ok or failed).
    #[must_use]
    pub fn remote_answered(&self) -> u64 {
        self.domains.iter().map(|d| d.remote_completed + d.remote_failed).sum()
    }

    /// A stable digest of everything observable in the report. Two runs
    /// with equal fingerprints saw identical per-cell metrics, remote
    /// traffic, and audits — the equality the differential tests assert
    /// across thread counts.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut h = DefaultHasher::new();
        for d in &self.domains {
            d.domain.hash(&mut h);
            hash_metrics(&mut h, &d.metrics);
            (d.remote_issued, d.remote_completed, d.remote_failed, d.remote_served).hash(&mut h);
            hash_latency(&mut h, &d.remote_latency);
            d.audit_violations.hash(&mut h);
            d.audit_checks.hash(&mut h);
            d.final_now.as_nanos().hash(&mut h);
        }
        hash_metrics(&mut h, &self.merged);
        h.finish()
    }
}

fn hash_latency(h: &mut DefaultHasher, rec: &LatencyRecorder) {
    rec.count().hash(h);
    rec.mean().as_nanos().hash(h);
    rec.percentile(0.5).as_nanos().hash(h);
    rec.percentile(0.99).as_nanos().hash(h);
    rec.max().as_nanos().hash(h);
}

fn hash_metrics(h: &mut DefaultHasher, m: &RunMetrics) {
    for (class, rec) in &m.latency {
        format!("{class:?}").hash(h);
        hash_latency(h, rec);
    }
    for bucket in m.throughput.buckets() {
        bucket.to_bits().hash(h);
    }
    (m.issued, m.completed, m.failed, m.timeouts, m.retries_exhausted).hash(h);
    (m.retries, m.load_sheds, m.http_rpcs, m.tcp_rpcs).hash(h);
    (m.straggler_resubmits, m.anti_thrash_entries, m.connection_shares).hash(h);
    (m.http_replaced, m.http_no_connection).hash(h);
}

/// Cross-cell bookkeeping on the origin side.
struct RemoteState {
    pending: BTreeMap<u64, SimTime>,
    next_req: u64,
    issued: u64,
    completed: u64,
    failed: u64,
    served: u64,
    latency: LatencyRecorder,
    next_name: u64,
}

/// Everything a cell's scheduled closures share.
struct CellShared {
    fs: LambdaFs,
    link: ShardLink<ClusterMsg>,
    remote_fraction: f64,
    /// Read/stat/ls targets (bootstrap tree, identical in every cell).
    dirs: Vec<DfsPath>,
    files: Vec<DfsPath>,
    state: RefCell<RemoteState>,
}

impl CellShared {
    /// Draws the next operation from the cell engine's RNG. Read-class
    /// draws may additionally be flagged for forwarding.
    fn draw_op(self: &Rc<Self>, sim: &mut Sim) -> (FsOp, bool) {
        let class = sim.rng().gen_unit();
        if class < 0.70 {
            let file = self.pick_file(sim);
            (FsOp::ReadFile(file), self.draw_remote(sim))
        } else if class < 0.85 {
            let file = self.pick_file(sim);
            (FsOp::Stat(file), self.draw_remote(sim))
        } else if class < 0.95 {
            let idx = sim.rng().pick_index(self.dirs.len());
            (FsOp::Ls(self.dirs[idx].clone()), self.draw_remote(sim))
        } else {
            let idx = sim.rng().pick_index(self.dirs.len());
            let n = {
                let mut state = self.state.borrow_mut();
                state.next_name += 1;
                state.next_name
            };
            let name = interned(&format!("s{}w{n:06}", self.link.domain()));
            (FsOp::CreateFile(self.dirs[idx].join(name).expect("valid name")), false)
        }
    }

    fn pick_file(&self, sim: &mut Sim) -> DfsPath {
        let idx = sim.rng().pick_index(self.files.len());
        self.files[idx].clone()
    }

    fn draw_remote(&self, sim: &mut Sim) -> bool {
        self.link.domains() > 1 && sim.rng().gen_bool(self.remote_fraction)
    }

    /// Issues generated operation `idx`: either into the local cell, or
    /// forwarded to a random other cell over the shard link.
    fn issue(self: &Rc<Self>, sim: &mut Sim, idx: u64) {
        let (op, remote) = self.draw_op(sim);
        if remote {
            let others = self.link.domains() - 1;
            let pick = sim.rng().pick_index(others);
            let dest = (self.link.domain() + 1 + pick) % self.link.domains();
            let req = {
                let mut state = self.state.borrow_mut();
                let req = state.next_req;
                state.next_req += 1;
                state.issued += 1;
                state.pending.insert(req, sim.now());
                req
            };
            let origin = u32::try_from(self.link.domain()).expect("domain fits u32");
            self.link.send(
                sim,
                dest,
                self.link.lookahead(),
                ClusterMsg::Request { req, origin, op },
            );
        } else {
            let client = usize::try_from(idx).unwrap_or(0) % self.fs.client_count();
            self.fs.submit(sim, client, op, Box::new(|_sim, _result| {}));
        }
    }
}

/// One cell as a shard-world.
struct CellWorld {
    shared: Rc<CellShared>,
}

impl ShardWorld for CellWorld {
    type Msg = ClusterMsg;
    type Out = DomainReport;

    fn deliver(&mut self, sim: &mut Sim, msg: ClusterMsg) {
        match msg {
            ClusterMsg::Request { req, origin, op } => {
                self.shared.state.borrow_mut().served += 1;
                // Serve on a client rotated by request id; answer over the
                // link once the local system completes the op.
                let client =
                    usize::try_from(req).unwrap_or(0) % self.shared.fs.client_count();
                let link = self.shared.link.clone();
                self.shared.fs.submit(
                    sim,
                    client,
                    op,
                    Box::new(move |sim, result| {
                        let reply = ClusterMsg::Reply { req, ok: result.is_ok() };
                        link.send(sim, origin as usize, link.lookahead(), reply);
                    }),
                );
            }
            ClusterMsg::Reply { req, ok } => {
                let mut state = self.shared.state.borrow_mut();
                let Some(sent_at) = state.pending.remove(&req) else {
                    return;
                };
                if ok {
                    state.completed += 1;
                } else {
                    state.failed += 1;
                }
                let rtt = sim.now().saturating_since(sent_at);
                state.latency.record(rtt);
            }
        }
    }

    fn finish(&mut self, sim: &mut Sim) -> DomainReport {
        self.shared.fs.stop(sim);
        let audit = self.shared.fs.audit();
        let metrics = self.shared.fs.metrics().borrow().clone();
        let state = self.shared.state.borrow();
        DomainReport {
            domain: self.shared.link.domain(),
            metrics,
            remote_issued: state.issued,
            remote_completed: state.completed,
            remote_failed: state.failed,
            remote_served: state.served,
            remote_latency: state.latency.clone(),
            audit_violations: audit.violations,
            audit_checks: audit.checks,
            final_now: sim.now(),
        }
    }
}

/// Builds one cell inside its domain engine and schedules its offered
/// load.
fn build_cell(sim: &mut Sim, link: ShardLink<ClusterMsg>, cfg: &ShardedClusterConfig) -> CellWorld {
    let fs = LambdaFs::build(sim, cfg.fs.clone());
    let dirs = fs.bootstrap_tree(&DfsPath::root(), cfg.dirs, cfg.files_per_dir);
    let file_names: Vec<&'static str> =
        (0..cfg.files_per_dir).map(|f| interned(&format!("file{f:05}"))).collect();
    let files: Vec<DfsPath> = dirs
        .iter()
        .flat_map(|d| file_names.iter().map(move |name| d.join(name).expect("valid")))
        .collect();
    fs.start(sim);
    fs.prewarm(sim);
    fs.install_fault_plan(sim, &cfg.fault_plan);

    let shared = Rc::new(CellShared {
        fs,
        link,
        remote_fraction: cfg.remote_fraction,
        dirs,
        files,
        state: RefCell::new(RemoteState {
            pending: BTreeMap::new(),
            next_req: 0,
            issued: 0,
            completed: 0,
            failed: 0,
            served: 0,
            latency: LatencyRecorder::new(),
            next_name: 0,
        }),
    });

    // Open-loop offered load: one op every 1/rate seconds, the op itself
    // drawn from the cell's RNG at issue time.
    let gap = SimDuration::from_secs_f64(1.0 / cfg.rate);
    for i in 0..cfg.ops_per_domain {
        let shared = Rc::clone(&shared);
        sim.schedule_at(SimTime::ZERO + gap * i, move |sim| {
            shared.issue(sim, i);
        });
    }
    CellWorld { shared }
}

/// Runs a sharded cluster to its horizon and reduces the per-cell reports.
///
/// # Panics
///
/// Panics if the configuration has zero domains/threads, or if the
/// per-cell network model has no positive latency floor (no conservative
/// lookahead can be derived).
#[must_use]
pub fn run_sharded_cluster(cfg: &ShardedClusterConfig, seed: u64) -> ClusterReport {
    let lookahead = cfg.fs.net.conservative_lookahead();
    assert!(
        !lookahead.is_zero(),
        "network model has no latency floor: cannot derive a conservative lookahead"
    );
    let shard_cfg = ShardConfig {
        threads: cfg.threads,
        lookahead,
        until: Some(cfg.horizon()),
    };
    let builders: Vec<_> = (0..cfg.domains)
        .map(|_| move |sim: &mut Sim, link: ShardLink<ClusterMsg>| build_cell(sim, link, cfg))
        .collect();
    let domains = run_sharded::<CellWorld, _>(&shard_cfg, seed, builders);
    let mut merged = RunMetrics::new();
    for d in &domains {
        merged.merge(&d.metrics);
    }
    ClusterReport { domains, merged }
}
