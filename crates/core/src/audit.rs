//! Post-run invariant auditing — the fault plane's ground truth.
//!
//! Fault injection is only trustworthy if every run, however chaotic, can
//! be *proven* to have left the system in a coherent state. After a run
//! quiesces, [`crate::LambdaFs::audit`] checks:
//!
//! * **namespace ↔ store consistency** — the persisted trie is
//!   well-formed (no orphan rows, parents exist, counts agree);
//! * **no leaked transactions** — every store transaction committed or
//!   aborted, no row lock is still held, no lock-wait sequence is parked;
//! * **no orphaned invocations** — the FaaS control plane holds no live
//!   invocation records or queued requests once clients are done;
//! * **op-count conservation** — every operation a client issued reached
//!   exactly one terminal state (completed, failed, timed out, or
//!   retries-exhausted), the billing analogue of "no request is lost or
//!   double-charged".

use std::fmt;

/// Outcome of one post-run invariant audit.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AuditReport {
    /// Human-readable descriptions of violated invariants; empty means
    /// the run was coherent.
    pub violations: Vec<String>,
    /// Number of invariant checks performed (violated or not).
    pub checks: u32,
}

impl AuditReport {
    /// `true` when every invariant held.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Records one check; `violation` is materialized only on failure.
    pub(crate) fn check(&mut self, ok: bool, violation: impl FnOnce() -> String) {
        self.checks += 1;
        if !ok {
            self.violations.push(violation());
        }
    }
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            write!(f, "audit clean ({} checks)", self.checks)
        } else {
            writeln!(f, "audit FAILED ({}/{} checks):", self.violations.len(), self.checks)?;
            for v in &self.violations {
                writeln!(f, "  - {v}")?;
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_until_a_check_fails() {
        let mut r = AuditReport::default();
        r.check(true, || unreachable!("passing checks never format"));
        assert!(r.is_clean());
        assert_eq!(r.checks, 1);
        r.check(false, || "leaked lock".to_string());
        assert!(!r.is_clean());
        assert_eq!(r.checks, 2);
        assert!(r.to_string().contains("leaked lock"));
    }
}
