//! # lambda-fs
//!
//! λFS: a scalable, elastic distributed-file-system metadata service built
//! on serverless functions — the core library of this
//! [ASPLOS '23 paper](https://doi.org/10.1145/3623278.3624765)
//! reproduction.
//!
//! λFS replaces the serverful NameNode tier of a HopsFS-style DFS with a
//! fleet of serverless functions whose collective memory forms an
//! **elastic metadata cache** in front of a persistent, strongly
//! consistent metadata store:
//!
//! * the namespace is partitioned over `n` function **deployments** by
//!   consistently hashing each file's parent directory (§3.1/§3.3);
//! * clients use a **hybrid TCP/HTTP RPC** scheme: fast direct TCP once
//!   connections exist, HTTP through the FaaS gateway otherwise — and a
//!   ≤ 1 % random HTTP replacement keeps the platform's **auto-scaling**
//!   responsive (§3.2/§3.4);
//! * a **serverless coherence protocol** (INV/ACK through a Coordinator,
//!   under the store's exclusive row locks) keeps the arbitrary, dynamic
//!   set of cached replicas strongly consistent (§3.5);
//! * **subtree operations** run the three-phase HopsFS protocol with a
//!   single prefix invalidation and serverless batch offloading
//!   (Appendix D); **straggler mitigation** and **anti-thrashing** guard
//!   the tail (Appendices B–C).
//!
//! Build a whole system with [`LambdaFs::build`]; drive it with
//! [`LambdaFs::submit`] or through the [`DfsService`] trait the workload
//! generators use.
//!
//! ```
//! use lambda_fs::{LambdaFs, LambdaFsConfig};
//! use lambda_namespace::FsOp;
//! use lambda_sim::{Sim, SimDuration};
//!
//! let mut sim = Sim::new(1);
//! let fs = LambdaFs::build(&mut sim, LambdaFsConfig {
//!     deployments: 4,
//!     clients: 8,
//!     ..Default::default()
//! });
//! fs.start(&mut sim);
//! fs.submit(&mut sim, 0, FsOp::Mkdir("/w".parse().unwrap()), Box::new(|_s, r| {
//!     assert!(r.is_ok());
//! }));
//! sim.run_for(SimDuration::from_secs(30));
//! fs.stop(&mut sim);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod audit;
pub mod autoscale;
mod client;
mod coherence;
mod config;
mod fsops;
mod messages;
mod metrics;
mod namenode;
mod service;
pub mod shard;
mod subtree;
mod system;

pub use audit::AuditReport;
pub use client::ClientLib;
pub use coherence::{deployment_group, CoordCoherence};
pub use config::LambdaFsConfig;
pub use fsops::{CoherenceHook, InvalidationSet, OpDone, OpEngine, Offloader, SubtreeSettings};
pub use messages::{
    ClientId, CoherenceMsg, NnRequest, NnResponse, RequestId, SubtreeBatch, SubtreeBatchKind,
    SubtreeItem,
};
pub use metrics::RunMetrics;
pub use namenode::{NameNode, NnServices};
pub use service::DfsService;
pub use shard::{
    run_sharded_cluster, ClusterMsg, ClusterReport, DomainReport, ShardedClusterConfig,
};
pub use subtree::SubtreeExecutor;
pub use system::LambdaFs;
