//! System-level differential tests for the sharded λFS cluster: the full
//! multi-cell experiment — complete λFS systems per domain, cross-cell
//! request/reply traffic, chaos plans, post-run audits — must produce a
//! bit-identical [`ClusterReport`] fingerprint for every thread count, and
//! replay bit-identically at a fixed `(seed, config, N)`.

use lambda_fs::{run_sharded_cluster, ClusterReport, ShardedClusterConfig};
use lambda_sim::fault::{ColdStartStorm, FaultPlan, FaultWindow, KillBurst, ShardOutage};
use lambda_sim::{SimDuration, SimTime};

fn at(secs: f64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs_f64(secs)
}

/// A small but non-trivial cluster: 4 cells, ~1 s of generation plus
/// drain, with a healthy slice of cross-cell traffic.
fn small_config(threads: usize) -> ShardedClusterConfig {
    ShardedClusterConfig {
        threads,
        domains: 4,
        dirs: 12,
        files_per_dir: 3,
        ops_per_domain: 120,
        rate: 120.0,
        remote_fraction: 0.25,
        drain: SimDuration::from_secs(2),
        ..ShardedClusterConfig::default()
    }
}

fn sanity(report: &ClusterReport) {
    assert_eq!(report.domains.len(), 4);
    assert!(report.is_clean(), "audit violations: {:?}", report.domains[0].audit_violations);
    assert!(report.merged.completed > 0, "no operation completed");
    // Cross-cell traffic actually flowed and fully drained.
    assert!(report.remote_issued() > 0, "no remote requests issued");
    assert_eq!(report.remote_answered(), report.remote_issued(), "remote requests leaked");
    for d in &report.domains {
        assert_eq!(d.final_now, small_config(1).horizon(), "domain {} clock", d.domain);
    }
}

#[test]
fn cluster_fingerprint_is_thread_count_invariant() {
    let serial = run_sharded_cluster(&small_config(1), 0xC1D5);
    sanity(&serial);
    let baseline = serial.fingerprint();
    for threads in [2, 4] {
        let parallel = run_sharded_cluster(&small_config(threads), 0xC1D5);
        sanity(&parallel);
        assert_eq!(parallel.fingerprint(), baseline, "N={threads} diverged from N=1");
        // Fingerprint equality should reflect metric equality; spot-check
        // the big aggregates directly for a readable failure mode.
        assert_eq!(parallel.merged.completed, serial.merged.completed, "N={threads}");
        assert_eq!(parallel.merged.issued, serial.merged.issued, "N={threads}");
        assert_eq!(parallel.merged.mean_latency(), serial.merged.mean_latency(), "N={threads}");
        assert_eq!(
            parallel.merged.throughput.buckets(),
            serial.merged.throughput.buckets(),
            "N={threads}"
        );
    }
}

#[test]
fn same_seed_and_thread_count_replays_bit_identically() {
    let a = run_sharded_cluster(&small_config(2), 7);
    let b = run_sharded_cluster(&small_config(2), 7);
    assert_eq!(a.fingerprint(), b.fingerprint());
}

#[test]
fn different_seeds_actually_diverge() {
    let a = run_sharded_cluster(&small_config(1), 1);
    let b = run_sharded_cluster(&small_config(1), 2);
    assert_ne!(a.fingerprint(), b.fingerprint(), "seed does not reach the cells");
}

/// The chaos case: a fault plan whose windows cross several sync barriers
/// (store outage, NameNode kills, a cold-start storm) must fire at the
/// same virtual instants in every cell regardless of thread count — same
/// fingerprints, same audits, and visibly degraded service in every run.
#[test]
fn fault_windows_fire_identically_across_shard_counts() {
    let mut cfg = small_config(1);
    cfg.fault_plan = FaultPlan {
        shards: vec![ShardOutage {
            shard: 1,
            at: at(0.3),
            takeover: SimDuration::from_secs_f64(0.4),
        }],
        kills: vec![KillBurst { at: at(0.5), deployment: None, count: 1 }],
        storms: vec![ColdStartStorm {
            window: FaultWindow::new(at(0.2), at(0.9)),
            factor: 4.0,
        }],
        ..FaultPlan::default()
    };
    let serial = run_sharded_cluster(&cfg, 0xFA17);
    assert!(serial.is_clean(), "chaos run must still audit clean");
    assert!(serial.merged.completed > 0);
    // The storm/outage must actually have been exercised: a clean run and
    // a faulted run at the same seed cannot look the same.
    let clean = run_sharded_cluster(&small_config(1), 0xFA17);
    assert_ne!(serial.fingerprint(), clean.fingerprint(), "fault plan was a no-op");
    for threads in [2, 4] {
        cfg.threads = threads;
        let parallel = run_sharded_cluster(&cfg, 0xFA17);
        assert!(parallel.is_clean());
        assert_eq!(parallel.fingerprint(), serial.fingerprint(), "N={threads} chaos diverged");
    }
}
