//! End-to-end tests of the assembled λFS system: every operation type,
//! cache behavior, coherence, subtree operations, fault tolerance, and
//! determinism.

use std::cell::RefCell;
use std::rc::Rc;

use lambda_fs::{DfsService, LambdaFs, LambdaFsConfig};
use lambda_namespace::{DfsPath, FsError, FsOp, OpOutcome, OpResult};
use lambda_sim::{Sim, SimDuration, SimTime};

fn p(s: &str) -> DfsPath {
    s.parse().unwrap()
}

fn small_config() -> LambdaFsConfig {
    LambdaFsConfig { deployments: 4, clients: 8, client_vms: 2, datanodes: 2, ..Default::default() }
}

/// Submits `op` and runs the simulation until its callback fires,
/// returning the result. Panics if the op does not complete within 60 s of
/// simulated time.
fn run_op(sim: &mut Sim, fs: &LambdaFs, client: usize, op: FsOp) -> OpResult {
    let slot: Rc<RefCell<Option<OpResult>>> = Rc::new(RefCell::new(None));
    let out = Rc::clone(&slot);
    fs.submit(sim, client, op, Box::new(move |_sim, r| *out.borrow_mut() = Some(r)));
    let deadline = sim.now() + SimDuration::from_secs(60);
    while slot.borrow().is_none() && sim.now() < deadline {
        if !sim.step() {
            break;
        }
    }
    let result = slot.borrow_mut().take();
    result.expect("operation did not complete within 60s of simulated time")
}

#[test]
fn full_lifecycle_of_every_operation_type() {
    let mut sim = Sim::new(42);
    let fs = LambdaFs::build(&mut sim, small_config());
    fs.start(&mut sim);

    assert!(matches!(
        run_op(&mut sim, &fs, 0, FsOp::Mkdir(p("/projects"))).unwrap(),
        OpOutcome::Created(_)
    ));
    assert!(matches!(
        run_op(&mut sim, &fs, 1, FsOp::Mkdir(p("/projects/lambda"))).unwrap(),
        OpOutcome::Created(_)
    ));
    let created = run_op(&mut sim, &fs, 2, FsOp::CreateFile(p("/projects/lambda/paper.pdf")))
        .unwrap();
    let OpOutcome::Created(inode) = created else { panic!("expected Created") };
    assert!(!inode.is_dir());

    // Read and stat see the file.
    let meta = run_op(&mut sim, &fs, 3, FsOp::ReadFile(p("/projects/lambda/paper.pdf"))).unwrap();
    let OpOutcome::Meta(read_inode) = meta else { panic!("expected Meta") };
    assert_eq!(read_inode.id, inode.id);
    assert!(matches!(
        run_op(&mut sim, &fs, 4, FsOp::Stat(p("/projects/lambda"))).unwrap(),
        OpOutcome::Meta(_)
    ));

    // Ls lists the child.
    let OpOutcome::Listing(names) =
        run_op(&mut sim, &fs, 5, FsOp::Ls(p("/projects/lambda"))).unwrap()
    else {
        panic!("expected Listing")
    };
    assert_eq!(names, vec!["paper.pdf"]);

    // Mv relocates it; the old path disappears.
    assert!(matches!(
        run_op(
            &mut sim,
            &fs,
            6,
            FsOp::Mv(p("/projects/lambda/paper.pdf"), p("/projects/final.pdf"))
        )
        .unwrap(),
        OpOutcome::Moved(1)
    ));
    assert!(matches!(
        run_op(&mut sim, &fs, 7, FsOp::ReadFile(p("/projects/lambda/paper.pdf"))),
        Err(FsError::NotFound(_))
    ));
    assert!(matches!(
        run_op(&mut sim, &fs, 0, FsOp::ReadFile(p("/projects/final.pdf"))).unwrap(),
        OpOutcome::Meta(_)
    ));

    // Delete the file, then the (now empty) directory.
    assert!(matches!(
        run_op(&mut sim, &fs, 1, FsOp::Delete(p("/projects/final.pdf"))).unwrap(),
        OpOutcome::Deleted(1)
    ));
    assert!(matches!(
        run_op(&mut sim, &fs, 2, FsOp::Delete(p("/projects/lambda"))).unwrap(),
        OpOutcome::Deleted(1)
    ));

    assert!(fs.check_consistency().is_empty());
    fs.stop(&mut sim);
}

#[test]
fn duplicate_create_fails_and_missing_paths_are_not_found() {
    let mut sim = Sim::new(7);
    let fs = LambdaFs::build(&mut sim, small_config());
    fs.start(&mut sim);

    run_op(&mut sim, &fs, 0, FsOp::Mkdir(p("/d"))).unwrap();
    run_op(&mut sim, &fs, 0, FsOp::CreateFile(p("/d/f"))).unwrap();
    assert!(matches!(
        run_op(&mut sim, &fs, 1, FsOp::CreateFile(p("/d/f"))),
        Err(FsError::AlreadyExists(_))
    ));
    assert!(matches!(
        run_op(&mut sim, &fs, 2, FsOp::Stat(p("/nope/x"))),
        Err(FsError::NotFound(_))
    ));
    // Creating under a file is rejected.
    assert!(matches!(
        run_op(&mut sim, &fs, 3, FsOp::CreateFile(p("/d/f/sub"))),
        Err(FsError::NotADirectory(_)) | Err(FsError::NotFound(_))
    ));
    fs.stop(&mut sim);
}

#[test]
fn repeated_reads_hit_the_serverless_cache() {
    let mut sim = Sim::new(11);
    let fs = LambdaFs::build(&mut sim, small_config());
    fs.start(&mut sim);
    run_op(&mut sim, &fs, 0, FsOp::Mkdir(p("/hot"))).unwrap();
    run_op(&mut sim, &fs, 0, FsOp::CreateFile(p("/hot/file"))).unwrap();

    let store_reads_before = fs.db().stats().locked_reads;
    // Same client so the request routes to the same deployment over TCP.
    for _ in 0..50 {
        run_op(&mut sim, &fs, 0, FsOp::ReadFile(p("/hot/file"))).unwrap();
    }
    let store_reads_after = fs.db().stats().locked_reads;
    // The first read may fill the cache; the rest must be hits. Retries
    // and stragglers can add a couple of fills, but 50 reads must not
    // cause anywhere near 50 store round trips.
    assert!(
        store_reads_after - store_reads_before <= 5,
        "cache ineffective: {} store reads for 50 repeats",
        store_reads_after - store_reads_before
    );
    fs.stop(&mut sim);
}

#[test]
fn writes_invalidate_caches_everywhere_no_stale_reads() {
    let mut sim = Sim::new(13);
    let fs = LambdaFs::build(&mut sim, small_config());
    fs.start(&mut sim);
    run_op(&mut sim, &fs, 0, FsOp::Mkdir(p("/shared"))).unwrap();
    run_op(&mut sim, &fs, 0, FsOp::CreateFile(p("/shared/doc"))).unwrap();

    // Warm caches on several NameNodes via different clients.
    for c in 0..8 {
        run_op(&mut sim, &fs, c, FsOp::Ls(p("/shared"))).unwrap();
    }
    // Now delete the file. Afterward *every* client must see it gone.
    run_op(&mut sim, &fs, 0, FsOp::Delete(p("/shared/doc"))).unwrap();
    for c in 0..8 {
        assert!(
            matches!(
                run_op(&mut sim, &fs, c, FsOp::ReadFile(p("/shared/doc"))),
                Err(FsError::NotFound(_))
            ),
            "client {c} read a deleted file (stale cache)"
        );
        let OpOutcome::Listing(names) = run_op(&mut sim, &fs, c, FsOp::Ls(p("/shared"))).unwrap()
        else {
            panic!("expected Listing")
        };
        assert!(names.is_empty(), "client {c} saw stale listing {names:?}");
    }
    fs.stop(&mut sim);
}

#[test]
fn subtree_delete_removes_everything_atomically() {
    let mut sim = Sim::new(17);
    let fs = LambdaFs::build(&mut sim, small_config());
    fs.start(&mut sim);

    // Build /tree with nested children through the API.
    run_op(&mut sim, &fs, 0, FsOp::Mkdir(p("/tree"))).unwrap();
    run_op(&mut sim, &fs, 0, FsOp::Mkdir(p("/tree/sub"))).unwrap();
    for i in 0..10 {
        run_op(&mut sim, &fs, 0, FsOp::CreateFile(p(&format!("/tree/f{i}")))).unwrap();
        run_op(&mut sim, &fs, 0, FsOp::CreateFile(p(&format!("/tree/sub/g{i}")))).unwrap();
    }
    let inodes_before = fs.schema().inode_count(fs.db());

    let OpOutcome::Deleted(n) = run_op(&mut sim, &fs, 1, FsOp::Delete(p("/tree"))).unwrap()
    else {
        panic!("expected Deleted")
    };
    // /tree + /tree/sub + 20 files.
    assert_eq!(n, 22);
    assert_eq!(fs.schema().inode_count(fs.db()), inodes_before - 22);
    assert!(matches!(
        run_op(&mut sim, &fs, 2, FsOp::Stat(p("/tree"))),
        Err(FsError::NotFound(_))
    ));
    assert!(matches!(
        run_op(&mut sim, &fs, 3, FsOp::Stat(p("/tree/sub/g3"))),
        Err(FsError::NotFound(_))
    ));
    assert!(fs.check_consistency().is_empty());
    // The subtree lock was released.
    assert_eq!(fs.db().table_len(fs.schema().subtree_locks), 0);
    fs.stop(&mut sim);
}

#[test]
fn subtree_mv_relocates_the_whole_tree() {
    let mut sim = Sim::new(19);
    let fs = LambdaFs::build(&mut sim, small_config());
    fs.start(&mut sim);

    run_op(&mut sim, &fs, 0, FsOp::Mkdir(p("/src"))).unwrap();
    run_op(&mut sim, &fs, 0, FsOp::Mkdir(p("/src/inner"))).unwrap();
    run_op(&mut sim, &fs, 0, FsOp::CreateFile(p("/src/inner/deep"))).unwrap();
    run_op(&mut sim, &fs, 0, FsOp::Mkdir(p("/dst"))).unwrap();

    let OpOutcome::Moved(n) =
        run_op(&mut sim, &fs, 1, FsOp::Mv(p("/src"), p("/dst/moved"))).unwrap()
    else {
        panic!("expected Moved")
    };
    assert_eq!(n, 3); // inner + deep + the root itself
    assert!(matches!(
        run_op(&mut sim, &fs, 2, FsOp::ReadFile(p("/dst/moved/inner/deep"))).unwrap(),
        OpOutcome::Meta(_)
    ));
    assert!(matches!(
        run_op(&mut sim, &fs, 3, FsOp::Stat(p("/src"))),
        Err(FsError::NotFound(_))
    ));
    assert!(fs.check_consistency().is_empty());
    assert_eq!(fs.db().table_len(fs.schema().subtree_locks), 0);
    fs.stop(&mut sim);
}

#[test]
fn namenode_kill_is_survivable_and_leaves_namespace_consistent() {
    let mut sim = Sim::new(23);
    let fs = LambdaFs::build(&mut sim, small_config());
    fs.start(&mut sim);
    run_op(&mut sim, &fs, 0, FsOp::Mkdir(p("/ft"))).unwrap();

    // Issue a stream of creates while killing NameNodes round-robin.
    let completed = Rc::new(RefCell::new(0u32));
    for i in 0..40 {
        let c = Rc::clone(&completed);
        fs.submit(
            &mut sim,
            i % 8,
            FsOp::CreateFile(p(&format!("/ft/file{i}"))),
            Box::new(move |_s, r| {
                if r.is_ok() {
                    *c.borrow_mut() += 1;
                }
            }),
        );
        if i % 10 == 5 {
            // Kill a NameNode from whichever deployment currently has one
            // warm (round-robin preference).
            for k in 0..4u32 {
                if fs.kill_one_namenode(&mut sim, (i as u32 + k) % 4).is_some() {
                    break;
                }
            }
        }
        sim.run_for(SimDuration::from_millis(100));
    }
    sim.run_until(SimTime::from_secs(120));
    assert!(fs.platform().stats().kills >= 1, "no kill actually happened");
    // Clients retried through crashes: the vast majority completed.
    assert!(
        *completed.borrow() >= 35,
        "only {}/40 creates completed despite retries",
        completed.borrow()
    );
    assert!(fs.check_consistency().is_empty());
    fs.stop(&mut sim);
}

#[test]
fn hybrid_rpc_uses_tcp_after_bootstrap() {
    let mut sim = Sim::new(29);
    let fs = LambdaFs::build(&mut sim, small_config());
    fs.start(&mut sim);
    run_op(&mut sim, &fs, 0, FsOp::Mkdir(p("/rpc"))).unwrap();
    for i in 0..200 {
        run_op(&mut sim, &fs, 0, FsOp::Stat(p("/rpc"))).unwrap();
        let _ = i;
    }
    let m = fs.metrics();
    let m = m.borrow();
    assert!(m.tcp_rpcs > 0, "no TCP RPCs at all");
    // With a 1% replacement probability, TCP must dominate heavily once
    // connections exist.
    assert!(
        m.tcp_rpcs > 10 * m.http_rpcs.max(1) || m.http_rpcs < 20,
        "tcp {} vs http {}",
        m.tcp_rpcs,
        m.http_rpcs
    );
    fs.stop(&mut sim);
}

#[test]
fn identical_seeds_produce_identical_runs() {
    fn run_once(seed: u64) -> (u64, u64, f64, usize) {
        let mut sim = Sim::new(seed);
        let fs = LambdaFs::build(&mut sim, small_config());
        fs.start(&mut sim);
        run_op(&mut sim, &fs, 0, FsOp::Mkdir(p("/det"))).unwrap();
        for i in 0..30 {
            run_op(&mut sim, &fs, i % 8, FsOp::CreateFile(p(&format!("/det/f{i}")))).unwrap();
            run_op(&mut sim, &fs, (i + 1) % 8, FsOp::ReadFile(p(&format!("/det/f{i}")))).unwrap();
        }
        fs.stop(&mut sim);
        let m = fs.metrics();
        let m = m.borrow();
        (m.completed, m.tcp_rpcs, m.mean_latency().as_secs_f64(), fs.active_namenodes())
    }
    assert_eq!(run_once(777), run_once(777));
}

#[test]
fn coherence_disabled_is_faster_but_unsafe_knob_exists() {
    // The ablation knob: with coherence off, writes skip INV/ACK rounds.
    let mut config = small_config();
    config.coherence_enabled = false;
    let mut sim = Sim::new(31);
    let fs = LambdaFs::build(&mut sim, config);
    fs.start(&mut sim);
    run_op(&mut sim, &fs, 0, FsOp::Mkdir(p("/unsafe"))).unwrap();
    run_op(&mut sim, &fs, 0, FsOp::CreateFile(p("/unsafe/f"))).unwrap();
    let (invs, _acks) = {
        // No INV traffic at all.
        fs.coordinator().message_stats()
    };
    assert_eq!(invs, 0, "coherence traffic despite ablation");
    fs.stop(&mut sim);
}

#[test]
fn crashed_subtree_lock_holder_is_swept_by_the_leader() {
    let mut config = small_config();
    config.client_timeout = SimDuration::from_secs(600);
    config.straggler_threshold = f64::INFINITY;
    let mut sim = Sim::new(37);
    let fs = LambdaFs::build(&mut sim, config);
    fs.start(&mut sim);
    // A directory big enough that its recursive delete spans real time.
    run_op(&mut sim, &fs, 0, FsOp::Mkdir(p("/victim"))).unwrap();
    for i in 0..400 {
        fs.bootstrap_file(&p(&format!("/victim/f{i:04}")));
    }
    // Ensure every deployment is warm so the op starts promptly.
    let dirs: Vec<lambda_namespace::DfsPath> = vec![p("/victim")];
    fs.prewarm_with(&mut sim, &dirs);
    sim.run_for(SimDuration::from_secs(8));

    let done: Rc<RefCell<Option<OpResult>>> = Rc::new(RefCell::new(None));
    let out = Rc::clone(&done);
    fs.submit(&mut sim, 0, FsOp::Delete(p("/victim")), Box::new(move |_s, r| {
        *out.borrow_mut() = Some(r);
    }));
    // Let the subtree operation take its persistent lock flag, then crash
    // every NameNode so the holder definitely dies mid-protocol.
    sim.run_for(SimDuration::from_millis(80));
    assert_eq!(fs.db().table_len(fs.schema().subtree_locks), 1, "flag not yet taken");
    for d in 0..fs.config().deployments {
        while fs.kill_one_namenode(&mut sim, d).is_some() {}
    }
    // New NameNodes spin up (the retried delete re-warms the platform), a
    // leader emerges, and the stale flag is swept, letting the retried
    // operation finish.
    sim.run_for(SimDuration::from_secs(120));
    assert_eq!(
        fs.db().table_len(fs.schema().subtree_locks),
        0,
        "stale subtree lock was never swept"
    );
    assert!(fs.check_consistency().is_empty());
    fs.stop(&mut sim);
}

#[test]
fn connection_sharing_borrows_sibling_servers_connections() {
    // One client per TCP server: with 8 clients on 2 VMs there are 4
    // servers per VM, so most lookups must borrow a sibling server's
    // connection (Fig. 4's sharing path).
    let mut config = small_config();
    config.clients_per_tcp_server = 1;
    let mut sim = Sim::new(61);
    let fs = LambdaFs::build(&mut sim, config);
    fs.start(&mut sim);
    run_op(&mut sim, &fs, 0, FsOp::Mkdir(p("/shared-conn"))).unwrap();
    run_op(&mut sim, &fs, 0, FsOp::CreateFile(p("/shared-conn/f"))).unwrap();
    // Client 0 established the connection; clients 2, 4, 6 live on the
    // same VM (clients are striped over VMs) but own different servers.
    for c in [2usize, 4, 6] {
        run_op(&mut sim, &fs, c, FsOp::ReadFile(p("/shared-conn/f"))).unwrap();
    }
    let m = fs.metrics();
    let m = m.borrow();
    assert!(
        m.connection_shares > 0,
        "no request ever borrowed a sibling server's connection"
    );
    fs.stop(&mut sim);
}

#[test]
fn result_cache_deduplicates_resubmitted_creates() {
    // Force a straggler resubmission of a create by making the straggler
    // threshold trivially aggressive... creates are exempt from straggler
    // mitigation, so instead exercise the dedup path directly: a timeout
    // retry of a create that actually completed must not yield
    // AlreadyExists. We simulate that by a very short client timeout.
    let mut config = small_config();
    config.client_timeout = SimDuration::from_millis(8); // below write latency
    config.max_retries = 10;
    let mut sim = Sim::new(67);
    let fs = LambdaFs::build(&mut sim, config);
    fs.start(&mut sim);
    run_op(&mut sim, &fs, 0, FsOp::Mkdir(p("/dedup"))).unwrap();
    // The create takes ~10-15ms (store writes + coherence); the client
    // resubmits at 8ms. The first execution completes and the resubmitted
    // copy must be answered from the NameNode's result cache — the final
    // outcome is success, not AlreadyExists.
    let r = run_op(&mut sim, &fs, 0, FsOp::CreateFile(p("/dedup/once")));
    assert!(
        matches!(r, Ok(OpOutcome::Created(_))),
        "resubmitted create was re-executed instead of deduplicated: {r:?}"
    );
    let m = fs.metrics();
    assert!(m.borrow().retries > 0, "the timeout retry never fired");
    fs.stop(&mut sim);
}

#[test]
fn the_ndb_coordinator_runs_the_full_system() {
    // §3.5: the Coordinator is pluggable; run the same lifecycle over the
    // MySQL-Cluster-NDB event-API transport, where coherence traffic
    // shares the metadata store's shards.
    let mut sim = Sim::new(43);
    let fs = LambdaFs::build(
        &mut sim,
        LambdaFsConfig {
            coordinator: lambda_coord::CoordinatorKind::Ndb,
            ..small_config()
        },
    );
    fs.start(&mut sim);

    assert!(matches!(
        run_op(&mut sim, &fs, 0, FsOp::Mkdir(p("/ndb"))).unwrap(),
        OpOutcome::Created(_)
    ));
    for i in 0..8 {
        let path = p(&format!("/ndb/file{i}"));
        assert!(matches!(
            run_op(&mut sim, &fs, i, FsOp::CreateFile(path)).unwrap(),
            OpOutcome::Created(_)
        ));
    }
    // A write from one client invalidates a sibling's cached read — the
    // INV/ACK round now travels through the store's event API.
    assert!(matches!(
        run_op(&mut sim, &fs, 1, FsOp::ReadFile(p("/ndb/file0"))).unwrap(),
        OpOutcome::Meta(_)
    ));
    assert!(matches!(
        run_op(&mut sim, &fs, 2, FsOp::Delete(p("/ndb/file0"))).unwrap(),
        OpOutcome::Deleted(_)
    ));
    assert!(matches!(
        run_op(&mut sim, &fs, 1, FsOp::ReadFile(p("/ndb/file0"))).unwrap_err(),
        FsError::NotFound(_)
    ));
    // Coordination traffic demonstrably hits the store: NameNode
    // session heartbeats are lease-row writes under this transport.
    let deadline = sim.now() + SimDuration::from_secs(10);
    sim.run_until(deadline);
    assert!(
        fs.coordinator().store_ops() > 0,
        "NDB transport never charged the store"
    );
    assert!(fs.check_consistency().is_empty());
    fs.stop(&mut sim);
}
