//! Coherence stress: randomized concurrent writers and readers across
//! many clients and NameNodes. The invariant under test is the paper's
//! §3.5 guarantee — once a write completes, **no** subsequent read
//! observes the pre-write state, regardless of which NameNode's cache
//! serves it.

use lambda_fs::{DfsService, LambdaFs, LambdaFsConfig};
use lambda_namespace::{DfsPath, FsError, FsOp, OpOutcome};
use lambda_sim::{Sim, SimDuration, SimRng};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// The oracle: which files exist according to *completed* operations.
#[derive(Default)]
struct Oracle {
    /// path → (exists, version at last completed write)
    files: HashMap<String, bool>,
    violations: Vec<String>,
}

fn stress(seed: u64) {
    let mut sim = Sim::new(seed);
    let fs = Rc::new(LambdaFs::build(
        &mut sim,
        LambdaFsConfig { deployments: 6, clients: 12, client_vms: 3, ..Default::default() },
    ));
    fs.start(&mut sim);
    let dirs = fs.bootstrap_tree(&"/".parse().unwrap(), 6, 2);
    fs.prewarm_with(&mut sim, &dirs);
    sim.run_for(SimDuration::from_secs(8));

    let oracle = Rc::new(RefCell::new(Oracle::default()));
    let mut gen = SimRng::new(seed ^ 0xDEAD);
    let candidates: Vec<DfsPath> = dirs
        .iter()
        .flat_map(|d| (0..3).map(move |i| d.join(&format!("s{i}")).unwrap()))
        .collect();

    // Interleave creates, deletes, and reads of a small set of paths, with
    // *serialized* phases per path: we only assert about reads issued
    // strictly after a write completed, which the per-tick serialization
    // below guarantees.
    for round in 0..60 {
        let path = candidates[gen.pick_index(candidates.len())].clone();
        let client = gen.pick_index(12);
        let exists_now = {
            let o = oracle.borrow();
            o.files.get(path.as_str()).copied().unwrap_or(false)
        };
        let op = if exists_now { FsOp::Delete(path.clone()) } else { FsOp::CreateFile(path.clone()) };
        // Run the write to completion.
        let done = Rc::new(RefCell::new(false));
        {
            let done = Rc::clone(&done);
            let oracle = Rc::clone(&oracle);
            let path = path.clone();
            let creating = !exists_now;
            fs.submit(&mut sim, client, op, Box::new(move |_s, r| {
                match r {
                    Ok(_) => {
                        oracle.borrow_mut().files.insert(path.as_str().to_string(), creating);
                    }
                    Err(FsError::AlreadyExists(_)) => {
                        oracle.borrow_mut().files.insert(path.as_str().to_string(), true);
                    }
                    Err(FsError::NotFound(_)) => {
                        oracle.borrow_mut().files.insert(path.as_str().to_string(), false);
                    }
                    Err(_) => {}
                }
                *done.borrow_mut() = true;
            }));
        }
        while !*done.borrow() {
            assert!(sim.step(), "drained mid-write");
        }
        // Now read the path from EVERY client: all must agree with the
        // oracle (no stale cache anywhere).
        for c in 0..12 {
            let expect = oracle.borrow().files.get(path.as_str()).copied().unwrap_or(false);
            let done = Rc::new(RefCell::new(false));
            let d2 = Rc::clone(&done);
            let oracle2 = Rc::clone(&oracle);
            let path2 = path.clone();
            fs.submit(&mut sim, c, FsOp::ReadFile(path.clone()), Box::new(move |_s, r| {
                let saw = match r {
                    Ok(OpOutcome::Meta(_)) => true,
                    Err(FsError::NotFound(_)) => false,
                    Ok(other) => panic!("unexpected outcome {other:?}"),
                    Err(e) => panic!("read failed hard: {e}"),
                };
                if saw != expect {
                    oracle2.borrow_mut().violations.push(format!(
                        "round {round}: client {c} saw exists={saw}, expected {expect} for {path2}"
                    ));
                }
                *d2.borrow_mut() = true;
            }));
            while !*done.borrow() {
                assert!(sim.step(), "drained mid-read");
            }
        }
    }
    fs.stop(&mut sim);
    let o = oracle.borrow();
    assert!(o.violations.is_empty(), "stale reads: {:?}", o.violations);
    assert!(fs.check_consistency().is_empty());
}

#[test]
fn no_client_ever_sees_a_stale_read() {
    for seed in [3, 17, 71, 2024] {
        stress(seed);
    }
}
