//! Chaos harness for the fault plane: randomized `FaultPlan`s over small
//! workloads must always (a) let every submitted op reach a terminal
//! state and (b) leave the system coherent under the post-run invariant
//! auditor. A separate pin test proves the whole plane is deterministic:
//! the same `(seed, plan)` replays to an identical completion trace and
//! audit report.

use std::cell::RefCell;
use std::rc::Rc;

use lambda_fs::{DfsService, LambdaFs, LambdaFsConfig};
use lambda_namespace::{DfsPath, FsOp};
use lambda_sim::fault::{
    ColdStartStorm, FaultPlan, FaultWindow, KillBurst, NetFault, NetFaultKind, Partition,
    ShardOutage,
};
use lambda_sim::{Dist, Sim, SimDuration, SimRng, SimTime};
use proptest::prelude::*;

fn at(secs: f64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs_f64(secs)
}

fn window(rng: &mut SimRng) -> FaultWindow {
    let from = rng.gen_range(1.0..6.0);
    let len = rng.gen_range(0.5..4.0);
    FaultWindow::new(at(from), at(from + len))
}

/// Draws an arbitrary small fault plan: up to two network faults, maybe a
/// partition, a shard outage, a kill burst, and a cold-start storm.
fn random_plan(rng: &mut SimRng) -> FaultPlan {
    let mut plan = FaultPlan::default();
    for _ in 0..rng.pick_index(3) {
        let kind = match rng.pick_index(3) {
            0 => NetFaultKind::Drop,
            1 => NetFaultKind::Delay(Dist::uniform_ms(5.0, 60.0)),
            _ => NetFaultKind::Duplicate,
        };
        plan.net.push(NetFault {
            kind,
            prob: rng.gen_range(0.05..0.4),
            window: window(rng),
            src: if rng.gen_bool(0.3) { Some(rng.pick_index(2) as u32) } else { None },
            dst: if rng.gen_bool(0.3) { Some(1000 + rng.pick_index(2) as u32) } else { None },
        });
    }
    if rng.gen_bool(0.4) {
        plan.partitions.push(Partition {
            a: rng.pick_index(2) as u32,
            b: 1000 + rng.pick_index(2) as u32,
            window: window(rng),
        });
    }
    if rng.gen_bool(0.5) {
        plan.shards.push(ShardOutage {
            shard: rng.pick_index(4) as u32,
            at: at(rng.gen_range(2.0..6.0)),
            takeover: SimDuration::from_secs_f64(rng.gen_range(0.5..3.0)),
        });
    }
    if rng.gen_bool(0.5) {
        plan.kills.push(KillBurst {
            at: at(rng.gen_range(2.0..6.0)),
            deployment: if rng.gen_bool(0.5) { Some(rng.pick_index(2) as u32) } else { None },
            count: 1 + rng.pick_index(2) as u32,
        });
    }
    if rng.gen_bool(0.4) {
        let w = window(rng);
        plan.storms.push(ColdStartStorm { window: w, factor: rng.gen_range(2.0..6.0) });
    }
    plan
}

/// One terminal event: when it completed, which client, and how it ended.
type Trace = Vec<(SimTime, usize, String)>;

/// Runs a tiny mixed workload under `plan`; returns the completion trace
/// and the audit report. `durable` selects the WAL-backed store backend
/// (shard outages then recover by WAL replay instead of fixed takeover,
/// and the auditor additionally checks post-crash shadow↔table agreement).
fn run_case(seed: u64, plan: &FaultPlan, ops: usize, durable: bool) -> (Trace, lambda_fs::AuditReport) {
    let mut sim = Sim::new(seed);
    let fs = Rc::new(LambdaFs::build(
        &mut sim,
        LambdaFsConfig {
            deployments: 2,
            clients: 6,
            client_vms: 2,
            cluster_vcpus: 32,
            durability: durable.then(lambda_store::DurabilityConfig::default),
            ..Default::default()
        },
    ));
    fs.start(&mut sim);
    fs.install_fault_plan(&mut sim, plan);
    let root: DfsPath = "/chaos".parse().expect("valid");
    let dirs = DfsService::bootstrap_tree(fs.as_ref(), &root, 4, 2);
    let trace: Rc<RefCell<Trace>> = Rc::new(RefCell::new(Vec::new()));
    // Ops are spread over the window the faults occupy, so every fault
    // class gets live traffic to chew on.
    for i in 0..ops {
        let client = i % fs.client_count();
        let dir = dirs[i % dirs.len()].clone();
        let op = match i % 4 {
            0 => FsOp::Stat(dir.join("file00000").expect("valid")),
            1 => FsOp::ReadFile(dir.join("file00001").expect("valid")),
            2 => FsOp::Ls(dir),
            _ => FsOp::CreateFile(dir.join(&format!("new{i:04}")).expect("valid")),
        };
        let submit_at = SimDuration::from_millis(500 + (i as u64 * 7919) % 6000);
        let fs2 = Rc::clone(&fs);
        let trace2 = Rc::clone(&trace);
        sim.schedule(submit_at, move |sim| {
            let trace3 = Rc::clone(&trace2);
            fs2.submit(
                sim,
                client,
                op,
                Box::new(move |sim, result| {
                    let kind = match &result {
                        Ok(_) => "ok".to_string(),
                        Err(e) => format!("err: {e}"),
                    };
                    trace3.borrow_mut().push((sim.now(), client, kind));
                }),
            );
        });
    }
    // Long enough for every retry chain to exhaust (max_retries ×
    // client_timeout + backoff) and for the request TTL to reap any
    // orphaned queue entries while maintenance still ticks.
    sim.run_for(SimDuration::from_secs(60));
    fs.stop(&mut sim);
    sim.run();
    let report = fs.audit();
    let trace = trace.borrow().clone();
    (trace, report)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Under arbitrary fault plans, every op terminates and the auditor
    /// stays green: no leaked lock, transaction, or invocation; namespace
    /// and store agree; op accounting conserves. Half the cases (by seed
    /// parity) run the WAL-backed durable store backend, whose shard
    /// outages recover by replay and face the extra post-crash
    /// shadow↔table consistency check.
    #[test]
    fn arbitrary_plans_terminate_and_audit_clean(case_seed in 0u64..1 << 48) {
        let mut rng = SimRng::new(case_seed);
        let plan = random_plan(&mut rng);
        let ops = 24;
        let durable = case_seed & 1 == 1;
        let (trace, report) = run_case(case_seed ^ 0xC4A0_5, &plan, ops, durable);
        prop_assert_eq!(trace.len(), ops, "non-terminating ops under plan {:?}", plan);
        prop_assert!(
            report.is_clean(),
            "audit failed under plan {:?} (durable={}): {}", plan, durable, report
        );
    }
}

/// The determinism pin: one fixed `(seed, plan)` pair — covering every
/// fault class at once — replays to a bit-identical completion trace and
/// audit report.
#[test]
fn same_seed_and_plan_replay_identically() {
    let plan = FaultPlan::parse(
        "drop@1s-4s:p=0.2;delay@2s-6s:p=0.4,ms=25;dup@1s-5s:p=0.2;part@3s-5s:a=0,b=1001;\
         shard@3s:shard=1,down=2s;kill@4s:count=2;storm@2s-7s:x=5",
    )
    .expect("valid spec");
    let (trace_a, report_a) = run_case(1234, &plan, 32, false);
    let (trace_b, report_b) = run_case(1234, &plan, 32, false);
    assert_eq!(trace_a, trace_b, "completion trace diverged between replays");
    assert_eq!(report_a, report_b, "audit report diverged between replays");
    assert_eq!(trace_a.len(), 32);
    assert!(report_a.is_clean(), "pinned plan must audit clean: {report_a}");

    // A different seed under the same plan is allowed to differ — and in
    // practice does, which guards against the trace being vacuously
    // constant.
    let (trace_c, _) = run_case(4321, &plan, 32, false);
    assert_ne!(trace_a, trace_c, "distinct seeds should produce distinct traces");
}

/// The durable backend is as deterministic as the in-memory one: WAL
/// append order, group-commit boundaries, and replay costing draw no RNG,
/// so the same `(seed, plan)` replays bit-identically with crashes
/// recovering through WAL replay mid-run.
#[test]
fn durable_backend_replays_identically_and_audits_clean() {
    let plan = FaultPlan::parse(
        "drop@1s-4s:p=0.2;shard@3s:shard=1,down=2s;shard@4.5s:shard=0,down=2s;kill@4s:count=2",
    )
    .expect("valid spec");
    let (trace_a, report_a) = run_case(1234, &plan, 32, true);
    let (trace_b, report_b) = run_case(1234, &plan, 32, true);
    assert_eq!(trace_a, trace_b, "durable completion trace diverged between replays");
    assert_eq!(report_a, report_b, "durable audit report diverged between replays");
    assert_eq!(trace_a.len(), 32);
    assert!(report_a.is_clean(), "durable pinned plan must audit clean: {report_a}");
}

/// A shard crash racing the first post-bootstrap transactions: the
/// freshly bulk-loaded namespace (`bootstrap_tree` → streamed
/// `bootstrap_bulk_load`) takes a crash right as the first ops arrive, so
/// in-flight writers must abort cleanly through the undo log — on both
/// backends, with the durable one also passing its post-crash
/// shadow↔table check over the just-loaded rows.
#[test]
fn crash_racing_bootstrap_aborts_cleanly_on_both_backends() {
    let plan = FaultPlan::parse("shard@0.55s:shard=0,down=2s").expect("valid spec");
    for durable in [false, true] {
        let (trace, report) = run_case(777, &plan, 24, durable);
        assert_eq!(trace.len(), 24, "non-terminating ops (durable={durable})");
        assert!(report.is_clean(), "audit failed (durable={durable}): {report}");
    }
}

/// Fault-plan installation is exactly nothing when the plan is empty: the
/// trace matches a run that never called `install_fault_plan` at all.
#[test]
fn empty_plan_is_a_strict_noop() {
    let empty = FaultPlan::default();
    let (with_install, report) = run_case(99, &empty, 16, false);
    assert!(report.is_clean());
    // Re-run without installing anything by parsing an empty spec (also
    // empty) — same code path as never installing.
    let (without, _) = run_case(99, &FaultPlan::parse("").expect("empty"), 16, false);
    assert_eq!(with_install, without);
    assert!(with_install.iter().all(|(_, _, kind)| kind == "ok"));
}
