//! Write-ahead log.
//!
//! LevelDB appends every mutation to a log file before applying it to the
//! memtable; the log is replayed after a crash and truncated after a flush.
//! The reproduction keeps the log as an in-memory record sequence (there is
//! no real disk in the simulation), but preserves the semantics the
//! IndexFS/λIndexFS substrate and the durable store backend need:
//! replayability, checkpoint-aware truncation on flush, group-commit sync
//! tracking, and size accounting.
//!
//! Every record carries a monotonically increasing **sequence number**
//! (1, 2, 3, … — never reused, even across truncation or crash). Three
//! positions in that sequence define the log's state:
//!
//! * `last_seq` — the newest record ever appended;
//! * `synced_seq` — the newest record made durable (`fsync` analog);
//!   records above it are lost by a crash;
//! * the **retained set** — records not yet covered by a flushed SSTable.
//!   [`Wal::truncate_upto`] drops only records at or below its checkpoint,
//!   so a flush can never discard log entries it did not persist (the tail
//!   stays replayable).

use bytes::Bytes;

/// One logged mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// A put of `key` → `value`.
    Put {
        /// Row key.
        key: Bytes,
        /// Row value.
        value: Bytes,
    },
    /// A deletion of `key`.
    Delete {
        /// Row key.
        key: Bytes,
    },
}

impl WalRecord {
    /// Modeled on-log size of the record (key + value + framing).
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        match self {
            WalRecord::Put { key, value } => key.len() + value.len() + 16,
            WalRecord::Delete { key } => key.len() + 16,
        }
    }
}

/// An append-only mutation log with sequence numbers, durability (sync)
/// tracking, and checkpoint-aware truncation.
///
/// Each retained record is stored with its sequence number: after a crash
/// drops the unsynced tail, the next append continues the numbering (drops
/// are never reused), so the retained sequence can have gaps and positional
/// arithmetic would misattribute records.
#[derive(Debug, Clone, Default)]
pub struct Wal {
    records: Vec<(u64, WalRecord)>,
    bytes: usize,
    total_appends: u64,
    /// Sequence number of the next appended record (first append gets 1).
    /// Unlike `total_appends`, this is the authority for numbering:
    /// sequence numbers are never reused, even after a crash drops records.
    next_seq: u64,
    /// Newest durable record; records above this are lost by a crash.
    synced_seq: u64,
}

impl Wal {
    /// Creates an empty log.
    #[must_use]
    pub fn new() -> Self {
        Wal { next_seq: 1, ..Self::default() }
    }

    /// Appends a record, returning its sequence number.
    pub fn append(&mut self, record: WalRecord) -> u64 {
        if self.next_seq == 0 {
            // A `Default`-constructed log: align with `new()`.
            self.next_seq = 1;
        }
        self.bytes += record.size_bytes();
        self.total_appends += 1;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.records.push((seq, record));
        seq
    }

    /// Number of records currently retained (since the last truncation).
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the retained log is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Retained records with their sequence numbers, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = (u64, &WalRecord)> {
        self.records.iter().map(|(s, r)| (*s, r))
    }

    /// Sequence number of the newest record ever appended (0 if none).
    #[must_use]
    pub fn last_seq(&self) -> u64 {
        self.next_seq.saturating_sub(1)
    }

    /// Newest durable sequence number (see [`Wal::mark_synced`]).
    #[must_use]
    pub fn synced_seq(&self) -> u64 {
        self.synced_seq
    }

    /// Marks every appended record durable — the group-commit `fsync`
    /// analog.
    pub fn mark_synced(&mut self) {
        self.synced_seq = self.last_seq();
    }

    /// Current retained log size in bytes.
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        self.bytes
    }

    /// Lifetime number of appends (not reset by truncation).
    #[must_use]
    pub fn total_appends(&self) -> u64 {
        self.total_appends
    }

    /// Drops records with sequence numbers `<= checkpoint` — the records a
    /// flushed SSTable now covers. Records above the checkpoint stay
    /// retained and replayable.
    ///
    /// Everything at or below the checkpoint is durably persisted by that
    /// flush, so `synced_seq` advances to at least the checkpoint.
    pub fn truncate_upto(&mut self, checkpoint: u64) {
        let drop = self.records.partition_point(|(s, _)| *s <= checkpoint);
        for (_, r) in self.records.drain(..drop) {
            self.bytes -= r.size_bytes();
        }
        self.synced_seq = self.synced_seq.max(checkpoint.min(self.last_seq()));
    }

    /// Drops all retained records (unconditional; equivalent to
    /// `truncate_upto(last_seq)`). Prefer [`Wal::truncate_upto`] with an
    /// explicit checkpoint when the log may hold records beyond the
    /// flushed state.
    pub fn truncate(&mut self) {
        self.truncate_upto(self.last_seq());
    }

    /// Crash: drops the unsynced tail (records with sequence numbers above
    /// `synced_seq`), returning `(records, bytes)` lost. The surviving
    /// prefix is what recovery replays. Sequence numbers of dropped records
    /// are **not** reused.
    pub fn drop_unsynced_tail(&mut self) -> (u64, u64) {
        let keep = self.records.partition_point(|(s, _)| *s <= self.synced_seq);
        let lost = (self.records.len() - keep) as u64;
        let mut lost_bytes = 0u64;
        for (_, r) in self.records.drain(keep..) {
            lost_bytes += r.size_bytes() as u64;
            self.bytes -= r.size_bytes();
        }
        (lost, lost_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn append_and_replay_order() {
        let mut wal = Wal::new();
        wal.append(WalRecord::Put { key: b("a"), value: b("1") });
        wal.append(WalRecord::Delete { key: b("a") });
        wal.append(WalRecord::Put { key: b("b"), value: b("2") });
        assert_eq!(wal.len(), 3);
        let (seq, rec) = wal.entries().nth(1).unwrap();
        assert_eq!((seq, rec.clone()), (2, WalRecord::Delete { key: b("a") }));
        assert!(wal.size_bytes() > 0);
    }

    #[test]
    fn truncate_resets_contents_but_not_lifetime_stats() {
        let mut wal = Wal::new();
        wal.append(WalRecord::Put { key: b("k"), value: b("v") });
        wal.truncate();
        assert!(wal.is_empty());
        assert_eq!(wal.size_bytes(), 0);
        assert_eq!(wal.total_appends(), 1);
    }

    #[test]
    fn sequence_numbers_are_monotone_and_survive_truncation() {
        let mut wal = Wal::new();
        assert_eq!(wal.append(WalRecord::Put { key: b("a"), value: b("1") }), 1);
        assert_eq!(wal.append(WalRecord::Put { key: b("b"), value: b("2") }), 2);
        wal.truncate();
        assert_eq!(wal.append(WalRecord::Put { key: b("c"), value: b("3") }), 3);
        assert_eq!(wal.last_seq(), 3);
        let seqs: Vec<u64> = wal.entries().map(|(s, _)| s).collect();
        assert_eq!(seqs, vec![3]);
    }

    /// The checkpoint-aware truncation contract: a flush checkpoint strictly
    /// below the newest record must leave the tail retained and replayable.
    #[test]
    fn truncate_upto_keeps_the_tail_above_the_checkpoint() {
        let mut wal = Wal::new();
        wal.append(WalRecord::Put { key: b("a"), value: b("1") });
        wal.append(WalRecord::Put { key: b("b"), value: b("2") });
        wal.append(WalRecord::Put { key: b("c"), value: b("3") });
        wal.truncate_upto(2);
        let tail: Vec<(u64, WalRecord)> =
            wal.entries().map(|(s, r)| (s, r.clone())).collect();
        assert_eq!(tail, vec![(3, WalRecord::Put { key: b("c"), value: b("3") })]);
        // Flushed records are durable: the checkpoint advances synced_seq.
        assert_eq!(wal.synced_seq(), 2);
        // Re-truncating below the retained range is a no-op.
        wal.truncate_upto(1);
        assert_eq!(wal.len(), 1);
    }

    #[test]
    fn crash_drops_only_the_unsynced_tail() {
        let mut wal = Wal::new();
        wal.append(WalRecord::Put { key: b("a"), value: b("1") });
        wal.append(WalRecord::Put { key: b("b"), value: b("2") });
        wal.mark_synced();
        wal.append(WalRecord::Put { key: b("c"), value: b("3") });
        wal.append(WalRecord::Delete { key: b("a") });
        let (lost, lost_bytes) = wal.drop_unsynced_tail();
        assert_eq!(lost, 2);
        assert!(lost_bytes > 0);
        let seqs: Vec<u64> = wal.entries().map(|(s, _)| s).collect();
        assert_eq!(seqs, vec![1, 2]);
        // Dropped sequence numbers are never reused.
        assert_eq!(wal.append(WalRecord::Put { key: b("d"), value: b("4") }), 5);
    }
}
