//! Write-ahead log.
//!
//! LevelDB appends every mutation to a log file before applying it to the
//! memtable; the log is replayed after a crash and truncated after a flush.
//! The reproduction keeps the log as an in-memory record sequence (there is
//! no real disk in the simulation), but preserves the semantics the
//! IndexFS/λIndexFS substrate needs: replayability, truncation on flush,
//! and size accounting.

use bytes::Bytes;

/// One logged mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// A put of `key` → `value`.
    Put {
        /// Row key.
        key: Bytes,
        /// Row value.
        value: Bytes,
    },
    /// A deletion of `key`.
    Delete {
        /// Row key.
        key: Bytes,
    },
}

impl WalRecord {
    fn size_bytes(&self) -> usize {
        match self {
            WalRecord::Put { key, value } => key.len() + value.len() + 16,
            WalRecord::Delete { key } => key.len() + 16,
        }
    }
}

/// An append-only mutation log with truncation.
#[derive(Debug, Clone, Default)]
pub struct Wal {
    records: Vec<WalRecord>,
    bytes: usize,
    total_appends: u64,
}

impl Wal {
    /// Creates an empty log.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a record.
    pub fn append(&mut self, record: WalRecord) {
        self.bytes += record.size_bytes();
        self.total_appends += 1;
        self.records.push(record);
    }

    /// Records currently in the log (since the last truncation).
    #[must_use]
    pub fn records(&self) -> &[WalRecord] {
        &self.records
    }

    /// Current log size in bytes.
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        self.bytes
    }

    /// Lifetime number of appends (not reset by truncation).
    #[must_use]
    pub fn total_appends(&self) -> u64 {
        self.total_appends
    }

    /// Drops all records (called after the memtable they cover is flushed).
    pub fn truncate(&mut self) {
        self.records.clear();
        self.bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn append_and_replay_order() {
        let mut wal = Wal::new();
        wal.append(WalRecord::Put { key: b("a"), value: b("1") });
        wal.append(WalRecord::Delete { key: b("a") });
        wal.append(WalRecord::Put { key: b("b"), value: b("2") });
        assert_eq!(wal.records().len(), 3);
        assert_eq!(wal.records()[1], WalRecord::Delete { key: b("a") });
        assert!(wal.size_bytes() > 0);
    }

    #[test]
    fn truncate_resets_contents_but_not_lifetime_stats() {
        let mut wal = Wal::new();
        wal.append(WalRecord::Put { key: b("k"), value: b("v") });
        wal.truncate();
        assert!(wal.records().is_empty());
        assert_eq!(wal.size_bytes(), 0);
        assert_eq!(wal.total_appends(), 1);
    }
}
