//! A Bloom filter for SSTable key membership, as LevelDB attaches to its
//! table blocks.
//!
//! Uses the standard double-hashing scheme (Kirsch–Mitzenmacher): two FNV
//! variants combined as `h1 + i·h2` for the `k` probe positions.

/// A fixed-size Bloom filter built over a batch of keys.
#[derive(Debug, Clone)]
pub struct BloomFilter {
    bits: Vec<u64>,
    num_bits: usize,
    hashes: u32,
}

fn fnv1a(data: &[u8], seed: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed;
    for b in data {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl BloomFilter {
    /// Builds a filter over `keys` with roughly `bits_per_key` bits per key.
    ///
    /// The number of hash functions is the standard optimum
    /// `k ≈ bits_per_key · ln 2`, clamped to `[1, 30]`.
    #[must_use]
    pub fn build<'a>(keys: impl IntoIterator<Item = &'a [u8]>, bits_per_key: usize) -> Self {
        let keys: Vec<&[u8]> = keys.into_iter().collect();
        let num_bits = (keys.len() * bits_per_key).max(64);
        let hashes = ((bits_per_key as f64 * 0.69) as u32).clamp(1, 30);
        let mut filter =
            BloomFilter { bits: vec![0; num_bits.div_ceil(64)], num_bits, hashes };
        for key in keys {
            filter.insert(key);
        }
        filter
    }

    fn insert(&mut self, key: &[u8]) {
        let h1 = fnv1a(key, 0);
        let h2 = fnv1a(key, 0x9e37_79b9_7f4a_7c15);
        for i in 0..self.hashes {
            let bit = (h1.wrapping_add(u64::from(i).wrapping_mul(h2)) % self.num_bits as u64)
                as usize;
            self.bits[bit / 64] |= 1 << (bit % 64);
        }
    }

    /// Whether `key` might be present (false positives possible, false
    /// negatives impossible).
    #[must_use]
    pub fn may_contain(&self, key: &[u8]) -> bool {
        let h1 = fnv1a(key, 0);
        let h2 = fnv1a(key, 0x9e37_79b9_7f4a_7c15);
        (0..self.hashes).all(|i| {
            let bit = (h1.wrapping_add(u64::from(i).wrapping_mul(h2)) % self.num_bits as u64)
                as usize;
            self.bits[bit / 64] & (1 << (bit % 64)) != 0
        })
    }

    /// Size of the filter in bytes (for amplification accounting).
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        self.bits.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u32) -> Vec<u8> {
        format!("key-{i:08}").into_bytes()
    }

    #[test]
    fn no_false_negatives() {
        let keys: Vec<Vec<u8>> = (0..1000).map(key).collect();
        let filter = BloomFilter::build(keys.iter().map(Vec::as_slice), 10);
        for k in &keys {
            assert!(filter.may_contain(k));
        }
    }

    #[test]
    fn false_positive_rate_is_low() {
        let keys: Vec<Vec<u8>> = (0..1000).map(key).collect();
        let filter = BloomFilter::build(keys.iter().map(Vec::as_slice), 10);
        let fp = (1000..11_000).filter(|i| filter.may_contain(&key(*i))).count();
        // 10 bits/key gives ~1% theoretical FP rate; allow generous slack.
        assert!(fp < 400, "false positives: {fp}/10000");
    }

    #[test]
    fn empty_filter_rejects_everything_possible() {
        let filter = BloomFilter::build(std::iter::empty(), 10);
        // An empty filter has no set bits, so nothing may be contained.
        assert!(!filter.may_contain(b"anything"));
        assert!(filter.size_bytes() >= 8);
    }
}
