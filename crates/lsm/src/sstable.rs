//! Immutable sorted string tables (SSTables).
//!
//! An [`SsTable`] is a sorted, immutable run of key → entry pairs with a
//! sparse index (one anchor every `index_interval` entries) and a Bloom
//! filter, mirroring LevelDB's table format at the granularity the
//! reproduction needs: point lookups binary-search the sparse index and
//! then scan at most one interval; `may_contain` consults the Bloom filter
//! first.

use bytes::Bytes;

use crate::bloom::BloomFilter;

/// A value slot: either a live value or a deletion marker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Entry {
    /// A live value.
    Put(Bytes),
    /// A tombstone shadowing older versions of the key.
    Tombstone,
}

impl Entry {
    /// The live value, or `None` for a tombstone.
    #[must_use]
    pub fn value(&self) -> Option<&Bytes> {
        match self {
            Entry::Put(v) => Some(v),
            Entry::Tombstone => None,
        }
    }

    /// Approximate in-memory size of the entry payload.
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        match self {
            Entry::Put(v) => v.len(),
            Entry::Tombstone => 0,
        }
    }
}

/// An immutable sorted run of `(key, entry)` pairs.
#[derive(Debug, Clone)]
pub struct SsTable {
    rows: Vec<(Bytes, Entry)>,
    /// `(key, offset)` anchors, one per `index_interval` rows.
    sparse_index: Vec<(Bytes, usize)>,
    bloom: BloomFilter,
    data_bytes: usize,
}

impl SsTable {
    /// Builds a table from rows that must already be sorted by key with no
    /// duplicates.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is unsorted or contains duplicate keys.
    #[must_use]
    pub fn build(rows: Vec<(Bytes, Entry)>, index_interval: usize, bloom_bits_per_key: usize) -> Self {
        assert!(
            rows.windows(2).all(|w| w[0].0 < w[1].0),
            "SSTable rows must be sorted and unique"
        );
        let interval = index_interval.max(1);
        let sparse_index = rows
            .iter()
            .enumerate()
            .filter(|(i, _)| i % interval == 0)
            .map(|(i, (k, _))| (k.clone(), i))
            .collect();
        let bloom = BloomFilter::build(rows.iter().map(|(k, _)| k.as_ref()), bloom_bits_per_key);
        let data_bytes = rows.iter().map(|(k, e)| k.len() + e.size_bytes()).sum();
        SsTable { rows, sparse_index, bloom, data_bytes }
    }

    /// Number of rows (including tombstones).
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Approximate on-disk size in bytes.
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        self.data_bytes
    }

    /// Smallest key, or `None` if empty.
    #[must_use]
    pub fn first_key(&self) -> Option<&Bytes> {
        self.rows.first().map(|(k, _)| k)
    }

    /// Largest key, or `None` if empty.
    #[must_use]
    pub fn last_key(&self) -> Option<&Bytes> {
        self.rows.last().map(|(k, _)| k)
    }

    /// Whether `key` is within `[first_key, last_key]`.
    #[must_use]
    pub fn key_in_range(&self, key: &[u8]) -> bool {
        match (self.first_key(), self.last_key()) {
            (Some(lo), Some(hi)) => key >= lo.as_ref() && key <= hi.as_ref(),
            _ => false,
        }
    }

    /// Whether the Bloom filter admits `key` (fast negative lookups).
    #[must_use]
    pub fn may_contain(&self, key: &[u8]) -> bool {
        self.bloom.may_contain(key)
    }

    /// Point lookup via the sparse index.
    #[must_use]
    pub fn get(&self, key: &[u8]) -> Option<&Entry> {
        if !self.key_in_range(key) {
            return None;
        }
        // Find the last anchor with anchor_key <= key.
        let anchor = self.sparse_index.partition_point(|(k, _)| k.as_ref() <= key);
        let start = if anchor == 0 { 0 } else { self.sparse_index[anchor - 1].1 };
        self.rows[start..]
            .iter()
            .take_while(|(k, _)| k.as_ref() <= key)
            .find(|(k, _)| k.as_ref() == key)
            .map(|(_, e)| e)
    }

    /// All rows (for compaction and scans).
    #[must_use]
    pub fn rows(&self) -> &[(Bytes, Entry)] {
        &self.rows
    }

    /// Rows with key in `[lo, hi)`, in order.
    #[must_use]
    pub fn range(&self, lo: &[u8], hi: &[u8]) -> &[(Bytes, Entry)] {
        let start = self.rows.partition_point(|(k, _)| k.as_ref() < lo);
        let end = self.rows.partition_point(|(k, _)| k.as_ref() < hi);
        &self.rows[start..end]
    }

    /// Whether this table's key range overlaps `[lo, hi]` (inclusive).
    #[must_use]
    pub fn overlaps(&self, lo: &[u8], hi: &[u8]) -> bool {
        match (self.first_key(), self.last_key()) {
            (Some(first), Some(last)) => first.as_ref() <= hi && last.as_ref() >= lo,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    fn table(keys: &[&str]) -> SsTable {
        let rows = keys.iter().map(|k| (b(k), Entry::Put(b(&format!("v-{k}"))))).collect();
        SsTable::build(rows, 4, 10)
    }

    #[test]
    fn point_lookups_hit_and_miss() {
        let t = table(&["a", "c", "e", "g", "i", "k", "m", "o", "q"]);
        assert_eq!(t.get(b"e"), Some(&Entry::Put(b("v-e"))));
        assert_eq!(t.get(b"q"), Some(&Entry::Put(b("v-q"))));
        assert_eq!(t.get(b"a"), Some(&Entry::Put(b("v-a"))));
        assert_eq!(t.get(b"b"), None);
        assert_eq!(t.get(b"z"), None);
        assert_eq!(t.get(b""), None);
    }

    #[test]
    fn sparse_index_covers_every_interval() {
        let keys: Vec<String> = (0..103).map(|i| format!("k{i:04}")).collect();
        let rows = keys.iter().map(|k| (Bytes::from(k.clone()), Entry::Tombstone)).collect();
        let t = SsTable::build(rows, 7, 10);
        for k in &keys {
            assert!(t.get(k.as_bytes()).is_some(), "lost key {k}");
        }
    }

    #[test]
    fn range_scans_are_half_open() {
        let t = table(&["a", "b", "c", "d", "e"]);
        let rows = t.range(b"b", b"e");
        let keys: Vec<&str> =
            rows.iter().map(|(k, _)| std::str::from_utf8(k).unwrap()).collect();
        assert_eq!(keys, vec!["b", "c", "d"]);
        assert!(t.range(b"x", b"z").is_empty());
    }

    #[test]
    fn overlap_checks() {
        let t = table(&["d", "e", "f"]);
        assert!(t.overlaps(b"a", b"d"));
        assert!(t.overlaps(b"f", b"z"));
        assert!(t.overlaps(b"e", b"e"));
        assert!(!t.overlaps(b"a", b"c"));
        assert!(!t.overlaps(b"g", b"z"));
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_input_is_rejected() {
        let rows = vec![(b("b"), Entry::Tombstone), (b("a"), Entry::Tombstone)];
        let _ = SsTable::build(rows, 4, 10);
    }

    #[test]
    fn empty_table_is_harmless() {
        let t = SsTable::build(Vec::new(), 4, 10);
        assert!(t.is_empty());
        assert_eq!(t.get(b"a"), None);
        assert!(!t.key_in_range(b"a"));
        assert!(!t.overlaps(b"a", b"z"));
    }
}
